//! Incremental frequent-set maintenance over an arriving transaction
//! stream (FUP, the paper's citation [6]): mine once, then absorb monthly
//! batches without re-mining the history — and re-run a CFQ against the
//! refreshed frequency picture.
//!
//! ```text
//! cargo run --release --example incremental_stream
//! ```

use cfq::mining::{fup_update, WorkStats};
use cfq::prelude::*;

fn main() -> Result<()> {
    let base_quest = QuestConfig {
        n_items: 120,
        n_transactions: 3_000,
        avg_trans_len: 8.0,
        avg_pattern_len: 3.0,
        n_patterns: 50,
        ..QuestConfig::default()
    };
    let support_frac = 0.01;

    // Month 0: the historical database, mined from scratch.
    let mut history = generate_transactions(&base_quest)?;
    let abs = |db: &TransactionDb| ((support_frac * db.len() as f64).ceil() as u64).max(1);
    let mut stats = WorkStats::new();
    let mut frequent = apriori(&history, &AprioriConfig::new(abs(&history)), &mut stats);
    println!(
        "month 0: {} transactions, {} frequent sets ({} full scans)",
        history.len(),
        frequent.total(),
        stats.db_scans
    );

    // Months 1..4: arriving batches with drifting pattern mix.
    for month in 1..=4u64 {
        let batch = generate_transactions(&QuestConfig {
            n_transactions: 600,
            seed: base_quest.seed + month, // drift
            ..base_quest.clone()
        })?;
        let mut upd_stats = WorkStats::new();
        let outcome = fup_update(&frequent, &history, &batch, support_frac, &mut upd_stats)?;
        println!(
            "month {month}: +{} transactions → {} frequent sets | {} old-db recounts, {} old-db scans",
            batch.len(),
            outcome.frequent.total(),
            outcome.old_db_recounts,
            upd_stats.db_scans,
        );
        // Fold the batch into history for the next round.
        let mut rows: Vec<Vec<ItemId>> = history.iter().map(|t| t.to_vec()).collect();
        rows.extend(batch.iter().map(|t| t.to_vec()));
        history = TransactionDb::new(history.n_items(), rows)?;
        frequent = outcome.frequent;
    }

    // The refreshed history still answers CFQs exactly.
    let mut b = CatalogBuilder::new(history.n_items());
    b.num_attr(
        "Price",
        (0..history.n_items()).map(|i| ((i * 13) % 100) as f64 + 1.0).collect(),
    )?;
    let catalog = b.build();
    let q = bind_query(&parse_query("max(S.Price) <= min(T.Price)")?, &catalog)?;
    let env = QueryEnv::new(&history, &catalog, abs(&history));
    let out = Optimizer::default().evaluate(&q, &env).unwrap();
    println!(
        "\nCFQ on the full stream: {} pairs from {} S-sets x {} T-sets",
        out.pair_result.count,
        out.s_sets.len(),
        out.t_sets.len()
    );
    Ok(())
}

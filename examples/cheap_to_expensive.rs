//! The paper's §1 introduction query:
//!
//! ```text
//! {(S, T) | sum(S.Price) <= 100 & avg(T.Price) >= 200}
//! ```
//!
//! "pairs of frequent itemsets (S, T), where S has a total price no more
//! than $100 and T has an average price no less than $200 … suggesting that
//! the purchase of cheaper items leads to the purchase of more expensive
//! ones." Both constraints involve sum/avg, i.e. the *hard* 1-var class:
//! neither is succinct, and `avg ≥ v` is not even anti-monotone. The
//! example shows how CAP still pushes sound weaker conditions (an item
//! filter for the sum budget, a required expensive item for the average)
//! and finishes the rest with post filters.
//!
//! ```text
//! cargo run --release --example cheap_to_expensive
//! ```

use cfq::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    let quest = QuestConfig {
        n_items: 300,
        n_transactions: 8_000,
        avg_trans_len: 10.0,
        avg_pattern_len: 4.0,
        n_patterns: 150,
        ..QuestConfig::default()
    };
    let db = generate_transactions(&quest)?;

    // Prices: log-uniform-ish spread from $1 to $500.
    let mut rng = StdRng::seed_from_u64(11);
    let prices: Vec<f64> =
        (0..300).map(|_| 10f64.powf(rng.gen_range(0.0..2.7))).collect();
    let mut b = CatalogBuilder::new(300);
    b.num_attr("Price", prices)?;
    let catalog = b.build();

    let query = parse_query("sum(S.Price) <= 100 & avg(T.Price) >= 200")?;
    let bound = bind_query(&query, &catalog)?;

    // Inspect the classification driving the plan.
    for c in &bound.one_var {
        let cls = classify_one(c, &catalog);
        println!(
            "{c}: anti-monotone={}, succinct={}",
            cls.anti_monotone, cls.succinct
        );
    }

    let env = QueryEnv::new(&db, &catalog, 30);
    let optimizer = Optimizer::default();
    let outcome = optimizer.evaluate(&bound, &env).unwrap();
    let baseline = apriori_plus(&bound, &env);
    assert_eq!(baseline.pair_result.count, outcome.pair_result.count);

    println!(
        "\n{} cheap->expensive pairs; optimizer counted {} sets vs Apriori+ {}",
        outcome.pair_result.count,
        outcome.s_stats.support_counted + outcome.t_stats.support_counted,
        baseline.s_stats.support_counted + baseline.t_stats.support_counted,
    );
    let price = catalog.attr("Price").expect("Price attr");
    for &(si, ti) in outcome.pair_result.pairs.iter().take(8) {
        let (s, _) = &outcome.s_sets[si as usize];
        let (t, _) = &outcome.t_sets[ti as usize];
        println!(
            "  {s} (sum {:.2}) => {t} (avg {:.2})",
            catalog.sum_num(price, s),
            catalog.avg_num(price, t).unwrap(),
        );
    }
    Ok(())
}

//! The hardest 2-var class: `sum(S.Price) <= sum(T.Price)` (§5).
//!
//! No quasi-succinct reduction exists, and no weaker min/max constraint
//! dominates a `sum` on the bounding side — this is exactly the case the
//! paper's `J^k_max` iterative pruning was built for. The example runs the
//! dovetailed optimizer with and without `J^k_max` and prints the evolving
//! `V^k` bound series (Figures 5–6) alongside the work saved.
//!
//! ```text
//! cargo run --release --example sum_budget
//! ```

use cfq::prelude::*;

fn main() -> Result<()> {
    // Long-pattern workload so the S lattice grows deep (the paper's §7.3
    // setup reaches frequent sets of cardinality 14).
    let quest = QuestConfig {
        n_items: 400,
        n_transactions: 4_000,
        avg_trans_len: 16.0,
        avg_pattern_len: 8.0,
        n_patterns: 120,
        ..QuestConfig::default()
    };
    let sc = ScenarioBuilder::new(quest).split_normal_prices(1000.0, 10.0, 500.0, 10.0)?;

    let query = parse_query("sum(S.Price) <= sum(T.Price)")?;
    let bound = bind_query(&query, &sc.catalog)?;
    let env = QueryEnv::new(&sc.db, &sc.catalog, 0)
        .with_s_universe(sc.s_items.clone())
        .with_t_universe(sc.t_items.clone())
        .with_supports(6, 40);

    let optimizer = Optimizer::default();
    let plan = optimizer.build_plan(&bound, env.catalog);
    println!("{}", plan.explain(&sc.catalog));

    let with_jk = optimizer.execute_plan(&plan, &env).unwrap();
    let without_jk =
        Optimizer { use_jkmax: false, ..Optimizer::default() }.evaluate(&bound, &env).unwrap();
    assert_eq!(with_jk.pair_result.count, without_jk.pair_result.count);

    println!("V^k series (upper bound on sum(T.Price) over frequent T-sets):");
    for (var, hist) in &with_jk.v_histories {
        print!("  pruning {var}-side:");
        for (k, v) in hist {
            print!("  V^{k}={v:.0}");
        }
        println!();
    }
    println!(
        "\nwith J^k_max:    {:>9} sets counted",
        with_jk.s_stats.support_counted + with_jk.t_stats.support_counted
    );
    println!(
        "without J^k_max: {:>9} sets counted",
        without_jk.s_stats.support_counted + without_jk.t_stats.support_counted
    );
    println!("answer: {} pairs either way", with_jk.pair_result.count);
    Ok(())
}

//! The §2 motivating query: "pairs of frequent sets of cheaper snack items
//! and of more expensive beer items" —
//!
//! ```text
//! {(S, T) | S.Type = {Snacks} & T.Type = {Beers} & max(S.Price) <= min(T.Price)}
//! ```
//!
//! Run on a synthetic Quest market-basket database with a realistic
//! itemInfo catalog.
//!
//! ```text
//! cargo run --release --example snacks_to_beers
//! ```

use cfq::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    // 5,000 transactions over 200 items, T8.I3 workload.
    let quest = QuestConfig {
        n_items: 200,
        n_transactions: 5_000,
        avg_trans_len: 8.0,
        avg_pattern_len: 3.0,
        n_patterns: 80,
        ..QuestConfig::default()
    };
    let db = generate_transactions(&quest)?;

    // itemInfo: five categories; snacks cheap, beers mid-range.
    let mut rng = StdRng::seed_from_u64(7);
    let kinds = ["Snacks", "Beers", "Dairy", "Produce", "Household"];
    let mut types = Vec::with_capacity(200);
    let mut prices = Vec::with_capacity(200);
    for i in 0..200usize {
        let kind = kinds[i % kinds.len()];
        types.push(kind);
        let price = match kind {
            "Snacks" => rng.gen_range(1.0..8.0),
            "Beers" => rng.gen_range(6.0..25.0),
            "Dairy" => rng.gen_range(2.0..10.0),
            "Produce" => rng.gen_range(1.0..6.0),
            _ => rng.gen_range(3.0..40.0),
        };
        prices.push(price);
    }
    let mut b = CatalogBuilder::new(200);
    b.num_attr("Price", prices)?;
    b.cat_attr("Type", &types)?;
    let catalog = b.build();

    let query = parse_query(
        "S.Type = {Snacks} & T.Type = {Beers} & max(S.Price) <= min(T.Price)",
    )?;
    let bound = bind_query(&query, &catalog)?;

    let env = QueryEnv::new(&db, &catalog, 25);
    let optimizer = Optimizer::default();
    let plan = optimizer.build_plan(&bound, env.catalog);
    println!("{}", plan.explain(&catalog));
    let outcome = optimizer.execute_plan(&plan, &env).unwrap();

    // Compare against the naive baseline to show what the pushing buys.
    let baseline = apriori_plus(&bound, &env);
    assert_eq!(baseline.pair_result.count, outcome.pair_result.count);
    println!(
        "answer: {} pairs | optimizer counted {} sets, Apriori+ counted {} ({}x fewer)",
        outcome.pair_result.count,
        outcome.s_stats.support_counted + outcome.t_stats.support_counted,
        baseline.s_stats.support_counted + baseline.t_stats.support_counted,
        (baseline.s_stats.support_counted + baseline.t_stats.support_counted).max(1)
            / (outcome.s_stats.support_counted + outcome.t_stats.support_counted).max(1),
    );

    let price = catalog.attr("Price").expect("Price attr");
    for &(si, ti) in outcome.pair_result.pairs.iter().take(8) {
        let (s, _) = &outcome.s_sets[si as usize];
        let (t, _) = &outcome.t_sets[ti as usize];
        println!(
            "  snacks {s} (max {:.2}) => beers {t} (min {:.2})",
            catalog.max_num(price, s).unwrap(),
            catalog.min_num(price, t).unwrap(),
        );
    }
    Ok(())
}

//! Quickstart: parse a CFQ, run the optimizer, print the valid pairs.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cfq::prelude::*;

fn main() -> Result<()> {
    // A toy market-basket database: 8 transactions over 6 items.
    let db = TransactionDb::from_u32(
        6,
        &[
            &[0, 1, 2, 3],
            &[0, 1, 2],
            &[1, 2, 3, 4],
            &[0, 2, 4],
            &[0, 1, 3, 5],
            &[2, 3, 4, 5],
            &[0, 1, 2, 3, 4],
            &[1, 3, 5],
        ],
    );

    // The paper's auxiliary relation itemInfo(Item, Type, Price).
    let mut b = CatalogBuilder::new(6);
    b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0])?;
    b.cat_attr("Type", &["Snacks", "Beers", "Snacks", "Dairy", "Beers", "Dairy"])?;
    let catalog = b.build();

    // A CFQ with a 1-var and a 2-var constraint, straight from query text.
    let query = parse_query("sum(S.Price) <= 60 & max(S.Price) <= min(T.Price)")?;
    let bound = bind_query(&query, &catalog)?;

    // Plan and execute with the full Figure-7 optimizer.
    let env = QueryEnv::new(&db, &catalog, 2);
    let optimizer = Optimizer::default();
    let plan = optimizer.build_plan(&bound, env.catalog);
    println!("{}", plan.explain(&catalog));

    let outcome = optimizer.execute_plan(&plan, &env).unwrap();
    println!(
        "{} valid pairs from {} S-sets x {} T-sets ({} db scans, {} sets counted)",
        outcome.pair_result.count,
        outcome.s_sets.len(),
        outcome.t_sets.len(),
        outcome.db_scans,
        outcome.s_stats.support_counted + outcome.t_stats.support_counted,
    );
    for &(si, ti) in outcome.pair_result.pairs.iter().take(10) {
        let (s, s_sup) = &outcome.s_sets[si as usize];
        let (t, t_sup) = &outcome.t_sets[ti as usize];
        println!("  {s} (sup {s_sup})  =>  {t} (sup {t_sup})");
    }
    Ok(())
}

//! A tour of the optimizer's EXPLAIN output across the constraint
//! taxonomy: for each 2-var constraint class of Figure 1, show its
//! classification and the strategy the Figure-7 optimizer picks.
//!
//! ```text
//! cargo run --example explain_tour
//! ```

use cfq::prelude::*;

fn main() -> Result<()> {
    let db = TransactionDb::from_u32(4, &[&[0, 1], &[1, 2], &[2, 3], &[0, 1, 2, 3]]);
    let mut b = CatalogBuilder::new(4);
    b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0])?;
    b.cat_attr("Type", &["A", "B", "A", "B"])?;
    let catalog = b.build();
    let env = QueryEnv::new(&db, &catalog, 1);

    let queries = [
        // Quasi-succinct (Figures 2-3).
        "S.Type disjoint T.Type",
        "S.Type = T.Type",
        "max(S.Price) <= min(T.Price)",
        // Induced weaker (Figure 4).
        "avg(S.Price) <= avg(T.Price)",
        "sum(S.Price) <= max(T.Price)",
        // J^k_max (Figures 5-6).
        "sum(S.Price) <= sum(T.Price)",
        // Nothing pushable.
        "min(S.Price) != max(T.Price)",
        // A realistic mixed query.
        "S.Type = {A} & sum(S.Price) <= 60 & max(S.Price) <= min(T.Price) & avg(T.Price) >= 20",
    ];

    for src in queries {
        println!("query: {{(S,T) | {src}}}");
        let bound = bind_query(&parse_query(src)?, &catalog)?;
        for c in &bound.two_var {
            let cls = classify_two(c);
            println!(
                "  classification: anti-monotone={}, quasi-succinct={}",
                cls.anti_monotone, cls.quasi_succinct
            );
        }
        let plan = Optimizer::default().build_plan(&bound, env.catalog);
        for line in plan.explain(&catalog).lines() {
            println!("  {line}");
        }
        println!();
    }
    Ok(())
}

//! Phase 1 + Phase 2 of the paper's exploratory-mining architecture in one
//! pipeline: compute the constrained frequent pairs, then turn them into
//! association rules `S ⇒ T` with support / confidence / lift.
//!
//! ```text
//! cargo run --release --example rules_pipeline
//! ```

use cfq::prelude::*;

fn main() -> Result<()> {
    // Quest market-basket data with a price catalog.
    let quest = QuestConfig {
        n_items: 150,
        n_transactions: 4_000,
        avg_trans_len: 8.0,
        avg_pattern_len: 3.0,
        n_patterns: 60,
        ..QuestConfig::default()
    };
    let sc = ScenarioBuilder::new(quest).typed_overlap(400.0, 600.0, 5, 60.0)?;

    // Phase 1: the CFQ — cheap antecedents, same-type expensive consequents.
    let query = parse_query(
        "max(S.Price) <= 400 & min(T.Price) >= 600 & S.Type = T.Type",
    )?;
    let bound = bind_query(&query, &sc.catalog)?;
    let env = QueryEnv::new(&sc.db, &sc.catalog, 20);
    let outcome = Optimizer::default().evaluate(&bound, &env).unwrap();
    println!(
        "phase 1: {} constrained frequent pairs ({} S-sets, {} T-sets)",
        outcome.pair_result.count,
        outcome.s_sets.len(),
        outcome.t_sets.len()
    );

    // Phase 2: rules at three confidence levels.
    for min_confidence in [0.2, 0.5, 0.8] {
        let rules = form_rules(
            &outcome,
            &sc.db,
            &RuleConfig { min_support: 10, min_confidence },
        );
        println!("\nconfidence >= {min_confidence}: {} rules", rules.len());
        for r in rules.iter().take(5) {
            println!(
                "  {} => {}  (sup {}, conf {:.2}, lift {:.2})",
                r.antecedent, r.consequent, r.support, r.confidence, r.lift
            );
        }
    }
    Ok(())
}

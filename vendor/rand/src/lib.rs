//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the narrow slice of `rand` 0.8 it actually uses: [`Rng::gen`],
//! [`Rng::gen_range`] over integer/float ranges, [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality and deterministic, though the exact streams
//! differ from upstream `rand` (nothing in this workspace depends on
//! upstream's stream values, only on determinism per seed).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: everything is derived from [`RngCore::next_u64`].
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`f64` in `[0,1)`,
    /// uniform `bool`, uniform integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by Lemire's unbiased multiply-shift rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * n as u128) >> 64) as u64;
        let lo = x.wrapping_mul(n);
        if lo >= n || lo >= n.wrapping_neg() % n {
            return hi;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna), seeded via
    /// SplitMix64. Deterministic per seed; not upstream-stream-compatible.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    /// A small fast generator; here an alias for [`StdRng`].
    pub type SmallRng = StdRng;
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..7u32);
            assert!((3..7).contains(&x));
            let y = r.gen_range(1..=4usize);
            assert!((1..=4).contains(&y));
            let f = r.gen_range(0.5..2.0f64);
            assert!((0.5..2.0).contains(&f));
            let g: f64 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn uniformity_smoke() {
        let mut r = StdRng::seed_from_u64(99);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.gen_range(0..8usize)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket skew: {buckets:?}");
        }
    }
}

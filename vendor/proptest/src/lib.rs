//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, value strategies for ranges /
//! `prop::collection::vec` / `prop::sample::select` / simple string
//! patterns, `prop_map`, and the `prop_assert*` macros.
//!
//! Semantics versus upstream: cases are generated from a deterministic
//! seed (fixed base, one stream per case index), so failures reproduce
//! exactly on re-run. There is **no shrinking** — a failing case panics
//! with the case number; re-running reaches the same case. Override the
//! case count with the `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving the strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// A strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

/// String strategies are written as patterns (`&'static str`). Supported
/// subset: `.{m,n}` (random chars, length `m..=n`); any pattern without
/// regex metacharacters generates itself literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some(body) = self.strip_prefix(".{").and_then(|r| r.strip_suffix('}')) {
            if let Some((lo, hi)) = body.split_once(',') {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<u64>(), hi.trim().parse::<u64>()) {
                    let len = lo + rng.below(hi - lo + 1);
                    return (0..len).map(|_| random_char(rng)).collect();
                }
            }
        }
        if !self.bytes().any(|b| br"\.[]{}()*+?|^$".contains(&b)) {
            return (*self).to_string();
        }
        panic!("unsupported string pattern `{self}` (vendored proptest supports `.{{m,n}}` and literals)");
    }
}

/// A printable-biased random char, with occasional non-ASCII to keep the
/// parser honest about UTF-8 boundaries.
fn random_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('¿'),
        _ => (0x20 + rng.below(0x5F) as u8) as char,
    }
}

/// Strategy combinators and collections, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// The permitted sizes of a generated collection.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange { lo: *r.start(), hi: *r.end() }
            }
        }

        /// Strategy for `Vec`s with elements from `element` and a length
        /// drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64 + 1;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling from explicit value pools.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy drawing uniformly from `values`.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select needs at least one value");
            Select { values }
        }

        /// See [`select`].
        pub struct Select<T: Clone> {
            values: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.values[rng.below(self.values.len() as u64) as usize].clone()
            }
        }
    }
}

/// Runner configuration (subset of upstream's fields).
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256, max_shrink_iters: 0 }
        }
    }

    impl Config {
        /// Effective case count, honoring the `PROPTEST_CASES` env var.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::prop;
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{BoxedStrategy, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its precondition fails. (The vendored
/// runner treats a failed assumption as a trivially passing case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Defines property tests: each `fn` runs `config.cases` times with
/// deterministically seeded inputs drawn from its argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let cases = config.effective_cases();
            // One deterministic stream per (property, case): failures name
            // the case and reproduce on re-run.
            let base = $crate::__fnv(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases as u64 {
                let result = ::std::panic::catch_unwind(|| {
                    let mut rng = $crate::TestRng::new(
                        base ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                });
                if let Err(payload) = result {
                    eprintln!(
                        "proptest {}: case {}/{} failed (deterministic; re-run reproduces it)",
                        stringify!($name), case + 1, cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[doc(hidden)]
pub fn __fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs(x in 3u32..9, v in prop::collection::vec(0usize..5, 2..6)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn map_and_select(
            s in prop::sample::select(vec!["a", "b", "c"]),
            y in (0u32..10).prop_map(|n| n * 2),
        ) {
            prop_assert!(["a", "b", "c"].contains(&s));
            prop_assert_eq!(y % 2, 0);
        }

        #[test]
        fn string_pattern(input in ".{0,12}") {
            prop_assert!(input.chars().count() <= 12);
        }
    }

    #[test]
    fn determinism() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

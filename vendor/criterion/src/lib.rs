//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of criterion its benches use: `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::iter`, [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros (benches declare
//! `harness = false`). Instead of criterion's full statistical pipeline it
//! runs a warmup pass, times `sample_size` batches, and prints
//! median/min/max per iteration — enough to compare configurations on one
//! machine, which is all the repro harness needs.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup { _c: self, name, sample_size }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let n = self.sample_size;
        run_bench("", name, n, f);
        self
    }

    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(2);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Limits total measurement time. Accepted for compatibility; the
    /// vendored runner is bounded by `sample_size` alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs and times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&self.name, name, self.sample_size, f);
        self
    }

    /// Finishes the group (upstream flushes reports here; here a no-op).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, name: &str, samples: usize, mut f: F) {
    let label = if group.is_empty() { name.to_string() } else { format!("{group}/{name}") };
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    // Warmup sample, then `samples` timed samples; iteration count per
    // sample adapts so each sample takes a measurable amount of time.
    let mut iters = 1u64;
    for sample in 0..=samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let nanos = b.elapsed.as_nanos() as f64 / iters as f64;
        if sample == 0 {
            // Aim for ~25ms per sample, capped to keep total time sane.
            if nanos > 0.0 {
                iters = ((25_000_000.0 / nanos) as u64).clamp(1, 1_000_000);
            }
        } else {
            per_iter.push(nanos);
        }
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let med = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    eprintln!(
        "bench {label:<48} median {} (min {}, max {}) x{iters}",
        fmt_ns(med),
        fmt_ns(min),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times closures for one sample.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing the whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; a
            // sample-size-1 smoke mode is available via CFQ_BENCH_SMOKE=1.
            if ::std::env::var("CFQ_BENCH_SMOKE").ok().as_deref() == Some("1") {
                ::std::eprintln!("(smoke mode: sample_size floor applies)");
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("vendored");
        g.sample_size(3);
        let mut total = 0u64;
        g.bench_function("sum", |b| {
            b.iter(|| {
                total = total.wrapping_add((0..100u64).sum::<u64>());
            })
        });
        g.finish();
        assert!(total > 0);
    }
}

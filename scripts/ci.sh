#!/usr/bin/env bash
# Offline CI smoke: build, test, compile benches, and run the substrate
# repro at a small scale. Everything resolves from the vendored path
# dependencies — no network access required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q (root package: integration + facade tests)"
cargo test -q

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== cargo bench --no-run --workspace"
cargo bench --no-run --workspace

echo "== repro fig8a + substrate at smoke scale"
CFQ_SCALE="${CFQ_SCALE:-0.02}" cargo run -p cfq-bench --release --bin repro -- fig8a substrate

echo "== BENCH_substrate.json"
test -s BENCH_substrate.json
head -c 400 BENCH_substrate.json; echo
echo "ci: OK"

#!/usr/bin/env bash
# Offline CI smoke: build, test, compile benches, and run the substrate
# repro at a small scale. Everything resolves from the vendored path
# dependencies — no network access required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --workspace"
# --workspace matters: the root manifest is both a workspace and the
# facade package, so a bare `cargo build` would skip the member crates —
# including the `cfq` binary the serve/scheduler stages drive below.
cargo build --release --workspace

echo "== cargo test -q (root package: integration + facade tests)"
cargo test -q

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== cargo bench --no-run --workspace"
cargo bench --no-run --workspace

echo "== cargo clippy --workspace -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "WARNING: clippy not installed; skipping lint stage"
fi

echo "== cargo miri (undefined-behavior sanitizer substitute)"
if cargo miri --version >/dev/null 2>&1; then
  # Miri can't run FFI/threads-heavy tests; scope it to the pure data
  # structure crates: types, the constraint algebra, and the metrics
  # registry (all single-threaded unit tests).
  MIRI_CRATES="cfq-types cfq-constraints cfq-obs"
  echo "miri crates: $MIRI_CRATES"
  for c in $MIRI_CRATES; do
    cargo miri test -p "$c" -q
  done
else
  echo "WARNING: miri not installed (offline toolchain); skipping UB-check stage"
fi

echo "== chunk-sharded counter merge model (loom/tsan substitute)"
# Neither loom nor ThreadSanitizer is available offline; this test
# exhaustively enumerates chunk partitions and merge permutations of the
# parallel counter and checks bit-identical agreement with the sequential
# scan (see crates/mining/tests/merge_model.rs).
cargo test -q -p cfq-mining --test merge_model

echo "== cfq model --inject: exhaustive concurrency model check (writes BENCH_model.json)"
# Explores every interleaving of the engine's live protocols (epoch swap,
# single-flight mining, cache eviction, counter merge) and then re-runs
# each with seeded bugs enabled — the command exits nonzero if any clean
# protocol has a violation OR any injected bug goes uncaught.
./target/release/cfq model --inject --out BENCH_model.json
test -s BENCH_model.json
grep -q '"all_clean":true' BENCH_model.json \
  || { echo "model check recorded protocol violations"; exit 1; }
grep -q '"all_injections_caught":true' BENCH_model.json \
  || { echo "a seeded bug went uncaught (checker lost its teeth)"; exit 1; }
head -c 400 BENCH_model.json; echo

echo "== cfq lint --workspace: token-level invariant pass over the sources"
# unwrap/expect in request paths, undocumented unsafe, metric-name
# hygiene, unbound span guards, missing docs on public items.
./target/release/cfq lint --workspace

echo "== repro fig8a + substrate at smoke scale"
CFQ_SCALE="${CFQ_SCALE:-0.02}" cargo run -p cfq-bench --release --bin repro -- fig8a substrate

echo "== BENCH_substrate.json (smoke)"
test -s BENCH_substrate.json
head -c 400 BENCH_substrate.json; echo

echo "== repro substrate at paper scale (scale=1.0 — the committed BENCH_substrate.json)"
# The smoke run above keeps the full four-config matrix honest at 2%
# scale; this pass re-measures at the paper's 100k x 1000 so the
# committed artifact carries paper-scale backend speedups.
CFQ_SCALE="${CFQ_PAPER_SCALE:-1.0}" cargo run -p cfq-bench --release --bin repro -- substrate
test -s BENCH_substrate.json
if [ -z "${CFQ_PAPER_SCALE:-}" ]; then
  grep -q '"scale":1' BENCH_substrate.json \
    || { echo "BENCH_substrate.json is not the paper-scale run"; exit 1; }
fi

echo "== repro audit (static plan soundness, writes BENCH_audit.json)"
CFQ_SCALE="${CFQ_SCALE:-0.02}" cargo run -p cfq-bench --release --bin repro -- audit
test -s BENCH_audit.json
grep -q '"violations":0' BENCH_audit.json || { echo "audit recorded violations"; exit 1; }
head -c 400 BENCH_audit.json; echo

echo "== engine: concurrent-session smoke (cfq-engine)"
cargo test -q -p cfq-engine --test concurrency

echo "== repro engine at smoke scale (writes BENCH_engine.json)"
CFQ_SCALE="${CFQ_SCALE:-0.02}" cargo run -p cfq-bench --release --bin repro -- engine
test -s BENCH_engine.json
grep -q '"warm_db_scans":0' BENCH_engine.json || { echo "warm engine run scanned the database"; exit 1; }
head -c 400 BENCH_engine.json; echo

echo "== cfq serve: boot, drive fig8a twice, scrape metrics (writes BENCH_serve.json)"
SERVE_DIR="$(mktemp -d)"
SERVE_PID=""
REPLICA_PID=""
trap 'for p in "$SERVE_PID" "$REPLICA_PID"; do [ -n "$p" ] && kill "$p" 2>/dev/null || true; done; rm -rf "$SERVE_DIR"' EXIT
./target/release/cfq gen --items 60 --transactions 400 --avg-trans-len 8 --patterns 40 \
  --out "$SERVE_DIR/tx.txt"
./target/release/cfq gen-catalog --items 60 --num Price:uniform:0:1000 --cat Type:6 \
  --out "$SERVE_DIR/catalog.txt"
./target/release/cfq serve --data "$SERVE_DIR/tx.txt" --catalog "$SERVE_DIR/catalog.txt" \
  --listen 127.0.0.1:0 --metrics-addr 127.0.0.1:0 --slow-ms 0 \
  > "$SERVE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^metrics on ' "$SERVE_DIR/serve.log" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$SERVE_DIR/serve.log")"
MPORT="$(sed -n 's/^metrics on http:.*:\([0-9][0-9]*\)$/\1/p' "$SERVE_DIR/serve.log")"
if [ -z "$PORT" ] || [ -z "$MPORT" ]; then
  echo "serve did not come up:"; cat "$SERVE_DIR/serve.log"; exit 1
fi

# Drive the Fig. 8(a) query twice over one connection (bash /dev/tcp —
# no netcat in the image), then pull the in-band metrics dump.
FIG8A='max(S.Price) <= min(T.Price)'
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf ':support 0.1\n' >&3
read -r SUPPORT_REPLY <&3
echo "$SUPPORT_REPLY" | grep -q 'set to 0.1' || { echo ":support failed: $SUPPORT_REPLY"; exit 1; }
t0=$(date +%s%N)
printf '%s\n' "$FIG8A" >&3
read -r COLD_REPLY <&3
t1=$(date +%s%N)
printf '%s\n' "$FIG8A" >&3
read -r WARM_REPLY <&3
t2=$(date +%s%N)
# In-band metrics are envelope-only now (`:metrics` is gated behind
# --legacy-protocol): ask through the v1 envelope, then pull the full
# Prometheus text from the HTTP scrape listener for parsing.
printf '{"v":1,"cmd":"metrics"}\n:quit\n' >&3
METRICS_ENVELOPE="$(head -1 <&3)"
exec 3<&- 3>&-
COLD_MS=$(( (t1 - t0) / 1000000 ))
WARM_MS=$(( (t2 - t1) / 1000000 ))

echo "  cold: $COLD_REPLY"
echo "  warm: $WARM_REPLY"
echo "$COLD_REPLY" | grep -q 'valid pairs' || { echo "cold fig8a query failed"; exit 1; }
echo "$WARM_REPLY" | grep -q '| 0 db scans |' \
  || { echo "warm fig8a run was not answered from the cache"; exit 1; }
echo "$METRICS_ENVELOPE" | grep -q '"v":1' \
  || { echo "envelope metrics reply malformed: $METRICS_ENVELOPE"; exit 1; }
echo "$METRICS_ENVELOPE" | grep -q 'cfq_queries_total' \
  || { echo "envelope metrics missing counters: $METRICS_ENVELOPE"; exit 1; }

exec 4<>"/dev/tcp/127.0.0.1/$MPORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&4
SCRAPE="$(cat <&4)"
exec 4<&- 4>&-
echo "$SCRAPE" | grep -q '200 OK' || { echo "metrics listener did not answer"; exit 1; }
echo "$SCRAPE" | grep -q '^cfq_queries_total 2$' \
  || { echo "metrics disagree: expected cfq_queries_total 2"; echo "$SCRAPE"; exit 1; }
LATTICE_HITS="$(echo "$SCRAPE" | sed -n 's/^cfq_lattice_hits_total \([0-9][0-9]*\)$/\1/p')"
[ "${LATTICE_HITS:-0}" -ge 1 ] \
  || { echo "metrics disagree: expected cfq_lattice_hits_total >= 1"; echo "$SCRAPE"; exit 1; }

# SIGINT must drain and exit cleanly, not abort.
kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { echo "serve exited non-zero on SIGINT"; cat "$SERVE_DIR/serve.log"; exit 1; }
SERVE_PID=""
grep -q 'shut down cleanly' "$SERVE_DIR/serve.log" \
  || { echo "serve did not shut down cleanly"; cat "$SERVE_DIR/serve.log"; exit 1; }

P50="$(echo "$SCRAPE" | sed -n 's/^cfq_query_seconds_p50 \(.*\)$/\1/p')"
P95="$(echo "$SCRAPE" | sed -n 's/^cfq_query_seconds_p95 \(.*\)$/\1/p')"
P99="$(echo "$SCRAPE" | sed -n 's/^cfq_query_seconds_p99 \(.*\)$/\1/p')"
printf '{"bench":"serve","query":"%s","cold_ms":%s,"warm_ms":%s,"p50_s":%s,"p95_s":%s,"p99_s":%s,"queries_total":2,"lattice_hits":%s}\n' \
  "$FIG8A" "$COLD_MS" "$WARM_MS" "${P50:-0}" "${P95:-0}" "${P99:-0}" "$LATTICE_HITS" \
  > BENCH_serve.json
test -s BENCH_serve.json
head -c 400 BENCH_serve.json; echo

echo "== scheduler: parallel clients coalesce onto one mining pass (writes BENCH_scheduler.json)"
# A wide batch window so every concurrent cold client lands in the
# leader's single-flight group; the same data files as the serve stage.
./target/release/cfq serve --data "$SERVE_DIR/tx.txt" --catalog "$SERVE_DIR/catalog.txt" \
  --listen 127.0.0.1:0 --metrics-addr 127.0.0.1:0 --batch-window-ms 200 \
  > "$SERVE_DIR/sched.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^metrics on ' "$SERVE_DIR/sched.log" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$SERVE_DIR/sched.log")"
MPORT="$(sed -n 's/^metrics on http:.*:\([0-9][0-9]*\)$/\1/p' "$SERVE_DIR/sched.log")"
if [ -z "$PORT" ] || [ -z "$MPORT" ]; then
  echo "scheduler serve did not come up:"; cat "$SERVE_DIR/sched.log"; exit 1
fi

# Four parallel clients: two identical at 10% support, two overlapping at
# 15%. All four speak the v1 envelope, so each reply is one JSON line.
sched_client() {
  exec 5<>"/dev/tcp/127.0.0.1/$PORT"
  printf '{"v":1,"cmd":"query","req":{"query":"max(S.Price) <= min(T.Price)","support":{"frac":%s}}}\n:quit\n' "$1" >&5
  cat <&5 > "$2"
  exec 5<&- 5>&-
}
CLIENT_PIDS=""
i=0
for frac in 0.1 0.1 0.15 0.15; do
  i=$((i + 1))
  sched_client "$frac" "$SERVE_DIR/client$i.json" &
  CLIENT_PIDS="$CLIENT_PIDS $!"
done
for pid in $CLIENT_PIDS; do
  wait "$pid" || { echo "scheduler client $pid failed"; exit 1; }
done
for f in "$SERVE_DIR"/client*.json; do
  grep -q '"pair_count"' "$f" || { echo "bad :json reply in $f:"; cat "$f"; exit 1; }
  if grep -q '"error"' "$f"; then echo "client errored in $f:"; cat "$f"; exit 1; fi
done

exec 4<>"/dev/tcp/127.0.0.1/$MPORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&4
SCHED_SCRAPE="$(cat <&4)"
exec 4<&- 4>&-

MINING_PASSES="$(echo "$SCHED_SCRAPE" | sed -n 's/^cfq_mining_passes_total \([0-9][0-9]*\)$/\1/p')"
COALESCED="$(echo "$SCHED_SCRAPE" | sed -n 's/^cfq_scheduler_coalesced_total \([0-9][0-9]*\)$/\1/p')"
BATCHED="$(echo "$SCHED_SCRAPE" | sed -n 's/^cfq_scheduler_batched_total \([0-9][0-9]*\)$/\1/p')"
WAIT_P95="$(echo "$SCHED_SCRAPE" | sed -n 's/^cfq_scheduler_wait_seconds_p95 \(.*\)$/\1/p')"
echo "  mining passes: ${MINING_PASSES:-?}, coalesced: ${COALESCED:-?}, batched: ${BATCHED:-?}"
echo "$SCHED_SCRAPE" | grep -q '^cfq_queries_total 4$' \
  || { echo "expected 4 queries answered"; echo "$SCHED_SCRAPE"; exit 1; }
# Four cold clients over one universe: one single-flight group mines for
# everyone (a straggler that misses the window is a cache hit, and a
# frozen higher-support group can force at most one re-mine) — the pass
# count must land in 1..=2, never 4.
[ -n "$MINING_PASSES" ] && [ "$MINING_PASSES" -ge 1 ] && [ "$MINING_PASSES" -le 2 ] \
  || { echo "expected 1-2 mining passes, got ${MINING_PASSES:-none}"; echo "$SCHED_SCRAPE"; exit 1; }

kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { echo "scheduler serve exited non-zero on SIGINT"; cat "$SERVE_DIR/sched.log"; exit 1; }
SERVE_PID=""

printf '{"bench":"scheduler","clients":4,"mining_passes":%s,"coalesced":%s,"batched":%s,"wait_p95_s":%s}\n' \
  "${MINING_PASSES:-0}" "${COALESCED:-0}" "${BATCHED:-0}" "${WAIT_P95:-0}" \
  > BENCH_scheduler.json
test -s BENCH_scheduler.json
head -c 400 BENCH_scheduler.json; echo

echo "== cfq loadgen: adversarial scenarios over the v1 envelope (writes BENCH_loadgen.json)"
# The generator must be byte-reproducible in the seed before anything is
# replayed: emit the same workload twice and compare.
./target/release/cfq gen --items 60 --transactions 20 --avg-trans-len 8 --patterns 40 \
  --out "$SERVE_DIR/delta-loadgen.txt"
LG_ARGS="--seed 7 --scenario all --items 60 --append-file $SERVE_DIR/delta-loadgen.txt"
# shellcheck disable=SC2086
./target/release/cfq loadgen --emit $LG_ARGS > "$SERVE_DIR/emit-a.txt"
# shellcheck disable=SC2086
./target/release/cfq loadgen --emit $LG_ARGS > "$SERVE_DIR/emit-b.txt"
cmp "$SERVE_DIR/emit-a.txt" "$SERVE_DIR/emit-b.txt" \
  || { echo "loadgen --emit is not deterministic in the seed"; exit 1; }
test -s "$SERVE_DIR/emit-a.txt"

# A deliberately small admission gate: overload_burst's 10 clients must
# overrun 2 in flight + 2 queued, while the ≤4-client scenarios fit it
# exactly; the wide batch window keeps cold leaders holding their slots
# long enough for the pile-up (and the batching) to be deterministic.
./target/release/cfq serve --data "$SERVE_DIR/tx.txt" --catalog "$SERVE_DIR/catalog.txt" \
  --listen 127.0.0.1:0 --max-inflight 2 --queue-depth 2 --batch-window-ms 50 \
  > "$SERVE_DIR/loadgen.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^listening on ' "$SERVE_DIR/loadgen.log" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$SERVE_DIR/loadgen.log")"
[ -n "$PORT" ] || { echo "loadgen serve did not come up:"; cat "$SERVE_DIR/loadgen.log"; exit 1; }

# The loadgen exits non-zero on its own gates: protocol errors, missing
# overloads/batching, unexpected request errors, or a scenario with no
# successful reply.
# shellcheck disable=SC2086
./target/release/cfq loadgen --addr "127.0.0.1:$PORT" $LG_ARGS --out BENCH_loadgen.json \
  || { echo "loadgen gates failed"; cat "$SERVE_DIR/loadgen.log"; exit 1; }
test -s BENCH_loadgen.json
grep -q '"bench":"loadgen"' BENCH_loadgen.json || { echo "bad BENCH_loadgen.json"; exit 1; }
[ "$(grep -o '"name":"' BENCH_loadgen.json | wc -l)" -eq 6 ] \
  || { echo "BENCH_loadgen.json does not cover all 6 scenarios"; exit 1; }
if grep -Eq '"protocol_errors":[1-9]' BENCH_loadgen.json; then
  echo "protocol errors leaked into BENCH_loadgen.json"; exit 1
fi
kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { echo "loadgen serve exited non-zero on SIGINT"; cat "$SERVE_DIR/loadgen.log"; exit 1; }
SERVE_PID=""
head -c 400 BENCH_loadgen.json; echo

echo "== counting backends: fig8a/fig8b answers agree across horizontal|tidset|bitmap|auto"
# Same generated data as the serve stages. The pair/set counts printed
# before the first `|` are timing-free, so byte-equality means the four
# backends mined bit-identical lattices end to end.
FIG8B='max(S.Price) <= 400 & min(T.Price) >= 600 & S.Type = T.Type'
for Q in "$FIG8A" "$FIG8B"; do
  REF=""
  for B in horizontal tidset bitmap auto; do
    # Capture everything, then keep the first line's timing-free prefix:
    # a `| head -1` here would close the pipe under the CLI and trip its
    # broken-pipe print panic with pipefail on.
    FULL="$(./target/release/cfq query --data "$SERVE_DIR/tx.txt" --catalog "$SERVE_DIR/catalog.txt" \
      --min-support 0.1 --backend "$B" "$Q")"
    ANSWER="$(printf '%s\n' "$FULL" | sed -n '1s/|.*$//p')"
    if [ -z "$REF" ]; then REF="$ANSWER"; fi
    [ "$ANSWER" = "$REF" ] \
      || { echo "backend $B disagrees on \`$Q\`: got '$ANSWER', want '$REF'"; exit 1; }
  done
  echo "  \`$Q\` -> ${REF}(identical under all four backends)"
done

echo "== counting backends: cfq_mining_backend_* metrics surface at scrape"
./target/release/cfq serve --data "$SERVE_DIR/tx.txt" --catalog "$SERVE_DIR/catalog.txt" \
  --listen 127.0.0.1:0 --metrics-addr 127.0.0.1:0 \
  > "$SERVE_DIR/backend.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^metrics on ' "$SERVE_DIR/backend.log" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$SERVE_DIR/backend.log")"
MPORT="$(sed -n 's/^metrics on http:.*:\([0-9][0-9]*\)$/\1/p' "$SERVE_DIR/backend.log")"
if [ -z "$PORT" ] || [ -z "$MPORT" ]; then
  echo "backend serve did not come up:"; cat "$SERVE_DIR/backend.log"; exit 1
fi
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf '{"v":1,"cmd":"query","req":{"query":"max(S.Price) <= min(T.Price)","support":{"frac":0.1},"backend":"bitmap"}}\n:quit\n' >&3
read -r BK_REPLY <&3
exec 3<&- 3>&-
exec 4<>"/dev/tcp/127.0.0.1/$MPORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&4
BK_SCRAPE="$(cat <&4)"
exec 4<&- 4>&-
echo "$BK_REPLY" | grep -q '"pair_count"' || { echo "bitmap envelope query failed: $BK_REPLY"; exit 1; }
for M in \
  'cfq_mining_backend_selected_total{backend="bitmap"}' \
  'cfq_mining_backend_level_micros_total{backend="bitmap"}' \
  'cfq_mining_backend_words_anded_total'; do
  echo "$BK_SCRAPE" | grep -qF "$M" \
    || { echo "scrape missing $M"; echo "$BK_SCRAPE"; exit 1; }
done
kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { echo "backend serve exited non-zero on SIGINT"; cat "$SERVE_DIR/backend.log"; exit 1; }
SERVE_PID=""

echo "== sharded mining: --shards answers bit-identical, cfq_mining_shard_* metrics surface"
# Same timing-free prefix comparison as the backend stage: byte-equality
# of the pair/set counts means sharded counting merged to the exact
# lattices the unsharded run mined.
for Q in "$FIG8A" "$FIG8B"; do
  REF=""
  for N in 1 4; do
    FULL="$(./target/release/cfq query --data "$SERVE_DIR/tx.txt" --catalog "$SERVE_DIR/catalog.txt" \
      --min-support 0.1 --shards "$N" "$Q")"
    ANSWER="$(printf '%s\n' "$FULL" | sed -n '1s/|.*$//p')"
    if [ -z "$REF" ]; then REF="$ANSWER"; fi
    [ "$ANSWER" = "$REF" ] \
      || { echo "--shards $N disagrees on \`$Q\`: got '$ANSWER', want '$REF'"; exit 1; }
  done
  echo "  \`$Q\` -> ${REF}(identical under --shards 1 and 4)"
done

./target/release/cfq serve --data "$SERVE_DIR/tx.txt" --catalog "$SERVE_DIR/catalog.txt" \
  --listen 127.0.0.1:0 --metrics-addr 127.0.0.1:0 \
  > "$SERVE_DIR/shard.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^metrics on ' "$SERVE_DIR/shard.log" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$SERVE_DIR/shard.log")"
MPORT="$(sed -n 's/^metrics on http:.*:\([0-9][0-9]*\)$/\1/p' "$SERVE_DIR/shard.log")"
if [ -z "$PORT" ] || [ -z "$MPORT" ]; then
  echo "shard serve did not come up:"; cat "$SERVE_DIR/shard.log"; exit 1
fi
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf '{"v":1,"cmd":"query","req":{"query":"max(S.Price) <= min(T.Price)","support":{"frac":0.1},"shards":2}}\n:quit\n' >&3
read -r SH_REPLY <&3
exec 3<&- 3>&-
exec 4<>"/dev/tcp/127.0.0.1/$MPORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&4
SH_SCRAPE="$(cat <&4)"
exec 4<&- 4>&-
echo "$SH_REPLY" | grep -q '"pair_count"' || { echo "sharded envelope query failed: $SH_REPLY"; exit 1; }
for M in \
  'cfq_mining_shard_levels_total{shards="2"}' \
  'cfq_mining_shard_merges_total'; do
  echo "$SH_SCRAPE" | grep -qF "$M" \
    || { echo "scrape missing $M"; echo "$SH_SCRAPE"; exit 1; }
done
kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { echo "shard serve exited non-zero on SIGINT"; cat "$SERVE_DIR/shard.log"; exit 1; }
SERVE_PID=""

echo "== durability: WAL + snapshot survive kill -9, restart serves warm (extends BENCH_serve.json)"
WAL_DIR="$SERVE_DIR/wal"
# A bigger database than the serve stage, and a selective query: cold
# mining scans 20k rows level-by-level while the answer is only a few
# hundred pairs, so the warm-restart collapse is mining time, not noise.
./target/release/cfq gen --items 60 --transactions 20000 --avg-trans-len 8 --patterns 40 \
  --out "$SERVE_DIR/tx-durable.txt"
./target/release/cfq gen --items 60 --transactions 20 --avg-trans-len 8 --patterns 40 \
  --out "$SERVE_DIR/delta.txt"
DUR_Q='count(S) >= 4 & count(T) >= 4 & max(S.Price) <= min(T.Price)'
./target/release/cfq serve --data "$SERVE_DIR/tx-durable.txt" --catalog "$SERVE_DIR/catalog.txt" \
  --wal-dir "$WAL_DIR" --snapshot-every 0 --listen 127.0.0.1:0 \
  > "$SERVE_DIR/durable.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^listening on ' "$SERVE_DIR/durable.log" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$SERVE_DIR/durable.log")"
[ -n "$PORT" ] || { echo "durable serve did not come up:"; cat "$SERVE_DIR/durable.log"; exit 1; }
grep -q '^engine up (durable)' "$SERVE_DIR/durable.log" \
  || { echo "durable serve not in durable mode"; cat "$SERVE_DIR/durable.log"; exit 1; }

# Cold query, an append, a manual snapshot, then a second append that
# lives only on the WAL — the state a crash must not lose.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf ':support 0.05\n' >&3
read -r _ <&3
t0=$(date +%s%N)
printf '%s\n' "$DUR_Q" >&3
read -r DUR_COLD <&3
t1=$(date +%s%N)
RESTART_COLD_MS=$(( (t1 - t0) / 1000000 ))
echo "$DUR_COLD" | grep -q 'valid pairs' || { echo "durable cold query failed: $DUR_COLD"; exit 1; }
printf ':append %s\n' "$SERVE_DIR/delta.txt" >&3
read -r APPEND1 <&3
echo "$APPEND1" | grep -q 'now epoch 1' || { echo "first append failed: $APPEND1"; exit 1; }
printf ':snapshot\n' >&3
read -r SNAP_REPLY <&3
echo "$SNAP_REPLY" | grep -q 'snapshot written: epoch 1' \
  || { echo "manual snapshot failed: $SNAP_REPLY"; exit 1; }
printf ':append %s\n' "$SERVE_DIR/delta.txt" >&3
read -r APPEND2 <&3
echo "$APPEND2" | grep -q 'now epoch 2' || { echo "acked append failed: $APPEND2"; exit 1; }
exec 3<&- 3>&-

# The ack above means "fsynced": kill -9 and reboot from the directory.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
./target/release/cfq serve --data "$SERVE_DIR/tx-durable.txt" --catalog "$SERVE_DIR/catalog.txt" \
  --wal-dir "$WAL_DIR" --snapshot-every 0 --listen 127.0.0.1:0 \
  > "$SERVE_DIR/restart.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^listening on ' "$SERVE_DIR/restart.log" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$SERVE_DIR/restart.log")"
[ -n "$PORT" ] || { echo "restarted serve did not come up:"; cat "$SERVE_DIR/restart.log"; exit 1; }
grep -q 'epoch 2' "$SERVE_DIR/restart.log" \
  || { echo "restart lost the acked append (want epoch 2):"; cat "$SERVE_DIR/restart.log"; exit 1; }
grep -q 'recovered from snapshot epoch 1 + 1 WAL records' "$SERVE_DIR/restart.log" \
  || { echo "restart did not recover snapshot+WAL:"; cat "$SERVE_DIR/restart.log"; exit 1; }

exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf ':support 0.05\n' >&3
read -r _ <&3
t2=$(date +%s%N)
printf '%s\n' "$DUR_Q" >&3
read -r DUR_WARM <&3
t3=$(date +%s%N)
RESTART_WARM_MS=$(( (t3 - t2) / 1000000 ))
echo "$DUR_WARM" | grep -q 'epoch 2' || { echo "restart answered at the wrong epoch: $DUR_WARM"; exit 1; }
echo "$DUR_WARM" | grep -q '| 0 db scans |' \
  || { echo "restart did not serve from the recovered cache: $DUR_WARM"; exit 1; }
printf ':wal-status\n:quit\n' >&3
WAL_STATUS="$(cat <&3)"
exec 3<&- 3>&-
echo "$WAL_STATUS" | grep -q '1 replayed' \
  || { echo "wal-status missing replay count: $WAL_STATUS"; exit 1; }
echo "  restart cold: ${RESTART_COLD_MS}ms, warm: ${RESTART_WARM_MS}ms ($WAL_STATUS)"
[ "$RESTART_WARM_MS" -le "$RESTART_COLD_MS" ] \
  || { echo "warm restart query (${RESTART_WARM_MS}ms) not faster than cold (${RESTART_COLD_MS}ms)"; exit 1; }

printf '{"bench":"serve","query":"%s","cold_ms":%s,"warm_ms":%s,"p50_s":%s,"p95_s":%s,"p99_s":%s,"queries_total":2,"lattice_hits":%s,"restart_cold_ms":%s,"restart_warm_ms":%s}\n' \
  "$FIG8A" "$COLD_MS" "$WARM_MS" "${P50:-0}" "${P95:-0}" "${P99:-0}" "$LATTICE_HITS" \
  "$RESTART_COLD_MS" "$RESTART_WARM_MS" > BENCH_serve.json
head -c 400 BENCH_serve.json; echo

echo "== replica: --follow tails the primary's WAL and answers bit-equal over the v1 envelope"
./target/release/cfq serve --data "$SERVE_DIR/tx-durable.txt" --catalog "$SERVE_DIR/catalog.txt" \
  --follow "$WAL_DIR" --listen 127.0.0.1:0 \
  > "$SERVE_DIR/replica.log" 2>&1 &
REPLICA_PID=$!
for _ in $(seq 1 100); do
  grep -q '^listening on ' "$SERVE_DIR/replica.log" 2>/dev/null && break
  sleep 0.1
done
RPORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$SERVE_DIR/replica.log")"
[ -n "$RPORT" ] || { echo "replica did not come up:"; cat "$SERVE_DIR/replica.log"; exit 1; }
grep -q '^engine up (replica)' "$SERVE_DIR/replica.log" \
  || { echo "replica not in follow mode"; cat "$SERVE_DIR/replica.log"; exit 1; }

ENVELOPE_Q='{"v":1,"cmd":"query","req":{"query":"count(S) >= 4 & count(T) >= 4 & max(S.Price) <= min(T.Price)","support":{"frac":0.05}}}'
ask() { # $1 = port; envelope query twice, keep the second reply so both
        # sides answer from a warmed plan cache; wait_us zeroed (timing)
  exec 6<>"/dev/tcp/127.0.0.1/$1"
  printf '%s\n%s\n:quit\n' "$ENVELOPE_Q" "$ENVELOPE_Q" >&6
  head -2 <&6 | tail -1 | sed 's/"wait_us":[0-9]*/"wait_us":0/'
  exec 6<&- 6>&-
}
P_REPLY="$(ask "$PORT")"
R_REPLY="$(ask "$RPORT")"
echo "$P_REPLY" | grep -q '"pair_count"' || { echo "primary envelope query failed: $P_REPLY"; exit 1; }
[ "$P_REPLY" = "$R_REPLY" ] \
  || { echo "replica answer diverges:"; echo "  primary: $P_REPLY"; echo "  replica: $R_REPLY"; exit 1; }

# The primary moves on; the replica tails the WAL and converges.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf ':append %s\n:quit\n' "$SERVE_DIR/delta.txt" >&3
APPEND3="$(head -1 <&3)"
exec 3<&- 3>&-
echo "$APPEND3" | grep -q 'now epoch 3' || { echo "primary append failed: $APPEND3"; exit 1; }
CAUGHT_UP=""
for _ in $(seq 1 100); do
  exec 6<>"/dev/tcp/127.0.0.1/$RPORT"
  printf '{"v":1,"cmd":"status"}\n:quit\n' >&6
  R_STATUS="$(head -1 <&6)"
  exec 6<&- 6>&-
  if echo "$R_STATUS" | grep -q '"epoch":3'; then CAUGHT_UP=1; break; fi
  sleep 0.1
done
[ -n "$CAUGHT_UP" ] || { echo "replica never reached epoch 3: $R_STATUS"; exit 1; }
P_REPLY="$(ask "$PORT")"
R_REPLY="$(ask "$RPORT")"
[ "$P_REPLY" = "$R_REPLY" ] \
  || { echo "replica diverges after tailing:"; echo "  primary: $P_REPLY"; echo "  replica: $R_REPLY"; exit 1; }

# Writes go to the primary, never the replica.
exec 6<>"/dev/tcp/127.0.0.1/$RPORT"
printf ':append %s\n:quit\n' "$SERVE_DIR/delta.txt" >&6
R_APPEND="$(head -1 <&6)"
exec 6<&- 6>&-
echo "$R_APPEND" | grep -q 'read-only replica' \
  || { echo "replica accepted a write: $R_APPEND"; exit 1; }

kill -INT "$REPLICA_PID"
wait "$REPLICA_PID" || { echo "replica exited non-zero on SIGINT"; cat "$SERVE_DIR/replica.log"; exit 1; }
REPLICA_PID=""
kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { echo "durable serve exited non-zero on SIGINT"; cat "$SERVE_DIR/restart.log"; exit 1; }
SERVE_PID=""
echo "  replica bit-equal at epochs 2 and 3; writes correctly rejected"

echo "== BENCH_substrate.json carries the backend comparison"
grep -q '"config":"bitmap"' BENCH_substrate.json \
  || { echo "BENCH_substrate.json missing bitmap config"; exit 1; }
grep -q '"config":"auto"' BENCH_substrate.json \
  || { echo "BENCH_substrate.json missing auto config"; exit 1; }
grep -q '"speedup_vs_trimmed_parallel"' BENCH_substrate.json \
  || { echo "BENCH_substrate.json missing speedup_vs_trimmed_parallel"; exit 1; }

echo "== BENCH_substrate.json carries the shard-speedup curve"
grep -q '"shard_curve":\[{"workload":"shard_curve"' BENCH_substrate.json \
  || { echo "BENCH_substrate.json missing the shard curve"; exit 1; }
grep -q '"speedup_vs_shards1"' BENCH_substrate.json \
  || { echo "BENCH_substrate.json missing speedup_vs_shards1"; exit 1; }
grep -q '"shards":8' BENCH_substrate.json \
  || { echo "BENCH_substrate.json shard curve missing the shards=8 point"; exit 1; }

echo "== cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "ci: OK"

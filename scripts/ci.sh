#!/usr/bin/env bash
# Offline CI smoke: build, test, compile benches, and run the substrate
# repro at a small scale. Everything resolves from the vendored path
# dependencies — no network access required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q (root package: integration + facade tests)"
cargo test -q

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== cargo bench --no-run --workspace"
cargo bench --no-run --workspace

echo "== cargo clippy --workspace -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "WARNING: clippy not installed; skipping lint stage"
fi

echo "== cargo miri (undefined-behavior sanitizer substitute)"
if cargo miri --version >/dev/null 2>&1; then
  # Miri can't run FFI/threads-heavy tests; scope it to the data structures.
  cargo miri test -p cfq-types -q
else
  echo "WARNING: miri not installed (offline toolchain); skipping UB-check stage"
fi

echo "== chunk-sharded counter merge model (loom/tsan substitute)"
# Neither loom nor ThreadSanitizer is available offline; this test
# exhaustively enumerates chunk partitions and merge permutations of the
# parallel counter and checks bit-identical agreement with the sequential
# scan (see crates/mining/tests/merge_model.rs).
cargo test -q -p cfq-mining --test merge_model

echo "== repro fig8a + substrate at smoke scale"
CFQ_SCALE="${CFQ_SCALE:-0.02}" cargo run -p cfq-bench --release --bin repro -- fig8a substrate

echo "== BENCH_substrate.json"
test -s BENCH_substrate.json
head -c 400 BENCH_substrate.json; echo

echo "== repro audit (static plan soundness, writes BENCH_audit.json)"
CFQ_SCALE="${CFQ_SCALE:-0.02}" cargo run -p cfq-bench --release --bin repro -- audit
test -s BENCH_audit.json
grep -q '"violations":0' BENCH_audit.json || { echo "audit recorded violations"; exit 1; }
head -c 400 BENCH_audit.json; echo

echo "== engine: concurrent-session smoke (cfq-engine)"
cargo test -q -p cfq-engine --test concurrency

echo "== repro engine at smoke scale (writes BENCH_engine.json)"
CFQ_SCALE="${CFQ_SCALE:-0.02}" cargo run -p cfq-bench --release --bin repro -- engine
test -s BENCH_engine.json
grep -q '"warm_db_scans":0' BENCH_engine.json || { echo "warm engine run scanned the database"; exit 1; }
head -c 400 BENCH_engine.json; echo

echo "== cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "ci: OK"

#![warn(missing_docs)]

//! # cfq — Constrained Frequent Set Queries with 2-variable Constraints
//!
//! A complete, from-scratch implementation of *Optimization of Constrained
//! Frequent Set Queries with 2-variable Constraints* (Lakshmanan, Ng, Han,
//! Pang — SIGMOD 1999), including every substrate the paper depends on:
//!
//! * the CFQ constraint language with a query parser
//!   (`"sum(S.Price) <= 100 & S.Type = {Snacks} & S.Type disjoint T.Type"`),
//! * constraint classification: 1-var anti-monotonicity / succinctness and
//!   the paper's Figure 1 (2-var anti-monotonicity / quasi-succinctness),
//! * the CAP algorithm of the companion paper \[15\] (all four pushing
//!   strategies),
//! * quasi-succinct reduction (Figures 2–3), weaker-constraint induction
//!   (Figure 4), and `J^k_max` iterative pruning (Figures 5–6),
//! * the Figure 7 query optimizer with dovetailed two-lattice execution
//!   and EXPLAIN output, plus the Apriori⁺ baseline,
//! * a long-lived session [`Engine`](cfq_engine::Engine) that caches mined
//!   lattices and plans across queries and keeps them fresh under appends
//!   with FUP incremental maintenance,
//! * the IBM Quest synthetic data generator used by the paper's §7
//!   evaluation, and scenario builders for each experiment.
//!
//! ## Quickstart
//!
//! ```
//! use cfq::prelude::*;
//!
//! // A small market-basket database over 4 items…
//! let db = TransactionDb::from_u32(
//!     4,
//!     &[&[0, 1, 2], &[0, 1], &[1, 2, 3], &[0, 2, 3], &[0, 1, 2, 3]],
//! );
//! // …with the paper's itemInfo(Item, Type, Price) auxiliary relation.
//! let mut cat = CatalogBuilder::new(4);
//! cat.num_attr("Price", vec![10.0, 25.0, 80.0, 120.0]).unwrap();
//! cat.cat_attr("Type", &["Snacks", "Snacks", "Beers", "Beers"]).unwrap();
//!
//! // The engine owns the database and catalog; sessions run queries
//! // against it and share its lattice/plan caches.
//! let engine = Engine::new(db, cat.build()).unwrap();
//! let session = engine.session();
//!
//! // "Cheap snack sets that lead to pricier beer sets."
//! const Q: &str = "S.Type = {Snacks} & T.Type = {Beers} & max(S.Price) <= min(T.Price)";
//! let cold = session.query(Q).min_support(2).run().unwrap();
//! assert!(cold.pair_count() > 0);
//! for &(si, ti) in &cold.outcome.pair_result.pairs {
//!     let (s, _) = &cold.outcome.s_sets[si as usize];
//!     let (t, _) = &cold.outcome.t_sets[ti as usize];
//!     println!("{s} => {t}");
//! }
//!
//! // Asking again answers from the cache without touching the database.
//! let warm = session.query(Q).min_support(2).run().unwrap();
//! assert_eq!(warm.outcome.db_scans, 0);
//! assert_eq!(warm.outcome.pair_result.pairs, cold.outcome.pair_result.pairs);
//! ```

pub use cfq_audit as audit;
pub use cfq_constraints as constraints;
pub use cfq_core as core;
pub use cfq_datagen as datagen;
pub use cfq_engine as engine;
pub use cfq_mining as mining;
pub use cfq_types as types;

/// The most common imports in one place.
pub mod prelude {
    pub use cfq_audit::{AuditReport, Auditor, Diagnostic, Severity};
    pub use cfq_constraints::{
        bind_dnf, bind_query, classify_one, classify_two, eval_one, eval_two, parse_dnf,
        parse_query, Agg, BoundQuery,
        CmpOp, OneVar, SetRel, SuccinctForm, TwoVar, Var,
    };
    pub use cfq_core::{
        apriori_plus, count_pairs, form_pairs, form_rules, CfqPlan, ExecutionOutcome,
        LatticeConfig, LatticeRun, LatticeSource, Optimizer, OutcomeProvenance, QueryEnv, Rule,
        RuleConfig,
    };
    // `cfq_core::Strategy` (the Optimizer alias) stays out of the
    // prelude: it would shadow-collide with proptest's `Strategy` trait
    // under double glob imports. Reach it as `cfq::core::Strategy`.
    pub use cfq_datagen::{generate_transactions, QuestConfig, Scenario, ScenarioBuilder};
    pub use cfq_engine::{
        CacheStats, DurabilityStats, Engine, EngineConfig, EngineConfigBuilder, EpochInfo,
        QueryBuilder, QueryOutcome, QueryRequest, QueryResponse, SchedulerStats, Session,
        SessionPool, SnapshotInfo, SupportSpec,
    };
    pub use cfq_mining::{
        apriori, fp_growth, partition_mine, AprioriConfig, CountingBackend, FpGrowthConfig,
        FrequentSets, PartitionConfig, ShardedRun, TrieCounter, WorkStats,
    };
    pub use cfq_types::{
        Catalog, CatalogBuilder, CfqError, ItemId, Itemset, Result, TransactionDb,
    };
}

//! The transaction database `trans(TID, Itemset)` and derived-domain
//! projections.

use crate::catalog::{AttrId, Catalog};
use crate::item::ItemId;
use crate::itemset::Itemset;
use crate::{CfqError, Result};

/// A horizontal transaction database in flat CSR layout.
///
/// All items live in one contiguous arena; row `i` is the slice
/// `items[offsets[i] .. offsets[i + 1]]`. Each transaction is a sorted,
/// duplicate-free item list. TIDs are implicit (the row index), matching
/// the paper's `trans(TID, Itemset)`.
///
/// The CSR layout makes a full scan a single linear sweep of memory and
/// lets parallel counters shard the database by slicing offsets instead
/// of cloning rows (see [`TransactionDb::chunks`]).
///
/// ```
/// use cfq_types::TransactionDb;
/// let db = TransactionDb::from_u32(4, &[&[0, 1], &[1, 2, 3], &[1]]);
/// assert_eq!(db.len(), 3);
/// assert_eq!(db.support(&[1u32].into()), 3);
/// assert_eq!(db.support(&[1u32, 2].into()), 1);
/// ```
#[derive(Clone)]
pub struct TransactionDb {
    /// Concatenated sorted rows.
    items: Vec<ItemId>,
    /// Row boundaries: `offsets.len() == len() + 1`, `offsets[0] == 0`.
    offsets: Vec<u32>,
    n_items: usize,
}

impl Default for TransactionDb {
    fn default() -> Self {
        TransactionDb { items: Vec::new(), offsets: vec![0], n_items: 0 }
    }
}

impl TransactionDb {
    /// Builds a database from raw transactions; each row is sorted and
    /// deduplicated. `n_items` bounds the item universe (ids must be below).
    pub fn new(n_items: usize, transactions: Vec<Vec<ItemId>>) -> Result<Self> {
        let mut items = Vec::with_capacity(transactions.iter().map(Vec::len).sum());
        let mut offsets = Vec::with_capacity(transactions.len() + 1);
        offsets.push(0u32);
        for mut t in transactions {
            t.sort_unstable();
            t.dedup();
            if let Some(&max) = t.last() {
                if max.index() >= n_items {
                    return Err(CfqError::Config(format!(
                        "transaction references item {} but universe has {} items",
                        max, n_items
                    )));
                }
            }
            items.extend_from_slice(&t);
            if items.len() > u32::MAX as usize {
                return Err(CfqError::Config(format!(
                    "transaction database exceeds the CSR arena limit of {} items",
                    u32::MAX
                )));
            }
            offsets.push(items.len() as u32);
        }
        Ok(TransactionDb { items, offsets, n_items })
    }

    /// Builds directly from CSR parts. Rows must already be sorted and
    /// duplicate-free with ids below `n_items`, and `offsets` must be a
    /// monotone boundary array starting at 0 and ending at `items.len()`
    /// — this is the fast path for derived databases (trim passes,
    /// projections) whose rows are reduced from an already-valid db.
    pub fn from_parts(n_items: usize, items: Vec<ItemId>, offsets: Vec<u32>) -> Self {
        assert!(!offsets.is_empty() && offsets[0] == 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap() as usize,
            items.len(),
            "offsets must end at the arena length"
        );
        let db = TransactionDb { items, offsets, n_items };
        debug_assert!(db.validate().is_ok(), "{}", db.validate().unwrap_err());
        db
    }

    /// Checks every CSR structural invariant and returns the first
    /// violation found:
    ///
    /// * offsets start at 0, end at the arena length, and are monotone
    ///   (every row is an in-bounds arena slice);
    /// * every row is strictly sorted (sorted and duplicate-free);
    /// * every item id is below the universe size.
    ///
    /// [`TransactionDb::from_parts`] runs this in debug builds; the CLI's
    /// `--audit` gate and the trim-pass invariant checks run it explicitly.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(CfqError::Config(format!("invalid CSR database: {msg}")));
        if self.offsets.is_empty() || self.offsets[0] != 0 {
            return fail("offsets must start at 0".into());
        }
        if *self.offsets.last().unwrap() as usize != self.items.len() {
            return fail(format!(
                "offsets end at {} but the arena has {} items",
                self.offsets.last().unwrap(),
                self.items.len()
            ));
        }
        for (i, w) in self.offsets.windows(2).enumerate() {
            if w[0] > w[1] {
                return fail(format!("offsets not monotone at row {i}: {} > {}", w[0], w[1]));
            }
            let row = &self.items[w[0] as usize..w[1] as usize];
            if !row.windows(2).all(|p| p[0] < p[1]) {
                return fail(format!("row {i} is not strictly sorted"));
            }
            if row.last().is_some_and(|last| last.index() >= self.n_items) {
                return fail(format!(
                    "row {i} references item {} outside the {}-item universe",
                    row.last().unwrap(),
                    self.n_items
                ));
            }
        }
        Ok(())
    }

    /// Builds from `u32` item ids (test convenience).
    pub fn from_u32(n_items: usize, transactions: &[&[u32]]) -> Self {
        let rows = transactions
            .iter()
            .map(|t| t.iter().map(|&i| ItemId(i)).collect())
            .collect();
        TransactionDb::new(n_items, rows).expect("valid test transactions")
    }

    /// Number of transactions.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` if the database has no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Size of the item universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Total number of item occurrences across all transactions — the CSR
    /// arena length, i.e. the amount of data one full scan touches.
    #[inline]
    pub fn total_items(&self) -> usize {
        self.items.len()
    }

    /// The `i`-th transaction as a sorted item slice.
    #[inline]
    pub fn transaction(&self, i: usize) -> &[ItemId] {
        &self.items[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates transactions as sorted item slices.
    pub fn iter(&self) -> impl Iterator<Item = &[ItemId]> {
        self.offsets
            .windows(2)
            .map(|w| &self.items[w[0] as usize..w[1] as usize])
    }

    /// Splits the database into at most `n` contiguous row-range views,
    /// balanced by *item count* (not row count) so threads scanning skewed
    /// databases get equal work. Views borrow the CSR arrays — sharding is
    /// offset slicing, never row cloning. Returns fewer than `n` chunks
    /// when the database is small; at least one chunk unless empty.
    pub fn chunks(&self, n: usize) -> Vec<DbChunk<'_>> {
        let n = n.max(1);
        let rows = self.len();
        if rows == 0 {
            return Vec::new();
        }
        let per_chunk = (self.items.len() / n).max(1) as u64;
        let mut out = Vec::with_capacity(n);
        let mut start = 0usize;
        while start < rows {
            let mut end = start + 1;
            // Greedily extend until the chunk holds ~its share of items.
            let target = self.offsets[start] as u64 + per_chunk;
            while end < rows
                && out.len() + 1 < n
                && (self.offsets[end] as u64) < target
            {
                end += 1;
            }
            if out.len() + 1 == n {
                end = rows;
            }
            out.push(DbChunk {
                first_row: start,
                offsets: &self.offsets[start..=end],
                items: &self.items[self.offsets[start] as usize..self.offsets[end] as usize],
            });
            start = end;
        }
        out
    }

    /// Average transaction length (0 for an empty database).
    pub fn avg_transaction_len(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.items.len() as f64 / self.len() as f64
    }

    /// Absolute support of an itemset: the number of transactions containing
    /// every item of `set`. Linear scan — this is the reference oracle used
    /// by tests; the mining crate has the fast counters.
    pub fn support(&self, set: &Itemset) -> u64 {
        self.iter()
            .filter(|t| contains_sorted(t, set.as_slice()))
            .count() as u64
    }

    /// Concatenates `delta`'s rows after this database's rows, returning a
    /// new CSR database over the same item universe. This is the epoch
    /// transition `DB ∪ db⁺` of FUP-style incremental maintenance: the old
    /// arena is memcpy'd, the delta arena is appended, and the delta's
    /// offsets are rebased — no row is re-sorted or re-validated beyond the
    /// universe check.
    ///
    /// Fails with [`CfqError::Engine`] when the universes differ and with
    /// [`CfqError::Config`] when the combined arena would overflow the
    /// `u32` CSR offset limit.
    pub fn concat(&self, delta: &TransactionDb) -> Result<TransactionDb> {
        if delta.n_items != self.n_items {
            return Err(CfqError::Engine(format!(
                "append delta has a {}-item universe but the database has {}",
                delta.n_items, self.n_items
            )));
        }
        let total = self.items.len() + delta.items.len();
        if total > u32::MAX as usize {
            return Err(CfqError::Config(format!(
                "appended database exceeds the CSR arena limit of {} items",
                u32::MAX
            )));
        }
        let mut items = Vec::with_capacity(total);
        items.extend_from_slice(&self.items);
        items.extend_from_slice(&delta.items);
        let base = *self.offsets.last().unwrap();
        let mut offsets = Vec::with_capacity(self.offsets.len() + delta.len());
        offsets.extend_from_slice(&self.offsets);
        offsets.extend(delta.offsets[1..].iter().map(|&o| o + base));
        Ok(TransactionDb { items, offsets, n_items: self.n_items })
    }

    /// Projects the database onto a *derived domain*: transactions become
    /// the set of `attr` value keys of their items. This implements the
    /// paper's §3 setting where `T` ranges over a domain `Dom ≠ Item` (e.g.
    /// the `Type` domain): mining the projected database finds frequent
    /// *value sets*.
    ///
    /// Returns the projected database (item ids are dense indices into the
    /// returned key vector) and the sorted distinct value keys.
    pub fn project(&self, catalog: &Catalog, attr: AttrId) -> (TransactionDb, Vec<u64>) {
        let mut keys: Vec<u64> = (0..self.n_items as u32)
            .map(|i| catalog.value_key(attr, ItemId(i)))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let mut items = Vec::with_capacity(self.items.len());
        let mut offsets = Vec::with_capacity(self.offsets.len());
        offsets.push(0u32);
        let mut row: Vec<ItemId> = Vec::new();
        for t in self.iter() {
            row.clear();
            row.extend(t.iter().map(|&i| {
                let k = catalog.value_key(attr, i);
                let idx = keys.binary_search(&k).expect("key interned above");
                ItemId(idx as u32)
            }));
            row.sort_unstable();
            row.dedup();
            items.extend_from_slice(&row);
            offsets.push(items.len() as u32);
        }
        (TransactionDb { items, offsets, n_items: keys.len() }, keys)
    }
}

/// A contiguous row-range view over a [`TransactionDb`]'s CSR arrays.
///
/// `offsets` keeps the parent's absolute values (length `len() + 1`);
/// `items` is the matching sub-arena, so row `i` of the chunk is
/// `items[offsets[i] - offsets[0] .. offsets[i + 1] - offsets[0]]`.
#[derive(Clone, Copy)]
pub struct DbChunk<'a> {
    first_row: usize,
    offsets: &'a [u32],
    items: &'a [ItemId],
}

impl<'a> DbChunk<'a> {
    /// Number of rows in this chunk.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` if the chunk covers no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// The parent-database row index of this chunk's first row.
    #[inline]
    pub fn first_row(&self) -> usize {
        self.first_row
    }

    /// Total item occurrences in this chunk.
    #[inline]
    pub fn total_items(&self) -> usize {
        self.items.len()
    }

    /// Row `i` of the chunk (chunk-relative index).
    #[inline]
    pub fn row(&self, i: usize) -> &'a [ItemId] {
        let base = self.offsets[0];
        &self.items[(self.offsets[i] - base) as usize..(self.offsets[i + 1] - base) as usize]
    }

    /// Iterates the chunk's rows as sorted item slices.
    pub fn iter(&self) -> impl Iterator<Item = &'a [ItemId]> + '_ {
        let base = self.offsets[0];
        self.offsets
            .windows(2)
            .map(move |w| &self.items[(w[0] - base) as usize..(w[1] - base) as usize])
    }
}

/// `needle ⊆ haystack` for sorted slices.
#[inline]
pub fn contains_sorted(haystack: &[ItemId], needle: &[ItemId]) -> bool {
    if needle.len() > haystack.len() {
        return false;
    }
    let mut hi = 0;
    'outer: for &n in needle {
        while hi < haystack.len() {
            match haystack[hi].cmp(&n) {
                std::cmp::Ordering::Less => hi += 1,
                std::cmp::Ordering::Equal => {
                    hi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogBuilder;

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            5,
            &[&[0, 1, 2], &[1, 2, 3], &[0, 2, 4], &[1, 2], &[2]],
        )
    }

    #[test]
    fn construction_and_access() {
        let d = db();
        assert_eq!(d.len(), 5);
        assert_eq!(d.n_items(), 5);
        assert_eq!(d.total_items(), 12);
        assert_eq!(d.transaction(0), &[ItemId(0), ItemId(1), ItemId(2)]);
        assert!(!d.is_empty());
        assert!((d.avg_transaction_len() - 12.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn rows_sorted_and_deduped() {
        let d = TransactionDb::from_u32(4, &[&[3, 1, 1, 2]]);
        assert_eq!(d.transaction(0), &[ItemId(1), ItemId(2), ItemId(3)]);
    }

    #[test]
    fn rejects_out_of_universe_items() {
        let r = TransactionDb::new(2, vec![vec![ItemId(5)]]);
        assert!(r.is_err());
    }

    #[test]
    fn default_is_empty() {
        let d = TransactionDb::default();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.total_items(), 0);
        assert!(d.chunks(4).is_empty());
    }

    #[test]
    fn from_parts_round_trips() {
        let d = db();
        let rebuilt = TransactionDb::from_parts(
            d.n_items(),
            d.iter().flatten().copied().collect(),
            (0..=d.len())
                .map(|i| d.iter().take(i).map(<[ItemId]>::len).sum::<usize>() as u32)
                .collect(),
        );
        assert_eq!(rebuilt.len(), d.len());
        for i in 0..d.len() {
            assert_eq!(rebuilt.transaction(i), d.transaction(i));
        }
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad_csr() {
        assert!(db().validate().is_ok());
        assert!(TransactionDb::default().validate().is_ok());
        // Non-monotone offsets.
        let bad = TransactionDb {
            items: vec![ItemId(0), ItemId(1)],
            offsets: vec![0, 2, 1, 2],
            n_items: 2,
        };
        assert!(bad.validate().unwrap_err().to_string().contains("monotone"));
        // Unsorted row.
        let bad = TransactionDb {
            items: vec![ItemId(1), ItemId(0)],
            offsets: vec![0, 2],
            n_items: 2,
        };
        assert!(bad.validate().unwrap_err().to_string().contains("sorted"));
        // Duplicate within a row (also "not strictly sorted").
        let bad = TransactionDb {
            items: vec![ItemId(1), ItemId(1)],
            offsets: vec![0, 2],
            n_items: 2,
        };
        assert!(bad.validate().is_err());
        // Out-of-universe id.
        let bad = TransactionDb {
            items: vec![ItemId(7)],
            offsets: vec![0, 1],
            n_items: 2,
        };
        assert!(bad.validate().unwrap_err().to_string().contains("universe"));
        // Arena length mismatch.
        let bad = TransactionDb {
            items: vec![ItemId(0)],
            offsets: vec![0, 2],
            n_items: 2,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn concat_appends_rows_and_rebases_offsets() {
        let d = db();
        let delta = TransactionDb::from_u32(5, &[&[0, 4], &[3]]);
        let both = d.concat(&delta).unwrap();
        assert_eq!(both.len(), d.len() + delta.len());
        assert_eq!(both.total_items(), d.total_items() + delta.total_items());
        for i in 0..d.len() {
            assert_eq!(both.transaction(i), d.transaction(i));
        }
        assert_eq!(both.transaction(d.len()), &[ItemId(0), ItemId(4)]);
        assert_eq!(both.transaction(d.len() + 1), &[ItemId(3)]);
        assert!(both.validate().is_ok());
        // An empty delta over the same universe is the identity.
        let empty = TransactionDb::new(5, vec![]).unwrap();
        let same = d.concat(&empty).unwrap();
        assert_eq!(same.len(), d.len());
        assert_eq!(same.total_items(), d.total_items());
        // Universe mismatch is an engine error.
        let wrong = TransactionDb::from_u32(3, &[&[1]]);
        assert!(matches!(d.concat(&wrong), Err(CfqError::Engine(_))));
    }

    #[test]
    fn support_oracle() {
        let d = db();
        assert_eq!(d.support(&[2u32].into()), 5);
        assert_eq!(d.support(&[1u32, 2].into()), 3);
        assert_eq!(d.support(&[0u32, 1, 2].into()), 1);
        assert_eq!(d.support(&[0u32, 3].into()), 0);
        assert_eq!(d.support(&Itemset::empty()), 5);
    }

    #[test]
    fn chunks_cover_all_rows_in_order() {
        let d = db();
        for n in 1..=8 {
            let chunks = d.chunks(n);
            assert!(chunks.len() <= n.max(1));
            let mut row = 0usize;
            for c in &chunks {
                assert_eq!(c.first_row(), row);
                for (i, r) in c.iter().enumerate() {
                    assert_eq!(r, d.transaction(row + i), "chunks({n}) row {row}");
                    assert_eq!(r, c.row(i));
                }
                row += c.len();
            }
            assert_eq!(row, d.len(), "chunks({n}) must cover every row");
            assert_eq!(
                chunks.iter().map(DbChunk::total_items).sum::<usize>(),
                d.total_items()
            );
        }
    }

    #[test]
    fn chunks_balance_by_items() {
        // One huge row then many tiny ones: row-count splitting would give
        // chunk 0 nearly all items; item balancing must not.
        let big: Vec<u32> = (0..64).collect();
        let mut rows: Vec<&[u32]> = vec![&big];
        let tiny = [0u32];
        for _ in 0..64 {
            rows.push(&tiny);
        }
        let d = TransactionDb::from_u32(64, &rows);
        let chunks = d.chunks(2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 1, "big row should fill the first chunk");
        assert_eq!(chunks[1].len(), 64);
    }

    #[test]
    fn contains_sorted_edges() {
        let hay = [ItemId(1), ItemId(3), ItemId(5)];
        assert!(contains_sorted(&hay, &[]));
        assert!(contains_sorted(&hay, &[ItemId(1), ItemId(5)]));
        assert!(!contains_sorted(&hay, &[ItemId(2)]));
        assert!(!contains_sorted(&hay, &[ItemId(1), ItemId(3), ItemId(5), ItemId(7)]));
    }

    #[test]
    fn projection_onto_type_domain() {
        // Items 0,1 are type A; items 2,3 type B; item 4 type C.
        let mut b = CatalogBuilder::new(5);
        b.cat_attr("Type", &["A", "A", "B", "B", "C"]).unwrap();
        let c = b.build();
        let ty = c.attr("Type").unwrap();
        let d = db();
        let (p, keys) = d.project(&c, ty);
        assert_eq!(keys.len(), 3);
        assert_eq!(p.n_items(), 3);
        // Transaction {0,1,2} → types {A, B} → projected ids {0,1}.
        assert_eq!(p.transaction(0).len(), 2);
        // Transaction {2} → {B} → one projected id.
        assert_eq!(p.transaction(4).len(), 1);
        // Frequencies transfer: type B (from items 2 or 3) occurs everywhere.
        let b_id = keys
            .binary_search(&(c.symbol("B").unwrap().0 as u64))
            .unwrap() as u32;
        assert_eq!(p.support(&Itemset::singleton(ItemId(b_id))), 5);
    }
}

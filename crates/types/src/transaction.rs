//! The transaction database `trans(TID, Itemset)` and derived-domain
//! projections.

use crate::catalog::{AttrId, Catalog};
use crate::item::ItemId;
use crate::itemset::Itemset;
use crate::{CfqError, Result};

/// A horizontal transaction database.
///
/// Each transaction is a sorted, duplicate-free item list. TIDs are implicit
/// (the row index), matching the paper's `trans(TID, Itemset)`.
///
/// ```
/// use cfq_types::TransactionDb;
/// let db = TransactionDb::from_u32(4, &[&[0, 1], &[1, 2, 3], &[1]]);
/// assert_eq!(db.len(), 3);
/// assert_eq!(db.support(&[1u32].into()), 3);
/// assert_eq!(db.support(&[1u32, 2].into()), 1);
/// ```
#[derive(Clone, Default)]
pub struct TransactionDb {
    rows: Vec<Box<[ItemId]>>,
    n_items: usize,
}

impl TransactionDb {
    /// Builds a database from raw transactions; each row is sorted and
    /// deduplicated. `n_items` bounds the item universe (ids must be below).
    pub fn new(n_items: usize, transactions: Vec<Vec<ItemId>>) -> Result<Self> {
        let mut rows = Vec::with_capacity(transactions.len());
        for mut t in transactions {
            t.sort_unstable();
            t.dedup();
            if let Some(&max) = t.last() {
                if max.index() >= n_items {
                    return Err(CfqError::Config(format!(
                        "transaction references item {} but universe has {} items",
                        max, n_items
                    )));
                }
            }
            rows.push(t.into_boxed_slice());
        }
        Ok(TransactionDb { rows, n_items })
    }

    /// Builds from `u32` item ids (test convenience).
    pub fn from_u32(n_items: usize, transactions: &[&[u32]]) -> Self {
        let rows = transactions
            .iter()
            .map(|t| t.iter().map(|&i| ItemId(i)).collect())
            .collect();
        TransactionDb::new(n_items, rows).expect("valid test transactions")
    }

    /// Number of transactions.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the database has no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Size of the item universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The `i`-th transaction as a sorted item slice.
    #[inline]
    pub fn transaction(&self, i: usize) -> &[ItemId] {
        &self.rows[i]
    }

    /// Iterates transactions as sorted item slices.
    pub fn iter(&self) -> impl Iterator<Item = &[ItemId]> {
        self.rows.iter().map(|r| &**r)
    }

    /// Average transaction length (0 for an empty database).
    pub fn avg_transaction_len(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.len()).sum::<usize>() as f64 / self.rows.len() as f64
    }

    /// Absolute support of an itemset: the number of transactions containing
    /// every item of `set`. Linear scan — this is the reference oracle used
    /// by tests; the mining crate has the fast counters.
    pub fn support(&self, set: &Itemset) -> u64 {
        self.iter()
            .filter(|t| contains_sorted(t, set.as_slice()))
            .count() as u64
    }

    /// Projects the database onto a *derived domain*: transactions become
    /// the set of `attr` value keys of their items. This implements the
    /// paper's §3 setting where `T` ranges over a domain `Dom ≠ Item` (e.g.
    /// the `Type` domain): mining the projected database finds frequent
    /// *value sets*.
    ///
    /// Returns the projected database (item ids are dense indices into the
    /// returned key vector) and the sorted distinct value keys.
    pub fn project(&self, catalog: &Catalog, attr: AttrId) -> (TransactionDb, Vec<u64>) {
        let mut keys: Vec<u64> = (0..self.n_items as u32)
            .map(|i| catalog.value_key(attr, ItemId(i)))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let rows = self
            .rows
            .iter()
            .map(|t| {
                let mut v: Vec<ItemId> = t
                    .iter()
                    .map(|&i| {
                        let k = catalog.value_key(attr, i);
                        let idx = keys.binary_search(&k).expect("key interned above");
                        ItemId(idx as u32)
                    })
                    .collect();
                v.sort_unstable();
                v.dedup();
                v.into_boxed_slice()
            })
            .collect();
        (TransactionDb { rows, n_items: keys.len() }, keys)
    }
}

/// `needle ⊆ haystack` for sorted slices.
#[inline]
pub fn contains_sorted(haystack: &[ItemId], needle: &[ItemId]) -> bool {
    if needle.len() > haystack.len() {
        return false;
    }
    let mut hi = 0;
    'outer: for &n in needle {
        while hi < haystack.len() {
            match haystack[hi].cmp(&n) {
                std::cmp::Ordering::Less => hi += 1,
                std::cmp::Ordering::Equal => {
                    hi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogBuilder;

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            5,
            &[&[0, 1, 2], &[1, 2, 3], &[0, 2, 4], &[1, 2], &[2]],
        )
    }

    #[test]
    fn construction_and_access() {
        let d = db();
        assert_eq!(d.len(), 5);
        assert_eq!(d.n_items(), 5);
        assert_eq!(d.transaction(0), &[ItemId(0), ItemId(1), ItemId(2)]);
        assert!(!d.is_empty());
        assert!((d.avg_transaction_len() - 12.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn rows_sorted_and_deduped() {
        let d = TransactionDb::from_u32(4, &[&[3, 1, 1, 2]]);
        assert_eq!(d.transaction(0), &[ItemId(1), ItemId(2), ItemId(3)]);
    }

    #[test]
    fn rejects_out_of_universe_items() {
        let r = TransactionDb::new(2, vec![vec![ItemId(5)]]);
        assert!(r.is_err());
    }

    #[test]
    fn support_oracle() {
        let d = db();
        assert_eq!(d.support(&[2u32].into()), 5);
        assert_eq!(d.support(&[1u32, 2].into()), 3);
        assert_eq!(d.support(&[0u32, 1, 2].into()), 1);
        assert_eq!(d.support(&[0u32, 3].into()), 0);
        assert_eq!(d.support(&Itemset::empty()), 5);
    }

    #[test]
    fn contains_sorted_edges() {
        let hay = [ItemId(1), ItemId(3), ItemId(5)];
        assert!(contains_sorted(&hay, &[]));
        assert!(contains_sorted(&hay, &[ItemId(1), ItemId(5)]));
        assert!(!contains_sorted(&hay, &[ItemId(2)]));
        assert!(!contains_sorted(&hay, &[ItemId(1), ItemId(3), ItemId(5), ItemId(7)]));
    }

    #[test]
    fn projection_onto_type_domain() {
        // Items 0,1 are type A; items 2,3 type B; item 4 type C.
        let mut b = CatalogBuilder::new(5);
        b.cat_attr("Type", &["A", "A", "B", "B", "C"]).unwrap();
        let c = b.build();
        let ty = c.attr("Type").unwrap();
        let d = db();
        let (p, keys) = d.project(&c, ty);
        assert_eq!(keys.len(), 3);
        assert_eq!(p.n_items(), 3);
        // Transaction {0,1,2} → types {A, B} → projected ids {0,1}.
        assert_eq!(p.transaction(0).len(), 2);
        // Transaction {2} → {B} → one projected id.
        assert_eq!(p.transaction(4).len(), 1);
        // Frequencies transfer: type B (from items 2 or 3) occurs everywhere.
        let b_id = keys
            .binary_search(&(c.symbol("B").unwrap().0 as u64))
            .unwrap() as u32;
        assert_eq!(p.support(&Itemset::singleton(ItemId(b_id))), 5);
    }
}

//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the `cfq` crates.
pub type Result<T> = std::result::Result<T, CfqError>;

/// Errors surfaced by the `cfq` workspace.
///
/// The library is deliberately strict: malformed queries, attribute
/// mismatches, and invalid configurations are reported as typed errors
/// instead of panics, so that an embedding system (the paper's envisioned
/// DBMS integration) can surface them to the user.
#[derive(Debug, Clone, PartialEq)]
pub enum CfqError {
    /// A query string failed to parse. Carries a human-readable message with
    /// byte offset context.
    Parse(String),
    /// An attribute name was not found in the catalog, or was used with the
    /// wrong kind (e.g. `sum(S.Type)` on a categorical attribute).
    Attr(String),
    /// A constraint is outside the supported CFQ language fragment.
    UnsupportedConstraint(String),
    /// Invalid configuration (e.g. zero items, support threshold out of
    /// range, malformed generator parameters).
    Config(String),
    /// Dataset IO failure.
    Io(String),
    /// Engine-level failure: an execution precondition did not hold (e.g.
    /// catalog/database item-universe mismatch, delta shape mismatch on
    /// append, or a session race that cannot be retried).
    Engine(String),
    /// A cache insertion was refused because the entry alone exceeds the
    /// engine's configured byte budget (or the budget itself is invalid).
    CacheBudget(String),
    /// A static plan-soundness audit found a blocking diagnostic. Produced
    /// by the lossless `From<Diagnostic>` conversion in `cfq-audit`, so
    /// `--audit` gates propagate as typed errors.
    Audit(String),
    /// The engine's admission queue is full: the query was rejected before
    /// doing any work so the caller can shed load or retry. Carries the
    /// concurrency and queue-depth limits that were hit.
    Overloaded(String),
}

impl fmt::Display for CfqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfqError::Parse(m) => write!(f, "parse error: {m}"),
            CfqError::Attr(m) => write!(f, "attribute error: {m}"),
            CfqError::UnsupportedConstraint(m) => write!(f, "unsupported constraint: {m}"),
            CfqError::Config(m) => write!(f, "configuration error: {m}"),
            CfqError::Io(m) => write!(f, "io error: {m}"),
            CfqError::Engine(m) => write!(f, "engine error: {m}"),
            CfqError::CacheBudget(m) => write!(f, "cache budget error: {m}"),
            CfqError::Audit(m) => write!(f, "audit error: {m}"),
            CfqError::Overloaded(m) => write!(f, "overloaded: {m}"),
        }
    }
}

impl std::error::Error for CfqError {}

impl From<std::io::Error> for CfqError {
    fn from(e: std::io::Error) -> Self {
        CfqError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            CfqError::Parse("bad token".into()).to_string(),
            "parse error: bad token"
        );
        assert_eq!(
            CfqError::Attr("no such attribute Price".into()).to_string(),
            "attribute error: no such attribute Price"
        );
        assert_eq!(
            CfqError::Config("0 items".into()).to_string(),
            "configuration error: 0 items"
        );
        assert_eq!(
            CfqError::Engine("catalog covers 2 items".into()).to_string(),
            "engine error: catalog covers 2 items"
        );
        assert_eq!(
            CfqError::CacheBudget("entry of 9 bytes exceeds budget".into()).to_string(),
            "cache budget error: entry of 9 bytes exceeds budget"
        );
        assert_eq!(
            CfqError::Audit("plan drops a constraint".into()).to_string(),
            "audit error: plan drops a constraint"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: CfqError = io.into();
        assert!(matches!(e, CfqError::Io(_)));
    }
}

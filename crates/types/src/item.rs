//! Item identifiers.

use std::fmt;

/// A compact identifier for an item of the mined domain.
///
/// Items are dense indices `0..n_items` into the [`Catalog`](crate::Catalog)
/// attribute columns, exactly like the paper's `Item` domain with the
/// auxiliary relation `itemInfo(Item, Type, Price)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl ItemId {
    /// Returns the item id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ItemId {
    #[inline]
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl From<ItemId> for u32 {
    #[inline]
    fn from(v: ItemId) -> Self {
        v.0
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_id_roundtrip() {
        let i = ItemId::from(42u32);
        assert_eq!(u32::from(i), 42);
        assert_eq!(i.index(), 42);
        assert_eq!(format!("{i}"), "42");
        assert_eq!(format!("{i:?}"), "i42");
    }

    #[test]
    fn item_id_ordering() {
        assert!(ItemId(1) < ItemId(2));
        assert_eq!(ItemId(7), ItemId(7));
    }
}

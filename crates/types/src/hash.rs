//! A fast, non-cryptographic hasher in the style of `rustc-hash`'s FxHash.
//!
//! Itemset-keyed hash maps are on the hot path of support counting; SipHash's
//! HashDoS resistance buys nothing here (keys are internal, not adversarial),
//! so we use the multiply-rotate scheme rustc itself uses. Implemented
//! in-house (~30 lines) to stay within the workspace dependency policy.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// FxHash: a fast multiplicative hash. Quality is low but entirely adequate
/// for dense integer-ish keys such as item ids and small sorted item arrays.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = FxHasher::default();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&[1u32, 2, 3]), hash_of(&[1u32, 2, 3]));
    }

    #[test]
    fn discriminates_simple_cases() {
        assert_ne!(hash_of(&[1u32, 2, 3]), hash_of(&[1u32, 2, 4]));
        assert_ne!(hash_of(&[1u32, 2, 3]), hash_of(&[3u32, 2, 1]));
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
    }

    #[test]
    fn uneven_byte_lengths() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Not a correctness requirement of Hasher, but our padding scheme
        // should still distinguish most real keys; just check it runs.
        let _ = (a.finish(), b.finish());
    }

    #[test]
    fn usable_in_collections() {
        let mut m: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        m.insert(vec![1, 2], 10);
        m.insert(vec![1, 3], 20);
        assert_eq!(m[&vec![1, 2]], 10);
        assert_eq!(m[&vec![1, 3]], 20);

        let mut s: FxHashSet<u32> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i);
        }
        assert_eq!(s.len(), 1000);
    }
}

//! Sorted, immutable itemsets and the algebra levelwise mining needs.

use crate::item::ItemId;
use std::fmt;

/// An immutable set of items, stored sorted and duplicate-free.
///
/// This is both the paper's `S`-set and `T`-set. The representation is a
/// boxed slice (two words on the stack) because itemsets are created in huge
/// numbers during mining and never mutated after construction.
///
/// Ordering (`Ord`) is lexicographic on the sorted item sequence, which makes
/// collections of itemsets canonically ordered — handy for deterministic
/// output and for the prefix-join used in candidate generation.
///
/// ```
/// use cfq_types::Itemset;
/// let a: Itemset = [3u32, 1, 2, 3].into(); // sorts, dedups
/// let b: Itemset = [2u32, 4].into();
/// assert_eq!(a.to_string(), "{1,2,3}");
/// assert!(b.intersects(&a));
/// assert_eq!(a.union(&b).len(), 4);
/// assert_eq!(a.apriori_join(&[1u32, 2, 4].into()), Some([1u32, 2, 3, 4].into()));
/// assert_eq!(a.apriori_join(&[2u32, 3, 4].into()), None); // prefixes differ
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Itemset {
    items: Box<[ItemId]>,
}

impl Itemset {
    /// The empty itemset.
    pub fn empty() -> Self {
        Itemset { items: Box::new([]) }
    }

    /// A one-element itemset.
    pub fn singleton(item: ItemId) -> Self {
        Itemset { items: Box::new([item]) }
    }

    /// Builds an itemset from an arbitrary iterator; sorts and dedups.
    pub fn from_items<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        let mut v: Vec<ItemId> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Itemset { items: v.into_boxed_slice() }
    }

    /// Builds an itemset from a vector the caller promises is already sorted
    /// and duplicate-free. Checked with a debug assertion.
    pub fn from_sorted_vec(v: Vec<ItemId>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "input not sorted/unique");
        Itemset { items: v.into_boxed_slice() }
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the set has no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items as a sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[ItemId] {
        &self.items
    }

    /// Iterates the items in ascending order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.iter().copied()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// `true` iff `self ⊆ other`. Linear merge; both sides are sorted.
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut oi = other.items.iter();
        'outer: for &a in self.items.iter() {
            for &b in oi.by_ref() {
                match b.cmp(&a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `true` iff the two sets share at least one item.
    pub fn intersects(&self, other: &Itemset) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Set union.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.items[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.items[i..]);
        out.extend_from_slice(&other.items[j..]);
        Itemset { items: out.into_boxed_slice() }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Itemset { items: out.into_boxed_slice() }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.len());
        let mut j = 0;
        for &a in self.items.iter() {
            while j < other.items.len() && other.items[j] < a {
                j += 1;
            }
            if j >= other.items.len() || other.items[j] != a {
                out.push(a);
            }
        }
        Itemset { items: out.into_boxed_slice() }
    }

    /// Returns a new itemset with `item` inserted (no-op clone if present).
    pub fn with_item(&self, item: ItemId) -> Itemset {
        match self.items.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = Vec::with_capacity(self.len() + 1);
                v.extend_from_slice(&self.items[..pos]);
                v.push(item);
                v.extend_from_slice(&self.items[pos..]);
                Itemset { items: v.into_boxed_slice() }
            }
        }
    }

    /// Returns a new itemset with the item at `idx` removed.
    pub fn without_index(&self, idx: usize) -> Itemset {
        let mut v = Vec::with_capacity(self.len().saturating_sub(1));
        v.extend_from_slice(&self.items[..idx]);
        v.extend_from_slice(&self.items[idx + 1..]);
        Itemset { items: v.into_boxed_slice() }
    }

    /// Calls `f` once per (len-1)-subset, in order of the removed position.
    /// This is the Apriori prune enumeration.
    pub fn for_each_len_minus_one<F: FnMut(&Itemset)>(&self, mut f: F) {
        for idx in 0..self.len() {
            f(&self.without_index(idx));
        }
    }

    /// The Apriori join: if `self` and `other` are k-sets sharing their first
    /// k-1 items and `self < other` on the last item, returns the (k+1)-set
    /// `self ∪ other`; otherwise `None`.
    pub fn apriori_join(&self, other: &Itemset) -> Option<Itemset> {
        let k = self.len();
        if k == 0 || other.len() != k {
            return None;
        }
        if self.items[..k - 1] != other.items[..k - 1] {
            return None;
        }
        if self.items[k - 1] >= other.items[k - 1] {
            return None;
        }
        let mut v = Vec::with_capacity(k + 1);
        v.extend_from_slice(&self.items);
        v.push(other.items[k - 1]);
        Some(Itemset { items: v.into_boxed_slice() })
    }

    /// Enumerates all subsets of a given size (ascending lexicographic).
    /// Intended for brute-force oracles in tests and the Apriori⁺ baseline
    /// on small instances — cost is `C(n, k)`.
    pub fn subsets_of_size(&self, k: usize) -> SubsetIter<'_> {
        SubsetIter::new(&self.items, k)
    }

    /// Enumerates every non-empty subset. Exponential; test/oracle use only.
    pub fn all_nonempty_subsets(&self) -> Vec<Itemset> {
        let n = self.len();
        assert!(n <= 20, "all_nonempty_subsets is for small sets only");
        let mut out = Vec::with_capacity((1usize << n) - 1);
        for mask in 1u32..(1u32 << n) {
            let mut v = Vec::with_capacity(mask.count_ones() as usize);
            for (i, &it) in self.items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    v.push(it);
                }
            }
            out.push(Itemset { items: v.into_boxed_slice() });
        }
        out
    }
}

impl FromIterator<ItemId> for Itemset {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        Itemset::from_items(iter)
    }
}

impl FromIterator<u32> for Itemset {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Itemset::from_items(iter.into_iter().map(ItemId))
    }
}

impl<const N: usize> From<[u32; N]> for Itemset {
    fn from(arr: [u32; N]) -> Self {
        arr.into_iter().collect()
    }
}

impl Itemset {
    fn fmt_items(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", it.0)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_items(f)
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_items(f)
    }
}

/// Iterator over the k-element subsets of a sorted slice, in lexicographic
/// order of index combinations.
pub struct SubsetIter<'a> {
    items: &'a [ItemId],
    idx: Vec<usize>,
    done: bool,
}

impl<'a> SubsetIter<'a> {
    fn new(items: &'a [ItemId], k: usize) -> Self {
        let done = k > items.len();
        SubsetIter { items, idx: (0..k).collect(), done }
    }
}

impl Iterator for SubsetIter<'_> {
    type Item = Itemset;

    fn next(&mut self) -> Option<Itemset> {
        if self.done {
            return None;
        }
        let out = Itemset::from_sorted_vec(self.idx.iter().map(|&i| self.items[i]).collect());
        // Advance the combination.
        let k = self.idx.len();
        let n = self.items.len();
        if k == 0 {
            self.done = true;
            return Some(out);
        }
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.idx[i] < n - (k - i) {
                self.idx[i] += 1;
                for j in i + 1..k {
                    self.idx[j] = self.idx[j - 1] + 1;
                }
                break;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[u32]) -> Itemset {
        v.iter().copied().collect()
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let a = s(&[3, 1, 2, 3, 1]);
        assert_eq!(a.as_slice(), &[ItemId(1), ItemId(2), ItemId(3)]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Itemset::empty().is_empty());
        assert_eq!(Itemset::singleton(ItemId(5)).as_slice(), &[ItemId(5)]);
    }

    #[test]
    fn contains_and_subset() {
        let a = s(&[1, 3, 5, 7]);
        assert!(a.contains(ItemId(5)));
        assert!(!a.contains(ItemId(4)));
        assert!(s(&[3, 7]).is_subset_of(&a));
        assert!(s(&[]).is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(!s(&[3, 4]).is_subset_of(&a));
        assert!(!s(&[1, 3, 5, 7, 9]).is_subset_of(&a));
    }

    #[test]
    fn intersects_cases() {
        assert!(s(&[1, 2]).intersects(&s(&[2, 3])));
        assert!(!s(&[1, 2]).intersects(&s(&[3, 4])));
        assert!(!Itemset::empty().intersects(&s(&[1])));
    }

    #[test]
    fn union_intersection_difference() {
        let a = s(&[1, 2, 4]);
        let b = s(&[2, 3, 4, 6]);
        assert_eq!(a.union(&b), s(&[1, 2, 3, 4, 6]));
        assert_eq!(a.intersection(&b), s(&[2, 4]));
        assert_eq!(a.difference(&b), s(&[1]));
        assert_eq!(b.difference(&a), s(&[3, 6]));
    }

    #[test]
    fn with_item_and_without_index() {
        let a = s(&[1, 3]);
        assert_eq!(a.with_item(ItemId(2)), s(&[1, 2, 3]));
        assert_eq!(a.with_item(ItemId(3)), a);
        assert_eq!(s(&[1, 2, 3]).without_index(1), s(&[1, 3]));
    }

    #[test]
    fn len_minus_one_enumeration() {
        let a = s(&[1, 2, 3]);
        let mut subs = Vec::new();
        a.for_each_len_minus_one(|x| subs.push(x.clone()));
        assert_eq!(subs, vec![s(&[2, 3]), s(&[1, 3]), s(&[1, 2])]);
    }

    #[test]
    fn apriori_join_rules() {
        // Join {1,2} ⋈ {1,3} = {1,2,3}.
        assert_eq!(s(&[1, 2]).apriori_join(&s(&[1, 3])), Some(s(&[1, 2, 3])));
        // Wrong order.
        assert_eq!(s(&[1, 3]).apriori_join(&s(&[1, 2])), None);
        // Differing prefixes.
        assert_eq!(s(&[1, 2]).apriori_join(&s(&[2, 3])), None);
        // Level-1 join.
        assert_eq!(s(&[1]).apriori_join(&s(&[2])), Some(s(&[1, 2])));
        // Equal sets never join.
        assert_eq!(s(&[1, 2]).apriori_join(&s(&[1, 2])), None);
    }

    #[test]
    fn subsets_of_size_enumerates_combinations() {
        let a = s(&[1, 2, 3, 4]);
        let subs: Vec<_> = a.subsets_of_size(2).collect();
        assert_eq!(subs.len(), 6);
        assert_eq!(subs[0], s(&[1, 2]));
        assert_eq!(subs[5], s(&[3, 4]));
        assert_eq!(a.subsets_of_size(0).count(), 1);
        assert_eq!(a.subsets_of_size(4).count(), 1);
        assert_eq!(a.subsets_of_size(5).count(), 0);
    }

    #[test]
    fn all_nonempty_subsets_count() {
        let a = s(&[1, 2, 3]);
        let subs = a.all_nonempty_subsets();
        assert_eq!(subs.len(), 7);
        assert!(subs.contains(&s(&[1, 3])));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(s(&[1, 2]) < s(&[1, 3]));
        assert!(s(&[1]) < s(&[1, 2]));
        assert!(s(&[2]) > s(&[1, 9, 10]));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", s(&[1, 2, 3])), "{1,2,3}");
        assert_eq!(format!("{}", Itemset::empty()), "{}");
    }
}

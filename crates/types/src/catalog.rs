//! The item attribute catalog — the paper's `itemInfo(Item, Type, Price)`
//! auxiliary relation, generalized to any number of numeric and categorical
//! columns.

use crate::hash::FxHashMap;
use crate::item::ItemId;
use crate::itemset::Itemset;
use crate::{CfqError, Result};

/// Identifier of an attribute column in a [`Catalog`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AttrId(pub u32);

/// Identifier of an interned categorical symbol (e.g. the type `"Snacks"`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SymbolId(pub u32);

/// The kind of an attribute column.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttrKind {
    /// Numeric (`Price`-like): supports `min/max/sum/avg` aggregates.
    Num,
    /// Categorical (`Type`-like): supports domain/set constraints and
    /// `count(distinct)`-style class constraints.
    Cat,
}

enum Column {
    Num(Vec<f64>),
    Cat(Vec<SymbolId>),
}

/// Columnar per-item attribute store.
///
/// A catalog for `n` items holds, per attribute, a dense column of `n`
/// values. Values of categorical columns are interned [`SymbolId`]s; the
/// interner is shared across all categorical columns so symbol equality is
/// catalog-wide (the paper compares `S.Type` with `T.Type` directly).
pub struct Catalog {
    n_items: usize,
    names: Vec<String>,
    name_index: FxHashMap<String, AttrId>,
    columns: Vec<Column>,
    symbols: Vec<String>,
    symbol_index: FxHashMap<String, SymbolId>,
}

/// Builder for [`Catalog`]. Validates column lengths and rejects NaNs so the
/// rest of the workspace can use `f64::total_cmp` safely.
pub struct CatalogBuilder {
    catalog: Catalog,
}

impl CatalogBuilder {
    /// Starts a catalog for `n_items` items.
    pub fn new(n_items: usize) -> Self {
        CatalogBuilder {
            catalog: Catalog {
                n_items,
                names: Vec::new(),
                name_index: FxHashMap::default(),
                columns: Vec::new(),
                symbols: Vec::new(),
                symbol_index: FxHashMap::default(),
            },
        }
    }

    fn add_column(&mut self, name: &str, col: Column) -> Result<AttrId> {
        if self.catalog.name_index.contains_key(name) {
            return Err(CfqError::Attr(format!("duplicate attribute `{name}`")));
        }
        let id = AttrId(self.catalog.columns.len() as u32);
        self.catalog.names.push(name.to_string());
        self.catalog.name_index.insert(name.to_string(), id);
        self.catalog.columns.push(col);
        Ok(id)
    }

    /// Adds a numeric column. `values[i]` is the value for item `i`.
    pub fn num_attr(&mut self, name: &str, values: Vec<f64>) -> Result<AttrId> {
        if values.len() != self.catalog.n_items {
            return Err(CfqError::Attr(format!(
                "attribute `{name}` has {} values, catalog holds {} items",
                values.len(),
                self.catalog.n_items
            )));
        }
        if values.iter().any(|v| v.is_nan()) {
            return Err(CfqError::Attr(format!("attribute `{name}` contains NaN")));
        }
        self.add_column(name, Column::Num(values))
    }

    /// Adds a categorical column from string labels, interning the symbols.
    pub fn cat_attr<S: AsRef<str>>(&mut self, name: &str, labels: &[S]) -> Result<AttrId> {
        if labels.len() != self.catalog.n_items {
            return Err(CfqError::Attr(format!(
                "attribute `{name}` has {} values, catalog holds {} items",
                labels.len(),
                self.catalog.n_items
            )));
        }
        let ids: Vec<SymbolId> =
            labels.iter().map(|l| self.intern(l.as_ref())).collect();
        self.add_column(name, Column::Cat(ids))
    }

    /// Interns a symbol, returning its id (idempotent).
    pub fn intern(&mut self, sym: &str) -> SymbolId {
        if let Some(&id) = self.catalog.symbol_index.get(sym) {
            return id;
        }
        let id = SymbolId(self.catalog.symbols.len() as u32);
        self.catalog.symbols.push(sym.to_string());
        self.catalog.symbol_index.insert(sym.to_string(), id);
        id
    }

    /// Finishes the catalog.
    pub fn build(self) -> Catalog {
        self.catalog
    }
}

impl Catalog {
    /// An attribute-less catalog (queries over bare `S`, `T` only).
    pub fn empty(n_items: usize) -> Catalog {
        CatalogBuilder::new(n_items).build()
    }

    /// Number of items covered by this catalog.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of attribute columns.
    pub fn n_attrs(&self) -> usize {
        self.columns.len()
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.name_index.get(name).copied()
    }

    /// Looks up an attribute by name, erroring with context when absent.
    pub fn require_attr(&self, name: &str) -> Result<AttrId> {
        self.attr(name)
            .ok_or_else(|| CfqError::Attr(format!("no attribute `{name}` in catalog")))
    }

    /// The name of an attribute.
    pub fn attr_name(&self, attr: AttrId) -> &str {
        &self.names[attr.0 as usize]
    }

    /// The kind (numeric / categorical) of an attribute.
    pub fn kind(&self, attr: AttrId) -> AttrKind {
        match self.columns[attr.0 as usize] {
            Column::Num(_) => AttrKind::Num,
            Column::Cat(_) => AttrKind::Cat,
        }
    }

    /// Numeric value of `attr` for `item`. Panics if the column is
    /// categorical (callers validate kinds at plan time).
    #[inline]
    pub fn num(&self, attr: AttrId, item: ItemId) -> f64 {
        match &self.columns[attr.0 as usize] {
            Column::Num(v) => v[item.index()],
            Column::Cat(_) => panic!("attribute {} is categorical", self.attr_name(attr)),
        }
    }

    /// Categorical value of `attr` for `item`. Panics if numeric.
    #[inline]
    pub fn cat(&self, attr: AttrId, item: ItemId) -> SymbolId {
        match &self.columns[attr.0 as usize] {
            Column::Cat(v) => v[item.index()],
            Column::Num(_) => panic!("attribute {} is numeric", self.attr_name(attr)),
        }
    }

    /// Resolves a symbol name to its id, if interned.
    pub fn symbol(&self, name: &str) -> Option<SymbolId> {
        self.symbol_index.get(name).copied()
    }

    /// The label of a symbol id.
    pub fn symbol_name(&self, id: SymbolId) -> &str {
        &self.symbols[id.0 as usize]
    }

    /// Number of interned symbols.
    pub fn n_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// The *value key* of `attr` for `item`: a catalog-wide 64-bit encoding
    /// under which two values are equal iff the attribute values are equal.
    ///
    /// Domain constraints such as `S.A ∩ T.B = ∅` compare *value sets*; this
    /// encoding lets numeric and categorical attributes share one code path.
    /// A bare variable (no attribute) uses the item id itself — see
    /// [`Catalog::value_set`].
    #[inline]
    pub fn value_key(&self, attr: AttrId, item: ItemId) -> u64 {
        match &self.columns[attr.0 as usize] {
            Column::Num(v) => v[item.index()].to_bits(),
            Column::Cat(v) => v[item.index()].0 as u64,
        }
    }

    /// The sorted, deduplicated set of value keys `X.A` for an itemset `X`,
    /// i.e. the paper's `S.A` treated as a set. With `attr = None` the
    /// "values" are the item ids themselves (the constraint is over the bare
    /// variable, e.g. `S ∩ T = ∅`).
    pub fn value_set(&self, attr: Option<AttrId>, set: &Itemset) -> Vec<u64> {
        let mut v: Vec<u64> = match attr {
            None => set.iter().map(|i| i.0 as u64).collect(),
            Some(a) => set.iter().map(|i| self.value_key(a, i)).collect(),
        };
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Iterator over numeric values of `attr` across `set`'s items.
    pub fn num_values<'a>(
        &'a self,
        attr: AttrId,
        set: &'a Itemset,
    ) -> impl Iterator<Item = f64> + 'a {
        set.iter().map(move |i| self.num(attr, i))
    }

    /// `min` aggregate of a numeric attribute over a set (None if empty).
    pub fn min_num(&self, attr: AttrId, set: &Itemset) -> Option<f64> {
        self.num_values(attr, set).min_by(|a, b| a.total_cmp(b))
    }

    /// `max` aggregate of a numeric attribute over a set (None if empty).
    pub fn max_num(&self, attr: AttrId, set: &Itemset) -> Option<f64> {
        self.num_values(attr, set).max_by(|a, b| a.total_cmp(b))
    }

    /// `sum` aggregate of a numeric attribute over a set (0 for empty).
    pub fn sum_num(&self, attr: AttrId, set: &Itemset) -> f64 {
        self.num_values(attr, set).sum()
    }

    /// `avg` aggregate of a numeric attribute over a set (None if empty).
    pub fn avg_num(&self, attr: AttrId, set: &Itemset) -> Option<f64> {
        if set.is_empty() {
            None
        } else {
            Some(self.sum_num(attr, set) / set.len() as f64)
        }
    }

    /// `count(distinct X.A)` — the paper's class constraint building block
    /// (`count(S.Type) = 1` means "all items of one type").
    pub fn count_distinct(&self, attr: Option<AttrId>, set: &Itemset) -> usize {
        self.value_set(attr, set).len()
    }

    /// The minimum value of a numeric column across *all* items (None for
    /// an empty catalog). Used to decide whether `sum` constraints are
    /// anti-monotone (they are only for non-negative domains, the paper's
    /// standing assumption in §5).
    pub fn column_min_num(&self, attr: AttrId) -> Option<f64> {
        match &self.columns[attr.0 as usize] {
            Column::Num(v) => v.iter().copied().min_by(f64::total_cmp),
            Column::Cat(_) => panic!("attribute {} is categorical", self.attr_name(attr)),
        }
    }

    /// The maximum value of a numeric column across *all* items (None for
    /// an empty catalog). Together with [`Catalog::column_min_num`] this
    /// bounds every possible aggregate, which lets the classifier fold
    /// trivially-true/false min/max comparisons into anti-monotone ones and
    /// recognize non-positive domains for `sum ≥ v`.
    pub fn column_max_num(&self, attr: AttrId) -> Option<f64> {
        match &self.columns[attr.0 as usize] {
            Column::Num(v) => v.iter().copied().max_by(f64::total_cmp),
            Column::Cat(_) => panic!("attribute {} is categorical", self.attr_name(attr)),
        }
    }

    /// All items whose numeric `attr` satisfies the predicate. Used to
    /// compile succinct constraints into item filters (the MGF in
    /// executable form).
    pub fn items_where_num<F: Fn(f64) -> bool>(&self, attr: AttrId, pred: F) -> Vec<ItemId> {
        match &self.columns[attr.0 as usize] {
            Column::Num(v) => v
                .iter()
                .enumerate()
                .filter(|(_, &x)| pred(x))
                .map(|(i, _)| ItemId(i as u32))
                .collect(),
            Column::Cat(_) => panic!("attribute {} is categorical", self.attr_name(attr)),
        }
    }

    /// All items whose value key satisfies the predicate (attribute-generic
    /// variant of [`Catalog::items_where_num`]).
    pub fn items_where_key<F: Fn(u64) -> bool>(
        &self,
        attr: Option<AttrId>,
        pred: F,
    ) -> Vec<ItemId> {
        (0..self.n_items as u32)
            .map(ItemId)
            .filter(|&i| {
                let key = match attr {
                    None => i.0 as u64,
                    Some(a) => self.value_key(a, i),
                };
                pred(key)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(4);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        b.cat_attr("Type", &["Snacks", "Beers", "Snacks", "Dairy"]).unwrap();
        b.build()
    }

    #[test]
    fn lookup_and_kinds() {
        let c = catalog();
        let price = c.attr("Price").unwrap();
        let ty = c.attr("Type").unwrap();
        assert_eq!(c.kind(price), AttrKind::Num);
        assert_eq!(c.kind(ty), AttrKind::Cat);
        assert_eq!(c.attr_name(price), "Price");
        assert!(c.attr("Weight").is_none());
        assert!(c.require_attr("Weight").is_err());
    }

    #[test]
    fn values_and_symbols() {
        let c = catalog();
        let price = c.attr("Price").unwrap();
        let ty = c.attr("Type").unwrap();
        assert_eq!(c.num(price, ItemId(2)), 30.0);
        let snacks = c.symbol("Snacks").unwrap();
        assert_eq!(c.cat(ty, ItemId(0)), snacks);
        assert_eq!(c.cat(ty, ItemId(2)), snacks);
        assert_eq!(c.symbol_name(snacks), "Snacks");
        assert_eq!(c.n_symbols(), 3);
        assert!(c.symbol("Tools").is_none());
    }

    #[test]
    fn aggregates() {
        let c = catalog();
        let price = c.attr("Price").unwrap();
        let set: Itemset = [0u32, 1, 3].into();
        assert_eq!(c.min_num(price, &set), Some(10.0));
        assert_eq!(c.max_num(price, &set), Some(40.0));
        assert_eq!(c.sum_num(price, &set), 70.0);
        assert_eq!(c.avg_num(price, &set), Some(70.0 / 3.0));
        assert_eq!(c.min_num(price, &Itemset::empty()), None);
        assert_eq!(c.avg_num(price, &Itemset::empty()), None);
        assert_eq!(c.sum_num(price, &Itemset::empty()), 0.0);
    }

    #[test]
    fn value_sets_dedupe() {
        let c = catalog();
        let ty = c.attr("Type").unwrap();
        // Items 0 and 2 are both Snacks: value set has 2 entries.
        let set: Itemset = [0u32, 1, 2].into();
        assert_eq!(c.value_set(Some(ty), &set).len(), 2);
        assert_eq!(c.count_distinct(Some(ty), &set), 2);
        // Bare variable: values are the item ids.
        assert_eq!(c.value_set(None, &set), vec![0, 1, 2]);
    }

    #[test]
    fn item_filters() {
        let c = catalog();
        let price = c.attr("Price").unwrap();
        let cheap = c.items_where_num(price, |p| p <= 20.0);
        assert_eq!(cheap, vec![ItemId(0), ItemId(1)]);
        let ty = c.attr("Type").unwrap();
        let snacks = c.symbol("Snacks").unwrap();
        let snack_items = c.items_where_key(Some(ty), |k| k == snacks.0 as u64);
        assert_eq!(snack_items, vec![ItemId(0), ItemId(2)]);
    }

    #[test]
    fn builder_validation() {
        let mut b = CatalogBuilder::new(2);
        assert!(b.num_attr("P", vec![1.0]).is_err());
        assert!(b.num_attr("P", vec![1.0, f64::NAN]).is_err());
        b.num_attr("P", vec![1.0, 2.0]).unwrap();
        assert!(b.num_attr("P", vec![1.0, 2.0]).is_err());
        assert!(b.cat_attr("T", &["a"]).is_err());
    }

    #[test]
    #[should_panic(expected = "categorical")]
    fn num_on_cat_panics() {
        let c = catalog();
        let ty = c.attr("Type").unwrap();
        c.num(ty, ItemId(0));
    }
}

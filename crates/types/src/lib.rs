#![warn(missing_docs)]

//! # cfq-types
//!
//! Foundational data types shared by every crate in the `cfq` workspace:
//!
//! * [`ItemId`] — a compact item identifier.
//! * [`Itemset`] — an immutable, sorted, duplicate-free set of items with
//!   the algebra needed by levelwise mining (subset tests, joins, k-subsets).
//! * [`TransactionDb`] — a horizontal transaction database, plus projection
//!   onto derived domains (e.g. the *Type* domain of the paper's `itemInfo`
//!   relation, so that the second query variable `T` may range over a domain
//!   different from `Item`).
//! * [`Catalog`] — a columnar attribute store modelling the paper's
//!   auxiliary relation `itemInfo(Item, Type, Price, ...)`.
//! * [`hash`] — a fast Fx-style hasher used for itemset hash maps.
//!
//! The paper is *Optimization of Constrained Frequent Set Queries with
//! 2-variable Constraints* (Lakshmanan, Ng, Han, Pang; SIGMOD 1999). These
//! types deliberately mirror its vocabulary: `S`-sets and `T`-sets are both
//! [`Itemset`]s, attributes like `S.Price` are [`AttrId`]s resolved against a
//! [`Catalog`].

pub mod catalog;
pub mod error;
pub mod hash;
pub mod item;
pub mod itemset;
pub mod transaction;

pub use catalog::{AttrId, AttrKind, Catalog, CatalogBuilder, SymbolId};
pub use error::{CfqError, Result};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use item::ItemId;
pub use itemset::Itemset;
pub use transaction::{contains_sorted, DbChunk, TransactionDb};

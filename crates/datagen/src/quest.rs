//! The IBM Almaden (Quest) synthetic transaction generator.
//!
//! Reimplements the generator of Agrawal & Srikant, *Fast Algorithms for
//! Mining Association Rules* (VLDB 1994) §"Synthetic data", which the paper
//! under reproduction uses for every experiment. The process:
//!
//! 1. Draw `n_patterns` *potentially large itemsets*. Pattern sizes are
//!    Poisson with mean `avg_pattern_len` (min 1). Items of the first
//!    pattern are uniform; each later pattern reuses a prefix of the
//!    previous pattern — the reused fraction is exponentially distributed
//!    with mean `correlation` — and fills the rest uniformly.
//! 2. Each pattern gets a weight ~ Exp(1) (normalized over all patterns)
//!    and a *corruption level* ~ N(0.5, 0.1²) clamped to [0, 1].
//! 3. Each transaction draws a size ~ Poisson(`avg_trans_len`) (min 1),
//!    then packs weighted-random patterns into it. Before insertion a
//!    pattern is *corrupted*: items are dropped from it while a uniform
//!    draw is below its corruption level. If a corrupted pattern overflows
//!    the remaining budget it is still inserted with probability ½,
//!    otherwise it is carried over to the next transaction.
//!
//! The defaults mirror the paper's database: 100,000 transactions over
//! 1,000 items (a T10.I4 workload with 2,000 patterns).

use crate::dist;
use cfq_types::{CfqError, ItemId, Result, TransactionDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the Quest generator. Field names follow the conventional
/// `T..I..D..` notation from the VLDB'94 paper.
#[derive(Clone, Debug)]
pub struct QuestConfig {
    /// `N` — size of the item universe. Paper: 1000.
    pub n_items: usize,
    /// `|D|` — number of transactions. Paper: 100,000.
    pub n_transactions: usize,
    /// `|T|` — average transaction size. Classic T10 workload: 10.
    pub avg_trans_len: f64,
    /// `|I|` — average size of the potentially large itemsets. Classic: 4.
    pub avg_pattern_len: f64,
    /// `|L|` — number of potentially large itemsets. Classic: 2000.
    pub n_patterns: usize,
    /// Mean of the exponentially distributed correlation (fraction of a
    /// pattern inherited from its predecessor). Classic: 0.5.
    pub correlation: f64,
    /// Mean / std-dev of the per-pattern corruption level. Classic: 0.5/0.1.
    pub corruption_mean: f64,
    /// Standard deviation of the corruption level.
    pub corruption_sd: f64,
    /// RNG seed — the generator is fully deterministic given the config.
    pub seed: u64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            n_items: 1000,
            n_transactions: 100_000,
            avg_trans_len: 10.0,
            avg_pattern_len: 4.0,
            n_patterns: 2000,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
            seed: 19990601, // SIGMOD '99
        }
    }
}

impl QuestConfig {
    /// A small configuration for unit tests and quick examples.
    pub fn tiny() -> Self {
        QuestConfig {
            n_items: 50,
            n_transactions: 500,
            avg_trans_len: 8.0,
            avg_pattern_len: 3.0,
            n_patterns: 40,
            ..QuestConfig::default()
        }
    }

    /// A bench-scale configuration: same workload *shape* as the paper's
    /// 100k×1000 database, scaled down so the full experiment matrix runs
    /// in minutes. `scale` multiplies the transaction count (1.0 = paper).
    pub fn paper_scaled(scale: f64) -> Self {
        let base = QuestConfig::default();
        QuestConfig {
            n_transactions: ((base.n_transactions as f64) * scale).round().max(1.0) as usize,
            ..base
        }
    }

    fn validate(&self) -> Result<()> {
        if self.n_items == 0 {
            return Err(CfqError::Config("n_items must be positive".into()));
        }
        if self.n_patterns == 0 {
            return Err(CfqError::Config("n_patterns must be positive".into()));
        }
        if self.avg_trans_len <= 0.0 || self.avg_pattern_len <= 0.0 {
            return Err(CfqError::Config("average lengths must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.corruption_mean) {
            return Err(CfqError::Config("corruption_mean must be in [0,1]".into()));
        }
        Ok(())
    }
}

struct Pattern {
    items: Vec<ItemId>,
    corruption: f64,
}

/// Runs the generator, producing a [`TransactionDb`].
pub fn generate_transactions(cfg: &QuestConfig) -> Result<TransactionDb> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let (patterns, cumulative) = generate_patterns(cfg, &mut rng);

    let mut transactions = Vec::with_capacity(cfg.n_transactions);
    // A corrupted pattern that overflowed the previous transaction.
    let mut carried: Option<Vec<ItemId>> = None;

    for _ in 0..cfg.n_transactions {
        let size = dist::poisson(&mut rng, cfg.avg_trans_len).max(1) as usize;
        let mut tx: Vec<ItemId> = Vec::with_capacity(size + 4);

        if let Some(c) = carried.take() {
            tx.extend_from_slice(&c);
        }

        while tx.len() < size {
            let pi = dist::weighted_index(&mut rng, &cumulative);
            let corrupted = corrupt(&patterns[pi], &mut rng);
            if corrupted.is_empty() {
                continue;
            }
            if tx.len() + corrupted.len() > size && !tx.is_empty() {
                // Overflow: insert anyway half the time, else carry over.
                if rng.gen::<bool>() {
                    tx.extend_from_slice(&corrupted);
                } else {
                    carried = Some(corrupted);
                }
                break;
            }
            tx.extend_from_slice(&corrupted);
        }

        if tx.is_empty() {
            // Extremely unlikely (requires repeated total corruption), but
            // keep the database well-formed with a random singleton.
            tx.push(ItemId(rng.gen_range(0..cfg.n_items as u32)));
        }
        transactions.push(tx);
    }

    TransactionDb::new(cfg.n_items, transactions)
}

fn generate_patterns(cfg: &QuestConfig, rng: &mut StdRng) -> (Vec<Pattern>, Vec<f64>) {
    let mut patterns: Vec<Pattern> = Vec::with_capacity(cfg.n_patterns);
    let mut cumulative = Vec::with_capacity(cfg.n_patterns);
    let mut total = 0.0f64;

    for p in 0..cfg.n_patterns {
        let len = (dist::poisson(rng, cfg.avg_pattern_len).max(1) as usize).min(cfg.n_items);
        let mut items: Vec<ItemId> = Vec::with_capacity(len);

        if p > 0 {
            let prev = &patterns[p - 1].items;
            let frac = dist::exponential(rng, cfg.correlation).min(1.0);
            let reuse = ((frac * len as f64).round() as usize).min(prev.len());
            items.extend_from_slice(&prev[..reuse]);
        }
        while items.len() < len {
            let cand = ItemId(rng.gen_range(0..cfg.n_items as u32));
            if !items.contains(&cand) {
                items.push(cand);
            }
        }

        let corruption =
            dist::normal(rng, cfg.corruption_mean, cfg.corruption_sd).clamp(0.0, 1.0);
        let weight = dist::exponential(rng, 1.0);
        total += weight;
        cumulative.push(total);
        patterns.push(Pattern { items, corruption });
    }

    (patterns, cumulative)
}

/// Drops items from the tail of a pattern while a uniform draw stays below
/// its corruption level (the VLDB'94 corruption step).
fn corrupt(pattern: &Pattern, rng: &mut StdRng) -> Vec<ItemId> {
    let mut keep = pattern.items.len();
    while keep > 0 && rng.gen::<f64>() < pattern.corruption {
        keep -= 1;
    }
    pattern.items[..keep].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = QuestConfig::tiny();
        let a = generate_transactions(&cfg).unwrap();
        let b = generate_transactions(&cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.transaction(i), b.transaction(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_transactions(&QuestConfig::tiny()).unwrap();
        let b = generate_transactions(&QuestConfig { seed: 7, ..QuestConfig::tiny() }).unwrap();
        let differs = (0..a.len()).any(|i| a.transaction(i) != b.transaction(i));
        assert!(differs);
    }

    #[test]
    fn shape_matches_parameters() {
        let cfg = QuestConfig {
            n_items: 200,
            n_transactions: 3000,
            avg_trans_len: 10.0,
            avg_pattern_len: 4.0,
            n_patterns: 100,
            ..QuestConfig::default()
        };
        let db = generate_transactions(&cfg).unwrap();
        assert_eq!(db.len(), 3000);
        assert_eq!(db.n_items(), 200);
        let avg = db.avg_transaction_len();
        // Corruption and packing make the realized mean drift from |T|, but
        // it must stay in the right ballpark.
        assert!(avg > 5.0 && avg < 15.0, "avg transaction len {avg}");
    }

    #[test]
    fn produces_frequent_patterns() {
        // The whole point of Quest data: some itemsets are much more
        // frequent than independence would allow. Check that at least one
        // pair has support far above (p1 * p2) * |D|.
        let cfg = QuestConfig {
            n_items: 100,
            n_transactions: 2000,
            avg_trans_len: 8.0,
            avg_pattern_len: 4.0,
            n_patterns: 20,
            ..QuestConfig::default()
        };
        let db = generate_transactions(&cfg).unwrap();
        let n = db.len() as f64;
        let mut single = vec![0u64; cfg.n_items];
        for t in db.iter() {
            for &i in t {
                single[i.index()] += 1;
            }
        }
        // Take the two most frequent items and measure pair lift.
        let mut order: Vec<usize> = (0..cfg.n_items).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(single[i]));
        let mut found_lift = false;
        'outer: for &a in order.iter().take(10) {
            for &b in order.iter().take(10) {
                if a >= b {
                    continue;
                }
                let pair: cfq_types::Itemset = [a as u32, b as u32].into();
                let sup = db.support(&pair) as f64;
                let expected = (single[a] as f64 / n) * (single[b] as f64 / n) * n;
                if sup > 2.0 * expected && sup > 20.0 {
                    found_lift = true;
                    break 'outer;
                }
            }
        }
        assert!(found_lift, "no correlated pair found — generator looks independent");
    }

    #[test]
    fn validation_errors() {
        assert!(generate_transactions(&QuestConfig { n_items: 0, ..QuestConfig::tiny() }).is_err());
        assert!(
            generate_transactions(&QuestConfig { n_patterns: 0, ..QuestConfig::tiny() }).is_err()
        );
        assert!(generate_transactions(&QuestConfig {
            corruption_mean: 1.5,
            ..QuestConfig::tiny()
        })
        .is_err());
        assert!(generate_transactions(&QuestConfig {
            avg_trans_len: 0.0,
            ..QuestConfig::tiny()
        })
        .is_err());
    }

    #[test]
    fn paper_scaled_scales_transactions_only() {
        let c = QuestConfig::paper_scaled(0.1);
        assert_eq!(c.n_transactions, 10_000);
        assert_eq!(c.n_items, 1000);
        assert_eq!(c.n_patterns, 2000);
    }
}

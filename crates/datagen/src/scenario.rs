//! Builders for the §7 experiment setups.
//!
//! Every experiment in the paper combines the Quest transaction database
//! with an `itemInfo` catalog shaped to give the constraints a controlled
//! selectivity:
//!
//! * §7.1 (Fig. 8(a)): the item universe is split into an S-domain and a
//!   T-domain (the paper's §3 setting of two domains; footnote 2 notes that
//!   1-var constraints can equivalently force the variables into different
//!   parts of one domain). S-items draw `Price ~ U[400, 1000]`, T-items
//!   `Price ~ U[0, v]`; the x-axis is the percentage overlap of the ranges.
//! * §7.2 (Fig. 8(b)): one shared domain; `Price ~ U[0, 1000]`; `Type`
//!   assigned from two pools with a controlled overlap percentage between
//!   the types of cheap items (S-eligible) and expensive items (T-eligible).
//! * §7.3: split domains with *normally* distributed prices (S: μ=1000,
//!   σ²=100; T: μ ∈ {400..1000}, same variance).

use crate::quest::{generate_transactions, QuestConfig};
use cfq_types::{Catalog, CatalogBuilder, ItemId, Result, TransactionDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully materialized experiment scenario: transactions, the `itemInfo`
/// catalog, and the item domains of the two query variables.
pub struct Scenario {
    /// The transaction database (shared by both variables).
    pub db: TransactionDb,
    /// Item attributes (`Price`, and `Type` where the experiment needs it).
    pub catalog: Catalog,
    /// The domain of variable `S` (universe restriction; ascending).
    pub s_items: Vec<ItemId>,
    /// The domain of variable `T` (universe restriction; ascending).
    pub t_items: Vec<ItemId>,
}

/// Percentage overlap between `[s_lo, s_hi]` and `[t_lo, t_hi]` as the paper
/// computes it for Fig. 8(a): `100 * (t_hi - s_lo) / (s_hi - s_lo)`,
/// clamped to `[0, 100]`.
pub fn range_overlap_percent(s_range: (f64, f64), t_range: (f64, f64)) -> f64 {
    let (s_lo, s_hi) = s_range;
    let (_, t_hi) = t_range;
    (100.0 * (t_hi - s_lo) / (s_hi - s_lo)).clamp(0.0, 100.0)
}

/// Configurable scenario builder over a single Quest database.
pub struct ScenarioBuilder {
    quest: QuestConfig,
    attr_seed: u64,
}

impl ScenarioBuilder {
    /// Starts a builder from Quest parameters. Attribute randomness is
    /// seeded independently of the transaction stream so the same database
    /// can carry different catalogs.
    pub fn new(quest: QuestConfig) -> Self {
        let attr_seed = quest.seed ^ 0xA77F_5EED;
        ScenarioBuilder { quest, attr_seed }
    }

    /// Overrides the attribute seed.
    pub fn attr_seed(mut self, seed: u64) -> Self {
        self.attr_seed = seed;
        self
    }

    /// §7.1 setup: even-indexed items form the S-domain with
    /// `Price ~ U[s_range]`, odd-indexed items the T-domain with
    /// `Price ~ U[t_range]`.
    pub fn split_uniform_prices(
        &self,
        s_range: (f64, f64),
        t_range: (f64, f64),
    ) -> Result<Scenario> {
        let db = generate_transactions(&self.quest)?;
        let n = self.quest.n_items;
        let mut rng = StdRng::seed_from_u64(self.attr_seed);
        let mut prices = vec![0.0f64; n];
        let mut s_items = Vec::with_capacity(n / 2 + 1);
        let mut t_items = Vec::with_capacity(n / 2 + 1);
        for (i, price) in prices.iter_mut().enumerate() {
            if i % 2 == 0 {
                *price = rng.gen_range(s_range.0..=s_range.1);
                s_items.push(ItemId(i as u32));
            } else {
                *price = rng.gen_range(t_range.0..=t_range.1);
                t_items.push(ItemId(i as u32));
            }
        }
        let mut b = CatalogBuilder::new(n);
        b.num_attr("Price", prices)?;
        Ok(Scenario { db, catalog: b.build(), s_items, t_items })
    }

    /// §7.3 setup: like [`Self::split_uniform_prices`] but prices are
    /// normal, clamped to be non-negative (the paper's sum/avg machinery
    /// assumes non-negative attribute domains).
    pub fn split_normal_prices(
        &self,
        s_mean: f64,
        s_sd: f64,
        t_mean: f64,
        t_sd: f64,
    ) -> Result<Scenario> {
        let db = generate_transactions(&self.quest)?;
        let n = self.quest.n_items;
        let mut rng = StdRng::seed_from_u64(self.attr_seed);
        let mut prices = vec![0.0f64; n];
        let mut s_items = Vec::with_capacity(n / 2 + 1);
        let mut t_items = Vec::with_capacity(n / 2 + 1);
        for (i, price) in prices.iter_mut().enumerate() {
            if i % 2 == 0 {
                *price = crate::dist::normal(&mut rng, s_mean, s_sd).max(0.0);
                s_items.push(ItemId(i as u32));
            } else {
                *price = crate::dist::normal(&mut rng, t_mean, t_sd).max(0.0);
                t_items.push(ItemId(i as u32));
            }
        }
        let mut b = CatalogBuilder::new(n);
        b.num_attr("Price", prices)?;
        Ok(Scenario { db, catalog: b.build(), s_items, t_items })
    }

    /// §7.2 setup: one shared domain. `Price ~ U[0, 1000]`. Types come from
    /// two pools of `types_per_side` types each, sharing
    /// `round(overlap_percent/100 × types_per_side)` types. Items that are
    /// S-eligible (`price ≤ s_price_max`) draw from the S pool, T-eligible
    /// items (`price ≥ t_price_min`) from the T pool, and mid-range items
    /// from the union.
    pub fn typed_overlap(
        &self,
        s_price_max: f64,
        t_price_min: f64,
        types_per_side: usize,
        overlap_percent: f64,
    ) -> Result<Scenario> {
        let db = generate_transactions(&self.quest)?;
        let n = self.quest.n_items;
        let mut rng = StdRng::seed_from_u64(self.attr_seed);

        let shared = ((overlap_percent / 100.0) * types_per_side as f64).round() as usize;
        let shared = shared.min(types_per_side);
        let distinct = types_per_side - shared;
        // Type name layout: shared types, then S-only, then T-only.
        let n_types = shared + 2 * distinct;
        let type_name = |t: usize| format!("Ty{t}");
        let s_pool: Vec<usize> = (0..shared).chain(shared..shared + distinct).collect();
        let t_pool: Vec<usize> =
            (0..shared).chain(shared + distinct..shared + 2 * distinct).collect();
        let all_pool: Vec<usize> = (0..n_types).collect();

        let mut prices = vec![0.0f64; n];
        let mut labels = Vec::with_capacity(n);
        for price in prices.iter_mut() {
            *price = rng.gen_range(0.0..=1000.0);
            let pool = if *price <= s_price_max {
                &s_pool
            } else if *price >= t_price_min {
                &t_pool
            } else {
                &all_pool
            };
            let t = pool[rng.gen_range(0..pool.len())];
            labels.push(type_name(t));
        }

        let mut b = CatalogBuilder::new(n);
        b.num_attr("Price", prices)?;
        b.cat_attr("Type", &labels)?;
        let all: Vec<ItemId> = (0..n as u32).map(ItemId).collect();
        Ok(Scenario { db, catalog: b.build(), s_items: all.clone(), t_items: all })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new(QuestConfig::tiny())
    }

    #[test]
    fn overlap_percent_matches_paper_examples() {
        // v = 500 → 16.6%, v = 700 → 50% (paper §7.1).
        let p1 = range_overlap_percent((400.0, 1000.0), (0.0, 500.0));
        assert!((p1 - 16.666).abs() < 0.1, "{p1}");
        let p2 = range_overlap_percent((400.0, 1000.0), (0.0, 700.0));
        assert!((p2 - 50.0).abs() < 1e-9);
        assert_eq!(range_overlap_percent((400.0, 1000.0), (0.0, 300.0)), 0.0);
        assert_eq!(range_overlap_percent((400.0, 1000.0), (0.0, 2000.0)), 100.0);
    }

    #[test]
    fn split_uniform_assigns_ranges_by_domain() {
        let sc = builder().split_uniform_prices((400.0, 1000.0), (0.0, 500.0)).unwrap();
        let price = sc.catalog.attr("Price").unwrap();
        assert!(!sc.s_items.is_empty() && !sc.t_items.is_empty());
        for &i in &sc.s_items {
            let p = sc.catalog.num(price, i);
            assert!((400.0..=1000.0).contains(&p));
        }
        for &i in &sc.t_items {
            let p = sc.catalog.num(price, i);
            assert!((0.0..=500.0).contains(&p));
        }
        // Domains partition the universe.
        assert_eq!(sc.s_items.len() + sc.t_items.len(), sc.db.n_items());
    }

    #[test]
    fn split_normal_prices_have_right_means() {
        let quest = QuestConfig { n_items: 2000, n_transactions: 10, ..QuestConfig::tiny() };
        let sc = ScenarioBuilder::new(quest)
            .split_normal_prices(1000.0, 10.0, 400.0, 10.0)
            .unwrap();
        let price = sc.catalog.attr("Price").unwrap();
        let mean = |items: &[ItemId]| {
            items.iter().map(|&i| sc.catalog.num(price, i)).sum::<f64>() / items.len() as f64
        };
        assert!((mean(&sc.s_items) - 1000.0).abs() < 2.0);
        assert!((mean(&sc.t_items) - 400.0).abs() < 2.0);
    }

    #[test]
    fn typed_overlap_controls_type_pools() {
        let quest = QuestConfig { n_items: 3000, n_transactions: 10, ..QuestConfig::tiny() };
        let sc = ScenarioBuilder::new(quest).typed_overlap(400.0, 600.0, 10, 40.0).unwrap();
        let price = sc.catalog.attr("Price").unwrap();
        let ty = sc.catalog.attr("Type").unwrap();
        let mut s_types = std::collections::BTreeSet::new();
        let mut t_types = std::collections::BTreeSet::new();
        for i in 0..sc.db.n_items() as u32 {
            let p = sc.catalog.num(price, ItemId(i));
            let t = sc.catalog.cat(ty, ItemId(i));
            if p <= 400.0 {
                s_types.insert(t);
            } else if p >= 600.0 {
                t_types.insert(t);
            }
        }
        // 10 types per side with 40% overlap → 4 shared, 6 exclusive each.
        assert_eq!(s_types.len(), 10);
        assert_eq!(t_types.len(), 10);
        let shared: Vec<_> = s_types.intersection(&t_types).collect();
        assert_eq!(shared.len(), 4);
    }

    #[test]
    fn zero_and_full_overlap_edge_cases() {
        let quest = QuestConfig { n_items: 2000, n_transactions: 10, ..QuestConfig::tiny() };
        let sc0 = ScenarioBuilder::new(quest.clone()).typed_overlap(400.0, 600.0, 5, 0.0).unwrap();
        let sc100 = ScenarioBuilder::new(quest).typed_overlap(400.0, 600.0, 5, 100.0).unwrap();
        // 0% overlap → 10 types total; 100% → 5 types total.
        assert_eq!(sc0.catalog.n_symbols(), 10);
        assert_eq!(sc100.catalog.n_symbols(), 5);
    }

    #[test]
    fn same_attr_seed_reproduces_catalog() {
        let a = builder().split_uniform_prices((400.0, 1000.0), (0.0, 500.0)).unwrap();
        let b = builder().split_uniform_prices((400.0, 1000.0), (0.0, 500.0)).unwrap();
        let pa = a.catalog.attr("Price").unwrap();
        let pb = b.catalog.attr("Price").unwrap();
        for i in 0..a.db.n_items() as u32 {
            assert_eq!(a.catalog.num(pa, ItemId(i)), b.catalog.num(pb, ItemId(i)));
        }
    }
}

#![warn(missing_docs)]

//! # cfq-datagen
//!
//! Workload generation for the CFQ reproduction:
//!
//! * [`quest`] — a faithful Rust reimplementation of the IBM Almaden (Quest)
//!   synthetic transaction generator of Agrawal & Srikant (VLDB 1994), which
//!   the paper uses for all experiments ("We used the program developed at
//!   IBM Almaden Research Center to generate the transaction databases",
//!   §7). Deterministic given a seed.
//! * [`dist`] — the Poisson / exponential / normal samplers the generator
//!   needs, implemented in-house on top of `rand`'s uniform source (the
//!   `rand_distr` crate is outside the workspace dependency policy).
//! * [`scenario`] — builders for the `itemInfo` catalogs and item-domain
//!   splits of each §7 experiment (uniform price ranges with controlled
//!   overlap, Type assignment with controlled overlap, normal prices).
//! * [`io`] — plain-text dataset persistence, so benches can run against
//!   the exact same database across processes.

pub mod dist;
pub mod io;
pub mod quest;
pub mod scenario;

pub use quest::{generate_transactions, QuestConfig};
pub use scenario::{Scenario, ScenarioBuilder};

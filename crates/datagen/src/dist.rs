//! Random-variate samplers used by the Quest generator.
//!
//! Only uniform randomness is taken from `rand`; Poisson, exponential, and
//! normal variates are derived here with textbook methods (Knuth's product
//! method, inversion, Box–Muller). Precision requirements are mild — these
//! shape a synthetic workload — and every method is exact in distribution.

use rand::Rng;

/// Samples a Poisson variate with the given `mean` using Knuth's product
/// method. Suitable for the small means the Quest generator uses
/// (|T| ≈ 5–20, |I| ≈ 2–6); cost is O(mean).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean >= 0.0, "Poisson mean must be non-negative");
    if mean == 0.0 {
        return 0;
    }
    // For larger means, fall back to a normal approximation to keep cost
    // bounded; the generator never needs mean > 60 in practice.
    if mean > 60.0 {
        let n = normal(rng, mean, mean.sqrt());
        return n.max(0.0).round() as u64;
    }
    let l = (-mean).exp();
    let mut k: u64 = 0;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples an exponential variate with the given `mean` by inversion.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    // 1 - U avoids ln(0).
    -mean * (1.0 - rng.gen::<f64>()).ln()
}

/// Samples a normal variate via Box–Muller.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Weighted index sampling (roulette wheel) over cumulative weights.
///
/// `cumulative` must be non-decreasing with a positive final entry; returns
/// an index with probability proportional to the weight increments.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("non-empty weights");
    assert!(total > 0.0, "total weight must be positive");
    let x = rng.gen::<f64>() * total;
    match cumulative.binary_search_by(|c| c.total_cmp(&x)) {
        Ok(i) => (i + 1).min(cumulative.len() - 1),
        Err(i) => i.min(cumulative.len() - 1),
    }
}

/// A Zipf(θ) sampler over ranks `0..n`: rank `k` is drawn with
/// probability proportional to `1 / (k+1)^theta`. `theta = 0` is uniform;
/// larger values skew mass onto the lowest ranks — the shape of real
/// query traffic, where a few hot supports/universes dominate and a long
/// tail of rare ones keeps caches honest.
///
/// The cumulative table is precomputed once, so sampling is a binary
/// search: build it outside hot loops.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Precomputes the cumulative weights for `n` ranks at skew `theta`.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta >= 0.0, "Zipf skew must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        weighted_index(rng, &self.cumulative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn poisson_mean_and_variance() {
        let mut r = rng();
        let n = 20_000;
        let mean = 6.5;
        let samples: Vec<u64> = (0..n).map(|_| poisson(&mut r, mean)).collect();
        let m = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / n as f64;
        assert!((m - mean).abs() < 0.15, "sample mean {m} too far from {mean}");
        assert!((var - mean).abs() < 0.4, "sample var {var} too far from {mean}");
    }

    #[test]
    fn poisson_zero_and_large_mean() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
        let n = 5_000;
        let mean = 100.0; // exercises the normal-approximation branch
        let m = (0..n).map(|_| poisson(&mut r, mean)).sum::<u64>() as f64 / n as f64;
        assert!((m - mean).abs() < 1.5);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 50_000;
        let mean = 0.5;
        let m = (0..n).map(|_| exponential(&mut r, mean)).sum::<f64>() / n as f64;
        assert!((m - mean).abs() < 0.02);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let (mu, sd) = (1000.0, 10.0);
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, mu, sd)).collect();
        let m = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
        assert!((m - mu).abs() < 0.5);
        assert!((var.sqrt() - sd).abs() < 0.3);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        // Weights 1, 3 → cumulative [1, 4]; index 1 should appear ~75%.
        let cum = [1.0, 4.0];
        let n = 40_000;
        let ones = (0..n).filter(|_| weighted_index(&mut r, &cum) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn weighted_index_always_in_range() {
        let mut r = rng();
        let cum = [0.2, 0.2, 1.0]; // middle weight zero
        for _ in 0..10_000 {
            let i = weighted_index(&mut r, &cum);
            assert!(i < 3);
            assert_ne!(i, 1, "zero-weight index sampled");
        }
    }
}

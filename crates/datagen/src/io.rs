//! Plain-text dataset persistence.
//!
//! Format (line-oriented, human-inspectable):
//!
//! ```text
//! # cfq-transactions v1 n_items=<N>
//! <item> <item> ...          (one transaction per line, ascending ids)
//! ```

use cfq_types::{CfqError, ItemId, Result, TransactionDb};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const HEADER_PREFIX: &str = "# cfq-transactions v1 n_items=";

/// Writes a transaction database to `w`.
pub fn write_transactions<W: Write>(db: &TransactionDb, w: W) -> Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{HEADER_PREFIX}{}", db.n_items())?;
    let mut line = String::new();
    for t in db.iter() {
        line.clear();
        for (i, item) in t.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&item.0.to_string());
        }
        writeln!(w, "{line}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a transaction database from `r`.
pub fn read_transactions<R: Read>(r: R) -> Result<TransactionDb> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| CfqError::Io("empty transaction file".into()))??;
    let n_items: usize = header
        .strip_prefix(HEADER_PREFIX)
        .ok_or_else(|| CfqError::Io(format!("bad header: {header}")))?
        .trim()
        .parse()
        .map_err(|e| CfqError::Io(format!("bad n_items in header: {e}")))?;

    let mut transactions = Vec::new();
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let items: std::result::Result<Vec<ItemId>, _> = trimmed
            .split_ascii_whitespace()
            .map(|tok| tok.parse::<u32>().map(ItemId))
            .collect();
        let items = items.map_err(|e| CfqError::Io(format!("bad item id: {e}")))?;
        transactions.push(items);
    }
    TransactionDb::new(n_items, transactions)
}

/// Writes a database to a file path.
pub fn save_transactions<P: AsRef<Path>>(db: &TransactionDb, path: P) -> Result<()> {
    write_transactions(db, std::fs::File::create(path)?)
}

/// Reads a database from a file path.
pub fn load_transactions<P: AsRef<Path>>(path: P) -> Result<TransactionDb> {
    read_transactions(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quest::{generate_transactions, QuestConfig};

    #[test]
    fn roundtrip_in_memory() {
        let db = generate_transactions(&QuestConfig::tiny()).unwrap();
        let mut buf = Vec::new();
        write_transactions(&db, &mut buf).unwrap();
        let back = read_transactions(&buf[..]).unwrap();
        assert_eq!(back.len(), db.len());
        assert_eq!(back.n_items(), db.n_items());
        for i in 0..db.len() {
            assert_eq!(back.transaction(i), db.transaction(i));
        }
    }

    #[test]
    fn rejects_missing_header() {
        assert!(read_transactions(&b"1 2 3\n"[..]).is_err());
        assert!(read_transactions(&b""[..]).is_err());
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = format!("{HEADER_PREFIX}10\n\n# comment\n1 2 3\n");
        let db = read_transactions(text.as_bytes()).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.transaction(0).len(), 3);
    }

    #[test]
    fn rejects_bad_item_ids() {
        let text = format!("{HEADER_PREFIX}10\n1 x 3\n");
        assert!(read_transactions(text.as_bytes()).is_err());
        // Out-of-universe id rejected by TransactionDb validation.
        let text = format!("{HEADER_PREFIX}2\n5\n");
        assert!(read_transactions(text.as_bytes()).is_err());
    }
}

// ---------------------------------------------------------------------------
// Catalog persistence
// ---------------------------------------------------------------------------

use cfq_types::{AttrKind, Catalog, CatalogBuilder};

const CATALOG_HEADER_PREFIX: &str = "# cfq-catalog v1 n_items=";

/// Writes a catalog to `w`. Format:
///
/// ```text
/// # cfq-catalog v1 n_items=<N>
/// num <name> <v0> <v1> ...
/// cat <name> <label0> <label1> ...
/// ```
pub fn write_catalog<W: Write>(catalog: &Catalog, w: W) -> Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{CATALOG_HEADER_PREFIX}{}", catalog.n_items())?;
    for a in 0..catalog.n_attrs() as u32 {
        let attr = cfq_types::AttrId(a);
        let name = catalog.attr_name(attr).to_string();
        match catalog.kind(attr) {
            AttrKind::Num => {
                write!(w, "num {name}")?;
                for i in 0..catalog.n_items() as u32 {
                    write!(w, " {}", catalog.num(attr, cfq_types::ItemId(i)))?;
                }
                writeln!(w)?;
            }
            AttrKind::Cat => {
                write!(w, "cat {name}")?;
                for i in 0..catalog.n_items() as u32 {
                    let sym = catalog.cat(attr, cfq_types::ItemId(i));
                    write!(w, " {}", catalog.symbol_name(sym))?;
                }
                writeln!(w)?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a catalog from `r` (format of [`write_catalog`]).
pub fn read_catalog<R: Read>(r: R) -> Result<Catalog> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| CfqError::Io("empty catalog file".into()))??;
    let n_items: usize = header
        .strip_prefix(CATALOG_HEADER_PREFIX)
        .ok_or_else(|| CfqError::Io(format!("bad catalog header: {header}")))?
        .trim()
        .parse()
        .map_err(|e| CfqError::Io(format!("bad n_items: {e}")))?;
    let mut b = CatalogBuilder::new(n_items);
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_ascii_whitespace();
        let kind = parts.next().ok_or_else(|| CfqError::Io("empty attr line".into()))?;
        let name = parts
            .next()
            .ok_or_else(|| CfqError::Io("attribute line missing a name".into()))?;
        match kind {
            "num" => {
                let values: std::result::Result<Vec<f64>, _> =
                    parts.map(str::parse::<f64>).collect();
                let values =
                    values.map_err(|e| CfqError::Io(format!("bad numeric value: {e}")))?;
                b.num_attr(name, values)?;
            }
            "cat" => {
                let labels: Vec<&str> = parts.collect();
                b.cat_attr(name, &labels)?;
            }
            other => {
                return Err(CfqError::Io(format!("unknown attribute kind `{other}`")));
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod catalog_io_tests {
    use super::*;

    #[test]
    fn catalog_roundtrip() {
        let mut b = CatalogBuilder::new(3);
        b.num_attr("Price", vec![1.5, 2.0, 3.25]).unwrap();
        b.cat_attr("Type", &["a", "b", "a"]).unwrap();
        let cat = b.build();
        let mut buf = Vec::new();
        write_catalog(&cat, &mut buf).unwrap();
        let back = read_catalog(&buf[..]).unwrap();
        assert_eq!(back.n_items(), 3);
        let price = back.attr("Price").unwrap();
        let ty = back.attr("Type").unwrap();
        assert_eq!(back.num(price, cfq_types::ItemId(2)), 3.25);
        assert_eq!(back.symbol_name(back.cat(ty, cfq_types::ItemId(1))), "b");
    }

    #[test]
    fn catalog_read_errors() {
        assert!(read_catalog(&b"junk\n"[..]).is_err());
        let text = format!("{CATALOG_HEADER_PREFIX}2\nblob X 1 2\n");
        assert!(read_catalog(text.as_bytes()).is_err());
        let text = format!("{CATALOG_HEADER_PREFIX}2\nnum P 1 x\n");
        assert!(read_catalog(text.as_bytes()).is_err());
        let text = format!("{CATALOG_HEADER_PREFIX}2\nnum P 1\n");
        assert!(read_catalog(text.as_bytes()).is_err(), "wrong arity");
    }
}

// ---------------------------------------------------------------------------
// FIMI .dat format
// ---------------------------------------------------------------------------

/// Reads the headerless space-separated format used by the FIMI repository
/// datasets (retail, kosarak, T10I4D100K, …): one transaction per line,
/// items as non-negative integers. The universe size is inferred as
/// `max item + 1`.
pub fn read_transactions_dat<R: Read>(r: R) -> Result<TransactionDb> {
    let mut transactions: Vec<Vec<ItemId>> = Vec::new();
    let mut max_item = 0u32;
    for line in BufReader::new(r).lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut items = Vec::new();
        for tok in trimmed.split_ascii_whitespace() {
            let id: u32 =
                tok.parse().map_err(|e| CfqError::Io(format!("bad item `{tok}`: {e}")))?;
            max_item = max_item.max(id);
            items.push(ItemId(id));
        }
        transactions.push(items);
    }
    let n_items = if transactions.is_empty() { 0 } else { max_item as usize + 1 };
    TransactionDb::new(n_items, transactions)
}

/// Loads a FIMI `.dat` file from a path.
pub fn load_transactions_dat<P: AsRef<Path>>(path: P) -> Result<TransactionDb> {
    read_transactions_dat(std::fs::File::open(path)?)
}

#[cfg(test)]
mod dat_tests {
    use super::*;

    #[test]
    fn reads_fimi_format() {
        let text = "1 2 5\n\n3 1\n7\n";
        let db = read_transactions_dat(text.as_bytes()).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.n_items(), 8);
        assert_eq!(db.transaction(0), &[ItemId(1), ItemId(2), ItemId(5)]);
        assert_eq!(db.transaction(2), &[ItemId(7)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_transactions_dat("1 x 3\n".as_bytes()).is_err());
        assert!(read_transactions_dat("-4\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_file_is_empty_db() {
        let db = read_transactions_dat("".as_bytes()).unwrap();
        assert_eq!(db.len(), 0);
        assert_eq!(db.n_items(), 0);
    }
}

//! Criterion bench for Figure 8(b)'s 40%-overlap point: the three
//! strategies the paper compares.

use cfq_bench::experiments::ExpEnv;
use cfq_constraints::{bind_query, parse_query};
use cfq_core::{Optimizer, QueryEnv};
use cfq_datagen::ScenarioBuilder;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let e = ExpEnv { scale: 0.02, ..ExpEnv::default() };
    let sc = ScenarioBuilder::new(e.quest()).typed_overlap(400.0, 600.0, 10, 40.0).unwrap();
    let support = e.abs_support(sc.db.len());
    let q = bind_query(
        &parse_query("max(S.Price) <= 400 & min(T.Price) >= 600 & S.Type = T.Type").unwrap(),
        &sc.catalog,
    )
    .unwrap();
    let env = QueryEnv::new(&sc.db, &sc.catalog, support);

    let mut g = c.benchmark_group("fig8b_overlap40");
    g.sample_size(10);
    g.bench_function("apriori_plus", |b| {
        b.iter(|| Optimizer::apriori_plus().evaluate(&q, &env).unwrap().pair_result.count)
    });
    g.bench_function("cap_one_var", |b| {
        b.iter(|| Optimizer::cap_one_var().evaluate(&q, &env).unwrap().pair_result.count)
    });
    g.bench_function("full_optimizer", |b| {
        b.iter(|| Optimizer::default().evaluate(&q, &env).unwrap().pair_result.count)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

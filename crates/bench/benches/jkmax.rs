//! Criterion bench for the §7.3 workload: sum(S.Price) <= sum(T.Price)
//! with and without J^k_max iterative pruning (T mean 400 — the paper's
//! most selective point).

use cfq_bench::experiments::{workload_73, ExpEnv};
use cfq_constraints::{bind_query, parse_query};
use cfq_core::{Optimizer, QueryEnv};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let e = ExpEnv { scale: 0.01, ..ExpEnv::default() };
    let (sc, s_support, t_support) = workload_73(&e, 400.0);
    let q = bind_query(
        &parse_query("sum(S.Price) <= sum(T.Price)").unwrap(),
        &sc.catalog,
    )
    .unwrap();
    let env = QueryEnv::new(&sc.db, &sc.catalog, 0)
        .with_s_universe(sc.s_items.clone())
        .with_t_universe(sc.t_items.clone())
        .with_supports(s_support, t_support)
        .without_pair_formation();

    let mut g = c.benchmark_group("jkmax_tmean400");
    g.sample_size(10);
    g.bench_function("no_jkmax", |b| {
        b.iter(|| {
            Optimizer { use_jkmax: false, ..Optimizer::default() }
                .evaluate(&q, &env).unwrap()
                .s_sets
                .len()
        })
    });
    g.bench_function("jkmax", |b| {
        b.iter(|| Optimizer::default().evaluate(&q, &env).unwrap().s_sets.len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

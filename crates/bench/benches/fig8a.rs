//! Criterion bench for Figure 8(a)'s headline point: 16.6% overlap,
//! Apriori+ vs the quasi-succinct optimizer.

use cfq_bench::experiments::ExpEnv;
use cfq_constraints::{bind_query, parse_query};
use cfq_core::{Optimizer, QueryEnv};
use cfq_datagen::ScenarioBuilder;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let e = ExpEnv { scale: 0.02, ..ExpEnv::default() };
    let sc = ScenarioBuilder::new(e.quest())
        .split_uniform_prices((400.0, 1000.0), (0.0, 500.0))
        .unwrap();
    let support = e.abs_support(sc.db.len());
    let q = bind_query(
        &parse_query("max(S.Price) <= min(T.Price)").unwrap(),
        &sc.catalog,
    )
    .unwrap();
    let env = QueryEnv::new(&sc.db, &sc.catalog, support)
        .with_s_universe(sc.s_items.clone())
        .with_t_universe(sc.t_items.clone());

    let mut g = c.benchmark_group("fig8a_overlap16.6");
    g.sample_size(10);
    g.bench_function("apriori_plus", |b| {
        b.iter(|| Optimizer::apriori_plus().evaluate(&q, &env).unwrap().pair_result.count)
    });
    g.bench_function("quasi_succinct", |b| {
        b.iter(|| Optimizer::default().evaluate(&q, &env).unwrap().pair_result.count)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion benches for the mining substrate: plain Apriori on Quest data
//! and the two support counters.

use cfq_bench::experiments::ExpEnv;
use cfq_core::{Optimizer, QueryEnv};
use cfq_datagen::ScenarioBuilder;
use cfq_mining::{
    apriori, fp_growth, partition_mine, AprioriConfig, FpGrowthConfig, HashTreeCounter,
    NaiveCounter, ParallelTrieCounter, PartitionConfig, SupportCounter, TidsetIndex, TrieCounter,
    VerticalCounter, WorkStats,
};
use cfq_types::Itemset;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let e = ExpEnv { scale: 0.02, ..ExpEnv::default() };
    let db = cfq_datagen::generate_transactions(&e.quest()).unwrap();
    let support = e.abs_support(db.len());

    let mut g = c.benchmark_group("substrate");
    g.sample_size(10);
    g.bench_function("apriori_quest", |b| {
        b.iter(|| {
            let mut stats = WorkStats::new();
            apriori(&db, &AprioriConfig::new(support), &mut stats).total()
        })
    });
    g.bench_function("apriori_quest_untrimmed", |b| {
        b.iter(|| {
            let mut stats = WorkStats::new();
            apriori(&db, &AprioriConfig::new(support).with_trim(false), &mut stats).total()
        })
    });
    g.bench_function("fp_growth_quest", |b| {
        b.iter(|| {
            let mut stats = WorkStats::new();
            fp_growth(&db, &FpGrowthConfig::new(support), &mut stats).total()
        })
    });
    g.bench_function("partition_quest", |b| {
        b.iter(|| {
            let mut stats = WorkStats::new();
            let cfg = PartitionConfig {
                min_support: support,
                n_partitions: 8,
                ..PartitionConfig::default()
            };
            partition_mine(&db, &cfg, &mut stats).total()
        })
    });

    // Counter comparison on one level-2 candidate batch.
    let mut stats = WorkStats::new();
    let l1 = apriori(&db, &AprioriConfig::new(support).with_max_level(1), &mut stats);
    let singles: Vec<Itemset> = l1.level_sets(1);
    let cands = cfq_mining::generate_candidates(&singles, |_| true);
    g.bench_function("trie_counter_level2", |b| {
        b.iter(|| TrieCounter.count(&db, &cands).len())
    });
    g.bench_function("parallel_trie_counter_level2", |b| {
        b.iter(|| ParallelTrieCounter::default().count(&db, &cands).len())
    });
    g.bench_function("hashtree_counter_level2", |b| {
        b.iter(|| HashTreeCounter.count(&db, &cands).len())
    });
    let index = TidsetIndex::build(&db);
    g.bench_function("vertical_counter_level2", |b| {
        b.iter(|| VerticalCounter::new(&index).count(&db, &cands).len())
    });
    let bitmap_index = cfq_mining::BitmapIndex::build(&db);
    g.bench_function("bitmap_counter_level2", |b| {
        b.iter(|| cfq_mining::BitmapCounter::new(&bitmap_index).count(&db, &cands).len())
    });
    if cands.len() <= 2000 {
        g.bench_function("naive_counter_level2", |b| {
            b.iter(|| NaiveCounter.count(&db, &cands).len())
        });
    }
    g.bench_function("parse_bind_query", |b| {
        let mut cb = cfq_types::CatalogBuilder::new(10);
        cb.num_attr("Price", (0..10).map(|i| i as f64).collect()).unwrap();
        cb.cat_attr("Type", &["a", "b", "a", "b", "a", "b", "a", "b", "a", "b"]).unwrap();
        let cat = cb.build();
        let src = "sum(S.Price) <= 100 & S.Type = {a} & max(S.Price) <= min(T.Price)                    & count(T.Type) = 1";
        b.iter(|| {
            let q = cfq_constraints::parse_query(src).unwrap();
            cfq_constraints::bind_query(&q, &cat).unwrap().two_var.len()
        })
    });
    g.bench_function("quest_generate_2k", |b| {
        b.iter(|| {
            cfq_datagen::generate_transactions(&e.quest()).unwrap().len()
        })
    });

    // End-to-end optimizer on the Fig. 8(a) workload (16.6% overlap):
    // untrimmed sequential substrate vs per-level trimming + all-core counting.
    let sc = ScenarioBuilder::new(e.quest())
        .split_uniform_prices((400.0, 1000.0), (0.0, 500.0))
        .unwrap();
    let sc_support = e.abs_support(sc.db.len());
    let q = cfq_constraints::bind_query(
        &cfq_constraints::parse_query("max(S.Price) <= min(T.Price)").unwrap(),
        &sc.catalog,
    )
    .unwrap();
    let opt_env = |trim: bool, threads: usize| {
        QueryEnv::new(&sc.db, &sc.catalog, sc_support)
            .with_s_universe(sc.s_items.clone())
            .with_t_universe(sc.t_items.clone())
            .with_trim(trim)
            .with_counting_threads(threads)
    };
    g.bench_function("optimizer_fig8a_untrimmed_sequential", |b| {
        let env = opt_env(false, 1);
        b.iter(|| Optimizer::default().evaluate(&q, &env).unwrap().pair_result.count)
    });
    g.bench_function("optimizer_fig8a_trimmed_sequential", |b| {
        let env = opt_env(true, 1);
        b.iter(|| Optimizer::default().evaluate(&q, &env).unwrap().pair_result.count)
    });
    g.bench_function("optimizer_fig8a_trimmed_parallel", |b| {
        let env = opt_env(true, 0);
        b.iter(|| Optimizer::default().evaluate(&q, &env).unwrap().pair_result.count)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! # cfq-bench
//!
//! The benchmark harness reproducing every table and figure of the paper's
//! §7 evaluation (see `DESIGN.md` for the experiment index):
//!
//! * [`experiments`] — one runner per table/figure; each runner
//!   cross-checks that every strategy returns the same answer before
//!   reporting times and work counters.
//! * [`table`] — report rendering.
//!
//! The `repro` binary drives the runners
//! (`cargo run -p cfq-bench --release --bin repro -- all`); the criterion
//! benches (`cargo bench`) measure the headline configurations with
//! statistical rigor.

pub mod experiments;
pub mod table;

pub use experiments::{
    ablation_bound_tightness, ablation_dovetail, ablation_layers, audit, audit_report,
    backbone_comparison, cap_suite, fig1, fig8a, fig8b, substrate, substrate_report, table_72,
    table_73, table_levels, table_ranges, ExpEnv,
};
pub use table::Table;

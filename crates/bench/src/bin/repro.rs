//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p cfq-bench --release --bin repro -- all
//! cargo run -p cfq-bench --release --bin repro -- fig8a fig8b
//! CFQ_SCALE=1.0 cargo run -p cfq-bench --release --bin repro -- all   # paper scale
//! ```
//!
//! Environment: `CFQ_SCALE` (fraction of 100k transactions, default 0.1),
//! `CFQ_SEED`, `CFQ_SUPPORT` (relative support, default 0.004),
//! `CFQ_THREADS` (counting threads, default 0 = all cores), `CFQ_TRIM`
//! (per-level database trimming, default on; `0`/`off`/`false` disables).
//! The `substrate` target additionally writes `BENCH_substrate.json`
//! (path override: `CFQ_BENCH_OUT`); the `audit` target statically audits
//! every workload plan and writes `BENCH_audit.json` (path override:
//! `CFQ_AUDIT_OUT`); the `engine` target times cold/warm/FUP-upgraded
//! session-engine runs and writes `BENCH_engine.json` (path override:
//! `CFQ_ENGINE_OUT`).

use cfq_bench::experiments as exp;
use cfq_bench::ExpEnv;

const USAGE: &str = "usage: repro [fig8a|table-levels|table-ranges|fig8b|table-72|table-73|fig1|cap-suite|backbones|ablations|substrate|audit|engine|all]...";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h" || a == "help") {
        println!("{USAGE}");
        return;
    }
    let env = ExpEnv::from_env();
    println!(
        "# cfq reproduction run (scale={}, seed={}, support={}, threads={}, trim={})\n",
        env.scale,
        env.seed,
        env.support_frac,
        if env.threads == 0 { "all".to_string() } else { env.threads.to_string() },
        if env.trim { "on" } else { "off" },
    );
    let targets: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig1", "fig8a", "table-levels", "table-ranges", "fig8b", "table-72", "table-73",
            "cap-suite", "backbones", "ablations", "substrate", "audit", "engine",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for t in targets {
        match t {
            "fig1" => exp::fig1().print(),
            "substrate" => exp::substrate(&env).print(),
            "audit" => exp::audit(&env).print(),
            "engine" => exp::engine(&env).print(),
            "fig8a" => exp::fig8a(&env).print(),
            "table-levels" => exp::table_levels(&env).print(),
            "table-ranges" => exp::table_ranges(&env).print(),
            "fig8b" => exp::fig8b(&env).print(),
            "table-72" => exp::table_72(&env).print(),
            "table-73" => exp::table_73(&env).print(),
            "cap-suite" => exp::cap_suite(&env).print(),
            "backbones" => exp::backbone_comparison(&env).print(),
            "ablations" => {
                exp::ablation_layers(&env).print();
                exp::ablation_dovetail(&env).print();
                exp::ablation_bound_tightness(&env).print();
            }
            other => {
                eprintln!("unknown target `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
}

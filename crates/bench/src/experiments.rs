//! The §7 experiment runners — one function per table/figure of the paper.
//!
//! Every runner builds the paper's workload (scaled by [`ExpEnv::scale`]),
//! runs the strategies under comparison, cross-checks that they return the
//! same answer, and returns a [`Table`] with the same rows/series the paper
//! reports. Wall-clock speedups are complemented by deterministic work
//! counters (sets counted for support, database scans, constraint checks),
//! which reproduce the paper's *shape* claims robustly across machines.

use crate::table::{secs, speedup, Table};
use cfq_constraints::{bind_query, classify_two, parse_query, BoundQuery, TwoVar};
use cfq_core::{ExecutionOutcome, Optimizer, QueryEnv};
use cfq_datagen::scenario::range_overlap_percent;
use cfq_datagen::{QuestConfig, Scenario, ScenarioBuilder};
use cfq_engine::Engine;
use cfq_mining::CountingBackend;
use cfq_types::{Catalog, ItemId, TransactionDb};
use std::time::Instant;

/// Experiment environment: workload scale and seeds, read once from the
/// process environment (`CFQ_SCALE`, `CFQ_SEED`, `CFQ_SUPPORT`,
/// `CFQ_THREADS`, `CFQ_TRIM`).
#[derive(Clone, Debug)]
pub struct ExpEnv {
    /// Fraction of the paper's 100,000 transactions (1.0 = paper scale).
    pub scale: f64,
    /// Quest generator seed.
    pub seed: u64,
    /// Relative support threshold (fraction of |D|).
    pub support_frac: f64,
    /// Counting threads for the optimizer runs (0 = all cores). The
    /// *library* default is 1 (deterministic scan accounting); the repro
    /// binary defaults to all cores since it measures wall clock.
    pub threads: usize,
    /// Per-level database trimming for the optimizer runs.
    pub trim: bool,
}

impl Default for ExpEnv {
    fn default() -> Self {
        ExpEnv { scale: 0.1, seed: 19990601, support_frac: 0.004, threads: 0, trim: true }
    }
}

impl ExpEnv {
    /// Reads overrides from the environment.
    pub fn from_env() -> Self {
        let mut e = ExpEnv::default();
        if let Ok(v) = std::env::var("CFQ_SCALE") {
            if let Ok(x) = v.parse() {
                e.scale = x;
            }
        }
        if let Ok(v) = std::env::var("CFQ_SEED") {
            if let Ok(x) = v.parse() {
                e.seed = x;
            }
        }
        if let Ok(v) = std::env::var("CFQ_SUPPORT") {
            if let Ok(x) = v.parse() {
                e.support_frac = x;
            }
        }
        if let Ok(v) = std::env::var("CFQ_THREADS") {
            if let Ok(x) = v.parse() {
                e.threads = x;
            }
        }
        if let Ok(v) = std::env::var("CFQ_TRIM") {
            e.trim = !matches!(v.as_str(), "0" | "off" | "false");
        }
        e
    }

    /// The Quest configuration for this environment.
    pub fn quest(&self) -> QuestConfig {
        QuestConfig { seed: self.seed, ..QuestConfig::paper_scaled(self.scale) }
    }

    /// Absolute support for a database of `n` transactions.
    pub fn abs_support(&self, n: usize) -> u64 {
        ((n as f64) * self.support_frac).round().max(1.0) as u64
    }
}

/// Times a strategy run.
pub fn timed(opt: &Optimizer, q: &BoundQuery, env: &QueryEnv<'_>) -> (ExecutionOutcome, f64) {
    let start = Instant::now();
    let out = opt.evaluate(q, env).unwrap();
    (out, start.elapsed().as_secs_f64())
}

fn bind(src: &str, catalog: &Catalog) -> BoundQuery {
    bind_query(&parse_query(src).expect("experiment query parses"), catalog)
        .expect("experiment query binds")
}

fn env_for<'a>(e: &ExpEnv, sc: &'a Scenario, support: u64) -> QueryEnv<'a> {
    QueryEnv::new(&sc.db, &sc.catalog, support)
        .with_s_universe(sc.s_items.clone())
        .with_t_universe(sc.t_items.clone())
        .with_counting_threads(e.threads)
        .with_trim(e.trim)
}

fn counted(out: &ExecutionOutcome) -> u64 {
    out.s_stats.support_counted + out.t_stats.support_counted
}

/// **E1 / Figure 8(a)** — speedup of quasi-succinct reduction over Apriori⁺
/// for `max(S.Price) ≤ min(T.Price)`, sweeping the price-range overlap.
pub fn fig8a(e: &ExpEnv) -> Table {
    let mut t = Table::new(
        "Figure 8(a): 2-var quasi-succinct constraint only — max(S.Price) <= min(T.Price)",
        &["overlap%", "apriori+ time", "optimized time", "speedup", "counted base", "counted opt", "pairs"],
    );
    for v in [500.0, 600.0, 700.0, 800.0, 900.0] {
        let sc = ScenarioBuilder::new(e.quest())
            .split_uniform_prices((400.0, 1000.0), (0.0, v))
            .expect("scenario");
        let support = e.abs_support(sc.db.len());
        let q = bind("max(S.Price) <= min(T.Price)", &sc.catalog);
        let qenv = env_for(e, &sc, support);
        let (base, tb) = timed(&Optimizer::apriori_plus(), &q, &qenv);
        let (opt, to) = timed(&Optimizer::default(), &q, &qenv);
        assert_eq!(base.pair_result.count, opt.pair_result.count, "answers must agree");
        t.row(vec![
            format!("{:.1}", range_overlap_percent((400.0, 1000.0), (0.0, v))),
            secs(tb),
            secs(to),
            speedup(tb, to),
            counted(&base).to_string(),
            counted(&opt).to_string(),
            opt.pair_result.count.to_string(),
        ]);
    }
    t
}

/// **E2 / §7.1 level table** — the `a/b` per-level table (valid-frequent /
/// all-frequent) at 16.6% overlap.
pub fn table_levels(e: &ExpEnv) -> Table {
    let sc = ScenarioBuilder::new(e.quest())
        .split_uniform_prices((400.0, 1000.0), (0.0, 500.0))
        .expect("scenario");
    let support = e.abs_support(sc.db.len());
    let q = bind("max(S.Price) <= min(T.Price)", &sc.catalog);
    let qenv = env_for(e, &sc, support);
    let base = Optimizer::apriori_plus().evaluate(&q, &qenv).unwrap();
    let opt = Optimizer::default().evaluate(&q, &qenv).unwrap();
    assert_eq!(base.pair_result.count, opt.pair_result.count);

    let depth = base
        .s_stats
        .levels
        .len()
        .max(base.t_stats.levels.len())
        .max(opt.s_stats.levels.len())
        .max(opt.t_stats.levels.len());
    let mut header: Vec<String> = vec!["var".into()];
    header.extend((1..=depth).map(|k| format!("L{k}")));
    let mut t = Table {
        title: "§7.1 per-level table (optimized-frequent / all-frequent) at 16.6% overlap"
            .into(),
        header,
        rows: Vec::new(),
    };
    let row = |name: &str, opt_levels: &[cfq_mining::LevelStats], base_levels: &[cfq_mining::LevelStats]| {
        let mut cells = vec![name.to_string()];
        for k in 1..=depth {
            let a = opt_levels.iter().find(|l| l.level == k).map(|l| l.frequent).unwrap_or(0);
            let b = base_levels.iter().find(|l| l.level == k).map(|l| l.frequent).unwrap_or(0);
            cells.push(format!("{a}/{b}"));
        }
        cells
    };
    let r1 = row("S", &opt.s_stats.levels, &base.s_stats.levels);
    let r2 = row("T", &opt.t_stats.levels, &base.t_stats.levels);
    t.row(r1);
    t.row(r2);
    t
}

/// **E3 / §7.1 range table** — speedup at 50% overlap for different
/// `S.Price` ranges.
pub fn table_ranges(e: &ExpEnv) -> Table {
    let mut t = Table::new(
        "§7.1 range table: speedup at 50% overlap vs S.Price range",
        &["S.Price range", "T.Price range", "speedup", "counted base", "counted opt"],
    );
    for s_lo in [300.0, 400.0, 500.0] {
        // v chosen for 50% overlap of [s_lo, 1000] and [0, v].
        let v = s_lo + 0.5 * (1000.0 - s_lo);
        let sc = ScenarioBuilder::new(e.quest())
            .split_uniform_prices((s_lo, 1000.0), (0.0, v))
            .expect("scenario");
        let support = e.abs_support(sc.db.len());
        let q = bind("max(S.Price) <= min(T.Price)", &sc.catalog);
        let qenv = env_for(e, &sc, support);
        let (base, tb) = timed(&Optimizer::apriori_plus(), &q, &qenv);
        let (opt, to) = timed(&Optimizer::default(), &q, &qenv);
        assert_eq!(base.pair_result.count, opt.pair_result.count);
        t.row(vec![
            format!("[{s_lo:.0},1000]"),
            format!("[0,{v:.0}]"),
            speedup(tb, to),
            counted(&base).to_string(),
            counted(&opt).to_string(),
        ]);
    }
    t
}

const FIG8B_QUERY: &str =
    "max(S.Price) <= 400 & min(T.Price) >= 600 & S.Type = T.Type";
const TYPES_PER_SIDE: usize = 10;

/// **E4 / Figure 8(b)** — 2-var on top of 1-var constraints: Apriori⁺ vs
/// CAP-1-var vs the full optimizer, sweeping the Type overlap.
pub fn fig8b(e: &ExpEnv) -> Table {
    let mut t = Table::new(
        "Figure 8(b): 1-var + 2-var — max(S.Price)<=400 & min(T.Price)>=600 & S.Type = T.Type",
        &["type overlap%", "apriori+ time", "1-var only speedup", "1+2-var speedup", "counted base", "counted 1var", "counted full"],
    );
    for overlap in [20.0, 40.0, 60.0, 80.0] {
        let sc = ScenarioBuilder::new(e.quest())
            .typed_overlap(400.0, 600.0, TYPES_PER_SIDE, overlap)
            .expect("scenario");
        let support = e.abs_support(sc.db.len());
        let q = bind(FIG8B_QUERY, &sc.catalog);
        let qenv = env_for(e, &sc, support);
        let (base, tb) = timed(&Optimizer::apriori_plus(), &q, &qenv);
        let (one, t1) = timed(&Optimizer::cap_one_var(), &q, &qenv);
        let (full, t2) = timed(&Optimizer::default(), &q, &qenv);
        assert_eq!(base.pair_result.count, full.pair_result.count);
        assert_eq!(base.pair_result.count, one.pair_result.count);
        t.row(vec![
            format!("{overlap:.0}"),
            secs(tb),
            speedup(tb, t1),
            speedup(tb, t2),
            counted(&base).to_string(),
            counted(&one).to_string(),
            counted(&full).to_string(),
        ]);
    }
    t
}

/// **E5 / §7.2 range table** — 40% Type overlap, varying the 1-var price
/// ranges; columns as in the paper (1-var speedup, 1+2-var speedup, ratio).
pub fn table_72(e: &ExpEnv) -> Table {
    let mut t = Table::new(
        "§7.2 table: speedups at 40% Type overlap vs 1-var selectivity",
        &["S.Price", "T.Price", "1-var only", "1- and 2-var", "ratio"],
    );
    for (s_max, t_min) in [(900.0, 100.0), (400.0, 600.0), (200.0, 800.0)] {
        let sc = ScenarioBuilder::new(e.quest())
            .typed_overlap(s_max, t_min, TYPES_PER_SIDE, 40.0)
            .expect("scenario");
        let support = e.abs_support(sc.db.len());
        let q = bind(
            &format!(
                "max(S.Price) <= {s_max} & min(T.Price) >= {t_min} & S.Type = T.Type"
            ),
            &sc.catalog,
        );
        let qenv = env_for(e, &sc, support);
        let (base, tb) = timed(&Optimizer::apriori_plus(), &q, &qenv);
        let (one, t1) = timed(&Optimizer::cap_one_var(), &q, &qenv);
        let (full, t2) = timed(&Optimizer::default(), &q, &qenv);
        assert_eq!(base.pair_result.count, full.pair_result.count);
        assert_eq!(base.pair_result.count, one.pair_result.count);
        let s1 = tb / t1.max(1e-9);
        let s2 = tb / t2.max(1e-9);
        t.row(vec![
            format!("[0,{s_max:.0}]"),
            format!("[{t_min:.0},1000]"),
            format!("{s1:.2}x"),
            format!("{s2:.2}x"),
            format!("{:.2}", s2 / s1.max(1e-9)),
        ]);
    }
    t
}

/// The §7.3 workload needs *long* frequent sets on the S side ("we pick a
/// low support threshold for S so that there are frequent sets … of high
/// cardinality"; the paper reaches cardinality 14). The stock T10.I4
/// workload cannot produce those, so this experiment uses a long-pattern
/// Quest configuration (T20.I10) with a low S-side threshold.
pub fn quest_73(e: &ExpEnv) -> QuestConfig {
    QuestConfig {
        avg_trans_len: 20.0,
        avg_pattern_len: 10.0,
        n_patterns: 300,
        ..e.quest()
    }
}

/// Builds the §7.3 workload: scenario plus (S, T) thresholds.
pub fn workload_73(e: &ExpEnv, t_mean: f64) -> (Scenario, u64, u64) {
    let sc = ScenarioBuilder::new(quest_73(e))
        .split_normal_prices(1000.0, 10.0, t_mean, 10.0)
        .expect("scenario");
    // Very low S threshold → long frequent S-sets (the paper reaches
    // cardinality 14); higher T threshold → selective V bounds.
    let s_support = (e.abs_support(sc.db.len()) / 8).max(2);
    let t_support = e.abs_support(sc.db.len()) * 6;
    (sc, s_support, t_support)
}

/// **E6 / §7.3 table** — `sum(S.Price) ≤ sum(T.Price)` with normal prices;
/// `J^k_max` iterative pruning vs the baseline, sweeping the T mean.
pub fn table_73(e: &ExpEnv) -> Table {
    let mut t = Table::new(
        "§7.3 table: J^k_max pruning for sum(S.Price) <= sum(T.Price), S mean 1000",
        &["mean T.Price", "baseline time", "jkmax time", "speedup", "counted base", "counted jk", "final V"],
    );
    for t_mean in [400.0, 600.0, 800.0, 1000.0] {
        // Low support on the S side so long frequent sets exist (§7.3);
        // a higher T threshold keeps the bounding lattice selective.
        let (sc, s_support, t_support) = workload_73(e, t_mean);
        let q = bind("sum(S.Price) <= sum(T.Price)", &sc.catalog);
        let qenv = env_for(e, &sc, 0)
            .with_supports(s_support, t_support)
            .without_pair_formation();
        let (base, tb) = timed(&Optimizer { use_jkmax: false, ..Optimizer::default() }, &q, &qenv);
        let (jk, tj) = timed(&Optimizer::default(), &q, &qenv);
        // Sanity: J^k_max only removes S-sets that cannot pair.
        assert!(jk.s_sets.len() <= base.s_sets.len());
        let final_v = jk
            .v_histories
            .first()
            .and_then(|(_, h)| h.last())
            .map(|&(_, v)| format!("{v:.0}"))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            format!("{t_mean:.0}"),
            secs(tb),
            secs(tj),
            speedup(tb, tj),
            counted(&base).to_string(),
            counted(&jk).to_string(),
            final_v,
        ]);
    }
    t
}

/// **E7 / Figure 1** — the anti-monotonicity / quasi-succinctness
/// characterization, regenerated from the classifier.
pub fn fig1() -> Table {
    let mut cat = cfq_types::CatalogBuilder::new(2);
    cat.num_attr("A", vec![1.0, 2.0]).unwrap();
    cat.num_attr("B", vec![1.0, 2.0]).unwrap();
    cat.cat_attr("C", &["x", "y"]).unwrap();
    cat.cat_attr("D", &["x", "y"]).unwrap();
    let cat = cat.build();
    let rows = [
        "S.C disjoint T.D",
        "S.C intersects T.D",
        "S.C subset T.D",
        "S.C notsubset T.D",
        "S.C = T.D",
        "max(S.A) <= min(T.B)",
        "min(S.A) <= min(T.B)",
        "max(S.A) <= max(T.B)",
        "min(S.A) <= max(T.B)",
        "sum(S.A) <= max(T.B)",
        "sum(S.A) <= sum(T.B)",
        "avg(S.A) <= avg(T.B)",
        // Language-extension rows (not in the paper's figure):
        "count(S.C) <= count(T.D)",
        "count(S) = count(T)",
    ];
    let mut t = Table::new(
        "Figure 1: characterization of 2-var constraints",
        &["2-var constraint", "anti-monotone", "quasi-succinct"],
    );
    // Expected (anti-monotone, quasi-succinct) per row: the paper's
    // Figure 1 plus the two extension rows. The repro binary fails loudly
    // if the classifier ever drifts.
    let expected = [
        (true, true),
        (false, true),
        (false, true),
        (false, true),
        (false, true),
        (true, true),
        (false, true),
        (false, true),
        (false, true),
        (false, false),
        (false, false),
        (false, false),
        (false, false),
        (false, false),
    ];
    for (src, (exp_am, exp_qs)) in rows.iter().zip(expected) {
        let q = bind(src, &cat);
        let c: &TwoVar = &q.two_var[0];
        let cls = classify_two(c);
        assert_eq!(cls.anti_monotone, exp_am, "`{src}` anti-monotonicity drifted");
        assert_eq!(cls.quasi_succinct, exp_qs, "`{src}` quasi-succinctness drifted");
        let yn = |b: bool| if b { "yes" } else { "no" }.to_string();
        t.row(vec![src.to_string(), yn(cls.anti_monotone), yn(cls.quasi_succinct)]);
    }
    t
}

/// **E8 ablation** — dovetailed vs sequential lattice computation for the
/// §7.3 workload: scan counts and wall time (the §5.2 I/O discussion).
pub fn ablation_dovetail(e: &ExpEnv) -> Table {
    let (sc, s_support, t_support) = workload_73(e, 400.0);
    let q = bind("sum(S.Price) <= sum(T.Price)", &sc.catalog);
    let qenv = env_for(e, &sc, 0)
        .with_supports(s_support, t_support)
        .without_pair_formation();
    let mut t = Table::new(
        "Ablation: dovetailed vs sequential lattices (sum <= sum workload)",
        &["mode", "time", "db scans", "counted S", "counted T"],
    );
    for (name, opt) in [
        ("dovetailed", Optimizer::default()),
        ("sequential", Optimizer { dovetail: false, ..Optimizer::default() }),
    ] {
        let (out, secs_taken) = timed(&opt, &q, &qenv);
        t.row(vec![
            name.to_string(),
            secs(secs_taken),
            out.db_scans.to_string(),
            out.s_stats.support_counted.to_string(),
            out.t_stats.support_counted.to_string(),
        ]);
    }
    t
}

/// **E8c ablation** — per-element `J_i^k` bound refinement vs the paper's
/// global `J^k_max` (Figure 6): how much tighter is the `V^k` series on the
/// §7.3 workload's T lattice?
pub fn ablation_bound_tightness(e: &ExpEnv) -> Table {
    use cfq_core::{v_bound, v_bound_per_element};
    let (sc, _s_support, t_support) = workload_73(e, 400.0);
    let q = bind("freq(T)", &sc.catalog);
    let _ = q;
    // Mine the T lattice plainly to obtain its levels.
    let mut stats = cfq_mining::WorkStats::new();
    let t_universe: Vec<cfq_types::ItemId> = sc.t_items.clone();
    let fs = cfq_mining::apriori(
        &sc.db,
        &cfq_mining::AprioriConfig::new(t_support).with_universe(t_universe),
        &mut stats,
    );
    let price = sc.catalog.attr("Price").expect("Price");
    let mut t = Table::new(
        "Ablation: V^k from global J^k_max (paper) vs per-element J_i^k (refinement)",
        &["k", "frequent k-sets", "V^k (global J)", "V^k (per-element J)", "tightening"],
    );
    for k in 2..=fs.n_levels() {
        let level = fs.level_sets(k);
        if level.is_empty() {
            continue;
        }
        let (Some(g), Some(r)) = (
            v_bound(&level, k, price, &sc.catalog),
            v_bound_per_element(&level, k, price, &sc.catalog),
        ) else {
            continue;
        };
        t.row(vec![
            k.to_string(),
            level.len().to_string(),
            format!("{g:.0}"),
            format!("{r:.0}"),
            format!("{:.1}%", 100.0 * (g - r) / g.max(1e-9)),
        ]);
    }
    t
}

/// **E8b ablation** — which pushing layer buys what, on the Fig. 8(b)
/// workload at 40% overlap.
pub fn ablation_layers(e: &ExpEnv) -> Table {
    let sc = ScenarioBuilder::new(e.quest())
        .typed_overlap(400.0, 600.0, TYPES_PER_SIDE, 40.0)
        .expect("scenario");
    let support = e.abs_support(sc.db.len());
    let q = bind(FIG8B_QUERY, &sc.catalog);
    let qenv = env_for(e, &sc, support);
    let mut t = Table::new(
        "Ablation: constraint-pushing layers on the Fig. 8(b) workload (40% overlap)",
        &["strategy", "time", "counted", "constraint checks", "pairs"],
    );
    let mut expected: Option<u64> = None;
    for (name, opt) in [
        ("apriori+ (nothing pushed)", Optimizer::apriori_plus()),
        ("CAP: 1-var only", Optimizer::cap_one_var()),
        ("1-var + quasi-succinct 2-var", Optimizer::default()),
    ] {
        let (out, secs_taken) = timed(&opt, &q, &qenv);
        if let Some(exp) = expected {
            assert_eq!(exp, out.pair_result.count);
        }
        expected = Some(out.pair_result.count);
        t.row(vec![
            name.to_string(),
            secs(secs_taken),
            counted(&out).to_string(),
            (out.s_stats.constraint_checks + out.t_stats.constraint_checks).to_string(),
            out.pair_result.count.to_string(),
        ]);
    }
    t
}

/// **E10 (companion paper \[15\])** — the CAP 1-var strategy suite: speedup
/// per constraint class over Apriori⁺, on Quest data. Reproduces the
/// *premise* the CFQ paper builds on ("speedup … comparable to that
/// achieved for 1-var succinct constraints in \[15\]").
pub fn cap_suite(e: &ExpEnv) -> Table {
    let sc = ScenarioBuilder::new(e.quest())
        .typed_overlap(500.0, 500.0, 8, 50.0)
        .expect("scenario");
    let support = e.abs_support(sc.db.len());
    let mut t = Table::new(
        "CAP 1-var strategy suite: frequent-set computation speedup vs Apriori+ ([15])",
        &["constraint (on S)", "CAP strategy", "speedup", "counted base", "counted CAP"],
    );
    let cases = [
        ("max(S.Price) <= 150", "I: succinct + anti-monotone"),
        ("S.Type subset {Ty0, Ty1}", "I: succinct + anti-monotone"),
        ("min(S.Price) <= 30", "II: succinct only"),
        ("S.Type intersects {Ty0}", "II: succinct only"),
        ("sum(S.Price) <= 400", "III: anti-monotone only"),
        ("avg(S.Price) <= 150", "IV: weaker push + post filter"),
    ];
    for (src, strategy) in cases {
        let q = bind(src, &sc.catalog);
        // [15] measures the frequent-set computation phase; pair formation
        // is identical across strategies and would drown the signal here.
        let qenv = env_for(e, &sc, support).without_pair_formation();
        let (base, tb) = timed(&Optimizer::apriori_plus(), &q, &qenv);
        let (cap, tc) = timed(&Optimizer::default(), &q, &qenv);
        assert_eq!(base.s_sets, cap.s_sets, "`{src}`");
        t.row(vec![
            src.to_string(),
            strategy.to_string(),
            speedup(tb, tc),
            counted(&base).to_string(),
            counted(&cap).to_string(),
        ]);
    }
    t
}

/// **E11 (substrate comparison)** — the frequency backbones on the same
/// Quest workload: Apriori (k scans), Partition (2 scans), FP-Growth
/// (2 scans, no candidates). Result equality is asserted.
pub fn backbone_comparison(e: &ExpEnv) -> Table {
    use cfq_mining::{
        apriori, fp_growth, partition_mine, AprioriConfig, FpGrowthConfig, PartitionConfig,
    };
    let db = cfq_datagen::generate_transactions(&e.quest()).expect("quest");
    let support = e.abs_support(db.len());
    let mut t = Table::new(
        "Frequency backbones on Quest data (identical outputs asserted)",
        &["algorithm", "time", "db scans", "frequent sets"],
    );
    let mut reference: Option<Vec<(cfq_types::Itemset, u64)>> = None;
    let mut check = |name: &str, fs: &cfq_mining::FrequentSets| {
        let got: Vec<(cfq_types::Itemset, u64)> =
            fs.iter().map(|(s, n)| (s.clone(), n)).collect();
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(r, &got, "{name} diverged"),
        }
    };
    {
        let mut stats = cfq_mining::WorkStats::new();
        let start = Instant::now();
        let fs = apriori(&db, &AprioriConfig::new(support), &mut stats);
        let secs_taken = start.elapsed().as_secs_f64();
        check("apriori", &fs);
        t.row(vec!["apriori".into(), secs(secs_taken), stats.db_scans.to_string(), fs.total().to_string()]);
    }
    {
        let mut stats = cfq_mining::WorkStats::new();
        let start = Instant::now();
        let cfg = PartitionConfig {
            min_support: support,
            n_partitions: 8,
            ..PartitionConfig::default()
        };
        let fs = partition_mine(&db, &cfg, &mut stats);
        let secs_taken = start.elapsed().as_secs_f64();
        check("partition", &fs);
        t.row(vec!["partition (p=8)".into(), secs(secs_taken), stats.db_scans.to_string(), fs.total().to_string()]);
    }
    {
        let mut stats = cfq_mining::WorkStats::new();
        let start = Instant::now();
        let fs = fp_growth(&db, &FpGrowthConfig::new(support), &mut stats);
        let secs_taken = start.elapsed().as_secs_f64();
        check("fp-growth", &fs);
        t.row(vec!["fp-growth".into(), secs(secs_taken), stats.db_scans.to_string(), fs.total().to_string()]);
    }
    t
}

/// Aggregates scan extents by level: `[(level, rows, items)]`.
fn levels_scanned(extents: &[cfq_mining::ScanExtent]) -> Vec<(usize, u64, u64)> {
    let mut agg: std::collections::BTreeMap<usize, (u64, u64)> = std::collections::BTreeMap::new();
    for x in extents {
        let e = agg.entry(x.level).or_default();
        e.0 += x.rows;
        e.1 += x.items;
    }
    agg.into_iter().map(|(l, (r, i))| (l, r, i)).collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// **E12 (mining substrate)** — end-to-end optimizer runs on the Fig. 8(a)
/// (16.6% overlap) and Fig. 8(b) (40% Type overlap) workloads, comparing the
/// untrimmed sequential substrate against per-level database trimming +
/// parallel counting, plus a `--shards ∈ {1,2,4,8}` speedup curve (a
/// 10× 1M-transaction Quest workload joins the curve at `scale >= 1.0`).
/// Returns the report table and the machine-readable JSON document
/// (`BENCH_substrate.json`).
pub fn substrate_report(e: &ExpEnv) -> (Table, String) {
    let mut t = Table::new(
        "Mining substrate: per-level DB trimming + parallel counting vs untrimmed sequential",
        &[
            "workload", "config", "time", "counted", "rows scanned", "items scanned",
            "KiB scanned", "trim dropped (rows/items)", "speedup",
        ],
    );
    // The Fig. 8(a) workload runs at half the environment support so the
    // lattice reaches level 3+: level 1 is always a full scan, so a 2-level
    // run structurally caps the items-scanned reduction below 2x.
    let workloads: Vec<(&str, Scenario, &str, u64)> = vec![
        (
            "fig8a_overlap16.6",
            ScenarioBuilder::new(e.quest())
                .split_uniform_prices((400.0, 1000.0), (0.0, 500.0))
                .expect("scenario"),
            "max(S.Price) <= min(T.Price)",
            2,
        ),
        (
            "fig8b_type_overlap40",
            ScenarioBuilder::new(e.quest())
                .typed_overlap(400.0, 600.0, TYPES_PER_SIDE, 40.0)
                .expect("scenario"),
            FIG8B_QUERY,
            1,
        ),
    ];
    let mut json_workloads: Vec<String> = Vec::new();
    // At small scales the full matrix runs; at (or near) paper scale the
    // untrimmed sequential baseline alone would dwarf the rest of the
    // report's wall clock, so the trimmed horizontal config becomes the
    // reference the backends are measured against.
    let full_matrix = e.scale <= 0.25;
    for (name, sc, query, support_div) in &workloads {
        let support = (e.abs_support(sc.db.len()) / support_div).max(1);
        let q = bind(query, &sc.catalog);
        let mk_env = |trim: bool, threads: usize, backend: CountingBackend| {
            QueryEnv::new(&sc.db, &sc.catalog, support)
                .with_s_universe(sc.s_items.clone())
                .with_t_universe(sc.t_items.clone())
                .with_trim(trim)
                .with_counting_threads(threads)
                .with_backend(backend)
        };
        let mut runs: Vec<(&str, f64, ExecutionOutcome)> = Vec::new();
        if full_matrix {
            let (base, tb) =
                timed(&Optimizer::default(), &q, &mk_env(false, 1, CountingBackend::Horizontal));
            runs.push(("untrimmed_sequential", tb, base));
        }
        let (opt, to) = timed(
            &Optimizer::default(),
            &q,
            &mk_env(true, e.threads, CountingBackend::Horizontal),
        );
        let trimmed_wall = to;
        runs.push(("trimmed_parallel", to, opt));
        for (cfg, backend) in
            [("bitmap", CountingBackend::Bitmap), ("auto", CountingBackend::Auto)]
        {
            let (out, wall) = timed(&Optimizer::default(), &q, &mk_env(true, e.threads, backend));
            runs.push((cfg, wall, out));
        }
        let (baseline_wall, base) = (runs[0].1, &runs[0].2);
        for (cfg, _, out) in &runs[1..] {
            assert_eq!(
                base.pair_result.count, out.pair_result.count,
                "{name}/{cfg}: answers must agree"
            );
            assert_eq!(base.s_sets, out.s_sets, "{name}/{cfg}: S answers must agree");
            assert_eq!(base.t_sets, out.t_sets, "{name}/{cfg}: T answers must agree");
        }
        let base_items_scanned = base.scan.items_scanned;

        let mut json_configs: Vec<String> = Vec::new();
        for (i, (cfg, wall, out)) in runs.iter().enumerate() {
            let (cfg, wall) = (*cfg, *wall);
            let sp = if i == 0 { "1.00x".to_string() } else { speedup(baseline_wall, wall) };
            t.row(vec![
                name.to_string(),
                cfg.to_string(),
                secs(wall),
                counted(out).to_string(),
                out.scan.rows_scanned.to_string(),
                out.scan.items_scanned.to_string(),
                format!("{:.1}", out.scan.bytes_scanned() as f64 / 1024.0),
                format!("{}/{}", out.scan.trim_rows_dropped, out.scan.trim_items_dropped),
                sp,
            ]);
            let levels: Vec<String> = levels_scanned(&out.scan.extents)
                .into_iter()
                .map(|(l, r, i)| format!("{{\"level\":{l},\"rows\":{r},\"items\":{i}}}"))
                .collect();
            json_configs.push(format!(
                concat!(
                    "{{\"config\":\"{}\",\"wall_clock_s\":{:.6},\"candidates_counted\":{},",
                    "\"rows_scanned\":{},\"items_scanned\":{},\"bytes_scanned\":{},",
                    "\"trim_passes\":{},\"trim_rows_dropped\":{},\"trim_items_dropped\":{},",
                    "\"pairs\":{},\"speedup_vs_trimmed_parallel\":{:.3},\"levels\":[{}]}}"
                ),
                cfg,
                wall,
                counted(out),
                out.scan.rows_scanned,
                out.scan.items_scanned,
                out.scan.bytes_scanned(),
                out.scan.trim_passes,
                out.scan.trim_rows_dropped,
                out.scan.trim_items_dropped,
                out.pair_result.count,
                trimmed_wall / wall.max(1e-9),
                levels.join(","),
            ));
        }
        let trimmed_items = runs
            .iter()
            .find(|r| r.0 == "trimmed_parallel")
            .map(|r| r.2.scan.items_scanned)
            .unwrap_or(base_items_scanned);
        let reduction = base_items_scanned as f64 / (trimmed_items.max(1)) as f64;
        json_workloads.push(format!(
            concat!(
                "{{\"workload\":\"{}\",\"query\":\"{}\",\"transactions\":{},\"support\":{},",
                "\"configs\":[{}],\"speedup\":{:.3},\"items_scanned_reduction\":{:.3}}}"
            ),
            json_escape(name),
            json_escape(query),
            sc.db.len(),
            support,
            json_configs.join(","),
            baseline_wall / trimmed_wall.max(1e-9),
            reduction,
        ));
    }
    // ── Shard-speedup curve ────────────────────────────────────────
    // The Fig. 8(a) workload mined with `--shards ∈ {1, 2, 4, 8}`:
    // counting threads are pinned to 1 so the shard axis is the *only*
    // parallelism, and every sharded answer is asserted bit-identical
    // to the unsharded run. At paper scale (`scale >= 1.0`, the
    // 100k×1000 Quest database) a 10× (1M-transaction) Quest workload
    // joins the curve.
    let mut curve_sources: Vec<(String, Scenario)> = vec![(
        "shard_curve".to_string(),
        ScenarioBuilder::new(e.quest())
            .split_uniform_prices((400.0, 1000.0), (0.0, 500.0))
            .expect("scenario"),
    )];
    if e.scale >= 1.0 {
        let quest10 = QuestConfig { seed: e.seed, ..QuestConfig::paper_scaled(e.scale * 10.0) };
        curve_sources.push((
            "shard_curve_10x_1m".to_string(),
            ScenarioBuilder::new(quest10)
                .split_uniform_prices((400.0, 1000.0), (0.0, 500.0))
                .expect("scenario"),
        ));
    }
    let mut json_curves: Vec<String> = Vec::new();
    for (name, sc) in &curve_sources {
        let support = (e.abs_support(sc.db.len()) / 2).max(1);
        let q = bind("max(S.Price) <= min(T.Price)", &sc.catalog);
        let mut baseline_wall = 0.0;
        let mut reference: Option<ExecutionOutcome> = None;
        let mut json_points: Vec<String> = Vec::new();
        for shards in [1usize, 2, 4, 8] {
            let env = QueryEnv::new(&sc.db, &sc.catalog, support)
                .with_s_universe(sc.s_items.clone())
                .with_t_universe(sc.t_items.clone())
                .with_trim(true)
                .with_counting_threads(1)
                .with_backend(CountingBackend::Horizontal)
                .with_shards(shards);
            let (out, wall) = timed(&Optimizer::default(), &q, &env);
            if let Some(base) = &reference {
                assert_eq!(base.s_sets, out.s_sets, "{name} x{shards}: S answers must agree");
                assert_eq!(base.t_sets, out.t_sets, "{name} x{shards}: T answers must agree");
                assert_eq!(
                    base.pair_result.pairs, out.pair_result.pairs,
                    "{name} x{shards}: pair answers must agree"
                );
            } else {
                baseline_wall = wall;
            }
            let sp = if shards == 1 { "1.00x".to_string() } else { speedup(baseline_wall, wall) };
            t.row(vec![
                name.clone(),
                format!("shards={shards}"),
                secs(wall),
                counted(&out).to_string(),
                out.scan.rows_scanned.to_string(),
                out.scan.items_scanned.to_string(),
                format!("{:.1}", out.scan.bytes_scanned() as f64 / 1024.0),
                format!("{}/{}", out.scan.trim_rows_dropped, out.scan.trim_items_dropped),
                sp,
            ]);
            json_points.push(format!(
                "{{\"shards\":{},\"wall_clock_s\":{:.6},\"speedup_vs_shards1\":{:.3},\"pairs\":{}}}",
                shards,
                wall,
                baseline_wall / wall.max(1e-9),
                out.pair_result.count,
            ));
            if reference.is_none() {
                reference = Some(out);
            }
        }
        json_curves.push(format!(
            concat!(
                "{{\"workload\":\"{}\",\"query\":\"max(S.Price) <= min(T.Price)\",",
                "\"transactions\":{},\"support\":{},\"points\":[{}]}}"
            ),
            json_escape(name),
            sc.db.len(),
            support,
            json_points.join(","),
        ));
    }
    let json = format!(
        concat!(
            "{{\"bench\":\"substrate\",\"scale\":{},\"seed\":{},\"support_frac\":{},",
            "\"threads\":{},\"workloads\":[{}],\"shard_curve\":[{}]}}\n"
        ),
        e.scale,
        e.seed,
        e.support_frac,
        e.threads,
        json_workloads.join(","),
        json_curves.join(","),
    );
    (t, json)
}

/// Runs [`substrate_report`] and writes the JSON document to
/// `BENCH_substrate.json` (override the path with `CFQ_BENCH_OUT`).
pub fn substrate(e: &ExpEnv) -> Table {
    let (t, json) = substrate_report(e);
    let path =
        std::env::var("CFQ_BENCH_OUT").unwrap_or_else(|_| "BENCH_substrate.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    t
}

/// **E14 (session engine)** — the Fig. 8(a) and Fig. 8(b) workloads run
/// through the long-lived session [`Engine`]: a cold first evaluation
/// (mines and caches the per-side lattices), a warm identical re-run
/// (must answer with **zero** database scans), a delta append (FUP
/// upgrades the cached lattices in place), and a warm re-run at the new
/// epoch. Every engine answer is cross-checked against the one-shot
/// optimizer on the same database. Returns the report table and the
/// machine-readable JSON document (`BENCH_engine.json`).
pub fn engine_report(e: &ExpEnv) -> (Table, String) {
    let mut t = Table::new(
        "Session engine: cold mine vs warm cache vs FUP upgrade on append",
        &[
            "workload", "cold", "warm", "append+FUP", "warm@epoch1", "warm scans",
            "pairs", "warm speedup",
        ],
    );
    let workloads: Vec<(&str, Scenario, &str)> = vec![
        (
            "fig8a_overlap16.6",
            ScenarioBuilder::new(e.quest())
                .split_uniform_prices((400.0, 1000.0), (0.0, 500.0))
                .expect("scenario"),
            "max(S.Price) <= min(T.Price)",
        ),
        (
            "fig8b_type_overlap40",
            ScenarioBuilder::new(e.quest())
                .typed_overlap(400.0, 600.0, TYPES_PER_SIDE, 40.0)
                .expect("scenario"),
            FIG8B_QUERY,
        ),
    ];
    let mut json_workloads: Vec<String> = Vec::new();
    for (name, sc, query) in workloads {
        // 90/10 base/delta split: the engine starts on the base and the
        // delta arrives later as an append.
        let rows: Vec<Vec<ItemId>> = sc.db.iter().map(|r| r.to_vec()).collect();
        let cut = (rows.len() * 9 / 10).max(1);
        let base = TransactionDb::new(sc.db.n_items(), rows[..cut].to_vec()).expect("base split");
        let delta = TransactionDb::new(sc.db.n_items(), rows[cut..].to_vec()).expect("delta split");
        let combined = base.concat(&delta).expect("combined db");
        let support = e.abs_support(base.len());

        let engine = Engine::new(base.clone(), sc.catalog).expect("engine");
        let session = engine.session();
        let catalog = engine.catalog();
        let run = |label: &str| {
            let start = Instant::now();
            let out = session
                .query(query)
                .min_support(support)
                .s_universe(sc.s_items.clone())
                .t_universe(sc.t_items.clone())
                .counting_threads(e.threads)
                .trim(e.trim)
                .run()
                .expect(label);
            let wall = start.elapsed().as_secs_f64();
            (out, wall)
        };
        let reference = |db: &TransactionDb| {
            let q = bind(query, &catalog);
            let env = QueryEnv::new(db, &catalog, support)
                .with_s_universe(sc.s_items.clone())
                .with_t_universe(sc.t_items.clone())
                .with_counting_threads(e.threads)
                .with_trim(e.trim);
            Optimizer::default().evaluate(&q, &env).expect("reference run")
        };

        let (cold, t_cold) = run("cold run");
        let base_ref = reference(&base);
        assert_eq!(cold.outcome.pair_result.count, base_ref.pair_result.count, "{name}: cold");
        assert_eq!(cold.outcome.s_sets, base_ref.s_sets, "{name}: cold S answers");
        assert_eq!(cold.outcome.t_sets, base_ref.t_sets, "{name}: cold T answers");

        let (warm, t_warm) = run("warm run");
        assert_eq!(warm.outcome.db_scans, 0, "{name}: warm re-run must not scan the database");
        assert_eq!(warm.outcome.pair_result.count, cold.outcome.pair_result.count, "{name}: warm");

        let start = Instant::now();
        let info = engine.append(delta).expect("append");
        let t_append = start.elapsed().as_secs_f64();
        assert!(info.upgraded_lattices > 0, "{name}: append should FUP-upgrade cached lattices");

        let (after, t_after) = run("warm run after append");
        assert_eq!(after.epoch, 1, "{name}: post-append run sees the new epoch");
        assert_eq!(after.outcome.db_scans, 0, "{name}: FUP-upgraded cache must serve scan-free");
        let combined_ref = reference(&combined);
        assert_eq!(after.outcome.pair_result.count, combined_ref.pair_result.count, "{name}");
        assert_eq!(after.outcome.s_sets, combined_ref.s_sets, "{name}: post-append S answers");
        assert_eq!(after.outcome.t_sets, combined_ref.t_sets, "{name}: post-append T answers");

        let stats = engine.cache_stats();
        t.row(vec![
            name.to_string(),
            secs(t_cold),
            secs(t_warm),
            secs(t_append),
            secs(t_after),
            warm.outcome.db_scans.to_string(),
            cold.outcome.pair_result.count.to_string(),
            speedup(t_cold, t_warm),
        ]);
        json_workloads.push(format!(
            concat!(
                "{{\"workload\":\"{}\",\"query\":\"{}\",\"transactions\":{},\"delta\":{},",
                "\"support\":{},\"pairs\":{},\"cold_s\":{:.6},\"warm_s\":{:.6},",
                "\"append_fup_s\":{:.6},\"warm_after_append_s\":{:.6},\"warm_db_scans\":{},",
                "\"warm_after_append_db_scans\":{},\"upgraded_lattices\":{},",
                "\"old_db_recounts\":{},\"lattice_hits\":{},\"scans_saved\":{},",
                "\"warm_speedup\":{:.3}}}"
            ),
            json_escape(name),
            json_escape(query),
            info.transactions,
            info.transactions - base.len(),
            support,
            cold.outcome.pair_result.count,
            t_cold,
            t_warm,
            t_append,
            t_after,
            warm.outcome.db_scans,
            after.outcome.db_scans,
            info.upgraded_lattices,
            info.old_db_recounts,
            stats.lattice_hits,
            stats.scans_saved,
            t_cold / t_warm.max(1e-9),
        ));
    }
    let json = format!(
        concat!(
            "{{\"bench\":\"engine\",\"scale\":{},\"seed\":{},\"support_frac\":{},",
            "\"threads\":{},\"workloads\":[{}]}}\n"
        ),
        e.scale,
        e.seed,
        e.support_frac,
        e.threads,
        json_workloads.join(","),
    );
    (t, json)
}

/// Runs [`engine_report`] and writes the JSON document to
/// `BENCH_engine.json` (override the path with `CFQ_ENGINE_OUT`).
pub fn engine(e: &ExpEnv) -> Table {
    let (t, json) = engine_report(e);
    let path = std::env::var("CFQ_ENGINE_OUT").unwrap_or_else(|_| "BENCH_engine.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    t
}

/// **E13 (plan soundness audit)** — statically audits the optimizer plans
/// of the Fig. 8(a), Fig. 8(b), and induced-weaker (Fig. 4) workload
/// queries across every strategy family, recording per-plan error/warning
/// counts. Returns the report table and the machine-readable JSON document
/// (`BENCH_audit.json`); every shipped plan must audit clean (zero
/// errors), which the JSON records as evidence.
pub fn audit_report(e: &ExpEnv) -> (Table, String) {
    use cfq_audit::Auditor;

    let mut t = Table::new(
        "Plan soundness audit: rewrite obligations (Figs. 1-4, §5.2) per strategy",
        &["workload", "query", "strategy", "2-var nodes", "errors", "warnings", "verdict"],
    );
    let workloads: Vec<(&str, Scenario, &str)> = vec![
        (
            "fig8a_overlap16.6",
            ScenarioBuilder::new(e.quest())
                .split_uniform_prices((400.0, 1000.0), (0.0, 500.0))
                .expect("scenario"),
            "max(S.Price) <= min(T.Price)",
        ),
        (
            "fig8b_type_overlap40",
            ScenarioBuilder::new(e.quest())
                .typed_overlap(400.0, 600.0, TYPES_PER_SIDE, 40.0)
                .expect("scenario"),
            FIG8B_QUERY,
        ),
        (
            "fig4_induced_weaker",
            ScenarioBuilder::new(e.quest())
                .split_uniform_prices((400.0, 1000.0), (0.0, 500.0))
                .expect("scenario"),
            "avg(S.Price) <= avg(T.Price) & sum(S.Price) <= sum(T.Price)",
        ),
    ];
    let strategies: [(&str, Optimizer); 3] = [
        ("full", Optimizer::default()),
        ("cap1", Optimizer::cap_one_var()),
        ("apriori+", Optimizer::apriori_plus()),
    ];
    let mut json_checks: Vec<String> = Vec::new();
    let mut total_errors = 0usize;
    for (name, sc, query) in &workloads {
        for (sname, opt) in &strategies {
            let plan = opt.build_plan(&bind(query, &sc.catalog), &sc.catalog);
            let report = Auditor::new(&sc.catalog)
                .with_optimizer(*opt)
                .audit_source(query)
                .expect("experiment query parses and binds");
            let errors = report.errors().count();
            let warnings = report.warnings().count();
            total_errors += errors;
            t.row(vec![
                name.to_string(),
                query.to_string(),
                sname.to_string(),
                plan.trace().nodes.len().to_string(),
                errors.to_string(),
                warnings.to_string(),
                if report.is_sound() { "sound".into() } else { "REJECTED".into() },
            ]);
            json_checks.push(format!(
                "{{\"workload\":\"{}\",\"query\":\"{}\",\"strategy\":\"{}\",\"nodes\":{},\"report\":{}}}",
                json_escape(name),
                json_escape(query),
                sname,
                plan.trace().nodes.len(),
                report.to_json(),
            ));
        }
    }
    assert_eq!(total_errors, 0, "shipped workload plans must audit clean");
    let json = format!(
        "{{\"bench\":\"audit\",\"scale\":{},\"seed\":{},\"violations\":{},\"checks\":[{}]}}\n",
        e.scale,
        e.seed,
        total_errors,
        json_checks.join(","),
    );
    (t, json)
}

/// Runs [`audit_report`] and writes the JSON document to
/// `BENCH_audit.json` (override the path with `CFQ_AUDIT_OUT`).
pub fn audit(e: &ExpEnv) -> Table {
    let (t, json) = audit_report(e);
    let path = std::env::var("CFQ_AUDIT_OUT").unwrap_or_else(|_| "BENCH_audit.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_report_records_zero_violations() {
        let e = ExpEnv { scale: 0.01, ..ExpEnv::default() };
        let (t, json) = audit_report(&e);
        assert_eq!(t.rows.len(), 9, "three workloads x three strategies");
        for key in [
            "\"bench\":\"audit\"",
            "\"violations\":0",
            "\"workload\":\"fig8a_overlap16.6\"",
            "\"workload\":\"fig8b_type_overlap40\"",
            "\"workload\":\"fig4_induced_weaker\"",
            "\"strategy\":\"apriori+\"",
            "\"sound\": true",
        ] {
            assert!(json.contains(key), "JSON missing {key}: {json}");
        }
        assert!(!json.contains("\"sound\": false"));
    }

    #[test]
    fn substrate_report_is_consistent() {
        // Tiny workload: the report must agree between configs and the JSON
        // document must carry the headline counters.
        let e = ExpEnv { scale: 0.01, threads: 2, ..ExpEnv::default() };
        let (t, json) = substrate_report(&e);
        assert_eq!(
            t.rows.len(),
            12,
            "two workloads x four configs + one shard curve x four points"
        );
        for key in [
            "\"bench\":\"substrate\"",
            "\"workload\":\"fig8a_overlap16.6\"",
            "\"workload\":\"fig8b_type_overlap40\"",
            "\"config\":\"untrimmed_sequential\"",
            "\"config\":\"trimmed_parallel\"",
            "\"config\":\"bitmap\"",
            "\"config\":\"auto\"",
            "\"speedup_vs_trimmed_parallel\"",
            "\"items_scanned_reduction\"",
            "\"levels\":[{\"level\":1,",
            "\"shard_curve\":[{\"workload\":\"shard_curve\"",
            "\"points\":[{\"shards\":1,",
            "\"shards\":8,",
            "\"speedup_vs_shards1\"",
        ] {
            assert!(json.contains(key), "JSON missing {key}: {json}");
        }
        // The untrimmed config never drops anything.
        assert!(json.contains("\"trim_passes\":0"));
    }

    #[test]
    fn engine_report_is_scan_free_when_warm() {
        let e = ExpEnv { scale: 0.01, ..ExpEnv::default() };
        let (t, json) = engine_report(&e);
        assert_eq!(t.rows.len(), 2, "two workloads, one row each");
        for key in [
            "\"bench\":\"engine\"",
            "\"workload\":\"fig8a_overlap16.6\"",
            "\"workload\":\"fig8b_type_overlap40\"",
            "\"warm_db_scans\":0",
            "\"warm_after_append_db_scans\":0",
            "\"cold_s\"",
            "\"append_fup_s\"",
            "\"upgraded_lattices\"",
            "\"scans_saved\"",
        ] {
            assert!(json.contains(key), "JSON missing {key}: {json}");
        }
        assert!(!json.contains("\"warm_db_scans\":1"), "warm runs must never scan");
    }

    #[test]
    fn env_knobs_are_read() {
        let e = ExpEnv::default();
        assert_eq!(e.threads, 0);
        assert!(e.trim);
    }
}

//! Minimal fixed-width / markdown table rendering for experiment reports.

use std::fmt::Write as _;

/// A printable experiment table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a caption and headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Renders as an aligned text table.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, " {:<width$} |", c, width = w[i]);
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.header);
        let mut sep = String::from("|");
        for width in &w {
            let _ = write!(sep, "{:-<1$}|", "", width + 2);
        }
        let _ = writeln!(out, "{sep}");
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.to_text());
    }
}

/// Formats seconds compactly.
pub fn secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}

/// Formats a speedup ratio.
pub fn speedup(base: f64, opt: f64) -> String {
    if opt <= 0.0 {
        return "inf".into();
    }
    format!("{:.2}x", base / opt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["a", "longer"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let text = t.to_text();
        assert!(text.contains("## Demo"));
        assert!(text.contains("| a   | longer |"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(0.0123), "12.3ms");
        assert_eq!(speedup(4.0, 2.0), "2.00x");
    }
}

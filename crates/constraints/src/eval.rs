//! Evaluation of bound constraints on concrete itemsets.

use crate::bound::{OneVar, TwoVar};
use crate::lang::Agg;
use cfq_types::{AttrId, Catalog, Itemset};

/// Computes `agg(set.attr)`; `None` when the set is empty and the aggregate
/// is undefined (min/max/avg). `sum` of the empty set is 0.
pub fn agg_value(agg: Agg, attr: AttrId, set: &Itemset, catalog: &Catalog) -> Option<f64> {
    match agg {
        Agg::Min => catalog.min_num(attr, set),
        Agg::Max => catalog.max_num(attr, set),
        Agg::Sum => Some(catalog.sum_num(attr, set)),
        Agg::Avg => catalog.avg_num(attr, set),
    }
}

/// Evaluates a 1-var constraint on an instance of its variable.
///
/// Aggregate comparisons over an empty set are `false` (no frequent set is
/// empty in a levelwise run, but candidates built by tests may be).
pub fn eval_one(c: &OneVar, set: &Itemset, catalog: &Catalog) -> bool {
    match c {
        OneVar::Domain { attr, rel, value, .. } => {
            let keys = catalog.value_set(*attr, set);
            rel.eval(&keys, value)
        }
        OneVar::AggCmp { agg, attr, op, value, .. } => match agg_value(*agg, *attr, set, catalog)
        {
            Some(a) => op.eval(a, *value),
            None => false,
        },
        OneVar::CountCmp { attr, op, value, .. } => {
            op.eval(catalog.count_distinct(*attr, set) as f64, *value)
        }
    }
}

/// Evaluates a 2-var constraint on a pair `(S, T)`.
pub fn eval_two(c: &TwoVar, s: &Itemset, t: &Itemset, catalog: &Catalog) -> bool {
    match c {
        TwoVar::Domain { s_attr, rel, t_attr } => {
            let sk = catalog.value_set(*s_attr, s);
            let tk = catalog.value_set(*t_attr, t);
            rel.eval(&sk, &tk)
        }
        TwoVar::AggCmp { s_agg, s_attr, op, t_agg, t_attr } => {
            match (
                agg_value(*s_agg, *s_attr, s, catalog),
                agg_value(*t_agg, *t_attr, t, catalog),
            ) {
                (Some(a), Some(b)) => op.eval(a, b),
                _ => false,
            }
        }
        TwoVar::CountCmp { s_attr, op, t_attr } => op.eval(
            catalog.count_distinct(*s_attr, s) as f64,
            catalog.count_distinct(*t_attr, t) as f64,
        ),
    }
}

/// Evaluates a conjunction of 2-var constraints on a pair.
pub fn eval_all_two(cs: &[TwoVar], s: &Itemset, t: &Itemset, catalog: &Catalog) -> bool {
    cs.iter().all(|c| eval_two(c, s, t, catalog))
}

/// Evaluates a conjunction of 1-var constraints on an instance.
pub fn eval_all_one(cs: &[OneVar], set: &Itemset, catalog: &Catalog) -> bool {
    cs.iter().all(|c| eval_one(c, set, catalog))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::bind_query;
    use crate::parser::parse_query;
    use cfq_types::CatalogBuilder;

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(4);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        b.cat_attr("Type", &["Snacks", "Beers", "Snacks", "Dairy"]).unwrap();
        b.build()
    }

    fn one(src: &str) -> OneVar {
        bind_query(&parse_query(src).unwrap(), &catalog()).unwrap().one_var.remove(0)
    }

    fn two(src: &str) -> TwoVar {
        bind_query(&parse_query(src).unwrap(), &catalog()).unwrap().two_var.remove(0)
    }

    #[test]
    fn agg_values() {
        let c = catalog();
        let price = c.attr("Price").unwrap();
        let set: Itemset = [0u32, 2].into();
        assert_eq!(agg_value(Agg::Min, price, &set, &c), Some(10.0));
        assert_eq!(agg_value(Agg::Max, price, &set, &c), Some(30.0));
        assert_eq!(agg_value(Agg::Sum, price, &set, &c), Some(40.0));
        assert_eq!(agg_value(Agg::Avg, price, &set, &c), Some(20.0));
        assert_eq!(agg_value(Agg::Min, price, &Itemset::empty(), &c), None);
        assert_eq!(agg_value(Agg::Sum, price, &Itemset::empty(), &c), Some(0.0));
    }

    #[test]
    fn one_var_agg_and_count() {
        let c = catalog();
        let set: Itemset = [0u32, 2].into(); // Snacks + Snacks, prices 10/30
        assert!(eval_one(&one("sum(S.Price) <= 40"), &set, &c));
        assert!(!eval_one(&one("sum(S.Price) < 40"), &set, &c));
        assert!(eval_one(&one("count(S.Type) = 1"), &set, &c));
        assert!(eval_one(&one("count(S) = 2"), &set, &c));
        let mixed: Itemset = [0u32, 1].into();
        assert!(!eval_one(&one("count(S.Type) = 1"), &mixed, &c));
    }

    #[test]
    fn one_var_domain() {
        let c = catalog();
        let snacks_only: Itemset = [0u32, 2].into();
        assert!(eval_one(&one("S.Type = {Snacks}"), &snacks_only, &c));
        assert!(eval_one(&one("S.Type subset {Snacks, Beers}"), &snacks_only, &c));
        assert!(!eval_one(&one("S.Type = {Beers}"), &snacks_only, &c));
        assert!(eval_one(&one("S.Type disjoint {Beers}"), &snacks_only, &c));
        assert!(eval_one(&one("20 in S.Price"), &[1u32, 3].into(), &c));
        assert!(!eval_one(&one("20 in S.Price"), &snacks_only, &c));
    }

    #[test]
    fn empty_set_semantics() {
        let c = catalog();
        let e = Itemset::empty();
        assert!(!eval_one(&one("min(S.Price) >= 0"), &e, &c));
        assert!(eval_one(&one("sum(S.Price) <= 10"), &e, &c));
        assert!(eval_one(&one("count(S) = 0"), &e, &c));
        assert!(eval_one(&one("S.Type subset {Snacks}"), &e, &c));
    }

    #[test]
    fn two_var_agg() {
        let c = catalog();
        let s: Itemset = [0u32].into(); // price 10
        let t: Itemset = [3u32].into(); // price 40
        assert!(eval_two(&two("max(S.Price) <= min(T.Price)"), &s, &t, &c));
        assert!(!eval_two(&two("max(S.Price) <= min(T.Price)"), &t, &s, &c));
        assert!(eval_two(&two("sum(S.Price) <= sum(T.Price)"), &s, &t, &c));
        assert!(eval_two(&two("avg(S.Price) != avg(T.Price)"), &s, &t, &c));
    }

    #[test]
    fn two_var_domain() {
        let c = catalog();
        let s: Itemset = [0u32].into(); // Snacks
        let t: Itemset = [1u32].into(); // Beers
        let both: Itemset = [0u32, 1].into();
        assert!(eval_two(&two("S.Type disjoint T.Type"), &s, &t, &c));
        assert!(!eval_two(&two("S.Type disjoint T.Type"), &s, &both, &c));
        assert!(eval_two(&two("S.Type subset T.Type"), &s, &both, &c));
        assert!(eval_two(&two("S disjoint T"), &s, &t, &c));
        assert!(!eval_two(&two("S disjoint T"), &both, &t, &c));
    }

    #[test]
    fn conjunction_helpers() {
        let c = catalog();
        let q = bind_query(
            &parse_query("max(S.Price) <= 30 & S.Type subset {Snacks}").unwrap(),
            &c,
        )
        .unwrap();
        assert!(eval_all_one(&q.one_var, &[0u32, 2].into(), &c));
        assert!(!eval_all_one(&q.one_var, &[0u32, 1].into(), &c));
        assert!(eval_all_two(&[], &[0u32].into(), &[1u32].into(), &c));
    }
}

//! The parsed (unresolved) form of a CFQ.
//!
//! Attribute names and symbols are still strings here; [`crate::bound`]
//! resolves them against a [`cfq_types::Catalog`]. The AST prints back to
//! parseable query text (round-trip is property-tested).

use crate::lang::{Agg, CmpOp, SetRel, Var};
use std::fmt;

/// A variable with an optional attribute: `S`, `T.Price`, `S.Type`, …
#[derive(Clone, PartialEq, Debug)]
pub struct VarAttr {
    /// The set variable.
    pub var: Var,
    /// The attribute, or `None` for the bare variable (item-level sets).
    pub attr: Option<String>,
}

impl fmt::Display for VarAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.attr {
            Some(a) => write!(f, "{}.{}", self.var, a),
            None => write!(f, "{}", self.var),
        }
    }
}

/// A literal element of a set literal: a number or a symbol.
#[derive(Clone, PartialEq, Debug)]
pub enum Literal {
    /// Numeric literal.
    Num(f64),
    /// Symbolic literal (a categorical value such as `Snacks`).
    Sym(String),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Num(n) => write!(f, "{n}"),
            Literal::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// One side of a domain (set) constraint.
#[derive(Clone, PartialEq, Debug)]
pub enum SetExpr {
    /// A variable's value set, e.g. `S.Type`.
    Var(VarAttr),
    /// A literal set, e.g. `{Snacks, Beers}` or `{100, 200}`.
    Lit(Vec<Literal>),
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Var(v) => write!(f, "{v}"),
            SetExpr::Lit(items) => {
                write!(f, "{{")?;
                for (i, l) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// One side of an aggregate comparison.
#[derive(Clone, PartialEq, Debug)]
pub enum AggExpr {
    /// `agg(Var.Attr)`
    Agg {
        /// The aggregate function.
        agg: Agg,
        /// The aggregated variable attribute.
        operand: VarAttr,
    },
    /// A numeric constant.
    Const(f64),
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggExpr::Agg { agg, operand } => write!(f, "{agg}({operand})"),
            AggExpr::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A single constraint of a CFQ conjunction.
#[derive(Clone, PartialEq, Debug)]
pub enum Constraint {
    /// `freq(S)` / `freq(T)` — the frequency constraint. Implicit in every
    /// CFQ; accepted syntactically for fidelity with the paper's examples.
    Freq(Var),
    /// `agg(X.A) op agg(Y.B)` or `agg(X.A) op c` (and the mirrored form).
    AggCmp {
        /// Left side.
        lhs: AggExpr,
        /// Comparison operator.
        op: CmpOp,
        /// Right side.
        rhs: AggExpr,
    },
    /// `count(X) op n` / `count(X.A) op n` — class constraints.
    CountCmp {
        /// The counted variable/attribute (distinct values).
        operand: VarAttr,
        /// Comparison operator.
        op: CmpOp,
        /// The constant.
        value: f64,
    },
    /// `count(X.A) op count(Y.B)` — a 2-var class constraint (an extension
    /// beyond the paper's tabulated language; see §8 open problem 3).
    CountCmp2 {
        /// Left counted side.
        lhs: VarAttr,
        /// Comparison operator.
        op: CmpOp,
        /// Right counted side.
        rhs: VarAttr,
    },
    /// `X.A rel Y.B`, `X.A rel {…}`, `{…} rel X.A` — domain constraints.
    SetCmp {
        /// Left side.
        lhs: SetExpr,
        /// Set relation.
        rel: SetRel,
        /// Right side.
        rhs: SetExpr,
    },
    /// `lit in X.A` — membership, sugar for `{lit} subset X.A`.
    Member {
        /// The element.
        value: Literal,
        /// The containing value set.
        operand: VarAttr,
    },
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Freq(v) => write!(f, "freq({v})"),
            Constraint::AggCmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Constraint::CountCmp { operand, op, value } => {
                write!(f, "count({operand}) {op} {value}")
            }
            Constraint::CountCmp2 { lhs, op, rhs } => {
                write!(f, "count({lhs}) {op} count({rhs})")
            }
            Constraint::SetCmp { lhs, rel, rhs } => write!(f, "{lhs} {rel} {rhs}"),
            Constraint::Member { value, operand } => write!(f, "{value} in {operand}"),
        }
    }
}

/// A disjunction of conjunctive CFQs — the DNF extension of the paper's
/// conjunction-only language (§8 open problem 3). The answer is the union
/// of the disjuncts' answers.
#[derive(Clone, PartialEq, Debug)]
pub struct Dnf {
    /// The disjuncts (each a conjunctive CFQ).
    pub disjuncts: Vec<Query>,
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// A parsed CFQ: the conjunction `C` of `{(S, T) | C}`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Query {
    /// The conjuncts.
    pub constraints: Vec<Constraint>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let c = Constraint::AggCmp {
            lhs: AggExpr::Agg {
                agg: Agg::Sum,
                operand: VarAttr { var: Var::S, attr: Some("Price".into()) },
            },
            op: CmpOp::Le,
            rhs: AggExpr::Const(100.0),
        };
        assert_eq!(c.to_string(), "sum(S.Price) <= 100");

        let c = Constraint::SetCmp {
            lhs: SetExpr::Var(VarAttr { var: Var::S, attr: Some("Type".into()) }),
            rel: SetRel::Eq,
            rhs: SetExpr::Lit(vec![Literal::Sym("Snacks".into())]),
        };
        assert_eq!(c.to_string(), "S.Type = {Snacks}");

        let c = Constraint::Member {
            value: Literal::Num(5.0),
            operand: VarAttr { var: Var::T, attr: Some("Price".into()) },
        };
        assert_eq!(c.to_string(), "5 in T.Price");

        let q = Query {
            constraints: vec![
                Constraint::Freq(Var::S),
                Constraint::CountCmp {
                    operand: VarAttr { var: Var::S, attr: Some("Type".into()) },
                    op: CmpOp::Eq,
                    value: 1.0,
                },
            ],
        };
        assert_eq!(q.to_string(), "freq(S) & count(S.Type) = 1");
    }
}

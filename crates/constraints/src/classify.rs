//! Constraint classification: anti-monotonicity, succinctness (1-var, from
//! the CAP paper \[15\]), and the paper's 2-var characterization (Figure 1).

use crate::bound::{OneVar, TwoVar};
use crate::lang::{Agg, CmpOp, SetRel};
use cfq_types::Catalog;

/// Classification of a 1-var constraint (Definitions 1–2 of the paper,
/// results from \[15\]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OneVarClass {
    /// Anti-monotone: violated sets have only violated supersets.
    pub anti_monotone: bool,
    /// Succinct: the solution space has a member-generating function.
    pub succinct: bool,
}

/// Classification of a 2-var constraint (Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoVarClass {
    /// 2-var anti-monotone per Definition 4 (w.r.t. both variables).
    pub anti_monotone: bool,
    /// Quasi-succinct per Definition 5: reducible to two succinct 1-var
    /// pruning conditions that preserve valid S- and T-sets.
    pub quasi_succinct: bool,
}

/// Classifies a 1-var constraint.
///
/// The catalog is consulted for `sum` constraints: `sum(S.A) ≤ v` is
/// anti-monotone only when the attribute domain is non-negative (the paper's
/// standing assumption in §5; we check rather than assume).
pub fn classify_one(c: &OneVar, catalog: &Catalog) -> OneVarClass {
    match c {
        OneVar::Domain { rel, .. } => OneVarClass {
            anti_monotone: matches!(
                rel,
                SetRel::Subset | SetRel::Disjoint | SetRel::NotSuperset
            ),
            // All domain constraints are succinct (Lemma 1): their solution
            // spaces are powerset-algebra expressions over selections.
            succinct: true,
        },
        OneVar::AggCmp { agg, attr, op, value, .. } => match agg {
            Agg::Min => OneVarClass {
                anti_monotone: op.is_lower() || envelope_folds(catalog, *attr, *op, *value),
                succinct: true,
            },
            Agg::Max => OneVarClass {
                anti_monotone: op.is_upper() || envelope_folds(catalog, *attr, *op, *value),
                succinct: true,
            },
            Agg::Sum => {
                let non_negative = catalog
                    .column_min_num(*attr)
                    .map(|m| m >= 0.0)
                    .unwrap_or(true);
                // Mirror image of the non-negative rule: on an all-non-
                // positive domain, adding items can only lower the sum, so
                // a lower bound prunes anti-monotonically.
                let non_positive = catalog
                    .column_max_num(*attr)
                    .map(|m| m <= 0.0)
                    .unwrap_or(true);
                OneVarClass {
                    anti_monotone: (op.is_upper() && non_negative)
                        || (op.is_lower() && non_positive),
                    succinct: false,
                }
            }
            Agg::Avg => OneVarClass { anti_monotone: false, succinct: false },
        },
        OneVar::CountCmp { op, .. } => OneVarClass {
            anti_monotone: op.is_upper(),
            // [15] classifies count constraints as only *weakly* succinct;
            // we treat them as non-succinct (no member generating function
            // over selections on item attributes alone).
            succinct: false,
        },
    }
}

/// Constant-folding for `min/max(X.A) op v` against the column envelope
/// `[m, M]`: both aggregates over any nonempty set land in `[m, M]`, and
/// both extremes are reachable by a singleton (the item holding the column
/// min/max), so a comparison whose truth the envelope decides — trivially
/// true (no violated sets) or trivially false (every set violated) — is
/// *vacuously* anti-monotone even though the bare operator shape is not.
/// Returns `false` when the envelope is unknown (empty catalog), the
/// conservative answer. Equality targets inside the envelope may still be
/// unreachable, but can never be provably hit everywhere, so only the
/// out-of-envelope side folds.
fn envelope_folds(catalog: &Catalog, attr: cfq_types::AttrId, op: CmpOp, v: f64) -> bool {
    let (Some(lo), Some(hi)) = (catalog.column_min_num(attr), catalog.column_max_num(attr))
    else {
        return false;
    };
    match op {
        CmpOp::Le => v >= hi || v < lo,
        CmpOp::Lt => v > hi || v <= lo,
        CmpOp::Ge => v <= lo || v > hi,
        CmpOp::Gt => v < lo || v >= hi,
        CmpOp::Eq | CmpOp::Ne => v < lo || v > hi,
    }
}

/// Classifies a 2-var constraint per Figure 1 of the paper.
///
/// Anti-monotone 2-var constraints are rare: among domain constraints only
/// `S.A ∩ T.B = ∅`, and among aggregate comparisons only
/// `max(S.A) ≤ min(T.B)` (and its mirror image `min(S.A) ≥ max(T.B)`,
/// which is the same constraint with the variables' roles swapped).
/// Quasi-succinct: every domain constraint, and every min/max comparison
/// with an inequality operator; nothing involving sum/avg.
pub fn classify_two(c: &TwoVar) -> TwoVarClass {
    match c {
        TwoVar::Domain { rel, .. } => TwoVarClass {
            anti_monotone: *rel == SetRel::Disjoint,
            quasi_succinct: true,
        },
        TwoVar::AggCmp { s_agg, op, t_agg, .. } => {
            let anti_monotone = matches!(
                (s_agg, op, t_agg),
                (Agg::Max, CmpOp::Le | CmpOp::Lt, Agg::Min)
                    | (Agg::Min, CmpOp::Ge | CmpOp::Gt, Agg::Max)
            );
            let quasi_succinct = s_agg.is_succinct_agg()
                && t_agg.is_succinct_agg()
                && (op.is_upper() || op.is_lower());
            TwoVarClass { anti_monotone, quasi_succinct }
        }
        // 2-var count comparisons (language extension): growing S can only
        // raise count(S.A) while growing T can raise count(T.B), so neither
        // side presents a fixed target — not anti-monotone; and no succinct
        // 1-var reduction exists whose constants are computable from L1
        // alone (the bound needs the largest frequent partner, which the
        // iterative machinery estimates instead) — not quasi-succinct.
        TwoVar::CountCmp { .. } => {
            TwoVarClass { anti_monotone: false, quasi_succinct: false }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::bind_query;
    use crate::parser::parse_query;
    use cfq_types::CatalogBuilder;

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(4);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        b.num_attr("Delta", vec![-5.0, 1.0, 2.0, 3.0]).unwrap();
        b.cat_attr("Type", &["A", "B", "A", "C"]).unwrap();
        b.build()
    }

    fn c1(src: &str) -> OneVarClass {
        let c = catalog();
        let q = bind_query(&parse_query(src).unwrap(), &c).unwrap();
        classify_one(&q.one_var[0], &c)
    }

    fn c2(src: &str) -> TwoVarClass {
        let c = catalog();
        let q = bind_query(&parse_query(src).unwrap(), &c).unwrap();
        classify_two(&q.two_var[0])
    }

    #[test]
    fn one_var_domain_table() {
        assert_eq!(c1("S.Type subset {A, B}"), OneVarClass { anti_monotone: true, succinct: true });
        assert_eq!(c1("S.Type disjoint {A}"), OneVarClass { anti_monotone: true, succinct: true });
        assert_eq!(
            c1("S.Type notsuperset {A, B}"),
            OneVarClass { anti_monotone: true, succinct: true }
        );
        assert_eq!(
            c1("S.Type superset {A}"),
            OneVarClass { anti_monotone: false, succinct: true }
        );
        assert_eq!(
            c1("S.Type intersects {A}"),
            OneVarClass { anti_monotone: false, succinct: true }
        );
        assert_eq!(c1("S.Type = {A}"), OneVarClass { anti_monotone: false, succinct: true });
    }

    #[test]
    fn one_var_minmax_table() {
        assert_eq!(c1("min(S.Price) >= 20"), OneVarClass { anti_monotone: true, succinct: true });
        assert_eq!(c1("min(S.Price) <= 20"), OneVarClass { anti_monotone: false, succinct: true });
        assert_eq!(c1("max(S.Price) <= 20"), OneVarClass { anti_monotone: true, succinct: true });
        assert_eq!(c1("max(S.Price) >= 20"), OneVarClass { anti_monotone: false, succinct: true });
        assert_eq!(c1("min(S.Price) = 20"), OneVarClass { anti_monotone: false, succinct: true });
    }

    #[test]
    fn one_var_sum_avg_count() {
        // Lemma 1: sum/avg not succinct. Sum ≤ AM only on non-negative domains.
        assert_eq!(c1("sum(S.Price) <= 50"), OneVarClass { anti_monotone: true, succinct: false });
        assert_eq!(c1("sum(S.Delta) <= 50"), OneVarClass { anti_monotone: false, succinct: false });
        assert_eq!(c1("sum(S.Price) >= 50"), OneVarClass { anti_monotone: false, succinct: false });
        assert_eq!(c1("avg(S.Price) <= 50"), OneVarClass { anti_monotone: false, succinct: false });
        assert_eq!(c1("avg(S.Price) >= 50"), OneVarClass { anti_monotone: false, succinct: false });
        assert_eq!(c1("count(S) <= 3"), OneVarClass { anti_monotone: true, succinct: false });
        assert_eq!(c1("count(S.Type) = 1"), OneVarClass { anti_monotone: false, succinct: false });
    }

    /// Regression: min/max comparisons whose constant side folds against
    /// the column envelope [10, 40] are vacuously anti-monotone — the
    /// auditor surfaced these as classifier/derivation mismatches.
    #[test]
    fn minmax_constant_folding_trivial_cases() {
        // min(S) <= v is trivially true once v admits the column max.
        assert!(c1("min(S.Price) <= 40").anti_monotone);
        assert!(c1("min(S.Price) <= 100").anti_monotone);
        assert!(c1("min(S.Price) < 41").anti_monotone);
        assert!(!c1("min(S.Price) < 40").anti_monotone, "singleton {{40}} violates");
        // max(S) >= v is trivially true once v admits the column min.
        assert!(c1("max(S.Price) >= 10").anti_monotone);
        assert!(c1("max(S.Price) >= 5").anti_monotone);
        assert!(c1("max(S.Price) > 9").anti_monotone);
        assert!(!c1("max(S.Price) > 10").anti_monotone, "singleton {{10}} violates");
        // Out-of-envelope equality targets: `=` trivially false, `!=`
        // trivially true; both vacuously anti-monotone.
        assert!(c1("min(S.Price) = 5").anti_monotone);
        assert!(c1("min(S.Price) = 45").anti_monotone);
        assert!(c1("min(S.Price) != 45").anti_monotone);
        assert!(c1("max(S.Price) = 45").anti_monotone);
        assert!(c1("max(S.Price) != 5").anti_monotone);
        // In-envelope targets keep the Figure-1 answer.
        assert!(!c1("min(S.Price) = 20").anti_monotone);
        assert!(!c1("max(S.Price) != 20").anti_monotone);
        // The negative domain changes nothing for min/max folding rules.
        assert!(c1("min(S.Delta) <= 3").anti_monotone);
        assert!(c1("max(S.Delta) >= -5").anti_monotone);
    }

    /// Regression: `sum(X.A) >= v` is anti-monotone on an all-non-positive
    /// domain (the mirror image of the paper's non-negative assumption).
    #[test]
    fn sum_lower_bound_on_non_positive_domain() {
        let mut b = CatalogBuilder::new(3);
        b.num_attr("Loss", vec![-3.0, -1.0, 0.0]).unwrap();
        b.num_attr("Price", vec![1.0, 2.0, 3.0]).unwrap();
        let c = b.build();
        let cls = |src: &str| {
            let q = bind_query(&parse_query(src).unwrap(), &c).unwrap();
            classify_one(&q.one_var[0], &c)
        };
        assert!(cls("sum(S.Loss) >= -2").anti_monotone);
        assert!(cls("sum(S.Loss) > -2").anti_monotone);
        assert!(!cls("sum(S.Loss) <= -2").anti_monotone, "upper bound needs non-negative");
        assert!(!cls("sum(S.Price) >= 2").anti_monotone, "positive domain: sums grow");
    }

    /// Figure 1, rows 1–5 (domain constraints).
    #[test]
    fn figure1_domain_rows() {
        let am_qs = |src| { let c = c2(src); (c.anti_monotone, c.quasi_succinct) };
        assert_eq!(am_qs("S.Type disjoint T.Type"), (true, true));
        assert_eq!(am_qs("S.Type intersects T.Type"), (false, true));
        assert_eq!(am_qs("S.Type subset T.Type"), (false, true));
        assert_eq!(am_qs("S.Type notsubset T.Type"), (false, true));
        assert_eq!(am_qs("S.Type = T.Type"), (false, true));
    }

    /// Figure 1, rows 6–9 (min/max aggregate comparisons).
    #[test]
    fn figure1_minmax_rows() {
        let am_qs = |src| { let c = c2(src); (c.anti_monotone, c.quasi_succinct) };
        assert_eq!(am_qs("max(S.Price) <= min(T.Price)"), (true, true));
        assert_eq!(am_qs("min(S.Price) <= min(T.Price)"), (false, true));
        assert_eq!(am_qs("max(S.Price) <= max(T.Price)"), (false, true));
        assert_eq!(am_qs("min(S.Price) <= max(T.Price)"), (false, true));
        // The mirror image of row 6 is also anti-monotone.
        assert_eq!(am_qs("min(T.Price) >= max(S.Price)"), (true, true));
    }

    /// Figure 1, rows 10–12 (sum/avg rows): nothing is AM or QS.
    #[test]
    fn figure1_sum_avg_rows() {
        let am_qs = |src| { let c = c2(src); (c.anti_monotone, c.quasi_succinct) };
        assert_eq!(am_qs("sum(S.Price) <= max(T.Price)"), (false, false));
        assert_eq!(am_qs("sum(S.Price) <= sum(T.Price)"), (false, false));
        assert_eq!(am_qs("avg(S.Price) <= avg(T.Price)"), (false, false));
    }

    #[test]
    fn equality_aggregates_are_not_qs() {
        let c = c2("max(S.Price) = min(T.Price)");
        assert!(!c.quasi_succinct);
        assert!(!c.anti_monotone);
    }
}

//! Constraint classification: anti-monotonicity, succinctness (1-var, from
//! the CAP paper \[15\]), and the paper's 2-var characterization (Figure 1).

use crate::bound::{OneVar, TwoVar};
use crate::lang::{Agg, CmpOp, SetRel};
use cfq_types::Catalog;

/// Classification of a 1-var constraint (Definitions 1–2 of the paper,
/// results from \[15\]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OneVarClass {
    /// Anti-monotone: violated sets have only violated supersets.
    pub anti_monotone: bool,
    /// Succinct: the solution space has a member-generating function.
    pub succinct: bool,
}

/// Classification of a 2-var constraint (Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoVarClass {
    /// 2-var anti-monotone per Definition 4 (w.r.t. both variables).
    pub anti_monotone: bool,
    /// Quasi-succinct per Definition 5: reducible to two succinct 1-var
    /// pruning conditions that preserve valid S- and T-sets.
    pub quasi_succinct: bool,
}

/// Classifies a 1-var constraint.
///
/// The catalog is consulted for `sum` constraints: `sum(S.A) ≤ v` is
/// anti-monotone only when the attribute domain is non-negative (the paper's
/// standing assumption in §5; we check rather than assume).
pub fn classify_one(c: &OneVar, catalog: &Catalog) -> OneVarClass {
    match c {
        OneVar::Domain { rel, .. } => OneVarClass {
            anti_monotone: matches!(
                rel,
                SetRel::Subset | SetRel::Disjoint | SetRel::NotSuperset
            ),
            // All domain constraints are succinct (Lemma 1): their solution
            // spaces are powerset-algebra expressions over selections.
            succinct: true,
        },
        OneVar::AggCmp { agg, attr, op, .. } => match agg {
            Agg::Min => OneVarClass {
                anti_monotone: op.is_lower(),
                succinct: true,
            },
            Agg::Max => OneVarClass {
                anti_monotone: op.is_upper(),
                succinct: true,
            },
            Agg::Sum => {
                let non_negative = catalog
                    .column_min_num(*attr)
                    .map(|m| m >= 0.0)
                    .unwrap_or(true);
                OneVarClass {
                    anti_monotone: op.is_upper() && non_negative,
                    succinct: false,
                }
            }
            Agg::Avg => OneVarClass { anti_monotone: false, succinct: false },
        },
        OneVar::CountCmp { op, .. } => OneVarClass {
            anti_monotone: op.is_upper(),
            // [15] classifies count constraints as only *weakly* succinct;
            // we treat them as non-succinct (no member generating function
            // over selections on item attributes alone).
            succinct: false,
        },
    }
}

/// Classifies a 2-var constraint per Figure 1 of the paper.
///
/// Anti-monotone 2-var constraints are rare: among domain constraints only
/// `S.A ∩ T.B = ∅`, and among aggregate comparisons only
/// `max(S.A) ≤ min(T.B)` (and its mirror image `min(S.A) ≥ max(T.B)`,
/// which is the same constraint with the variables' roles swapped).
/// Quasi-succinct: every domain constraint, and every min/max comparison
/// with an inequality operator; nothing involving sum/avg.
pub fn classify_two(c: &TwoVar) -> TwoVarClass {
    match c {
        TwoVar::Domain { rel, .. } => TwoVarClass {
            anti_monotone: *rel == SetRel::Disjoint,
            quasi_succinct: true,
        },
        TwoVar::AggCmp { s_agg, op, t_agg, .. } => {
            let anti_monotone = matches!(
                (s_agg, op, t_agg),
                (Agg::Max, CmpOp::Le | CmpOp::Lt, Agg::Min)
                    | (Agg::Min, CmpOp::Ge | CmpOp::Gt, Agg::Max)
            );
            let quasi_succinct = s_agg.is_succinct_agg()
                && t_agg.is_succinct_agg()
                && (op.is_upper() || op.is_lower());
            TwoVarClass { anti_monotone, quasi_succinct }
        }
        // 2-var count comparisons (language extension): growing S can only
        // raise count(S.A) while growing T can raise count(T.B), so neither
        // side presents a fixed target — not anti-monotone; and no succinct
        // 1-var reduction exists whose constants are computable from L1
        // alone (the bound needs the largest frequent partner, which the
        // iterative machinery estimates instead) — not quasi-succinct.
        TwoVar::CountCmp { .. } => {
            TwoVarClass { anti_monotone: false, quasi_succinct: false }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::bind_query;
    use crate::parser::parse_query;
    use cfq_types::CatalogBuilder;

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(4);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        b.num_attr("Delta", vec![-5.0, 1.0, 2.0, 3.0]).unwrap();
        b.cat_attr("Type", &["A", "B", "A", "C"]).unwrap();
        b.build()
    }

    fn c1(src: &str) -> OneVarClass {
        let c = catalog();
        let q = bind_query(&parse_query(src).unwrap(), &c).unwrap();
        classify_one(&q.one_var[0], &c)
    }

    fn c2(src: &str) -> TwoVarClass {
        let c = catalog();
        let q = bind_query(&parse_query(src).unwrap(), &c).unwrap();
        classify_two(&q.two_var[0])
    }

    #[test]
    fn one_var_domain_table() {
        assert_eq!(c1("S.Type subset {A, B}"), OneVarClass { anti_monotone: true, succinct: true });
        assert_eq!(c1("S.Type disjoint {A}"), OneVarClass { anti_monotone: true, succinct: true });
        assert_eq!(
            c1("S.Type notsuperset {A, B}"),
            OneVarClass { anti_monotone: true, succinct: true }
        );
        assert_eq!(
            c1("S.Type superset {A}"),
            OneVarClass { anti_monotone: false, succinct: true }
        );
        assert_eq!(
            c1("S.Type intersects {A}"),
            OneVarClass { anti_monotone: false, succinct: true }
        );
        assert_eq!(c1("S.Type = {A}"), OneVarClass { anti_monotone: false, succinct: true });
    }

    #[test]
    fn one_var_minmax_table() {
        assert_eq!(c1("min(S.Price) >= 20"), OneVarClass { anti_monotone: true, succinct: true });
        assert_eq!(c1("min(S.Price) <= 20"), OneVarClass { anti_monotone: false, succinct: true });
        assert_eq!(c1("max(S.Price) <= 20"), OneVarClass { anti_monotone: true, succinct: true });
        assert_eq!(c1("max(S.Price) >= 20"), OneVarClass { anti_monotone: false, succinct: true });
        assert_eq!(c1("min(S.Price) = 20"), OneVarClass { anti_monotone: false, succinct: true });
    }

    #[test]
    fn one_var_sum_avg_count() {
        // Lemma 1: sum/avg not succinct. Sum ≤ AM only on non-negative domains.
        assert_eq!(c1("sum(S.Price) <= 50"), OneVarClass { anti_monotone: true, succinct: false });
        assert_eq!(c1("sum(S.Delta) <= 50"), OneVarClass { anti_monotone: false, succinct: false });
        assert_eq!(c1("sum(S.Price) >= 50"), OneVarClass { anti_monotone: false, succinct: false });
        assert_eq!(c1("avg(S.Price) <= 50"), OneVarClass { anti_monotone: false, succinct: false });
        assert_eq!(c1("avg(S.Price) >= 50"), OneVarClass { anti_monotone: false, succinct: false });
        assert_eq!(c1("count(S) <= 3"), OneVarClass { anti_monotone: true, succinct: false });
        assert_eq!(c1("count(S.Type) = 1"), OneVarClass { anti_monotone: false, succinct: false });
    }

    /// Figure 1, rows 1–5 (domain constraints).
    #[test]
    fn figure1_domain_rows() {
        let am_qs = |src| { let c = c2(src); (c.anti_monotone, c.quasi_succinct) };
        assert_eq!(am_qs("S.Type disjoint T.Type"), (true, true));
        assert_eq!(am_qs("S.Type intersects T.Type"), (false, true));
        assert_eq!(am_qs("S.Type subset T.Type"), (false, true));
        assert_eq!(am_qs("S.Type notsubset T.Type"), (false, true));
        assert_eq!(am_qs("S.Type = T.Type"), (false, true));
    }

    /// Figure 1, rows 6–9 (min/max aggregate comparisons).
    #[test]
    fn figure1_minmax_rows() {
        let am_qs = |src| { let c = c2(src); (c.anti_monotone, c.quasi_succinct) };
        assert_eq!(am_qs("max(S.Price) <= min(T.Price)"), (true, true));
        assert_eq!(am_qs("min(S.Price) <= min(T.Price)"), (false, true));
        assert_eq!(am_qs("max(S.Price) <= max(T.Price)"), (false, true));
        assert_eq!(am_qs("min(S.Price) <= max(T.Price)"), (false, true));
        // The mirror image of row 6 is also anti-monotone.
        assert_eq!(am_qs("min(T.Price) >= max(S.Price)"), (true, true));
    }

    /// Figure 1, rows 10–12 (sum/avg rows): nothing is AM or QS.
    #[test]
    fn figure1_sum_avg_rows() {
        let am_qs = |src| { let c = c2(src); (c.anti_monotone, c.quasi_succinct) };
        assert_eq!(am_qs("sum(S.Price) <= max(T.Price)"), (false, false));
        assert_eq!(am_qs("sum(S.Price) <= sum(T.Price)"), (false, false));
        assert_eq!(am_qs("avg(S.Price) <= avg(T.Price)"), (false, false));
    }

    #[test]
    fn equality_aggregates_are_not_qs() {
        let c = c2("max(S.Price) = min(T.Price)");
        assert!(!c.quasi_succinct);
        assert!(!c.anti_monotone);
    }
}

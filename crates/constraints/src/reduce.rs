//! Quasi-succinct reduction of 2-var constraints (§4, Figures 2–3).
//!
//! Given a quasi-succinct 2-var constraint `C(S, T)` and the level-1
//! frequent items `L1^S`, `L1^T` of the two lattices, produce the 1-var
//! pruning conditions `C1(S)` and `C2(T)` whose constants are computed from
//! `L1^T.B` / `L1^S.A`. These conditions are *sound* (never prune a valid
//! set). They are also *tight* whenever a singleton frequent witness
//! suffices — which covers every entry of Figures 2–3 except the
//! "coverage" sides of `⊆` / `=` (where the witness would have to be a
//! multi-element frequent set whose existence `L1` alone cannot promise;
//! see `*_tight` below). Tightness never affects correctness here: the
//! final pair-formation step re-verifies the original constraint.

use crate::bound::{OneVar, TwoVar};
use crate::classify::classify_two;
use crate::lang::{CmpOp, SetRel, Var};
use cfq_types::{AttrId, Catalog, ItemId};

/// The result of reducing one quasi-succinct 2-var constraint.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// Pruning conditions for candidate S-sets (all with `var == S`).
    pub s_conds: Vec<OneVar>,
    /// Pruning conditions for candidate T-sets (all with `var == T`).
    pub t_conds: Vec<OneVar>,
    /// Whether `s_conds` is tight (prunes *every* invalid S-set).
    pub s_tight: bool,
    /// Whether `t_conds` is tight.
    pub t_tight: bool,
}

/// Reduces a quasi-succinct constraint to its 1-var pruning conditions.
/// Returns `None` when the constraint is not quasi-succinct (sum/avg or
/// equality aggregates — see [`crate::induce`] for those).
///
/// `l1_s` / `l1_t` are the frequent level-1 items of the S and T lattices.
pub fn reduce_quasi_succinct(
    c: &TwoVar,
    l1_s: &[ItemId],
    l1_t: &[ItemId],
    catalog: &Catalog,
) -> Option<Reduction> {
    if !classify_two(c).quasi_succinct {
        return None;
    }
    match c {
        TwoVar::Domain { s_attr, rel, t_attr } => {
            Some(reduce_domain(*s_attr, *rel, *t_attr, l1_s, l1_t, catalog))
        }
        TwoVar::AggCmp { s_agg, s_attr, op, t_agg, t_attr } => Some(reduce_agg(
            *s_agg, *s_attr, *op, *t_agg, *t_attr, l1_s, l1_t, catalog,
        )),
        // 2-var count comparisons are never quasi-succinct (the classifier
        // returned above); kept explicit for exhaustiveness.
        TwoVar::CountCmp { .. } => None,
    }
}

/// `count(X) >= 1` — the trivially-true "X is non-empty" condition.
fn nonempty(var: Var) -> OneVar {
    OneVar::CountCmp { var, attr: None, op: CmpOp::Ge, value: 1.0 }
}

/// `count(X) < 0` — the never-true condition (used when the partner lattice
/// has no frequent items at all, so no valid sets exist).
fn never(var: Var) -> OneVar {
    OneVar::CountCmp { var, attr: None, op: CmpOp::Lt, value: 0.0 }
}

fn value_set(attr: Option<AttrId>, items: &[ItemId], catalog: &Catalog) -> Vec<u64> {
    let set: cfq_types::Itemset = items.iter().copied().collect();
    catalog.value_set(attr, &set)
}

/// Figure 2 (plus the symmetric completions for ⊇, ⊉, ≠, which the paper
/// discusses in text but does not tabulate).
fn reduce_domain(
    s_attr: Option<AttrId>,
    rel: SetRel,
    t_attr: Option<AttrId>,
    l1_s: &[ItemId],
    l1_t: &[ItemId],
    catalog: &Catalog,
) -> Reduction {
    let vs = value_set(s_attr, l1_s, catalog); // L1^S.A
    let vt = value_set(t_attr, l1_t, catalog); // L1^T.B
    let dom_s = |rel: SetRel, value: Vec<u64>| OneVar::Domain { var: Var::S, attr: s_attr, rel, value };
    let dom_t = |rel: SetRel, value: Vec<u64>| OneVar::Domain { var: Var::T, attr: t_attr, rel, value };

    // If a lattice has no frequent items, no frequent partner exists for
    // the *other* variable — that side's condition becomes `never`.
    // Each side's condition depends only on the partner's L1.
    if l1_t.is_empty() || l1_s.is_empty() {
        let mut r = Reduction {
            s_conds: vec![nonempty(Var::S)],
            t_conds: vec![nonempty(Var::T)],
            s_tight: false,
            t_tight: false,
        };
        if l1_t.is_empty() {
            r.s_conds = vec![never(Var::S)];
            r.s_tight = true;
        }
        if l1_s.is_empty() {
            r.t_conds = vec![never(Var::T)];
            r.t_tight = true;
        }
        return r;
    }

    match rel {
        // Row 1: S.A ∩ T.B = ∅  →  CS.A ⊉ L1^T.B ; CT.B ⊉ L1^S.A.
        SetRel::Disjoint => Reduction {
            s_conds: vec![dom_s(SetRel::NotSuperset, vt)],
            t_conds: vec![dom_t(SetRel::NotSuperset, vs)],
            s_tight: true,
            t_tight: true,
        },
        // Row 2: S.A ∩ T.B ≠ ∅  →  CS.A ∩ L1^T.B ≠ ∅ ; CT.B ∩ L1^S.A ≠ ∅.
        SetRel::Intersects => Reduction {
            s_conds: vec![dom_s(SetRel::Intersects, vt)],
            t_conds: vec![dom_t(SetRel::Intersects, vs)],
            s_tight: true,
            t_tight: true,
        },
        // Row 3: S.A ⊆ T.B  →  CS.A ⊆ L1^T.B ; L1^S.A ∩ CT.B ≠ ∅.
        // The S side needs a frequent T covering all of CS.A — L1 alone
        // cannot promise one, so it is sound but not tight.
        SetRel::Subset => Reduction {
            s_conds: vec![dom_s(SetRel::Subset, vt)],
            t_conds: vec![dom_t(SetRel::Intersects, vs)],
            s_tight: false,
            t_tight: true,
        },
        // Row 4: S.A ⊄ T.B  →  CS ≠ ∅ ; L1^S.A ⊄ CT.B (i.e. CT.B ⊉ L1^S.A).
        SetRel::NotSubset => Reduction {
            s_conds: vec![nonempty(Var::S)],
            t_conds: vec![dom_t(SetRel::NotSuperset, vs)],
            s_tight: false,
            t_tight: true,
        },
        // Row 5: S.A = T.B  →  CS.A ⊆ L1^T.B ; CT.B ⊆ L1^S.A.
        SetRel::Eq => Reduction {
            s_conds: vec![dom_s(SetRel::Subset, vt)],
            t_conds: vec![dom_t(SetRel::Subset, vs)],
            s_tight: false,
            t_tight: false,
        },
        // Mirror of row 3.
        SetRel::Superset => Reduction {
            s_conds: vec![dom_s(SetRel::Intersects, vt)],
            t_conds: vec![dom_t(SetRel::Subset, vs)],
            s_tight: true,
            t_tight: false,
        },
        // Mirror of row 4: S.A ⊉ T.B → CS.A ⊉ L1^T.B ; CT ≠ ∅-ish.
        SetRel::NotSuperset => Reduction {
            s_conds: vec![dom_s(SetRel::NotSuperset, vt)],
            t_conds: vec![reduce_not_superset_t(t_attr, &vs)],
            s_tight: true,
            t_tight: true,
        },
        // S.A ≠ T.B: the paper's "extreme example" with virtually no
        // pruning power; both sides reduce to non-emptiness.
        SetRel::Ne => Reduction {
            s_conds: vec![nonempty(Var::S)],
            t_conds: vec![nonempty(Var::T)],
            s_tight: false,
            t_tight: false,
        },
    }
}

/// Tight T-side condition for `S.A ⊉ T.B`: a frequent singleton `{s}` is a
/// witness iff `CT.B ⊄ {s.A}`. With ≥2 distinct values in `L1^S.A` any
/// non-empty `CT.B` has a witness; with exactly one value `{a}`, the
/// condition is `CT.B ⊄ {a}`.
fn reduce_not_superset_t(t_attr: Option<AttrId>, vs: &[u64]) -> OneVar {
    if vs.len() >= 2 {
        nonempty(Var::T)
    } else {
        OneVar::Domain {
            var: Var::T,
            attr: t_attr,
            rel: SetRel::NotSubset,
            value: vs.to_vec(),
        }
    }
}

/// Figure 3 (and the `≥`/`>` mirror): `agg1(S.A) op agg2(T.B)` reduces to
/// `agg1(CS.A) op max(L1^T.B)` and `agg2(CT.B) op⁻¹ min(L1^S.A)` for upper
/// comparisons, and symmetrically for lower ones.
#[allow(clippy::too_many_arguments)]
fn reduce_agg(
    s_agg: crate::lang::Agg,
    s_attr: AttrId,
    op: CmpOp,
    t_agg: crate::lang::Agg,
    t_attr: AttrId,
    l1_s: &[ItemId],
    l1_t: &[ItemId],
    catalog: &Catalog,
) -> Reduction {
    let set_s: cfq_types::Itemset = l1_s.iter().copied().collect();
    let set_t: cfq_types::Itemset = l1_t.iter().copied().collect();
    if set_s.is_empty() || set_t.is_empty() {
        let mut r = Reduction {
            s_conds: vec![nonempty(Var::S)],
            t_conds: vec![nonempty(Var::T)],
            s_tight: false,
            t_tight: false,
        };
        if set_t.is_empty() {
            r.s_conds = vec![never(Var::S)];
            r.s_tight = true;
        }
        if set_s.is_empty() {
            r.t_conds = vec![never(Var::T)];
            r.t_tight = true;
        }
        return r;
    }
    let (s_bound, t_bound) = if op.is_upper() {
        // agg1(S) ≤ agg2(T): the loosest frequent partner on the T side is
        // the singleton holding max(L1^T.B); on the S side min(L1^S.A).
        (
            catalog.max_num(t_attr, &set_t).expect("non-empty"),
            catalog.min_num(s_attr, &set_s).expect("non-empty"),
        )
    } else {
        (
            catalog.min_num(t_attr, &set_t).expect("non-empty"),
            catalog.max_num(s_attr, &set_s).expect("non-empty"),
        )
    };
    Reduction {
        s_conds: vec![OneVar::AggCmp {
            var: Var::S,
            agg: s_agg,
            attr: s_attr,
            op,
            value: s_bound,
        }],
        t_conds: vec![OneVar::AggCmp {
            var: Var::T,
            agg: t_agg,
            attr: t_attr,
            op: op.mirror(),
            value: t_bound,
        }],
        s_tight: true,
        t_tight: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::bind_query;
    use crate::eval::eval_one;
    use crate::lang::Agg;
    use crate::parser::parse_query;
    use cfq_types::{CatalogBuilder, Itemset};

    /// Catalog: 6 items; Price 10..60; Type A/B/A/C/B/C.
    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        b.cat_attr("Type", &["A", "B", "A", "C", "B", "C"]).unwrap();
        b.build()
    }

    fn two(src: &str) -> TwoVar {
        bind_query(&parse_query(src).unwrap(), &catalog()).unwrap().two_var.remove(0)
    }

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn minmax_reduction_constants_match_figure3() {
        let cat = catalog();
        // L1^S = {0,1} (prices 10,20); L1^T = {3,4} (prices 40,50).
        let l1s = ids(&[0, 1]);
        let l1t = ids(&[3, 4]);
        let r = reduce_quasi_succinct(&two("max(S.Price) <= min(T.Price)"), &l1s, &l1t, &cat)
            .unwrap();
        // C1(S): max(CS.Price) ≤ max(L1^T.Price) = 50.
        match &r.s_conds[0] {
            OneVar::AggCmp { agg: Agg::Max, op: CmpOp::Le, value, .. } => assert_eq!(*value, 50.0),
            other => panic!("unexpected {other:?}"),
        }
        // C2(T): min(CT.Price) ≥ min(L1^S.Price) = 10.
        match &r.t_conds[0] {
            OneVar::AggCmp { agg: Agg::Min, op: CmpOp::Ge, value, .. } => assert_eq!(*value, 10.0),
            other => panic!("unexpected {other:?}"),
        }
        assert!(r.s_tight && r.t_tight);

        // All four min/max combinations share the constants (the paper's
        // observed regularity).
        for src in [
            "min(S.Price) <= min(T.Price)",
            "min(S.Price) <= max(T.Price)",
            "max(S.Price) <= max(T.Price)",
        ] {
            let r = reduce_quasi_succinct(&two(src), &l1s, &l1t, &cat).unwrap();
            match &r.s_conds[0] {
                OneVar::AggCmp { value, op: CmpOp::Le, .. } => assert_eq!(*value, 50.0),
                other => panic!("unexpected {other:?}"),
            }
            match &r.t_conds[0] {
                OneVar::AggCmp { value, op: CmpOp::Ge, .. } => assert_eq!(*value, 10.0),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn ge_direction_mirrors() {
        let cat = catalog();
        let l1s = ids(&[3, 4]); // prices 40, 50
        let l1t = ids(&[0, 1]); // prices 10, 20
        let r = reduce_quasi_succinct(&two("min(S.Price) >= max(T.Price)"), &l1s, &l1t, &cat)
            .unwrap();
        // C1(S): min(CS.Price) ≥ min(L1^T.Price) = 10.
        match &r.s_conds[0] {
            OneVar::AggCmp { agg: Agg::Min, op: CmpOp::Ge, value, .. } => assert_eq!(*value, 10.0),
            other => panic!("unexpected {other:?}"),
        }
        // C2(T): max(CT.Price) ≤ max(L1^S.Price) = 50.
        match &r.t_conds[0] {
            OneVar::AggCmp { agg: Agg::Max, op: CmpOp::Le, value, .. } => assert_eq!(*value, 50.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn disjoint_reduction_is_lemma_2_and_3() {
        let cat = catalog();
        let l1s = ids(&[0, 1, 2]);
        let l1t = ids(&[0, 1]); // types {A, B}
        let r =
            reduce_quasi_succinct(&two("S.Type disjoint T.Type"), &l1s, &l1t, &cat).unwrap();
        // CS.Type must not contain all of {A, B}.
        let s_ok: Itemset = [0u32, 2].into(); // {A}
        let s_bad: Itemset = [0u32, 1].into(); // {A, B} ⊇ {A, B}
        assert!(eval_one(&r.s_conds[0], &s_ok, &cat));
        assert!(!eval_one(&r.s_conds[0], &s_bad, &cat));
        assert!(r.s_tight && r.t_tight);
    }

    #[test]
    fn subset_reduction() {
        let cat = catalog();
        let l1s = ids(&[0]); // type {A}
        let l1t = ids(&[0, 1]); // types {A, B}
        let r = reduce_quasi_succinct(&two("S.Type subset T.Type"), &l1s, &l1t, &cat).unwrap();
        // C1(S): CS.Type ⊆ {A, B}.
        assert!(eval_one(&r.s_conds[0], &[0u32, 1].into(), &cat));
        assert!(!eval_one(&r.s_conds[0], &[0u32, 3].into(), &cat)); // has C
        assert!(!r.s_tight, "⊆ needs a covering witness — not tight");
        // C2(T): CT.Type ∩ {A} ≠ ∅.
        assert!(eval_one(&r.t_conds[0], &[0u32].into(), &cat));
        assert!(!eval_one(&r.t_conds[0], &[1u32].into(), &cat));
        assert!(r.t_tight);
    }

    #[test]
    fn not_subset_has_trivial_s_side() {
        let cat = catalog();
        let r = reduce_quasi_succinct(
            &two("S.Type notsubset T.Type"),
            &ids(&[0, 1]),
            &ids(&[0, 1]),
            &cat,
        )
        .unwrap();
        // The paper: "CS ≠ ∅ … has virtually no pruning power".
        assert!(eval_one(&r.s_conds[0], &[5u32].into(), &cat));
        assert!(!eval_one(&r.s_conds[0], &Itemset::empty(), &cat));
    }

    #[test]
    fn eq_reduction_both_subsets() {
        let cat = catalog();
        let r = reduce_quasi_succinct(
            &two("S.Type = T.Type"),
            &ids(&[0, 1]), // {A, B}
            &ids(&[1, 3]), // {B, C}
            &cat,
        )
        .unwrap();
        // CS.Type ⊆ {B, C}: item 1 (B) ok, item 0 (A) not.
        assert!(eval_one(&r.s_conds[0], &[1u32].into(), &cat));
        assert!(!eval_one(&r.s_conds[0], &[0u32].into(), &cat));
        // CT.Type ⊆ {A, B}.
        assert!(eval_one(&r.t_conds[0], &[1u32].into(), &cat));
        assert!(!eval_one(&r.t_conds[0], &[3u32].into(), &cat));
        assert!(!r.s_tight && !r.t_tight);
    }

    #[test]
    fn not_superset_t_side_special_cases() {
        let cat = catalog();
        // Two distinct S values → any non-empty T is valid.
        let r = reduce_quasi_succinct(
            &two("S.Type notsuperset T.Type"),
            &ids(&[0, 1]),
            &ids(&[0, 1]),
            &cat,
        )
        .unwrap();
        assert!(eval_one(&r.t_conds[0], &[0u32].into(), &cat));
        // One S value {A} → CT.Type must not be ⊆ {A}.
        let r = reduce_quasi_succinct(
            &two("S.Type notsuperset T.Type"),
            &ids(&[0, 2]), // both type A
            &ids(&[0, 1]),
            &cat,
        )
        .unwrap();
        assert!(!eval_one(&r.t_conds[0], &[0u32, 2].into(), &cat)); // {A}
        assert!(eval_one(&r.t_conds[0], &[0u32, 1].into(), &cat)); // {A,B}
    }

    #[test]
    fn empty_l1_gives_never_conditions() {
        let cat = catalog();
        // Empty L1^T ⇒ no frequent partner for S ⇒ S side is `never`.
        let r = reduce_quasi_succinct(&two("S.Type disjoint T.Type"), &ids(&[0]), &[], &cat)
            .unwrap();
        assert!(!eval_one(&r.s_conds[0], &[0u32].into(), &cat));
        // Empty L1^S ⇒ T side is `never`; the S side stays trivially sound.
        let r = reduce_quasi_succinct(
            &two("max(S.Price) <= min(T.Price)"),
            &[],
            &ids(&[0]),
            &cat,
        )
        .unwrap();
        assert!(!eval_one(&r.t_conds[0], &[0u32].into(), &cat));
        assert!(eval_one(&r.s_conds[0], &[0u32].into(), &cat));
    }

    #[test]
    fn non_qs_returns_none() {
        let cat = catalog();
        assert!(reduce_quasi_succinct(
            &two("sum(S.Price) <= sum(T.Price)"),
            &ids(&[0]),
            &ids(&[0]),
            &cat
        )
        .is_none());
    }

    /// Soundness property: reduction conditions never reject a valid set.
    /// Brute-force over all subsets of a small universe.
    #[test]
    fn reduction_soundness_brute_force() {
        use crate::eval::eval_two;
        let cat = catalog();
        let universe: Vec<ItemId> = (0..6).map(ItemId).collect();
        let all: Itemset = universe.iter().copied().collect();
        // "Frequent" sets for this oracle test: every non-empty subset of
        // the respective L1 closure (frequency itself is orthogonal here).
        let l1s = ids(&[0, 1, 2]);
        let l1t = ids(&[2, 3, 4]);
        let freq_t: Vec<Itemset> = {
            let t_all: Itemset = l1t.iter().copied().collect();
            t_all.all_nonempty_subsets()
        };
        let freq_s: Vec<Itemset> = {
            let s_all: Itemset = l1s.iter().copied().collect();
            s_all.all_nonempty_subsets()
        };
        for src in [
            "S.Type disjoint T.Type",
            "S.Type intersects T.Type",
            "S.Type subset T.Type",
            "S.Type notsubset T.Type",
            "S.Type superset T.Type",
            "S.Type notsuperset T.Type",
            "S.Type = T.Type",
            "max(S.Price) <= min(T.Price)",
            "min(S.Price) <= min(T.Price)",
            "max(S.Price) >= max(T.Price)",
            "min(S.Price) > max(T.Price)",
        ] {
            let c = two(src);
            let r = reduce_quasi_succinct(&c, &l1s, &l1t, &cat).unwrap();
            for cs in all.all_nonempty_subsets() {
                let valid = freq_t.iter().any(|t| eval_two(&c, &cs, t, &cat));
                if valid {
                    assert!(
                        r.s_conds.iter().all(|cond| eval_one(cond, &cs, &cat)),
                        "`{src}`: sound S-condition pruned valid set {cs}"
                    );
                }
                // Tightness where claimed.
                if r.s_tight && r.s_conds.iter().all(|cond| eval_one(cond, &cs, &cat)) {
                    assert!(valid, "`{src}`: tight S-condition admitted invalid set {cs}");
                }
            }
            for ct in all.all_nonempty_subsets() {
                let valid = freq_s.iter().any(|s| eval_two(&c, s, &ct, &cat));
                if valid {
                    assert!(
                        r.t_conds.iter().all(|cond| eval_one(cond, &ct, &cat)),
                        "`{src}`: sound T-condition pruned valid set {ct}"
                    );
                }
                if r.t_tight && r.t_conds.iter().all(|cond| eval_one(cond, &ct, &cat)) {
                    assert!(valid, "`{src}`: tight T-condition admitted invalid set {ct}");
                }
            }
        }
    }
}

//! Induction of weaker quasi-succinct constraints from sum/avg constraints
//! (§5.1, Figure 4).
//!
//! A non-quasi-succinct constraint `C` *induces* a weaker constraint `C'`
//! when `C ⇒ C'` over the sets of interest, so every valid set w.r.t. `C`
//! is valid w.r.t. `C'` — pruning with `C'`'s reduction is then sound (but
//! not tight) for `C`. The replacements, for `agg1(S.A) ≤ agg2(T.B)`:
//!
//! * bounded side (here S): `avg → min` (min ≤ avg), `sum → max`
//!   (max ≤ sum, requires a non-negative attribute domain — the paper's
//!   standing assumption in §5, which we *check* against the catalog);
//! * bounding side (here T): `avg → max` (avg ≤ max). `sum` on the bounding
//!   side has no min/max replacement that dominates it — those constraints
//!   are handled by the `J^k_max` iterative machinery instead (§5.2).
//!
//! For `≥`/`>` the roles of the sides swap. Aggregate equality induces both
//! directional weakenings.

use crate::bound::TwoVar;
use crate::classify::classify_two;
use crate::lang::{Agg, CmpOp};
use cfq_types::{AttrId, Catalog};

/// Returns the weaker quasi-succinct constraints induced by `c`
/// (empty when none exists — e.g. `min(S.A) ≤ sum(T.B)`'s only handle is
/// `J^k_max`). Quasi-succinct inputs induce themselves (singleton result).
pub fn induce_weaker(c: &TwoVar, catalog: &Catalog) -> Vec<TwoVar> {
    if classify_two(c).quasi_succinct {
        return vec![c.clone()];
    }
    let TwoVar::AggCmp { s_agg, s_attr, op, t_agg, t_attr } = c else {
        // Domain constraints are always QS (handled above); 2-var count
        // comparisons have no min/max weakening (they go to the iterative
        // count-bound machinery).
        return Vec::new();
    };
    match op {
        CmpOp::Le | CmpOp::Lt | CmpOp::Ge | CmpOp::Gt => {
            directional(*s_agg, *s_attr, *op, *t_agg, *t_attr, catalog)
                .into_iter()
                .collect()
        }
        CmpOp::Eq => {
            // agg1 = agg2 implies both ≤ and ≥.
            let mut out = Vec::new();
            out.extend(directional(*s_agg, *s_attr, CmpOp::Le, *t_agg, *t_attr, catalog));
            out.extend(directional(*s_agg, *s_attr, CmpOp::Ge, *t_agg, *t_attr, catalog));
            out
        }
        CmpOp::Ne => Vec::new(),
    }
}

fn directional(
    s_agg: Agg,
    s_attr: AttrId,
    op: CmpOp,
    t_agg: Agg,
    t_attr: AttrId,
    catalog: &Catalog,
) -> Option<TwoVar> {
    let non_negative =
        |attr: AttrId| catalog.column_min_num(attr).map(|m| m >= 0.0).unwrap_or(true);
    // `bounded` is the side known to be ≤ the other.
    let weaken_bounded = |agg: Agg, attr: AttrId| -> Option<Agg> {
        match agg {
            Agg::Min | Agg::Max => Some(agg),
            Agg::Avg => Some(Agg::Min),
            Agg::Sum if non_negative(attr) => Some(Agg::Max),
            Agg::Sum => None,
        }
    };
    let weaken_bounding = |agg: Agg| -> Option<Agg> {
        match agg {
            Agg::Min | Agg::Max => Some(agg),
            Agg::Avg => Some(Agg::Max), // avg ≤ max, no domain assumption
            Agg::Sum => None,           // nothing among min/max dominates sum
        }
    };
    let (new_s, new_t) = if op.is_upper() {
        // agg1(S) ≤ agg2(T): S is bounded, T bounds.
        (weaken_bounded(s_agg, s_attr)?, weaken_bounding(t_agg)?)
    } else {
        // agg1(S) ≥ agg2(T): T is bounded, S bounds.
        (weaken_bounding(s_agg)?, weaken_bounded(t_agg, t_attr)?)
    };
    // A weakening must actually be quasi-succinct to be useful.
    let out = TwoVar::AggCmp { s_agg: new_s, s_attr, op, t_agg: new_t, t_attr };
    classify_two(&out).quasi_succinct.then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::bind_query;
    use crate::eval::eval_two;
    use crate::parser::parse_query;
    use cfq_types::{CatalogBuilder, Itemset};

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        b.num_attr("Delta", vec![-5.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        b.build()
    }

    fn two(src: &str) -> TwoVar {
        bind_query(&parse_query(src).unwrap(), &catalog()).unwrap().two_var.remove(0)
    }

    fn agg_shape(c: &TwoVar) -> (Agg, CmpOp, Agg) {
        match c {
            TwoVar::AggCmp { s_agg, op, t_agg, .. } => (*s_agg, *op, *t_agg),
            _ => panic!("not an aggregate constraint"),
        }
    }

    /// Figure 4's three rows.
    #[test]
    fn figure4_rows() {
        let w = induce_weaker(&two("avg(S.Price) <= min(T.Price)"), &catalog());
        assert_eq!(agg_shape(&w[0]), (Agg::Min, CmpOp::Le, Agg::Min));

        let w = induce_weaker(&two("sum(S.Price) <= max(T.Price)"), &catalog());
        assert_eq!(agg_shape(&w[0]), (Agg::Max, CmpOp::Le, Agg::Max));

        let w = induce_weaker(&two("avg(S.Price) <= avg(T.Price)"), &catalog());
        assert_eq!(agg_shape(&w[0]), (Agg::Min, CmpOp::Le, Agg::Max));
    }

    #[test]
    fn ge_direction() {
        let w = induce_weaker(&two("avg(S.Price) >= avg(T.Price)"), &catalog());
        assert_eq!(agg_shape(&w[0]), (Agg::Max, CmpOp::Ge, Agg::Min));

        let w = induce_weaker(&two("min(S.Price) >= sum(T.Price)"), &catalog());
        assert_eq!(agg_shape(&w[0]), (Agg::Min, CmpOp::Ge, Agg::Max));
    }

    #[test]
    fn sum_on_bounding_side_yields_nothing() {
        assert!(induce_weaker(&two("sum(S.Price) <= sum(T.Price)"), &catalog()).is_empty());
        assert!(induce_weaker(&two("min(S.Price) <= sum(T.Price)"), &catalog()).is_empty());
        assert!(induce_weaker(&two("sum(S.Price) >= min(T.Price)"), &catalog()).is_empty());
    }

    #[test]
    fn negative_domain_blocks_sum_to_max() {
        // Delta has negative values: max ≤ sum does not hold, so the
        // sum → max weakening must be refused.
        assert!(induce_weaker(&two("sum(S.Delta) <= max(T.Delta)"), &catalog()).is_empty());
        // Price is non-negative: allowed.
        assert!(!induce_weaker(&two("sum(S.Price) <= max(T.Price)"), &catalog()).is_empty());
    }

    #[test]
    fn equality_induces_both_directions() {
        let w = induce_weaker(&two("avg(S.Price) = avg(T.Price)"), &catalog());
        assert_eq!(w.len(), 2);
        assert_eq!(agg_shape(&w[0]), (Agg::Min, CmpOp::Le, Agg::Max));
        assert_eq!(agg_shape(&w[1]), (Agg::Max, CmpOp::Ge, Agg::Min));
    }

    #[test]
    fn qs_input_is_identity() {
        let c = two("max(S.Price) <= min(T.Price)");
        assert_eq!(induce_weaker(&c, &catalog()), vec![c.clone()]);
    }

    /// The induced constraint is implied by the original: brute-force over
    /// all pairs of subsets of a small universe.
    #[test]
    fn induced_is_weaker_brute_force() {
        let cat = catalog();
        let all: Itemset = (0u32..6).collect();
        for src in [
            "avg(S.Price) <= min(T.Price)",
            "sum(S.Price) <= max(T.Price)",
            "avg(S.Price) <= avg(T.Price)",
            "sum(S.Price) <= avg(T.Price)",
            "avg(S.Price) >= avg(T.Price)",
            "avg(S.Price) >= sum(T.Price)",
            "sum(S.Price) = sum(T.Price)",
        ] {
            let c = two(src);
            let weaker = induce_weaker(&c, &cat);
            for s in all.all_nonempty_subsets() {
                for t in all.all_nonempty_subsets() {
                    if eval_two(&c, &s, &t, &cat) {
                        for w in &weaker {
                            assert!(
                                eval_two(w, &s, &t, &cat),
                                "`{src}` ⇒ `{w}` violated at ({s}, {t})"
                            );
                        }
                    }
                }
            }
        }
    }
}

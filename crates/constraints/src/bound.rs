//! Constraints resolved against a catalog.
//!
//! Binding resolves attribute names to [`AttrId`]s, validates attribute
//! kinds (aggregates need numeric columns), and interns literal values into
//! the catalog-wide *value key* encoding, so evaluation and reduction never
//! touch strings. The same types also carry the *induced* 1-var constraints
//! produced by quasi-succinct reduction — their constants (`L1^T.B` etc.)
//! are value-key sets / numbers computed at run time.

use crate::ast;
use crate::lang::{Agg, CmpOp, SetRel, Var};
use cfq_types::{AttrId, AttrKind, Catalog, CfqError, Result};
use std::fmt;

/// A resolved 1-var constraint on `var`.
#[derive(Clone, PartialEq, Debug)]
pub enum OneVar {
    /// `var.A rel V` for a constant value-key set `V` (sorted, deduped).
    /// `attr = None` means the bare variable (V holds item ids).
    Domain {
        /// The constrained variable.
        var: Var,
        /// The attribute, or `None` for the bare variable.
        attr: Option<AttrId>,
        /// The set relation, oriented as `value_set(var.attr) rel value`.
        rel: SetRel,
        /// The constant side (sorted, deduplicated value keys).
        value: Vec<u64>,
    },
    /// `agg(var.A) op c`.
    AggCmp {
        /// The constrained variable.
        var: Var,
        /// The aggregate function.
        agg: Agg,
        /// The (numeric) attribute.
        attr: AttrId,
        /// The comparison.
        op: CmpOp,
        /// The constant.
        value: f64,
    },
    /// `count(distinct var.A) op c` (`attr = None` counts items).
    CountCmp {
        /// The constrained variable.
        var: Var,
        /// The attribute, or `None` to count items.
        attr: Option<AttrId>,
        /// The comparison.
        op: CmpOp,
        /// The constant.
        value: f64,
    },
}

impl OneVar {
    /// The variable this constraint restricts.
    pub fn var(&self) -> Var {
        match self {
            OneVar::Domain { var, .. }
            | OneVar::AggCmp { var, .. }
            | OneVar::CountCmp { var, .. } => *var,
        }
    }
}

/// A resolved 2-var constraint, always oriented `S`-side first.
#[derive(Clone, PartialEq, Debug)]
pub enum TwoVar {
    /// `S.A rel T.B`.
    Domain {
        /// S-side attribute (`None` = bare variable).
        s_attr: Option<AttrId>,
        /// The set relation.
        rel: SetRel,
        /// T-side attribute (`None` = bare variable).
        t_attr: Option<AttrId>,
    },
    /// `agg1(S.A) op agg2(T.B)`.
    AggCmp {
        /// S-side aggregate.
        s_agg: Agg,
        /// S-side attribute.
        s_attr: AttrId,
        /// The comparison.
        op: CmpOp,
        /// T-side aggregate.
        t_agg: Agg,
        /// T-side attribute.
        t_attr: AttrId,
    },
    /// `count(S.A) op count(T.B)` — 2-var class constraint (language
    /// extension; §8 open problem 3). `None` attributes count items.
    CountCmp {
        /// S-side attribute (`None` = bare variable).
        s_attr: Option<AttrId>,
        /// The comparison.
        op: CmpOp,
        /// T-side attribute (`None` = bare variable).
        t_attr: Option<AttrId>,
    },
}

/// A bound constraint: one of the three shapes of the CFQ language.
#[derive(Clone, PartialEq, Debug)]
pub enum Bound {
    /// Constraint over a single variable.
    One(OneVar),
    /// Constraint binding both variables.
    Two(TwoVar),
}

/// A bound CFQ: 1-var and 2-var conjuncts, separated (the optimizer's first
/// step in Fig. 7 is purely syntactic separation — done here at binding).
#[derive(Clone, Debug, Default)]
pub struct BoundQuery {
    /// 1-var conjuncts.
    pub one_var: Vec<OneVar>,
    /// 2-var conjuncts.
    pub two_var: Vec<TwoVar>,
}

impl BoundQuery {
    /// The 1-var conjuncts restricting `var`.
    pub fn one_var_for(&self, var: Var) -> impl Iterator<Item = &OneVar> {
        self.one_var.iter().filter(move |c| c.var() == var)
    }
}

/// Binds a parsed query against a catalog.
pub fn bind_query(q: &ast::Query, catalog: &Catalog) -> Result<BoundQuery> {
    let mut out = BoundQuery::default();
    for c in &q.constraints {
        match bind_constraint(c, catalog)? {
            Some(Bound::One(c)) => out.one_var.push(c),
            Some(Bound::Two(c)) => out.two_var.push(c),
            None => {} // freq(S)/freq(T): implicit
        }
    }
    Ok(out)
}

/// Binds each disjunct of a DNF query against a catalog.
pub fn bind_dnf(d: &ast::Dnf, catalog: &Catalog) -> Result<Vec<BoundQuery>> {
    d.disjuncts.iter().map(|q| bind_query(q, catalog)).collect()
}

/// Binds a single constraint. `freq(...)` binds to `None` (implicit).
pub fn bind_constraint(c: &ast::Constraint, catalog: &Catalog) -> Result<Option<Bound>> {
    match c {
        ast::Constraint::Freq(_) => Ok(None),
        ast::Constraint::AggCmp { lhs, op, rhs } => bind_agg_cmp(lhs, *op, rhs, catalog).map(Some),
        ast::Constraint::CountCmp { operand, op, value } => {
            let attr = bind_attr(operand, catalog)?;
            Ok(Some(Bound::One(OneVar::CountCmp {
                var: operand.var,
                attr,
                op: *op,
                value: *value,
            })))
        }
        ast::Constraint::CountCmp2 { lhs, op, rhs } => {
            if lhs.var == rhs.var {
                return Err(CfqError::UnsupportedConstraint(format!(
                    "both counted sides range over `{}` — 2-var constraints need S and T",
                    lhs.var
                )));
            }
            let attr_l = bind_attr(lhs, catalog)?;
            let attr_r = bind_attr(rhs, catalog)?;
            let c = if lhs.var == Var::S {
                TwoVar::CountCmp { s_attr: attr_l, op: *op, t_attr: attr_r }
            } else {
                TwoVar::CountCmp { s_attr: attr_r, op: op.mirror(), t_attr: attr_l }
            };
            Ok(Some(Bound::Two(c)))
        }
        ast::Constraint::SetCmp { lhs, rel, rhs } => bind_set_cmp(lhs, *rel, rhs, catalog).map(Some),
        ast::Constraint::Member { value, operand } => {
            let attr = bind_attr(operand, catalog)?;
            let key = literal_key(value, operand.attr.as_deref(), attr, catalog)?;
            Ok(Some(Bound::One(OneVar::Domain {
                var: operand.var,
                attr,
                rel: SetRel::Superset,
                value: vec![key],
            })))
        }
    }
}

fn bind_attr(va: &ast::VarAttr, catalog: &Catalog) -> Result<Option<AttrId>> {
    match &va.attr {
        None => Ok(None),
        Some(name) => catalog.require_attr(name).map(Some),
    }
}

fn require_num_attr(va: &ast::VarAttr, catalog: &Catalog) -> Result<AttrId> {
    let name = va.attr.as_deref().ok_or_else(|| {
        CfqError::UnsupportedConstraint(format!(
            "aggregate over bare variable `{}` needs an attribute",
            va.var
        ))
    })?;
    let attr = catalog.require_attr(name)?;
    if catalog.kind(attr) != AttrKind::Num {
        return Err(CfqError::Attr(format!("attribute `{name}` is not numeric")));
    }
    Ok(attr)
}

fn bind_agg_cmp(
    lhs: &ast::AggExpr,
    op: CmpOp,
    rhs: &ast::AggExpr,
    catalog: &Catalog,
) -> Result<Bound> {
    match (lhs, rhs) {
        (ast::AggExpr::Agg { agg, operand }, ast::AggExpr::Const(c)) => {
            let attr = require_num_attr(operand, catalog)?;
            Ok(Bound::One(OneVar::AggCmp {
                var: operand.var,
                agg: *agg,
                attr,
                op,
                value: *c,
            }))
        }
        (ast::AggExpr::Const(c), ast::AggExpr::Agg { agg, operand }) => {
            let attr = require_num_attr(operand, catalog)?;
            Ok(Bound::One(OneVar::AggCmp {
                var: operand.var,
                agg: *agg,
                attr,
                op: op.mirror(),
                value: *c,
            }))
        }
        (
            ast::AggExpr::Agg { agg: a1, operand: o1 },
            ast::AggExpr::Agg { agg: a2, operand: o2 },
        ) => {
            if o1.var == o2.var {
                return Err(CfqError::UnsupportedConstraint(format!(
                    "both aggregate operands range over `{}` — 2-var constraints need S and T",
                    o1.var
                )));
            }
            let attr1 = require_num_attr(o1, catalog)?;
            let attr2 = require_num_attr(o2, catalog)?;
            // Orient S-side first.
            if o1.var == Var::S {
                Ok(Bound::Two(TwoVar::AggCmp {
                    s_agg: *a1,
                    s_attr: attr1,
                    op,
                    t_agg: *a2,
                    t_attr: attr2,
                }))
            } else {
                Ok(Bound::Two(TwoVar::AggCmp {
                    s_agg: *a2,
                    s_attr: attr2,
                    op: op.mirror(),
                    t_agg: *a1,
                    t_attr: attr1,
                }))
            }
        }
        (ast::AggExpr::Const(_), ast::AggExpr::Const(_)) => Err(CfqError::UnsupportedConstraint(
            "comparison between two constants".into(),
        )),
    }
}

fn bind_set_cmp(
    lhs: &ast::SetExpr,
    rel: SetRel,
    rhs: &ast::SetExpr,
    catalog: &Catalog,
) -> Result<Bound> {
    match (lhs, rhs) {
        (ast::SetExpr::Var(a), ast::SetExpr::Var(b)) => {
            if a.var == b.var {
                return Err(CfqError::UnsupportedConstraint(format!(
                    "both sides range over `{}` — use a literal or two variables",
                    a.var
                )));
            }
            let attr_a = bind_attr(a, catalog)?;
            let attr_b = bind_attr(b, catalog)?;
            check_comparable(a, attr_a, b, attr_b, catalog)?;
            if a.var == Var::S {
                Ok(Bound::Two(TwoVar::Domain { s_attr: attr_a, rel, t_attr: attr_b }))
            } else {
                Ok(Bound::Two(TwoVar::Domain { s_attr: attr_b, rel: rel.mirror(), t_attr: attr_a }))
            }
        }
        (ast::SetExpr::Var(a), ast::SetExpr::Lit(lits)) => {
            let attr = bind_attr(a, catalog)?;
            let value = literal_keys(lits, a.attr.as_deref(), attr, catalog)?;
            Ok(Bound::One(OneVar::Domain { var: a.var, attr, rel, value }))
        }
        (ast::SetExpr::Lit(lits), ast::SetExpr::Var(a)) => {
            let attr = bind_attr(a, catalog)?;
            let value = literal_keys(lits, a.attr.as_deref(), attr, catalog)?;
            Ok(Bound::One(OneVar::Domain { var: a.var, attr, rel: rel.mirror(), value }))
        }
        (ast::SetExpr::Lit(_), ast::SetExpr::Lit(_)) => Err(CfqError::UnsupportedConstraint(
            "set comparison between two literals".into(),
        )),
    }
}

/// Two variable value-sets are comparable when their attribute kinds agree
/// (Num vs Num, Cat vs Cat, bare vs bare). Mixing kinds is almost certainly
/// a query bug, so we reject it at binding.
fn check_comparable(
    a: &ast::VarAttr,
    attr_a: Option<AttrId>,
    b: &ast::VarAttr,
    attr_b: Option<AttrId>,
    catalog: &Catalog,
) -> Result<()> {
    let kind = |attr: Option<AttrId>| attr.map(|x| catalog.kind(x));
    if kind(attr_a) != kind(attr_b) {
        return Err(CfqError::Attr(format!(
            "cannot compare value sets of `{a}` and `{b}`: attribute kinds differ"
        )));
    }
    Ok(())
}

/// Resolves one literal into a value key consistent with the attribute.
fn literal_key(
    lit: &ast::Literal,
    attr_name: Option<&str>,
    attr: Option<AttrId>,
    catalog: &Catalog,
) -> Result<u64> {
    match (lit, attr.map(|a| catalog.kind(a))) {
        (ast::Literal::Num(n), Some(AttrKind::Num)) => Ok(n.to_bits()),
        (ast::Literal::Num(n), None) => {
            // Bare variable: the literal is an item id.
            if n.fract() != 0.0 || *n < 0.0 {
                return Err(CfqError::Parse(format!("item id literal `{n}` must be a non-negative integer")));
            }
            Ok(*n as u64)
        }
        (ast::Literal::Sym(s), Some(AttrKind::Cat)) => {
            // Unknown symbols match no item: reserve keys from the top.
            Ok(catalog
                .symbol(s)
                .map(|id| id.0 as u64)
                .unwrap_or_else(|| u64::MAX - fxhash_str(s) % (1 << 31)))
        }
        (ast::Literal::Num(_), Some(AttrKind::Cat)) => Err(CfqError::Attr(format!(
            "attribute `{}` is categorical; numeric literal not allowed",
            attr_name.unwrap_or("?")
        ))),
        (ast::Literal::Sym(s), Some(AttrKind::Num)) => Err(CfqError::Attr(format!(
            "attribute `{}` is numeric; symbol `{s}` not allowed",
            attr_name.unwrap_or("?")
        ))),
        (ast::Literal::Sym(s), None) => Err(CfqError::Attr(format!(
            "bare variable compares item ids; symbol `{s}` not allowed"
        ))),
    }
}

fn literal_keys(
    lits: &[ast::Literal],
    attr_name: Option<&str>,
    attr: Option<AttrId>,
    catalog: &Catalog,
) -> Result<Vec<u64>> {
    let mut keys = Vec::with_capacity(lits.len());
    for l in lits {
        keys.push(literal_key(l, attr_name, attr, catalog)?);
    }
    keys.sort_unstable();
    keys.dedup();
    Ok(keys)
}

/// Tiny deterministic string hash for unknown-symbol sentinels.
fn fxhash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Catalog-aware pretty printer for a [`OneVar`] constraint: attribute
/// names instead of ids, symbol names instead of value keys.
pub struct DisplayOneVar<'a> {
    c: &'a OneVar,
    catalog: &'a Catalog,
}

/// Catalog-aware pretty printer for a [`TwoVar`] constraint.
pub struct DisplayTwoVar<'a> {
    c: &'a TwoVar,
    catalog: &'a Catalog,
}

impl OneVar {
    /// Renders with attribute and symbol names resolved from the catalog.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> DisplayOneVar<'a> {
        DisplayOneVar { c: self, catalog }
    }
}

impl TwoVar {
    /// Renders with attribute names resolved from the catalog.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> DisplayTwoVar<'a> {
        DisplayTwoVar { c: self, catalog }
    }
}

fn fmt_attr_named(catalog: &Catalog, attr: &Option<AttrId>) -> String {
    match attr {
        Some(a) => format!(".{}", catalog.attr_name(*a)),
        None => String::new(),
    }
}

fn fmt_keys(catalog: &Catalog, attr: &Option<AttrId>, keys: &[u64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "{{")?;
    let kind = attr.map(|a| catalog.kind(a));
    for (i, &k) in keys.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        match kind {
            Some(cfq_types::AttrKind::Num) => write!(f, "{}", f64::from_bits(k))?,
            Some(cfq_types::AttrKind::Cat) if k < catalog.n_symbols() as u64 => {
                write!(f, "{}", catalog.symbol_name(cfq_types::SymbolId(k as u32)))?
            }
            Some(cfq_types::AttrKind::Cat) => write!(f, "<unknown>")?,
            None => write!(f, "{k}")?,
        }
    }
    write!(f, "}}")
}

impl fmt::Display for DisplayOneVar<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cat = self.catalog;
        match self.c {
            OneVar::Domain { var, attr, rel, value } => {
                write!(f, "{var}{} {rel} ", fmt_attr_named(cat, attr))?;
                if value.len() > 8 {
                    write!(f, "<{} values>", value.len())
                } else {
                    fmt_keys(cat, attr, value, f)
                }
            }
            OneVar::AggCmp { var, agg, attr, op, value } => {
                write!(f, "{agg}({var}.{}) {op} {value}", cat.attr_name(*attr))
            }
            OneVar::CountCmp { var, attr, op, value } => {
                write!(f, "count({var}{}) {op} {value}", fmt_attr_named(cat, attr))
            }
        }
    }
}

impl fmt::Display for DisplayTwoVar<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cat = self.catalog;
        match self.c {
            TwoVar::Domain { s_attr, rel, t_attr } => write!(
                f,
                "S{} {rel} T{}",
                fmt_attr_named(cat, s_attr),
                fmt_attr_named(cat, t_attr)
            ),
            TwoVar::AggCmp { s_agg, s_attr, op, t_agg, t_attr } => write!(
                f,
                "{s_agg}(S.{}) {op} {t_agg}(T.{})",
                cat.attr_name(*s_attr),
                cat.attr_name(*t_attr)
            ),
            TwoVar::CountCmp { s_attr, op, t_attr } => write!(
                f,
                "count(S{}) {op} count(T{})",
                fmt_attr_named(cat, s_attr),
                fmt_attr_named(cat, t_attr)
            ),
        }
    }
}

impl fmt::Display for OneVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OneVar::Domain { var, attr, rel, value } => {
                write!(f, "{var}{} {rel} <{} keys>", fmt_attr(attr), value.len())
            }
            OneVar::AggCmp { var, agg, attr, op, value } => {
                write!(f, "{agg}({var}.#{}) {op} {value}", attr.0)
            }
            OneVar::CountCmp { var, attr, op, value } => {
                write!(f, "count({var}{}) {op} {value}", fmt_attr(attr))
            }
        }
    }
}

impl fmt::Display for TwoVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwoVar::Domain { s_attr, rel, t_attr } => {
                write!(f, "S{} {rel} T{}", fmt_attr(s_attr), fmt_attr(t_attr))
            }
            TwoVar::AggCmp { s_agg, s_attr, op, t_agg, t_attr } => {
                write!(f, "{s_agg}(S.#{}) {op} {t_agg}(T.#{})", s_attr.0, t_attr.0)
            }
            TwoVar::CountCmp { s_attr, op, t_attr } => {
                write!(f, "count(S{}) {op} count(T{})", fmt_attr(s_attr), fmt_attr(t_attr))
            }
        }
    }
}

fn fmt_attr(attr: &Option<AttrId>) -> String {
    match attr {
        Some(a) => format!(".#{}", a.0),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use cfq_types::CatalogBuilder;

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(4);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        b.cat_attr("Type", &["Snacks", "Beers", "Snacks", "Dairy"]).unwrap();
        b.build()
    }

    fn bind(src: &str) -> BoundQuery {
        bind_query(&parse_query(src).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn binds_paper_intro_query() {
        let q = bind("freq(S) & freq(T) & sum(S.Price) <= 100 & avg(T.Price) >= 200");
        assert_eq!(q.one_var.len(), 2);
        assert!(q.two_var.is_empty());
        assert!(matches!(
            q.one_var[0],
            OneVar::AggCmp { var: Var::S, agg: Agg::Sum, op: CmpOp::Le, value, .. } if value == 100.0
        ));
    }

    #[test]
    fn orients_two_var_s_first() {
        let q = bind("min(T.Price) >= max(S.Price)");
        assert_eq!(q.two_var.len(), 1);
        match &q.two_var[0] {
            TwoVar::AggCmp { s_agg, op, t_agg, .. } => {
                assert_eq!(*s_agg, Agg::Max);
                assert_eq!(*op, CmpOp::Le);
                assert_eq!(*t_agg, Agg::Min);
            }
            other => panic!("unexpected {other:?}"),
        }
        let q = bind("T.Type superset S.Type");
        match &q.two_var[0] {
            TwoVar::Domain { rel, .. } => assert_eq!(*rel, SetRel::Subset),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binds_domain_literals() {
        let q = bind("S.Type = {Snacks}");
        match &q.one_var[0] {
            OneVar::Domain { rel: SetRel::Eq, value, .. } => {
                assert_eq!(value.len(), 1);
                let snacks = catalog().symbol("Snacks").unwrap().0 as u64;
                assert_eq!(value[0], snacks);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Literal on the left mirrors the relation.
        let q = bind("{Snacks} subset S.Type");
        match &q.one_var[0] {
            OneVar::Domain { rel, .. } => assert_eq!(*rel, SetRel::Superset),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn membership_is_superset_singleton() {
        let q = bind("20 in S.Price");
        match &q.one_var[0] {
            OneVar::Domain { rel: SetRel::Superset, value, attr: Some(_), .. } => {
                assert_eq!(value[0], 20.0f64.to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_variable_constraints() {
        let q = bind("S disjoint T");
        assert!(matches!(
            q.two_var[0],
            TwoVar::Domain { s_attr: None, rel: SetRel::Disjoint, t_attr: None }
        ));
        let q = bind("S subset {0, 2}");
        match &q.one_var[0] {
            OneVar::Domain { attr: None, rel: SetRel::Subset, value, .. } => {
                assert_eq!(value, &vec![0u64, 2]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_symbols_get_sentinels() {
        let q = bind("S.Type = {Gadgets}");
        match &q.one_var[0] {
            OneVar::Domain { value, .. } => {
                assert!(value[0] > u32::MAX as u64, "sentinel key expected");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binding_errors() {
        let cat = catalog();
        let check_err = |src: &str| {
            let q = parse_query(src).unwrap();
            assert!(bind_query(&q, &cat).is_err(), "`{src}` should not bind");
        };
        check_err("sum(S.Type) <= 3"); // aggregate over categorical
        check_err("sum(S.Weight) <= 3"); // unknown attribute
        check_err("min(S.Price) <= max(S.Price)"); // same variable twice
        check_err("S.Type = S.Type"); // same variable twice
        check_err("S.Type disjoint T.Price"); // kind mismatch
        check_err("S.Price = {Snacks}"); // symbol on numeric attr
        check_err("S = {Snacks}"); // symbol on bare variable
        check_err("S.Type = {5}"); // number on categorical attr
    }

    #[test]
    fn count_binds() {
        let q = bind("count(S.Type) = 1 & count(T) <= 4");
        assert_eq!(q.one_var.len(), 2);
        assert!(matches!(q.one_var[1], OneVar::CountCmp { var: Var::T, attr: None, .. }));
    }
}

//! Shared vocabulary of the CFQ constraint language: variables, aggregate
//! functions, comparison operators, and set relations.

use std::fmt;

/// A set variable of a CFQ `{(S, T) | C}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Var {
    /// The antecedent variable.
    S,
    /// The consequent variable.
    T,
}

impl Var {
    /// The other variable.
    pub fn other(self) -> Var {
        match self {
            Var::S => Var::T,
            Var::T => Var::S,
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Var::S => write!(f, "S"),
            Var::T => write!(f, "T"),
        }
    }
}

/// SQL-style aggregate functions over a numeric attribute of a set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Agg {
    /// Minimum attribute value.
    Min,
    /// Maximum attribute value.
    Max,
    /// Sum of attribute values.
    Sum,
    /// Arithmetic mean of attribute values.
    Avg,
}

impl Agg {
    /// `true` for the aggregates that make a constraint succinct (Lemma 1 of
    /// the paper: min/max yes, sum/avg no).
    pub fn is_succinct_agg(self) -> bool {
        matches!(self, Agg::Min | Agg::Max)
    }
}

impl fmt::Display for Agg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Agg::Min => "min",
            Agg::Max => "max",
            Agg::Sum => "sum",
            Agg::Avg => "avg",
        };
        write!(f, "{s}")
    }
}

/// Numeric comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Applies the comparison to two floats.
    #[inline]
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Le => a <= b,
            CmpOp::Lt => a < b,
            CmpOp::Ge => a >= b,
            CmpOp::Gt => a > b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// The operator with its sides swapped (`a op b` ⇔ `b op.mirror() a`).
    pub fn mirror(self) -> CmpOp {
        match self {
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// `true` for `<=` / `<` (the "upper bound" comparisons).
    pub fn is_upper(self) -> bool {
        matches!(self, CmpOp::Le | CmpOp::Lt)
    }

    /// `true` for `>=` / `>`.
    pub fn is_lower(self) -> bool {
        matches!(self, CmpOp::Ge | CmpOp::Gt)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// Set relations between two value sets (domain constraints).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SetRel {
    /// `X ∩ Y = ∅`
    Disjoint,
    /// `X ∩ Y ≠ ∅`
    Intersects,
    /// `X ⊆ Y`
    Subset,
    /// `X ⊄ Y` (not a subset)
    NotSubset,
    /// `X ⊇ Y`
    Superset,
    /// `X ⊉ Y` (not a superset)
    NotSuperset,
    /// `X = Y`
    Eq,
    /// `X ≠ Y`
    Ne,
}

impl SetRel {
    /// The relation with its sides swapped (`X rel Y` ⇔ `Y rel.mirror() X`).
    pub fn mirror(self) -> SetRel {
        match self {
            SetRel::Subset => SetRel::Superset,
            SetRel::Superset => SetRel::Subset,
            SetRel::NotSubset => SetRel::NotSuperset,
            SetRel::NotSuperset => SetRel::NotSubset,
            r => r,
        }
    }

    /// Applies the relation to two *sorted, deduplicated* key slices.
    pub fn eval(self, x: &[u64], y: &[u64]) -> bool {
        match self {
            SetRel::Disjoint => !intersects(x, y),
            SetRel::Intersects => intersects(x, y),
            SetRel::Subset => subset(x, y),
            SetRel::NotSubset => !subset(x, y),
            SetRel::Superset => subset(y, x),
            SetRel::NotSuperset => !subset(y, x),
            SetRel::Eq => x == y,
            SetRel::Ne => x != y,
        }
    }
}

impl fmt::Display for SetRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SetRel::Disjoint => "disjoint",
            SetRel::Intersects => "intersects",
            SetRel::Subset => "subset",
            SetRel::NotSubset => "!subset",
            SetRel::Superset => "superset",
            SetRel::NotSuperset => "!superset",
            SetRel::Eq => "=",
            SetRel::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

fn intersects(x: &[u64], y: &[u64]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < x.len() && j < y.len() {
        match x[i].cmp(&y[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

fn subset(x: &[u64], y: &[u64]) -> bool {
    if x.len() > y.len() {
        return false;
    }
    let mut j = 0;
    'outer: for &a in x {
        while j < y.len() {
            match y[j].cmp(&a) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_all_ops() {
        assert!(CmpOp::Le.eval(1.0, 1.0));
        assert!(!CmpOp::Lt.eval(1.0, 1.0));
        assert!(CmpOp::Ge.eval(2.0, 1.0));
        assert!(CmpOp::Gt.eval(2.0, 1.0));
        assert!(CmpOp::Eq.eval(3.0, 3.0));
        assert!(CmpOp::Ne.eval(3.0, 4.0));
    }

    #[test]
    fn cmp_mirror_is_involutive_and_correct() {
        for op in [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt, CmpOp::Eq, CmpOp::Ne] {
            assert_eq!(op.mirror().mirror(), op);
            for (a, b) in [(1.0, 2.0), (2.0, 1.0), (1.5, 1.5)] {
                assert_eq!(op.eval(a, b), op.mirror().eval(b, a), "{op} {a} {b}");
            }
        }
    }

    #[test]
    fn setrel_eval() {
        let x = [1u64, 3, 5];
        let y = [3u64, 4];
        let z = [2u64, 4];
        assert!(SetRel::Intersects.eval(&x, &y));
        assert!(SetRel::Disjoint.eval(&x, &z));
        assert!(SetRel::Subset.eval(&[3], &x));
        assert!(SetRel::NotSubset.eval(&y, &x));
        assert!(SetRel::Superset.eval(&x, &[1, 5]));
        assert!(SetRel::NotSuperset.eval(&y, &x));
        assert!(SetRel::Eq.eval(&x, &[1, 3, 5]));
        assert!(SetRel::Ne.eval(&x, &y));
        // Empty-set edge cases.
        assert!(SetRel::Disjoint.eval(&[], &x));
        assert!(SetRel::Subset.eval(&[], &x));
        assert!(SetRel::Superset.eval(&x, &[]));
        assert!(SetRel::Eq.eval(&[], &[]));
    }

    #[test]
    fn setrel_mirror_matches_swapped_eval() {
        let cases: [&[u64]; 4] = [&[1, 2], &[2, 3], &[1, 2, 3], &[]];
        let rels = [
            SetRel::Disjoint,
            SetRel::Intersects,
            SetRel::Subset,
            SetRel::NotSubset,
            SetRel::Superset,
            SetRel::NotSuperset,
            SetRel::Eq,
            SetRel::Ne,
        ];
        for rel in rels {
            assert_eq!(rel.mirror().mirror(), rel);
            for x in cases {
                for y in cases {
                    assert_eq!(rel.eval(x, y), rel.mirror().eval(y, x), "{rel}");
                }
            }
        }
    }

    #[test]
    fn agg_succinctness() {
        assert!(Agg::Min.is_succinct_agg());
        assert!(Agg::Max.is_succinct_agg());
        assert!(!Agg::Sum.is_succinct_agg());
        assert!(!Agg::Avg.is_succinct_agg());
    }

    #[test]
    fn display_roundtrip_tokens() {
        assert_eq!(Agg::Sum.to_string(), "sum");
        assert_eq!(CmpOp::Le.to_string(), "<=");
        assert_eq!(SetRel::Disjoint.to_string(), "disjoint");
        assert_eq!(Var::S.other(), Var::T);
    }
}

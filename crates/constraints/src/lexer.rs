//! Tokenizer for the CFQ query language.

use cfq_types::{CfqError, Result};
use std::fmt;

/// A half-open byte range `[start, end)` into the query source string.
///
/// Spans are recorded by the lexer and aggregated per constraint by the
/// spanned parser entry points, so diagnostics (notably from `cfq-audit`)
/// can point at the offending constraint text.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    /// Byte offset of the first byte covered by the span.
    pub start: usize,
    /// Byte offset one past the last byte covered by the span.
    pub end: usize,
}

impl Span {
    /// Extracts the spanned slice from the source string, if in bounds.
    pub fn slice<'a>(&self, src: &'a str) -> Option<&'a str> {
        src.get(self.start..self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes {}..{}", self.start, self.end)
    }
}

/// A token with its byte offset (for error messages).
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// Byte offset in the source string.
    pub offset: usize,
    /// Byte length of the token's source text (0 for [`TokenKind::Eof`]).
    pub len: usize,
}

impl Token {
    /// The byte range this token covers in the source string.
    pub fn span(&self) -> Span {
        Span { start: self.offset, end: self.offset + self.len }
    }
}

/// Token kinds of the query language.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (`S`, `Price`, `sum`, `disjoint`, `in`, …).
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `&` (also accepts `&&` and the keyword `and` at parse level)
    Amp,
    /// `|` (also accepts `||` and the keyword `or` at parse level)
    Pipe,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `=` (also accepts `==`)
    Eq,
    /// `!=` or `<>`
    Ne,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Num(n) => write!(f, "number `{n}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Tokenizes a query string.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
            }
            b'(' => push(&mut tokens, TokenKind::LParen, start, &mut i, 1),
            b')' => push(&mut tokens, TokenKind::RParen, start, &mut i, 1),
            b'{' => push(&mut tokens, TokenKind::LBrace, start, &mut i, 1),
            b'}' => push(&mut tokens, TokenKind::RBrace, start, &mut i, 1),
            b'.' => push(&mut tokens, TokenKind::Dot, start, &mut i, 1),
            b',' => push(&mut tokens, TokenKind::Comma, start, &mut i, 1),
            b'&' => {
                let n = if bytes.get(i + 1) == Some(&b'&') { 2 } else { 1 };
                push(&mut tokens, TokenKind::Amp, start, &mut i, n);
            }
            b'|' => {
                let n = if bytes.get(i + 1) == Some(&b'|') { 2 } else { 1 };
                push(&mut tokens, TokenKind::Pipe, start, &mut i, n);
            }
            b'<' => match bytes.get(i + 1) {
                Some(&b'=') => push(&mut tokens, TokenKind::Le, start, &mut i, 2),
                Some(&b'>') => push(&mut tokens, TokenKind::Ne, start, &mut i, 2),
                _ => push(&mut tokens, TokenKind::Lt, start, &mut i, 1),
            },
            b'>' => match bytes.get(i + 1) {
                Some(&b'=') => push(&mut tokens, TokenKind::Ge, start, &mut i, 2),
                _ => push(&mut tokens, TokenKind::Gt, start, &mut i, 1),
            },
            b'=' => {
                let n = if bytes.get(i + 1) == Some(&b'=') { 2 } else { 1 };
                push(&mut tokens, TokenKind::Eq, start, &mut i, n);
            }
            b'!' => match bytes.get(i + 1) {
                Some(&b'=') => push(&mut tokens, TokenKind::Ne, start, &mut i, 2),
                _ => {
                    return Err(CfqError::Parse(format!(
                        "unexpected `!` at byte {start} (did you mean `!=`?)"
                    )))
                }
            },
            // A `-` is only ever a numeric sign in this grammar (there is
            // no arithmetic), so it must be followed by a digit.
            b'0'..=b'9' | b'-' => {
                if b == b'-' && !matches!(bytes.get(i + 1), Some(b'0'..=b'9')) {
                    return Err(CfqError::Parse(format!(
                        "unexpected `-` at byte {start} (expected a digit after the sign)"
                    )));
                }
                let mut j = i + 1;
                let mut seen_dot = false;
                while j < bytes.len() {
                    match bytes[j] {
                        b'0'..=b'9' => j += 1,
                        // A dot is part of the number only if a digit
                        // follows (so `S.Price` vs `1.5` disambiguate).
                        b'.' if !seen_dot
                            && matches!(bytes.get(j + 1), Some(b'0'..=b'9')) =>
                        {
                            seen_dot = true;
                            j += 1;
                        }
                        _ => break,
                    }
                }
                let text = &src[i..j];
                let n: f64 = text
                    .parse()
                    .map_err(|e| CfqError::Parse(format!("bad number `{text}`: {e}")))?;
                tokens.push(Token { kind: TokenKind::Num(n), offset: start, len: j - i });
                i = j;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && matches!(bytes[j], b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_')
                {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[i..j].to_string()),
                    offset: start,
                    len: j - i,
                });
                i = j;
            }
            _ => {
                return Err(CfqError::Parse(format!(
                    "unexpected character `{}` at byte {start}",
                    src[start..].chars().next().unwrap()
                )))
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, offset: bytes.len(), len: 0 });
    Ok(tokens)
}

fn push(tokens: &mut Vec<Token>, kind: TokenKind, start: usize, i: &mut usize, len: usize) {
    tokens.push(Token { kind, offset: start, len });
    *i += len;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("sum(S.Price) <= 100"),
            vec![
                Ident("sum".into()),
                LParen,
                Ident("S".into()),
                Dot,
                Ident("Price".into()),
                RParen,
                Le,
                Num(100.0),
                Eof
            ]
        );
    }

    #[test]
    fn operators() {
        use TokenKind::*;
        assert_eq!(kinds("< <= > >= = == != <> & && | ||"), vec![
            Lt, Le, Gt, Ge, Eq, Eq, Ne, Ne, Amp, Amp, Pipe, Pipe, Eof
        ]);
    }

    #[test]
    fn numbers_and_dots() {
        use TokenKind::*;
        // `1.5` is one number; `S.Price` is ident dot ident; `2.` is a
        // number followed by a dot.
        assert_eq!(kinds("1.5"), vec![Num(1.5), Eof]);
        assert_eq!(
            kinds("S.Price"),
            vec![Ident("S".into()), Dot, Ident("Price".into()), Eof]
        );
        assert_eq!(kinds("2."), vec![Num(2.0), Dot, Eof]);
    }

    #[test]
    fn set_literals() {
        use TokenKind::*;
        assert_eq!(
            kinds("{Snacks, Beers}"),
            vec![LBrace, Ident("Snacks".into()), Comma, Ident("Beers".into()), RBrace, Eof]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("a $ b").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a - b").is_err());
    }

    #[test]
    fn negative_numbers() {
        use TokenKind::*;
        assert_eq!(kinds("-5"), vec![Num(-5.0), Eof]);
        assert_eq!(kinds("-1.5"), vec![Num(-1.5), Eof]);
        assert_eq!(kinds("x >= -2"), vec![Ident("x".into()), Ge, Num(-2.0), Eof]);
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("ab <= 1").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
        assert_eq!(toks[2].offset, 6);
    }

    #[test]
    fn spans_cover_source_text() {
        let src = "sum(S.Price) <= 100";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[0].span().slice(src), Some("sum"));
        assert_eq!(toks[6].span().slice(src), Some("<="));
        assert_eq!(toks[7].span().slice(src), Some("100"));
        let eof = toks.last().unwrap();
        assert_eq!(eof.span(), Span { start: src.len(), end: src.len() });
    }
}

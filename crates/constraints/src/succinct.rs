//! Compilation of 1-var constraints into executable succinct form.
//!
//! A succinct constraint's solution space has a member generating function
//! (Definition 2). Operationally, every succinct constraint used by CAP
//! compiles into one of:
//!
//! * an **allowed** item filter — valid sets are subsets of `allowed`
//!   (anti-monotone succinct constraints, CAP Strategy I);
//! * a **required group** — valid sets contain at least one item of the
//!   group (succinct non-anti-monotone constraints, CAP Strategy II);
//! * a **residual anti-monotone check** applied per candidate (succinct
//!   constraints whose MGF is a union of powersets, like `S.A ⊉ V`, and
//!   non-succinct anti-monotone constraints like `sum ≤ v`, CAP
//!   Strategy III);
//! * a **post filter** applied to frequent sets only (constraints that are
//!   neither, like `avg θ v` — CAP Strategy IV; where possible a weaker
//!   succinct constraint is *also* pushed, e.g. `avg(S.A) ≤ v` pushes the
//!   sound required group "contains an item with `A ≤ v`").
//!
//! The [`SuccinctForm`] of a conjunction merges all four parts.

use crate::bound::OneVar;
use crate::classify::classify_one;
use crate::lang::{Agg, CmpOp, SetRel};
use cfq_types::{Catalog, ItemId, Itemset};

/// The compiled, executable form of a conjunction of 1-var constraints on a
/// single variable.
#[derive(Clone, Debug, Default)]
pub struct SuccinctForm {
    /// Intersection of all `allowed` filters; `None` = unrestricted.
    pub allowed: Option<Vec<ItemId>>,
    /// Each group must contribute at least one item to a valid set.
    pub required_groups: Vec<Vec<ItemId>>,
    /// Anti-monotone residual checks (safe to prune candidates with).
    pub residual_am: Vec<OneVar>,
    /// Checks applied only to final frequent sets (sound completion).
    pub post_filters: Vec<OneVar>,
}

impl SuccinctForm {
    /// Compiles a conjunction of 1-var constraints.
    pub fn compile(constraints: &[OneVar], catalog: &Catalog) -> SuccinctForm {
        let mut form = SuccinctForm::default();
        for c in constraints {
            form.add(c, catalog);
        }
        form.normalize();
        form
    }

    /// Whether no set can satisfy the form (empty allowed universe or an
    /// empty required group).
    pub fn unsatisfiable(&self) -> bool {
        matches!(&self.allowed, Some(a) if a.is_empty())
            || self.required_groups.iter().any(|g| g.is_empty())
    }

    /// Restricts a universe to the allowed items (ascending input/output).
    pub fn filter_universe(&self, universe: &[ItemId]) -> Vec<ItemId> {
        match &self.allowed {
            None => universe.to_vec(),
            Some(a) => universe
                .iter()
                .copied()
                .filter(|i| a.binary_search(i).is_ok())
                .collect(),
        }
    }

    /// Evaluates the residual anti-monotone checks on a candidate.
    pub fn admits_candidate(&self, set: &Itemset, catalog: &Catalog) -> bool {
        self.residual_am.iter().all(|c| crate::eval::eval_one(c, set, catalog))
    }

    /// Evaluates the post filters on a frequent set.
    pub fn passes_post(&self, set: &Itemset, catalog: &Catalog) -> bool {
        self.post_filters.iter().all(|c| crate::eval::eval_one(c, set, catalog))
    }

    /// `true` if `set` contains at least one member of every required group.
    pub fn satisfies_required(&self, set: &Itemset) -> bool {
        self.required_groups
            .iter()
            .all(|g| g.iter().any(|&i| set.contains(i)))
    }

    fn intersect_allowed(&mut self, items: Vec<ItemId>) {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]));
        self.allowed = Some(match self.allowed.take() {
            None => items,
            Some(cur) => cur
                .into_iter()
                .filter(|i| items.binary_search(i).is_ok())
                .collect(),
        });
    }

    fn add_group(&mut self, items: Vec<ItemId>) {
        self.required_groups.push(items);
    }

    /// Re-normalizes after out-of-band [`Self::add`] calls: restricts
    /// required groups to the allowed universe, deduplicates them, and
    /// orders them most-selective-first.
    pub fn normalize(&mut self) {
        // Required groups restricted to the allowed universe (an item
        // outside `allowed` can never appear in a valid set, so it cannot
        // satisfy the group either).
        if let Some(allowed) = &self.allowed {
            for g in &mut self.required_groups {
                g.retain(|i| allowed.binary_search(i).is_ok());
            }
        }
        // Deduplicate identical groups; sort largest-last so the engine can
        // push the most selective group natively.
        self.required_groups.sort();
        self.required_groups.dedup();
        self.required_groups.sort_by_key(|g| g.len());
    }

    /// Adds one constraint to the form.
    pub fn add(&mut self, c: &OneVar, catalog: &Catalog) {
        match c {
            OneVar::Domain { attr, rel, value, .. } => {
                let in_value =
                    |cat: &Catalog| cat.items_where_key(*attr, |k| value.binary_search(&k).is_ok());
                let not_in_value =
                    |cat: &Catalog| cat.items_where_key(*attr, |k| value.binary_search(&k).is_err());
                match rel {
                    SetRel::Subset => self.intersect_allowed(in_value(catalog)),
                    SetRel::Disjoint => self.intersect_allowed(not_in_value(catalog)),
                    SetRel::Intersects => self.add_group(in_value(catalog)),
                    SetRel::NotSubset => self.add_group(not_in_value(catalog)),
                    SetRel::Superset => {
                        for &v in value {
                            self.add_group(catalog.items_where_key(*attr, |k| k == v));
                        }
                    }
                    SetRel::NotSuperset => self.residual_am.push(c.clone()),
                    SetRel::Eq => {
                        self.intersect_allowed(in_value(catalog));
                        for &v in value {
                            self.add_group(catalog.items_where_key(*attr, |k| k == v));
                        }
                    }
                    SetRel::Ne => self.post_filters.push(c.clone()),
                }
            }
            OneVar::AggCmp { var, agg, attr, op, value } => {
                let items_cmp = |cat: &Catalog, op: CmpOp| {
                    cat.items_where_num(*attr, |x| op.eval(x, *value))
                };
                match (agg, op) {
                    (Agg::Min, CmpOp::Ge | CmpOp::Gt) => {
                        self.intersect_allowed(items_cmp(catalog, *op))
                    }
                    (Agg::Min, CmpOp::Le | CmpOp::Lt) => self.add_group(items_cmp(catalog, *op)),
                    (Agg::Min, CmpOp::Eq) => {
                        self.intersect_allowed(items_cmp(catalog, CmpOp::Ge));
                        self.add_group(items_cmp(catalog, CmpOp::Eq));
                    }
                    (Agg::Max, CmpOp::Le | CmpOp::Lt) => {
                        self.intersect_allowed(items_cmp(catalog, *op))
                    }
                    (Agg::Max, CmpOp::Ge | CmpOp::Gt) => self.add_group(items_cmp(catalog, *op)),
                    (Agg::Max, CmpOp::Eq) => {
                        self.intersect_allowed(items_cmp(catalog, CmpOp::Le));
                        self.add_group(items_cmp(catalog, CmpOp::Eq));
                    }
                    (Agg::Min | Agg::Max, CmpOp::Ne) => self.post_filters.push(c.clone()),
                    (Agg::Sum, CmpOp::Le | CmpOp::Lt) => {
                        if classify_one(c, catalog).anti_monotone {
                            // Non-negative domain: a single item above the
                            // budget already violates, so filter it out, and
                            // keep the running-sum check anti-monotonically.
                            if *value >= 0.0 {
                                self.intersect_allowed(items_cmp(catalog, *op));
                            }
                            self.residual_am.push(c.clone());
                        } else {
                            self.post_filters.push(c.clone());
                        }
                    }
                    (Agg::Sum, _) => self.post_filters.push(c.clone()),
                    (Agg::Avg, CmpOp::Le | CmpOp::Lt) => {
                        // Weaker succinct constraint: min(S.A) op v.
                        self.add_group(items_cmp(catalog, *op));
                        self.post_filters.push(c.clone());
                    }
                    (Agg::Avg, CmpOp::Ge | CmpOp::Gt) => {
                        // Weaker succinct constraint: max(S.A) op v.
                        self.add_group(items_cmp(catalog, *op));
                        self.post_filters.push(c.clone());
                    }
                    (Agg::Avg, _) => self.post_filters.push(c.clone()),
                }
                let _ = var;
            }
            OneVar::CountCmp { var, attr, op, value } => match op {
                CmpOp::Le | CmpOp::Lt => self.residual_am.push(c.clone()),
                CmpOp::Eq => {
                    self.residual_am.push(OneVar::CountCmp {
                        var: *var,
                        attr: *attr,
                        op: CmpOp::Le,
                        value: *value,
                    });
                    self.post_filters.push(c.clone());
                }
                _ => self.post_filters.push(c.clone()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::bind_query;
    use crate::parser::parse_query;
    use cfq_types::CatalogBuilder;

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        b.cat_attr("Type", &["A", "B", "A", "C", "B", "C"]).unwrap();
        b.build()
    }

    fn form(src: &str) -> SuccinctForm {
        let c = catalog();
        let q = bind_query(&parse_query(src).unwrap(), &c).unwrap();
        SuccinctForm::compile(&q.one_var, &c)
    }

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn allowed_filters() {
        let f = form("max(S.Price) <= 30");
        assert_eq!(f.allowed, Some(ids(&[0, 1, 2])));
        assert!(f.required_groups.is_empty());

        let f = form("min(S.Price) >= 30");
        assert_eq!(f.allowed, Some(ids(&[2, 3, 4, 5])));

        let f = form("S.Type subset {A, B}");
        assert_eq!(f.allowed, Some(ids(&[0, 1, 2, 4])));

        let f = form("S.Type disjoint {A}");
        assert_eq!(f.allowed, Some(ids(&[1, 3, 4, 5])));
    }

    #[test]
    fn required_groups() {
        let f = form("min(S.Price) <= 20");
        assert_eq!(f.required_groups, vec![ids(&[0, 1])]);
        assert!(f.allowed.is_none());

        let f = form("max(S.Price) >= 50");
        assert_eq!(f.required_groups, vec![ids(&[4, 5])]);

        let f = form("S.Type intersects {C}");
        assert_eq!(f.required_groups, vec![ids(&[3, 5])]);

        // Superset of a 2-element literal: one group per element.
        let f = form("S.Type superset {A, B}");
        assert_eq!(f.required_groups.len(), 2);
    }

    #[test]
    fn conjunction_merges() {
        let f = form("max(S.Price) <= 40 & min(S.Price) <= 20 & S.Type subset {A, B}");
        // allowed: price ≤ 40 ∩ type ∈ {A,B} = {0,1,2}.
        assert_eq!(f.allowed, Some(ids(&[0, 1, 2])));
        // group (price ≤ 20) intersected with allowed: {0,1}.
        assert_eq!(f.required_groups, vec![ids(&[0, 1])]);
        assert!(!f.unsatisfiable());
    }

    #[test]
    fn unsatisfiable_forms() {
        let f = form("max(S.Price) <= 5");
        assert!(f.unsatisfiable());
        let f = form("min(S.Price) >= 100 & min(S.Price) <= 10");
        // allowed = ∅ from the first, group emptied by normalization.
        assert!(f.unsatisfiable());
    }

    #[test]
    fn residual_am_and_post() {
        let c = catalog();
        let f = form("sum(S.Price) <= 50");
        assert_eq!(f.residual_am.len(), 1);
        // Items with price > 50 are filtered out entirely.
        assert_eq!(f.allowed, Some(ids(&[0, 1, 2, 3, 4])));
        assert!(f.admits_candidate(&[0u32, 1].into(), &c));
        assert!(!f.admits_candidate(&[2u32, 3].into(), &c));

        let f = form("S.Type notsuperset {A, B}");
        assert_eq!(f.residual_am.len(), 1);
        assert!(f.admits_candidate(&[0u32, 3].into(), &c)); // types {A, C}
        assert!(!f.admits_candidate(&[0u32, 1].into(), &c)); // types {A, B}

        let f = form("S.Type != {A}");
        assert_eq!(f.post_filters.len(), 1);
        assert!(!f.passes_post(&[0u32, 2].into(), &c));
        assert!(f.passes_post(&[0u32, 1].into(), &c));
    }

    #[test]
    fn avg_pushes_weaker_group() {
        let c = catalog();
        let f = form("avg(S.Price) <= 25");
        // Weaker: must contain an item with price ≤ 25 → {0, 1}.
        assert_eq!(f.required_groups, vec![ids(&[0, 1])]);
        assert_eq!(f.post_filters.len(), 1);
        // {0,3}: avg 25 ≤ 25 → passes post; {1,3}: avg 30 → fails.
        assert!(f.passes_post(&[0u32, 3].into(), &c));
        assert!(!f.passes_post(&[1u32, 3].into(), &c));
    }

    #[test]
    fn count_eq_decomposes() {
        let c = catalog();
        let f = form("count(S) = 2");
        assert_eq!(f.residual_am.len(), 1);
        assert_eq!(f.post_filters.len(), 1);
        assert!(f.admits_candidate(&[0u32].into(), &c)); // ≤ 2 ok so far
        assert!(!f.admits_candidate(&[0u32, 1, 2].into(), &c));
        assert!(f.passes_post(&[0u32, 1].into(), &c));
        assert!(!f.passes_post(&[0u32].into(), &c));
    }

    #[test]
    fn equality_domain_constraint() {
        let f = form("S.Type = {A}");
        assert_eq!(f.allowed, Some(ids(&[0, 2])));
        assert_eq!(f.required_groups, vec![ids(&[0, 2])]);
    }

    #[test]
    fn filter_universe_and_required() {
        let f = form("max(S.Price) <= 30 & min(S.Price) <= 15");
        let uni = ids(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(f.filter_universe(&uni), ids(&[0, 1, 2]));
        assert!(f.satisfies_required(&[0u32, 2].into()));
        assert!(!f.satisfies_required(&[1u32, 2].into()));
    }
}

//! Recursive-descent parser for the CFQ query language.
//!
//! Grammar (conjunctions only, as in the paper's CFQ language):
//!
//! ```text
//! query      := constraint (('&' | 'and') constraint)* EOF
//! constraint := 'freq' '(' var ')'
//!             | agg '(' varattr ')' cmp (number | agg '(' varattr ')')
//!             | number cmp agg '(' varattr ')'
//!             | 'count' '(' varattr ')' cmp number
//!             | setexpr setop setexpr
//!             | literal 'in' varattr
//! setexpr    := varattr | '{' literal (',' literal)* '}'
//! setop      := '=' | '!=' | 'subset' | 'subseteq' | 'notsubset'
//!             | 'superset' | 'superseteq' | 'notsuperset'
//!             | 'disjoint' | 'intersects' | 'overlaps'
//! agg        := 'min' | 'max' | 'sum' | 'avg'
//! cmp        := '<=' | '<' | '>=' | '>' | '=' | '!='
//! var        := 'S' | 'T'
//! varattr    := var ('.' ident)?
//! literal    := number | ident
//! ```
//!
//! `S.Type = {Snacks}` parses as a set constraint; `sum(S.Price) <= 100` as
//! an aggregate constraint — `=` disambiguates by operand shape.

use crate::ast::{AggExpr, Constraint, Dnf, Literal, Query, SetExpr, VarAttr};
use crate::lang::{Agg, CmpOp, SetRel, Var};
use crate::lexer::{tokenize, Span, Token, TokenKind};
use cfq_types::{CfqError, Result};

/// Parses a CFQ constraint conjunction.
///
/// ```
/// use cfq_constraints::parse_query;
/// let q = parse_query(
///     "freq(S) & sum(S.Price) <= 100 & S.Type = {Snacks} & max(S.Price) <= min(T.Price)",
/// ).unwrap();
/// assert_eq!(q.constraints.len(), 4);
/// assert!(parse_query("sum(S.Price) <=").is_err());
/// ```
pub fn parse_query(src: &str) -> Result<Query> {
    parse_query_spanned(src).map(|(q, _)| q)
}

/// Like [`parse_query`], but also returns one byte [`Span`] per parsed
/// constraint (in query order), for diagnostics that point back at source.
///
/// ```
/// use cfq_constraints::parse_query_spanned;
/// let src = "freq(S) & sum(S.Price) <= 100";
/// let (q, spans) = parse_query_spanned(src).unwrap();
/// assert_eq!(q.constraints.len(), spans.len());
/// assert_eq!(spans[1].slice(src), Some("sum(S.Price) <= 100"));
/// ```
pub fn parse_query_spanned(src: &str) -> Result<(Query, Vec<Span>)> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let (q, spans) = p.conjunction()?;
    if p.peek() != &TokenKind::Eof {
        return p.err("expected `&` or end of query");
    }
    Ok((q, spans))
}

/// Parses a disjunction of conjunctive CFQs (`… & … | … & …`; `|`/`or`
/// binds looser than `&`/`and`). A plain conjunction parses as a
/// single-disjunct DNF.
///
/// ```
/// use cfq_constraints::parse_dnf;
/// let d = parse_dnf("max(S.Price) <= 10 & freq(T) | S.Type disjoint T.Type").unwrap();
/// assert_eq!(d.disjuncts.len(), 2);
/// assert_eq!(d.disjuncts[0].constraints.len(), 2);
/// ```
pub fn parse_dnf(src: &str) -> Result<Dnf> {
    parse_dnf_spanned(src).map(|(d, _)| d)
}

/// Like [`parse_dnf`], but also returns the constraint [`Span`]s per
/// disjunct: `spans[d][i]` covers constraint `i` of disjunct `d`.
pub fn parse_dnf_spanned(src: &str) -> Result<(Dnf, Vec<Vec<Span>>)> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut disjuncts = Vec::new();
    let mut spans = Vec::new();
    let (q, s) = p.conjunction()?;
    disjuncts.push(q);
    spans.push(s);
    loop {
        match p.peek() {
            TokenKind::Pipe => {
                p.advance();
                let (q, s) = p.conjunction()?;
                disjuncts.push(q);
                spans.push(s);
            }
            TokenKind::Ident(w) if w == "or" => {
                p.advance();
                let (q, s) = p.conjunction()?;
                disjuncts.push(q);
                spans.push(s);
            }
            TokenKind::Eof => break,
            _ => return p.err("expected `|`, `&`, or end of query"),
        }
    }
    Ok((Dnf { disjuncts }, spans))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(CfqError::Parse(format!(
            "{msg}, found {} at byte {}",
            self.tokens[self.pos].kind, self.tokens[self.pos].offset
        )))
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            self.err(&format!("expected {what}"))
        }
    }

    /// A conjunction with per-constraint source spans; stops (without
    /// consuming) at `|`, `or`, or EOF.
    fn conjunction(&mut self) -> Result<(Query, Vec<Span>)> {
        let mut constraints = Vec::new();
        let mut spans = Vec::new();
        let (c, s) = self.spanned_constraint()?;
        constraints.push(c);
        spans.push(s);
        loop {
            match self.peek() {
                TokenKind::Amp => {
                    self.advance();
                    let (c, s) = self.spanned_constraint()?;
                    constraints.push(c);
                    spans.push(s);
                }
                TokenKind::Ident(w) if w == "and" => {
                    self.advance();
                    let (c, s) = self.spanned_constraint()?;
                    constraints.push(c);
                    spans.push(s);
                }
                _ => break,
            }
        }
        Ok((Query { constraints }, spans))
    }

    /// Parses one constraint and records the byte range it covers: from the
    /// first token's offset to the end of the last token consumed.
    fn spanned_constraint(&mut self) -> Result<(Constraint, Span)> {
        let start = self.tokens[self.pos].offset;
        let c = self.constraint()?;
        // `constraint()` always consumes at least one token, and `advance`
        // never steps past the trailing Eof, so `pos - 1` is the last
        // consumed token.
        let last = &self.tokens[self.pos - 1];
        Ok((c, Span { start, end: last.offset + last.len }))
    }

    fn constraint(&mut self) -> Result<Constraint> {
        match self.peek().clone() {
            TokenKind::Ident(word) => match word.as_str() {
                "freq" => self.freq_constraint(),
                "min" | "max" | "sum" | "avg" => {
                    let lhs = self.agg_expr()?;
                    let op = self.cmp_op()?;
                    let rhs = self.agg_rhs()?;
                    Ok(Constraint::AggCmp { lhs, op, rhs })
                }
                "count" => self.count_constraint(),
                "S" | "T" => self.set_or_member_from_varattr(),
                other => self.err(&format!("unexpected identifier `{other}`")),
            },
            TokenKind::Num(n) => {
                // `number cmp agg(...)` or `number in X.A`.
                self.advance();
                if matches!(self.peek(), TokenKind::Ident(w) if w == "in") {
                    self.advance();
                    let operand = self.varattr()?;
                    return Ok(Constraint::Member { value: Literal::Num(n), operand });
                }
                let op = self.cmp_op()?;
                let rhs = self.agg_rhs()?;
                if matches!(rhs, AggExpr::Const(_)) {
                    return self.err("constant-only comparison is not a constraint");
                }
                Ok(Constraint::AggCmp { lhs: AggExpr::Const(n), op, rhs })
            }
            TokenKind::LBrace => {
                let lhs = SetExpr::Lit(self.set_literal()?);
                let rel = self.set_rel()?;
                let rhs = self.set_expr()?;
                Ok(Constraint::SetCmp { lhs, rel, rhs })
            }
            _ => self.err("expected a constraint"),
        }
    }

    fn freq_constraint(&mut self) -> Result<Constraint> {
        self.advance(); // freq
        self.expect(&TokenKind::LParen, "`(`")?;
        let var = self.var()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(Constraint::Freq(var))
    }

    fn count_constraint(&mut self) -> Result<Constraint> {
        self.advance(); // count
        self.expect(&TokenKind::LParen, "`(`")?;
        let operand = self.varattr()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        let op = self.cmp_op()?;
        match self.peek().clone() {
            TokenKind::Num(n) => {
                self.advance();
                Ok(Constraint::CountCmp { operand, op, value: n })
            }
            TokenKind::Ident(w) if w == "count" => {
                self.advance();
                self.expect(&TokenKind::LParen, "`(`")?;
                let rhs = self.varattr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(Constraint::CountCmp2 { lhs: operand, op, rhs })
            }
            _ => self.err("expected a number or count(...) after the comparison"),
        }
    }

    /// A constraint starting with `S`/`T`: either a set constraint or a
    /// membership with a symbolic literal is impossible here, so this is a
    /// set constraint with a varattr left side.
    fn set_or_member_from_varattr(&mut self) -> Result<Constraint> {
        let lhs = SetExpr::Var(self.varattr()?);
        let rel = self.set_rel()?;
        let rhs = self.set_expr()?;
        Ok(Constraint::SetCmp { lhs, rel, rhs })
    }

    fn agg_expr(&mut self) -> Result<AggExpr> {
        let agg = match self.advance() {
            TokenKind::Ident(w) => match w.as_str() {
                "min" => Agg::Min,
                "max" => Agg::Max,
                "sum" => Agg::Sum,
                "avg" => Agg::Avg,
                _ => return self.err("expected an aggregate function"),
            },
            _ => return self.err("expected an aggregate function"),
        };
        self.expect(&TokenKind::LParen, "`(`")?;
        let operand = self.varattr()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(AggExpr::Agg { agg, operand })
    }

    fn agg_rhs(&mut self) -> Result<AggExpr> {
        match self.peek() {
            TokenKind::Num(n) => {
                let n = *n;
                self.advance();
                Ok(AggExpr::Const(n))
            }
            TokenKind::Ident(w) if matches!(w.as_str(), "min" | "max" | "sum" | "avg") => {
                self.agg_expr()
            }
            _ => self.err("expected a number or aggregate expression"),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek() {
            TokenKind::Le => CmpOp::Le,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            _ => return self.err("expected a comparison operator"),
        };
        self.advance();
        Ok(op)
    }

    fn set_rel(&mut self) -> Result<SetRel> {
        let rel = match self.peek() {
            TokenKind::Eq => SetRel::Eq,
            TokenKind::Ne => SetRel::Ne,
            TokenKind::Ident(w) => match w.as_str() {
                "subset" | "subseteq" => SetRel::Subset,
                "notsubset" => SetRel::NotSubset,
                "superset" | "superseteq" => SetRel::Superset,
                "notsuperset" => SetRel::NotSuperset,
                "disjoint" => SetRel::Disjoint,
                "intersects" | "overlaps" => SetRel::Intersects,
                _ => return self.err("expected a set relation"),
            },
            _ => return self.err("expected a set relation"),
        };
        self.advance();
        Ok(rel)
    }

    fn set_expr(&mut self) -> Result<SetExpr> {
        match self.peek() {
            TokenKind::LBrace => Ok(SetExpr::Lit(self.set_literal()?)),
            TokenKind::Ident(w) if matches!(w.as_str(), "S" | "T") => {
                Ok(SetExpr::Var(self.varattr()?))
            }
            _ => self.err("expected `{...}` or a variable"),
        }
    }

    fn set_literal(&mut self) -> Result<Vec<Literal>> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut items = Vec::new();
        if self.peek() == &TokenKind::RBrace {
            self.advance();
            return Ok(items);
        }
        loop {
            match self.advance() {
                TokenKind::Num(n) => items.push(Literal::Num(n)),
                TokenKind::Ident(s) => items.push(Literal::Sym(s)),
                _ => return self.err("expected a literal in set"),
            }
            match self.advance() {
                TokenKind::Comma => continue,
                TokenKind::RBrace => break,
                _ => return self.err("expected `,` or `}` in set literal"),
            }
        }
        Ok(items)
    }

    fn var(&mut self) -> Result<Var> {
        match self.advance() {
            TokenKind::Ident(w) if w == "S" => Ok(Var::S),
            TokenKind::Ident(w) if w == "T" => Ok(Var::T),
            _ => self.err("expected variable `S` or `T`"),
        }
    }

    fn varattr(&mut self) -> Result<VarAttr> {
        // Peek before consuming so errors point at the right token.
        if !matches!(self.peek(), TokenKind::Ident(w) if w == "S" || w == "T") {
            return self.err("expected variable `S` or `T`");
        }
        let var = self.var()?;
        if self.peek() == &TokenKind::Dot {
            if let TokenKind::Ident(_) = self.peek2() {
                self.advance(); // dot
                let attr = match self.advance() {
                    TokenKind::Ident(a) => a,
                    _ => unreachable!("peeked"),
                };
                return Ok(VarAttr { var, attr: Some(attr) });
            }
        }
        Ok(VarAttr { var, attr: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Query {
        parse_query(s).unwrap_or_else(|e| panic!("parse of `{s}` failed: {e}"))
    }

    #[test]
    fn paper_intro_query() {
        let q = parse(
            "freq(S) & freq(T) & sum(S.Price) <= 100 & avg(T.Price) >= 200",
        );
        assert_eq!(q.constraints.len(), 4);
        assert_eq!(q.to_string(), "freq(S) & freq(T) & sum(S.Price) <= 100 & avg(T.Price) >= 200");
    }

    #[test]
    fn two_var_aggregate() {
        let q = parse("sum(S.Price) <= avg(T.Price)");
        assert_eq!(q.to_string(), "sum(S.Price) <= avg(T.Price)");
    }

    #[test]
    fn section2_queries() {
        let q = parse("count(S.Type) = 1 & count(T.Type) = 1 & S.Type != T.Type");
        assert_eq!(q.constraints.len(), 3);
        let q = parse("S.Type disjoint T.Type");
        assert_eq!(
            q.constraints[0],
            Constraint::SetCmp {
                lhs: SetExpr::Var(VarAttr { var: Var::S, attr: Some("Type".into()) }),
                rel: SetRel::Disjoint,
                rhs: SetExpr::Var(VarAttr { var: Var::T, attr: Some("Type".into()) }),
            }
        );
        let q = parse(
            "S.Type = {Snacks} & T.Type = {Beers} & max(S.Price) <= min(T.Price)",
        );
        assert_eq!(q.constraints.len(), 3);
    }

    #[test]
    fn membership_and_reversed_const() {
        let q = parse("500 in S.Price");
        assert_eq!(
            q.constraints[0],
            Constraint::Member {
                value: Literal::Num(500.0),
                operand: VarAttr { var: Var::S, attr: Some("Price".into()) },
            }
        );
        let q = parse("100 <= min(T.Price)");
        match &q.constraints[0] {
            Constraint::AggCmp { lhs: AggExpr::Const(c), op: CmpOp::Le, .. } => {
                assert_eq!(*c, 100.0)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_variables_and_literal_lhs() {
        let q = parse("S disjoint T");
        assert_eq!(q.to_string(), "S disjoint T");
        let q = parse("{Snacks, Beers} superset S.Type");
        assert_eq!(q.to_string(), "{Snacks, Beers} superset S.Type");
        let q = parse("S.Type subseteq {a, b}");
        assert_eq!(q.to_string(), "S.Type subset {a, b}");
    }

    #[test]
    fn and_keyword_and_double_amp() {
        let q = parse("freq(S) and freq(T) && S disjoint T");
        assert_eq!(q.constraints.len(), 3);
    }

    #[test]
    fn empty_set_literal() {
        let q = parse("S.Type = {}");
        assert_eq!(q.to_string(), "S.Type = {}");
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "sum(S.Price)",
            "sum(S.Price) <=",
            "freq(X)",
            "count(S) in 3",
            "count(S) <= sum(T.Price)",
            "S.Type maybe T.Type",
            "100 <= 200",
            "sum(S.Price) <= 100 extra",
            "{1,2} = {3",
            "min()",
        ] {
            assert!(parse_query(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn spanned_parse_covers_each_constraint() {
        let src = "freq(S) and sum(S.Price) <= 100 & S.Type = {Snacks}";
        let (q, spans) = parse_query_spanned(src).unwrap();
        assert_eq!(q.constraints.len(), 3);
        assert_eq!(spans[0].slice(src), Some("freq(S)"));
        assert_eq!(spans[1].slice(src), Some("sum(S.Price) <= 100"));
        assert_eq!(spans[2].slice(src), Some("S.Type = {Snacks}"));
    }

    #[test]
    fn spanned_dnf_covers_each_disjunct() {
        let src = "max(S.Price) <= 10 & freq(T) | S.Type disjoint T.Type";
        let (d, spans) = parse_dnf_spanned(src).unwrap();
        assert_eq!(d.disjuncts.len(), 2);
        assert_eq!(spans[0].len(), 2);
        assert_eq!(spans[0][0].slice(src), Some("max(S.Price) <= 10"));
        assert_eq!(spans[1][0].slice(src), Some("S.Type disjoint T.Type"));
    }

    #[test]
    fn display_parse_roundtrip() {
        for src in [
            "freq(S) & sum(S.Price) <= 100",
            "max(S.Price) <= min(T.Price)",
            "S.Type = {Snacks} & T.Type = {Beers}",
            "S disjoint T & count(S.Type) = 1",
            "5 in T.Price & S.Type intersects T.Type",
            "avg(S.Price) >= avg(T.Price)",
            "count(S.Type) <= count(T.Type)",
            "count(S) = count(T)",
        ] {
            let q1 = parse(src);
            let q2 = parse(&q1.to_string());
            assert_eq!(q1, q2, "round-trip failed for `{src}`");
        }
    }
}

#![deny(missing_docs)]

//! # cfq-constraints
//!
//! The CFQ constraint language of the paper, end to end:
//!
//! * [`lang`] — variables, aggregates, comparison operators, set relations.
//! * [`ast`] / [`lexer`] / [`parser`] — query text → AST
//!   (`"sum(S.Price) <= 100 & S.Type = {Snacks}"`).
//! * [`bound`] — AST resolved against a [`cfq_types::Catalog`]: attribute
//!   ids, value-key literals, S-side-first orientation, 1-var / 2-var split.
//! * [`eval`] — constraint evaluation on concrete itemsets.
//! * [`classify`] — anti-monotonicity and succinctness for 1-var
//!   constraints (\[15\]'s taxonomy) and the paper's Figure 1 for 2-var
//!   constraints (anti-monotone / quasi-succinct characterization).
//! * [`succinct`] — compilation of 1-var constraints into executable
//!   member-generating form: allowed-item filters, required groups,
//!   residual anti-monotone checks, post filters.
//! * [`reduce`] — quasi-succinct reduction (Figures 2–3): a 2-var
//!   constraint becomes two 1-var pruning conditions whose constants are
//!   computed from `L1^S` / `L1^T`.
//! * [`induce`] — weaker-constraint induction for sum/avg (Figure 4).

pub mod ast;
pub mod bound;
pub mod classify;
pub mod eval;
pub mod induce;
pub mod lang;
pub mod lexer;
pub mod parser;
pub mod reduce;
pub mod succinct;

pub use ast::{Dnf, Query};
pub use bound::{bind_constraint, bind_dnf, bind_query, Bound, BoundQuery, OneVar, TwoVar};
pub use classify::{classify_one, classify_two, OneVarClass, TwoVarClass};
pub use eval::{eval_all_one, eval_all_two, eval_one, eval_two};
pub use induce::induce_weaker;
pub use lang::{Agg, CmpOp, SetRel, Var};
pub use lexer::Span;
pub use parser::{parse_dnf, parse_dnf_spanned, parse_query, parse_query_spanned};
pub use reduce::{reduce_quasi_succinct, Reduction};
pub use succinct::SuccinctForm;

//! Slow-query log: a bounded, thread-safe ring of the most recent
//! queries whose end-to-end latency crossed a threshold.
//!
//! The serve layer records every query through [`SlowLog::maybe_record`];
//! entries above the threshold are kept (newest first, bounded capacity)
//! and rendered for the `:slowlog` protocol command. Each record carries
//! what the paper's Figs. 7–8 analysis needs to explain *where the time
//! went*: the query text, the plan fingerprint, per-side cache
//! provenance, and level-by-level candidate/frequent counts with
//! per-level timings.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One mined level's work inside a slow query (both sides concatenated,
/// in mining order).
#[derive(Clone, Debug)]
pub struct SlowLevel {
    /// Itemset cardinality, 1-based.
    pub level: usize,
    /// Candidates counted at this level.
    pub candidates: u64,
    /// Candidates found frequent.
    pub frequent: u64,
    /// Wall-clock microseconds spent counting this level (0 when the
    /// lattice was served from cache and no counting happened).
    pub micros: u64,
}

/// One slow query.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The query text as received.
    pub query: String,
    /// The plan-cache fingerprint of the bound query + strategy.
    pub fingerprint: u64,
    /// Rendered cache provenance, e.g. `[S] freshly mined (cold) [T] cache hit`.
    pub provenance: String,
    /// End-to-end latency.
    pub total: Duration,
    /// Database scans the query performed.
    pub db_scans: u64,
    /// Level-by-level work, S levels then T levels.
    pub levels: Vec<SlowLevel>,
}

/// The bounded slow-query ring. `threshold` of zero records everything —
/// useful for tests and for turning the log into a full query log.
pub struct SlowLog {
    threshold: Duration,
    cap: usize,
    ring: Mutex<VecDeque<SlowQuery>>,
    /// Total queries that crossed the threshold since process start
    /// (monotonic, survives ring eviction).
    recorded: AtomicU64,
}

impl SlowLog {
    /// A log keeping the most recent `cap` queries slower than
    /// `threshold`.
    pub fn new(threshold: Duration, cap: usize) -> Self {
        SlowLog { threshold, cap: cap.max(1), ring: Mutex::new(VecDeque::new()), recorded: AtomicU64::new(0) }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Records `q` if it crossed the threshold; returns whether it did.
    pub fn maybe_record(&self, q: SlowQuery) -> bool {
        if q.total < self.threshold {
            return false;
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(q);
        true
    }

    /// Total recorded since start (not capped by the ring size).
    pub fn total_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
    }

    /// Renders the retained entries for the `:slowlog` command, newest
    /// first.
    pub fn render(&self) -> String {
        let entries = self.entries();
        if entries.is_empty() {
            return format!(
                "slow-query log empty (threshold {} ms, {} recorded since start)",
                self.threshold.as_millis(),
                self.total_recorded()
            );
        }
        let mut out = format!(
            "slow-query log: {} retained of {} recorded (threshold {} ms), newest first",
            entries.len(),
            self.total_recorded(),
            self.threshold.as_millis()
        );
        for q in entries.iter().rev() {
            out.push_str(&format!(
                "\n  {:>8.3}s  plan={:016x}  scans={}  {}  | {}",
                q.total.as_secs_f64(),
                q.fingerprint,
                q.db_scans,
                q.provenance,
                q.query,
            ));
            for l in &q.levels {
                out.push_str(&format!(
                    "\n            L{}: {} candidates, {} frequent, {:.3} ms",
                    l.level,
                    l.candidates,
                    l.frequent,
                    l.micros as f64 / 1000.0,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str, ms: u64) -> SlowQuery {
        SlowQuery {
            query: text.to_string(),
            fingerprint: 0xabcd,
            provenance: "[S] cold [T] cached".into(),
            total: Duration::from_millis(ms),
            db_scans: 3,
            levels: vec![SlowLevel { level: 1, candidates: 10, frequent: 4, micros: 1500 }],
        }
    }

    #[test]
    fn threshold_filters_and_ring_caps() {
        let log = SlowLog::new(Duration::from_millis(100), 2);
        assert!(!log.maybe_record(q("fast", 10)));
        assert!(log.maybe_record(q("a", 150)));
        assert!(log.maybe_record(q("b", 200)));
        assert!(log.maybe_record(q("c", 300)));
        let entries = log.entries();
        assert_eq!(entries.len(), 2, "ring capped");
        assert_eq!(entries[0].query, "b", "oldest surviving");
        assert_eq!(log.total_recorded(), 3, "monotonic count survives eviction");
    }

    #[test]
    fn render_contains_the_anatomy() {
        let log = SlowLog::new(Duration::ZERO, 8);
        log.maybe_record(q("max(S.Price) <= min(T.Price)", 750));
        let text = log.render();
        assert!(text.contains("max(S.Price) <= min(T.Price)"), "{text}");
        assert!(text.contains("plan=000000000000abcd"), "{text}");
        assert!(text.contains("[S] cold [T] cached"), "{text}");
        assert!(text.contains("L1: 10 candidates, 4 frequent, 1.500 ms"), "{text}");
        assert!(text.contains("scans=3"), "{text}");
    }

    #[test]
    fn empty_render_reports_threshold() {
        let log = SlowLog::new(Duration::from_millis(500), 8);
        let text = log.render();
        assert!(text.contains("threshold 500 ms"), "{text}");
    }
}

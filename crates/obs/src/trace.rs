//! Structured, levelled tracing spans without external dependencies.
//!
//! The design follows the shape of the `tracing` crate at a fraction of
//! its surface (the same spirit as the vendored rand/proptest stubs): a
//! process-global [`Subscriber`] receives closed [`SpanRecord`]s and
//! [`Event`]s; call sites open a [`SpanGuard`] with [`span`], attach
//! typed fields, and the guard reports its wall-clock duration when it
//! drops. When no subscriber is installed (the default) the whole layer
//! collapses to one relaxed atomic load per call site — the mining hot
//! loops pay nothing in production.
//!
//! Span hierarchy is tracked per thread: a span opened while another is
//! live records that span as its parent, so a subscriber can reconstruct
//! the `serve.request → session.query → engine.lattice → apriori.level`
//! tree the serve layer produces.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Severity/verbosity of a span or event, ordered from quietest to
/// chattiest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-threatening conditions.
    Error = 1,
    /// Degraded but self-healing conditions (accept errors, evictions).
    Warn = 2,
    /// Request-rate milestones (connections, queries, appends).
    Info = 3,
    /// Per-phase work (plan build, cache lookup, FUP upgrade).
    Debug = 4,
    /// Per-level mining internals (candidate generation, counting).
    Trace = 5,
}

impl Level {
    /// Parses a level name, case-insensitively; also accepts `off`.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }

    /// Fixed-width label used by the formatting subscriber.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN ",
            Level::Info => "INFO ",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// A typed field value attached to a span or event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned counter-like values.
    U64(u64),
    /// Signed values.
    I64(i64),
    /// Durations, ratios, fractions.
    F64(f64),
    /// Identifiers and free text.
    Str(String),
    /// Flags.
    Bool(bool),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A closed span: name, level, fields, duration, and tree position.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the span that was live on this thread when this one opened,
    /// or 0 for a root span.
    pub parent: u64,
    /// Nesting depth on the opening thread (0 for a root span).
    pub depth: usize,
    /// Static span name, e.g. `engine.lattice`.
    pub name: &'static str,
    /// The span's level.
    pub level: Level,
    /// Fields attached at open time or during the span's life.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Wall-clock time between open and close.
    pub elapsed: Duration,
}

/// A point-in-time event (no duration), e.g. a cache eviction.
#[derive(Clone, Debug)]
pub struct Event {
    /// Id of the enclosing span on this thread, or 0.
    pub parent: u64,
    /// Static event name, e.g. `cache.evict`.
    pub name: &'static str,
    /// The event's level.
    pub level: Level,
    /// Fields attached to the event.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Receiver of closed spans and events. Implementations must be cheap
/// and non-blocking — they run inline at the call site.
pub trait Subscriber: Send + Sync {
    /// Called when a span guard drops.
    fn on_span(&self, span: &SpanRecord);
    /// Called for point events.
    fn on_event(&self, event: &Event);
}

/// `MAX_LEVEL` is the fast-path filter: 0 = tracing disabled.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

fn subscriber_slot() -> &'static RwLock<Option<std::sync::Arc<dyn Subscriber>>> {
    static SLOT: OnceLock<RwLock<Option<std::sync::Arc<dyn Subscriber>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs (or, with `None`, removes) the process-global subscriber.
/// `max_level` bounds what call sites even construct; anything chattier
/// is dropped before allocating.
pub fn set_subscriber(sub: Option<std::sync::Arc<dyn Subscriber>>, max_level: Option<Level>) {
    let mut slot = subscriber_slot().write().unwrap_or_else(|e| e.into_inner());
    match (sub, max_level) {
        (Some(s), Some(l)) => {
            *slot = Some(s);
            MAX_LEVEL.store(l as u8, Ordering::SeqCst);
        }
        _ => {
            *slot = None;
            MAX_LEVEL.store(0, Ordering::SeqCst);
        }
    }
}

/// Whether anything at `level` would currently be recorded.
#[inline]
pub fn enabled(level: Level) -> bool {
    MAX_LEVEL.load(Ordering::Relaxed) >= level as u8
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Stack of live span ids on this thread (for parent/depth tracking).
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn current_parent() -> (u64, usize) {
    SPAN_STACK.with(|s| {
        let s = s.borrow();
        (s.last().copied().unwrap_or(0), s.len())
    })
}

/// An open span; fields are attached with the builder-style methods and
/// the record is emitted when the guard drops. Obtained from [`span`].
pub struct SpanGuard {
    /// `None` when tracing was disabled at open time — every method is a
    /// no-op then.
    inner: Option<SpanInner>,
}

struct SpanInner {
    record: SpanRecord,
    started: Instant,
}

/// Opens a span at `level` named `name`. Returns a disabled guard (zero
/// further cost) when no subscriber accepts `level`.
#[inline]
pub fn span(level: Level, name: &'static str) -> SpanGuard {
    if !enabled(level) {
        return SpanGuard { inner: None };
    }
    let id = next_span_id();
    let (parent, depth) = current_parent();
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        inner: Some(SpanInner {
            record: SpanRecord {
                id,
                parent,
                depth,
                name,
                level,
                fields: Vec::new(),
                elapsed: Duration::ZERO,
            },
            started: Instant::now(),
        }),
    }
}

impl SpanGuard {
    /// Attaches an unsigned field.
    pub fn u64(mut self, key: &'static str, value: u64) -> Self {
        self.record_u64(key, value);
        self
    }

    /// Attaches a float field.
    pub fn f64(mut self, key: &'static str, value: f64) -> Self {
        if let Some(i) = self.inner.as_mut() {
            i.record.fields.push((key, FieldValue::F64(value)));
        }
        self
    }

    /// Attaches a string field.
    pub fn str(mut self, key: &'static str, value: impl Into<String>) -> Self {
        if let Some(i) = self.inner.as_mut() {
            i.record.fields.push((key, FieldValue::Str(value.into())));
        }
        self
    }

    /// Attaches a boolean field.
    pub fn bool(mut self, key: &'static str, value: bool) -> Self {
        if let Some(i) = self.inner.as_mut() {
            i.record.fields.push((key, FieldValue::Bool(value)));
        }
        self
    }

    /// Records an unsigned field after the span is open (e.g. a result
    /// count known only at the end).
    pub fn record_u64(&mut self, key: &'static str, value: u64) {
        if let Some(i) = self.inner.as_mut() {
            i.record.fields.push((key, FieldValue::U64(value)));
        }
    }

    /// Records a string field after the span is open.
    pub fn record_str(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(i) = self.inner.as_mut() {
            i.record.fields.push((key, FieldValue::Str(value.into())));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut inner) = self.inner.take() else { return };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&id| id == inner.record.id) {
                s.remove(pos);
            }
        });
        inner.record.elapsed = inner.started.elapsed();
        let slot = subscriber_slot().read().unwrap_or_else(|e| e.into_inner());
        if let Some(sub) = slot.as_ref() {
            sub.on_span(&inner.record);
        }
    }
}

/// Emits a point event at `level` with the given fields. Cheap no-op when
/// nothing subscribes at `level`.
pub fn event(level: Level, name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !enabled(level) {
        return;
    }
    let (parent, _) = current_parent();
    let ev = Event { parent, name, level, fields: fields.to_vec() };
    let slot = subscriber_slot().read().unwrap_or_else(|e| e.into_inner());
    if let Some(sub) = slot.as_ref() {
        sub.on_event(&ev);
    }
}

/// A line-oriented subscriber writing human-readable records to any
/// `Write` sink (stderr by default), indented by span depth:
///
/// ```text
/// DEBUG   engine.lattice universe=412 min_support=87 source=mined_cold 41.2ms
/// TRACE     apriori.level level=2 candidates=1203 frequent=455 12.8ms
/// ```
pub struct FmtSubscriber {
    sink: Mutex<Box<dyn std::io::Write + Send>>,
    /// Records chattier than this are dropped even if the global max
    /// level let them through.
    max_level: Level,
    /// Lines written (for tests and self-observation).
    pub lines: AtomicUsize,
}

impl FmtSubscriber {
    /// Writes to stderr at `max_level`.
    pub fn stderr(max_level: Level) -> Self {
        FmtSubscriber::new(Box::new(std::io::stderr()), max_level)
    }

    /// Writes to an arbitrary sink at `max_level`.
    pub fn new(sink: Box<dyn std::io::Write + Send>, max_level: Level) -> Self {
        FmtSubscriber { sink: Mutex::new(sink), max_level, lines: AtomicUsize::new(0) }
    }

    fn write_line(&self, level: Level, depth: usize, name: &str, fields: &[(&'static str, FieldValue)], elapsed: Option<Duration>) {
        if level > self.max_level {
            return;
        }
        let mut line = String::with_capacity(96);
        line.push_str(level.label());
        line.push(' ');
        for _ in 0..depth {
            line.push_str("  ");
        }
        line.push_str(name);
        for (k, v) in fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&v.to_string());
        }
        if let Some(d) = elapsed {
            let us = d.as_micros();
            if us >= 1000 {
                line.push_str(&format!(" {:.1}ms", us as f64 / 1000.0));
            } else {
                line.push_str(&format!(" {us}us"));
            }
        }
        line.push('\n');
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.flush();
        self.lines.fetch_add(1, Ordering::Relaxed);
    }
}

impl Subscriber for FmtSubscriber {
    fn on_span(&self, span: &SpanRecord) {
        self.write_line(span.level, span.depth, span.name, &span.fields, Some(span.elapsed));
    }

    fn on_event(&self, event: &Event) {
        self.write_line(event.level, 0, event.name, &event.fields, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Captures records for assertions.
    #[derive(Default)]
    struct Capture {
        spans: Mutex<Vec<SpanRecord>>,
        events: Mutex<Vec<Event>>,
    }

    impl Subscriber for Capture {
        fn on_span(&self, span: &SpanRecord) {
            self.spans.lock().unwrap().push(span.clone());
        }
        fn on_event(&self, event: &Event) {
            self.events.lock().unwrap().push(event.clone());
        }
    }

    /// Serializes tests that install the global subscriber.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_by_default_and_guards_are_noops() {
        let _g = guard();
        set_subscriber(None, None);
        assert!(!enabled(Level::Error));
        let mut s = span(Level::Info, "nothing");
        s.record_u64("x", 1); // must not panic
        drop(s);
        event(Level::Error, "nothing", &[("k", FieldValue::Bool(true))]);
    }

    #[test]
    fn spans_nest_and_carry_fields() {
        let _g = guard();
        let cap = Arc::new(Capture::default());
        set_subscriber(Some(cap.clone()), Some(Level::Trace));
        {
            let _outer = span(Level::Info, "outer").u64("a", 1);
            let _inner = span(Level::Trace, "inner").str("b", "x").bool("c", true);
        }
        set_subscriber(None, None);
        let spans = cap.spans.lock().unwrap();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[0].parent, spans[1].id);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].parent, 0);
        assert_eq!(spans[1].fields, vec![("a", FieldValue::U64(1))]);
        assert_eq!(
            spans[0].fields,
            vec![("b", FieldValue::Str("x".into())), ("c", FieldValue::Bool(true))]
        );
    }

    #[test]
    fn level_filter_drops_chattier_records() {
        let _g = guard();
        let cap = Arc::new(Capture::default());
        set_subscriber(Some(cap.clone()), Some(Level::Info));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        drop(span(Level::Debug, "dropped"));
        drop(span(Level::Info, "kept"));
        event(Level::Trace, "dropped_event", &[]);
        event(Level::Warn, "kept_event", &[]);
        set_subscriber(None, None);
        assert_eq!(cap.spans.lock().unwrap().len(), 1);
        assert_eq!(cap.events.lock().unwrap().len(), 1);
        assert_eq!(cap.events.lock().unwrap()[0].name, "kept_event");
    }

    #[test]
    fn fmt_subscriber_renders_lines() {
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sub = FmtSubscriber::new(Box::new(SharedBuf(buf.clone())), Level::Debug);
        sub.on_span(&SpanRecord {
            id: 1,
            parent: 0,
            depth: 1,
            name: "engine.lattice",
            level: Level::Debug,
            fields: vec![("universe", FieldValue::U64(42))],
            elapsed: Duration::from_micros(1500),
        });
        sub.on_event(&Event {
            parent: 0,
            name: "cache.evict",
            level: Level::Trace, // above max level: dropped
            fields: vec![],
        });
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.contains("DEBUG   engine.lattice universe=42 1.5ms"), "{text}");
        assert!(!text.contains("cache.evict"), "{text}");
        assert_eq!(sub.lines.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn level_parse() {
        assert_eq!(Level::parse("info"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("TRACE"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("nope"), None);
    }
}

#![warn(missing_docs)]

//! # cfq-obs
//!
//! The observability layer shared by the mining substrate, the session
//! engine and the `cfq serve` front end — dependency-free, in the same
//! vendored-stub spirit as the offline rand/proptest shims:
//!
//! * [`trace`] — structured, levelled spans and events behind a
//!   process-global [`trace::Subscriber`]. Disabled (one relaxed atomic
//!   load) by default; `cfq serve --trace debug` installs the line-
//!   oriented [`trace::FmtSubscriber`] on stderr. The span hierarchy is
//!   `serve.conn → serve.request → session.query → engine.plan /
//!   engine.lattice → apriori / apriori.level`, with `engine.fup_append`
//!   covering maintenance; spans carry the counters the executors
//!   already compute (db scans, per-level candidates, scans saved,
//!   provenance).
//! * [`metrics`] — a [`metrics::Registry`] of atomic counters, gauges
//!   and histograms rendered in the Prometheus text exposition format
//!   (plus derived `_p50/_p95/_p99` gauges per histogram). The serve
//!   layer exports it through the `:metrics` protocol command and the
//!   `--metrics-addr` HTTP scrape listener.
//! * [`slowlog`] — a bounded ring of queries slower than `--slow-ms`,
//!   each carrying query text, plan fingerprint, cache provenance and
//!   level-by-level timings (the `:slowlog` command).

pub mod metrics;
pub mod slowlog;
pub mod trace;

pub use metrics::{latency_buckets, wait_buckets, Counter, Gauge, Histogram, Registry};
pub use slowlog::{SlowLevel, SlowLog, SlowQuery};
pub use trace::{
    enabled, event, set_subscriber, span, Event, FieldValue, FmtSubscriber, Level, SpanGuard,
    SpanRecord, Subscriber,
};

//! Atomic metrics with Prometheus text-format export.
//!
//! A [`Registry`] owns named metric families — [`Counter`]s, [`Gauge`]s
//! and [`Histogram`]s, optionally carrying label sets — and renders them
//! in the Prometheus exposition format (`# HELP` / `# TYPE` headers, one
//! sample per line). Handles are `Arc`s over atomics: recording is a
//! single `fetch_add` (histograms add one CAS for the sum), so handles
//! are safe to hit from every connection thread of a server.
//!
//! Histograms additionally render derived `<name>_p50/_p95/_p99` gauge
//! families (linear interpolation inside the owning bucket) so latency
//! percentiles are directly greppable by scrapes and CI.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value. Intended for counters mirrored from another
    /// monotonic source (e.g. the engine's cache counters synced at
    /// scrape time) — not for regular recording.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `f64` observations (cumulative bucket
/// counts at render time, Prometheus-style `le` upper bounds).
#[derive(Debug)]
pub struct Histogram {
    /// Ascending finite upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; last is `+Inf`.
    counts: Vec<AtomicU64>,
    /// Sum of observations, stored as `f64` bits.
    sum_bits: AtomicU64,
}

/// Default latency buckets in seconds: 100us .. ~52s, doubling.
pub fn latency_buckets() -> Vec<f64> {
    (0..20).map(|i| 1e-4 * (1u64 << i) as f64).collect()
}

/// Buckets for short waits (admission queues, batch windows) in seconds:
/// 10us .. ~5s, doubling. Finer at the bottom than [`latency_buckets`]
/// because a healthy scheduler wait is sub-millisecond.
pub fn wait_buckets() -> Vec<f64> {
    (0..20).map(|i| 1e-5 * (1u64 << i) as f64).collect()
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one finite bucket bound");
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds, counts, sum_bits: AtomicU64::new(0f64.to_bits()) }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let i = self.bounds.iter().position(|&ub| v <= ub).unwrap_or(self.bounds.len());
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (`0 < q <= 1`) by linear interpolation
    /// inside the owning bucket; `0.0` with no observations. Values in
    /// the `+Inf` bucket clamp to the largest finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds.get(i).copied().unwrap_or(*self.bounds.last().unwrap());
                let within = (rank - seen) as f64 / n as f64;
                return lo + (hi - lo) * within;
            }
            seen += n;
        }
        *self.bounds.last().unwrap()
    }
}

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Series {
    fn kind(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    help: String,
    /// Keyed by the rendered label set (`""` for an unlabelled series,
    /// `{k="v",...}` otherwise), so render output is deterministic.
    series: BTreeMap<String, Series>,
}

/// A collection of named metric families. Create one per process (or per
/// test) and share handles freely.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Escape per the exposition format.
        let v = v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
        out.push_str(&format!("{k}=\"{v}\""));
    }
    out.push('}');
    out
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        // Rust's default float Display is the shortest round-trip form,
        // which is exactly what the exposition format wants.
        format!("{v}")
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), series: BTreeMap::new() });
        let key = render_labels(labels);
        let s = family.series.entry(key).or_insert_with(make);
        match s {
            Series::Counter(c) => Series::Counter(Arc::clone(c)),
            Series::Gauge(g) => Series::Gauge(Arc::clone(g)),
            Series::Histogram(h) => Series::Histogram(Arc::clone(h)),
        }
    }

    /// Gets or creates the unlabelled counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Gets or creates the counter `name` with a label set.
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.series(name, help, labels, || Series::Counter(Arc::new(Counter::default()))) {
            Series::Counter(c) => c,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Gets or creates the unlabelled gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.series(name, help, &[], || Series::Gauge(Arc::new(Gauge::default()))) {
            Series::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Gets or creates the histogram `name` over `bounds` (ascending
    /// finite upper bounds; `+Inf` is implicit).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        match self.series(name, help, &[], || Series::Histogram(Arc::new(Histogram::new(bounds.to_vec())))) {
            Series::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Renders every family in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut derived = String::new();
        for (name, family) in families.iter() {
            let kind = family.series.values().next().map(|s| s.kind()).unwrap_or("untyped");
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", g.get()));
                    }
                    Series::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, ub) in h
                            .bounds
                            .iter()
                            .copied()
                            .chain(std::iter::once(f64::INFINITY))
                            .enumerate()
                        {
                            cumulative += h.counts[i].load(Ordering::Relaxed);
                            out.push_str(&format!(
                                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                                fmt_f64(ub)
                            ));
                        }
                        out.push_str(&format!("{name}_sum {}\n", fmt_f64(h.sum())));
                        out.push_str(&format!("{name}_count {}\n", h.count()));
                        for (suffix, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                            derived.push_str(&format!(
                                "# HELP {name}_{suffix} {q}-quantile of {name}.\n\
                                 # TYPE {name}_{suffix} gauge\n\
                                 {name}_{suffix} {}\n",
                                fmt_f64(h.quantile(q))
                            ));
                        }
                    }
                }
            }
        }
        out.push_str(&derived);
        out
    }
}

/// The process-wide default registry (what `cfq serve` exports when not
/// given a dedicated one; tests construct their own [`Registry`] to stay
/// isolated from parallel tests).
pub fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let r = Registry::new();
        let c = r.counter("cfq_queries_total", "Queries served.");
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Same name and labels → same handle.
        assert_eq!(r.counter("cfq_queries_total", "Queries served.").get(), 3);

        let g = r.gauge("cfq_connections_open", "Open connections.");
        g.add(2);
        g.add(-1);
        assert_eq!(g.get(), 1);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn labelled_counters_are_distinct_series() {
        let r = Registry::new();
        let full = r.counter_with("cfq_q", "by strategy", &[("strategy", "full")]);
        let cap1 = r.counter_with("cfq_q", "by strategy", &[("strategy", "cap1")]);
        full.inc();
        full.inc();
        cap1.inc();
        let text = r.render();
        assert!(text.contains("cfq_q{strategy=\"full\"} 2"), "{text}");
        assert!(text.contains("cfq_q{strategy=\"cap1\"} 1"), "{text}");
    }

    #[test]
    fn histogram_buckets_sum_and_quantiles() {
        let h = Histogram::new(vec![0.001, 0.01, 0.1, 1.0]);
        for _ in 0..90 {
            h.observe(0.0005); // first bucket
        }
        for _ in 0..9 {
            h.observe(0.05); // third bucket
        }
        h.observe(10.0); // +Inf bucket
        assert_eq!(h.count(), 100);
        assert!((h.sum() - (90.0 * 0.0005 + 9.0 * 0.05 + 10.0)).abs() < 1e-9);
        assert!(h.quantile(0.5) <= 0.001);
        let p95 = h.quantile(0.95);
        assert!(p95 > 0.01 && p95 <= 0.1, "{p95}");
        // +Inf observations clamp to the largest finite bound.
        assert_eq!(h.quantile(1.0), 1.0);
    }

    #[test]
    fn render_is_prometheus_text_format() {
        let r = Registry::new();
        r.counter("cfq_queries_total", "Queries served.").add(2);
        r.gauge("cfq_epoch", "Engine epoch.").set(1);
        let h = r.histogram("cfq_query_seconds", "Query latency.", &[0.01, 0.1]);
        h.observe(0.005);
        h.observe(0.05);
        let text = r.render();
        for needle in [
            "# HELP cfq_queries_total Queries served.",
            "# TYPE cfq_queries_total counter",
            "cfq_queries_total 2",
            "# TYPE cfq_epoch gauge",
            "cfq_epoch 1",
            "# TYPE cfq_query_seconds histogram",
            "cfq_query_seconds_bucket{le=\"0.01\"} 1",
            "cfq_query_seconds_bucket{le=\"0.1\"} 2",
            "cfq_query_seconds_bucket{le=\"+Inf\"} 2",
            "cfq_query_seconds_count 2",
            "# TYPE cfq_query_seconds_p50 gauge",
            "cfq_query_seconds_p95",
            "cfq_query_seconds_p99",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // Structural sanity: every non-comment line is `name[labels] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            assert!(value == "+Inf" || value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("c", "h", &[("q", "a\"b\nc")]).inc();
        let text = r.render();
        assert!(text.contains("c{q=\"a\\\"b\\nc\"} 1"), "{text}");
    }

    #[test]
    fn latency_buckets_are_ascending() {
        let b = latency_buckets();
        assert_eq!(b.len(), 20);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!((b[0] - 1e-4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("m", "h");
        r.gauge("m", "h");
    }
}

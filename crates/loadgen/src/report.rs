//! Per-scenario tail-latency reports, `BENCH_loadgen.json` rendering,
//! and the gate checks CI fails on.
//!
//! Percentiles here are **exact** over the recorded per-request
//! latencies (`p(q) = v[⌈q·n⌉ − 1]` of the sorted vector), not
//! bucket-interpolated like the server's histogram gauges — the report
//! is the ground truth a histogram regression would be compared
//! against.

use crate::driver::{Outcome, ScenarioOutcome};
use crate::scenario::scenario_by_name;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One scenario's aggregated measurements.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Requests sent.
    pub requests: u64,
    /// Replies classified [`Outcome::Ok`].
    pub ok: u64,
    /// Typed overload rejections.
    pub overloaded: u64,
    /// Typed request errors by kind.
    pub request_errors: BTreeMap<String, u64>,
    /// Ill-formed replies (the count that must be zero).
    pub protocol_errors: u64,
    /// Exact latency percentiles over all requests, microseconds.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst request.
    pub max_us: u64,
    /// Server-side `cfq_scheduler_coalesced_total` delta.
    pub coalesced: u64,
    /// Server-side `cfq_scheduler_batched_total` delta.
    pub batched: u64,
    /// Server-side `cfq_scheduler_overloaded_total` delta.
    pub server_overloaded: u64,
    /// Server-side `cfq_mining_passes_total` delta.
    pub mining_passes: u64,
    /// Server-side `cfq_lattice_hits_total` delta.
    pub lattice_hits: u64,
}

/// Exact `q`-percentile of an ascending-sorted latency vector:
/// `v[⌈q·n⌉ − 1]`, 0 for an empty vector.
pub fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (q * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1]
}

impl ScenarioReport {
    /// Aggregates one driver outcome.
    pub fn from_outcome(out: &ScenarioOutcome) -> ScenarioReport {
        let mut lat: Vec<u64> = out.records.iter().map(|r| r.latency_us).collect();
        lat.sort_unstable();
        let mut report = ScenarioReport {
            name: out.name.clone(),
            requests: out.records.len() as u64,
            ok: 0,
            overloaded: 0,
            request_errors: BTreeMap::new(),
            protocol_errors: 0,
            p50_us: percentile(&lat, 0.50),
            p95_us: percentile(&lat, 0.95),
            p99_us: percentile(&lat, 0.99),
            max_us: lat.last().copied().unwrap_or(0),
            coalesced: out.server.coalesced,
            batched: out.server.batched,
            server_overloaded: out.server.overloaded,
            mining_passes: out.server.mining_passes,
            lattice_hits: out.server.lattice_hits,
        };
        for r in &out.records {
            match &r.outcome {
                Outcome::Ok => report.ok += 1,
                Outcome::Overloaded => report.overloaded += 1,
                Outcome::RequestError(kind) => {
                    *report.request_errors.entry(kind.clone()).or_insert(0) += 1;
                }
                Outcome::ProtocolError(_) => report.protocol_errors += 1,
            }
        }
        report
    }

    /// Total typed request errors across kinds.
    pub fn request_error_total(&self) -> u64 {
        self.request_errors.values().sum()
    }
}

/// Renders `BENCH_loadgen.json` (one line, valid JSON).
pub fn render(seed: u64, reports: &[ScenarioReport]) -> String {
    let mut out = format!("{{\"bench\":\"loadgen\",\"seed\":{seed},\"scenarios\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"requests\":{},\"ok\":{},\"overloaded\":{},\
             \"protocol_errors\":{},\"errors\":{{",
            r.name, r.requests, r.ok, r.overloaded, r.protocol_errors
        );
        for (j, (kind, n)) in r.request_errors.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{kind}\":{n}");
        }
        let _ = write!(
            out,
            "}},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{},\
             \"coalesced\":{},\"batched\":{},\"server_overloaded\":{},\
             \"mining_passes\":{},\"lattice_hits\":{}}}",
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.max_us,
            r.coalesced,
            r.batched,
            r.server_overloaded,
            r.mining_passes,
            r.lattice_hits,
        );
    }
    out.push_str("]}");
    out
}

/// The CI gates, as human-readable violations (empty = pass):
///
/// * protocol errors must be zero in every scenario;
/// * every scenario must get at least one successful reply;
/// * overload rejections appear exactly in the scenarios built to
///   provoke them;
/// * typed request errors appear exactly in the scenarios that plan
///   them;
/// * scenarios targeting the batch window must move the server's
///   coalesced + batched counters.
pub fn check(reports: &[ScenarioReport]) -> Vec<String> {
    let mut violations = Vec::new();
    for r in reports {
        let Some(spec) = scenario_by_name(&r.name) else {
            violations.push(format!("{}: unknown scenario in report", r.name));
            continue;
        };
        if r.protocol_errors > 0 {
            violations.push(format!(
                "{}: {} protocol error(s) — the envelope leaked an ill-formed reply",
                r.name, r.protocol_errors
            ));
        }
        if r.ok == 0 {
            violations.push(format!("{}: no request succeeded", r.name));
        }
        match (spec.expects_overload, r.overloaded) {
            (false, n) if n > 0 => violations.push(format!(
                "{}: {n} unexpected overload rejection(s)",
                r.name
            )),
            (true, 0) => violations.push(format!(
                "{}: built to overload the admission gate but nothing was rejected",
                r.name
            )),
            _ => {}
        }
        let errors = r.request_error_total();
        match (spec.expects_request_errors, errors) {
            (false, n) if n > 0 => violations.push(format!(
                "{}: {n} unexpected request error(s): {:?}",
                r.name, r.request_errors
            )),
            (true, 0) => violations.push(format!(
                "{}: adversarial input produced no typed errors",
                r.name
            )),
            _ => {}
        }
        if spec.expects_sharing && r.coalesced + r.batched == 0 {
            violations.push(format!(
                "{}: no scheduler sharing (coalesced + batched == 0)",
                r.name
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{RequestRecord, ServerDeltas};
    use cfq_engine::json;

    fn outcome(name: &str, outcomes: Vec<Outcome>, server: ServerDeltas) -> ScenarioOutcome {
        ScenarioOutcome {
            name: name.into(),
            records: outcomes
                .into_iter()
                .enumerate()
                .map(|(i, outcome)| RequestRecord {
                    client: 0,
                    latency_us: 100 * (i as u64 + 1),
                    outcome,
                })
                .collect(),
            server,
        }
    }

    #[test]
    fn percentiles_are_exact() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[42], 0.99), 42);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn report_aggregates_and_renders_valid_json() {
        let out = outcome(
            "steady_mixed",
            vec![
                Outcome::Ok,
                Outcome::Ok,
                Outcome::Overloaded,
                Outcome::RequestError("parse".into()),
                Outcome::RequestError("parse".into()),
                Outcome::ProtocolError("x".into()),
            ],
            ServerDeltas { coalesced: 2, batched: 1, ..ServerDeltas::default() },
        );
        let r = ScenarioReport::from_outcome(&out);
        assert_eq!((r.requests, r.ok, r.overloaded, r.protocol_errors), (6, 2, 1, 1));
        assert_eq!(r.request_errors.get("parse"), Some(&2));
        assert_eq!(r.p50_us, 300);
        assert_eq!(r.max_us, 600);

        let text = render(7, &[r]);
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("seed").and_then(json::Json::as_u64), Some(7));
        let s = &v.get("scenarios").unwrap().as_arr().unwrap()[0];
        assert_eq!(s.get("p99_us").and_then(json::Json::as_u64), Some(600));
        assert_eq!(
            s.get("errors").and_then(|e| e.get("parse")).and_then(json::Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn gates_flag_each_violation_class() {
        // A clean steady scenario passes.
        let clean = ScenarioReport::from_outcome(&outcome(
            "steady_mixed",
            vec![Outcome::Ok; 3],
            ServerDeltas::default(),
        ));
        assert!(check(std::slice::from_ref(&clean)).is_empty());

        // Protocol errors and unexpected overloads/errors all flag.
        let dirty = ScenarioReport::from_outcome(&outcome(
            "steady_mixed",
            vec![
                Outcome::Ok,
                Outcome::Overloaded,
                Outcome::RequestError("parse".into()),
                Outcome::ProtocolError("prose".into()),
            ],
            ServerDeltas::default(),
        ));
        let v = check(&[dirty]);
        assert_eq!(v.len(), 3, "{v:?}");

        // An overload scenario with no rejections flags the inverse.
        let tame = ScenarioReport::from_outcome(&outcome(
            "overload_burst",
            vec![Outcome::Ok; 3],
            ServerDeltas::default(),
        ));
        assert_eq!(check(&[tame]).len(), 1);

        // Sharing scenarios need the server counters to move.
        let unshared = ScenarioReport::from_outcome(&outcome(
            "multi_support_batch",
            vec![Outcome::Ok; 3],
            ServerDeltas::default(),
        ));
        assert_eq!(check(std::slice::from_ref(&unshared)).len(), 1);
        let shared = ScenarioReport::from_outcome(&outcome(
            "multi_support_batch",
            vec![Outcome::Ok; 3],
            ServerDeltas { batched: 4, ..ServerDeltas::default() },
        ));
        assert!(check(&[shared]).is_empty());

        // Adversarial runs must produce typed errors.
        let polite = ScenarioReport::from_outcome(&outcome(
            "adversarial",
            vec![Outcome::Ok; 2],
            ServerDeltas::default(),
        ));
        assert_eq!(check(&[polite]).len(), 1);
    }
}

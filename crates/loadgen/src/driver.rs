//! TCP replay of a [`Workload`] against a live `cfq serve`.
//!
//! One thread per client, all released together by a barrier so the
//! burst structure a scenario encodes actually lands on the wire as
//! concurrency. Every reply line is classified into a typed
//! [`Outcome`]; the run is bracketed by `{"v":1,"cmd":"metrics"}`
//! scrapes so the scheduler's coalesced / batched / overloaded /
//! mining-pass counters can be attributed to the scenario as deltas.
//!
//! The driver itself is a metrics citizen: per-request counters and a
//! latency histogram are recorded under `cfq_loadgen_*` names in a
//! caller-supplied [`Registry`] (catalogued by `cfq lint` like every
//! other metric family in the workspace).

use crate::scenario::{Expect, Workload};
use cfq_engine::json::{self, Json};
use cfq_obs::metrics::{latency_buckets, Counter, Histogram, Registry};
use cfq_types::{CfqError, Result};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// How the driver reaches and times out on the server.
#[derive(Clone, Debug)]
pub struct DriverOptions {
    /// `host:port` of a `cfq serve` running *without* `--legacy-protocol`.
    pub addr: String,
    /// Per-reply read timeout; a request exceeding it is a protocol
    /// error (the server must answer every line).
    pub timeout: Duration,
}

impl DriverOptions {
    /// Options for `addr` with the default 30s reply timeout.
    pub fn new(addr: impl Into<String>) -> DriverOptions {
        DriverOptions { addr: addr.into(), timeout: Duration::from_secs(30) }
    }
}

/// Typed classification of one reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A v1 result envelope (or healthy prose).
    Ok,
    /// A typed error envelope with `kind == "overloaded"` — admission
    /// back-pressure, counted apart from request errors.
    Overloaded,
    /// A typed error envelope (or gated-legacy rejection) with this
    /// `kind`.
    RequestError(String),
    /// Anything that is not a well-formed single-line reply of the
    /// expected shape — the one count that must stay at zero.
    ProtocolError(String),
}

/// One request's measurement.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Which client sent it.
    pub client: usize,
    /// Send-to-reply latency in microseconds.
    pub latency_us: u64,
    /// Reply classification.
    pub outcome: Outcome,
}

/// Server-side counter movement across one scenario (after − before).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerDeltas {
    /// `cfq_scheduler_coalesced_total` delta.
    pub coalesced: u64,
    /// `cfq_scheduler_batched_total` delta.
    pub batched: u64,
    /// `cfq_scheduler_overloaded_total` delta.
    pub overloaded: u64,
    /// `cfq_mining_passes_total` delta.
    pub mining_passes: u64,
    /// `cfq_lattice_hits_total` delta.
    pub lattice_hits: u64,
    /// `cfq_queries_total` delta.
    pub queries: u64,
}

/// Everything measured while replaying one scenario.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// One record per sent request, in per-client order.
    pub records: Vec<RequestRecord>,
    /// Scheduler/cache counter movement attributed to the scenario.
    pub server: ServerDeltas,
}

/// The `cfq_loadgen_*` client-side metric family handles.
pub struct ClientMetrics {
    /// Requests sent.
    pub requests_total: Arc<Counter>,
    /// Typed `overloaded` rejections received.
    pub overloaded_total: Arc<Counter>,
    /// Typed non-overload error envelopes received.
    pub request_errors_total: Arc<Counter>,
    /// Replies that were not well-formed protocol (must stay 0 in CI).
    pub protocol_errors_total: Arc<Counter>,
    /// Send-to-reply latency.
    pub latency_seconds: Arc<Histogram>,
}

impl ClientMetrics {
    /// Registers (or re-fetches) the family handles in `reg`.
    pub fn new(reg: &Registry) -> ClientMetrics {
        ClientMetrics {
            requests_total: reg
                .counter("cfq_loadgen_requests_total", "Loadgen requests sent."),
            overloaded_total: reg.counter(
                "cfq_loadgen_overloaded_total",
                "Typed overload rejections received by the loadgen.",
            ),
            request_errors_total: reg.counter(
                "cfq_loadgen_request_errors_total",
                "Typed non-overload error envelopes received by the loadgen.",
            ),
            protocol_errors_total: reg.counter(
                "cfq_loadgen_protocol_errors_total",
                "Replies that were not well-formed protocol.",
            ),
            latency_seconds: reg.histogram(
                "cfq_loadgen_latency_seconds",
                "Loadgen send-to-reply latency.",
                &latency_buckets(),
            ),
        }
    }

    fn record(&self, r: &RequestRecord) {
        self.requests_total.inc();
        self.latency_seconds.observe(r.latency_us as f64 / 1e6);
        match &r.outcome {
            Outcome::Ok => {}
            Outcome::Overloaded => self.overloaded_total.inc(),
            Outcome::RequestError(_) => self.request_errors_total.inc(),
            Outcome::ProtocolError(_) => self.protocol_errors_total.inc(),
        }
    }
}

/// Classifies one reply line against the expected shape.
///
/// Envelope replies must be one JSON object: a `result` is [`Outcome::Ok`];
/// an `error` carrying a `kind` (either the v1 nested object or the
/// flat gated-legacy shape) is typed by that kind; anything else is a
/// protocol error. Prose replies only fail on an `error:`/`overloaded:`
/// prefix or an empty line.
pub fn classify(expect: Expect, reply: &str) -> Outcome {
    let reply = reply.trim_end();
    match expect {
        Expect::Prose => {
            if reply.is_empty() {
                Outcome::ProtocolError("empty prose reply".into())
            } else if reply.starts_with("overloaded:") {
                Outcome::Overloaded
            } else if reply.starts_with("error:") {
                Outcome::RequestError("prose".into())
            } else {
                Outcome::Ok
            }
        }
        Expect::Envelope => {
            let v = match json::parse(reply) {
                Ok(v) => v,
                Err(e) => {
                    return Outcome::ProtocolError(format!("reply is not JSON: {e}"))
                }
            };
            if v.get("result").is_some() {
                return Outcome::Ok;
            }
            let kind = match v.get("error") {
                // v1 envelope: {"v":1,"error":{"kind":...,"message":...}}
                Some(err @ Json::Obj(_)) => err.get("kind").and_then(Json::as_str),
                // Gated legacy rejection: {"error":"...","kind":"..."}
                Some(Json::Str(_)) => v.get("kind").and_then(Json::as_str),
                _ => None,
            };
            match kind {
                Some("overloaded") => Outcome::Overloaded,
                Some(kind) => Outcome::RequestError(kind.to_string()),
                None => Outcome::ProtocolError(format!(
                    "reply carries neither result nor typed error: {reply}"
                )),
            }
        }
    }
}

/// Scrapes the server's metrics over the envelope and returns every
/// unlabelled sample as `name -> value`.
fn scrape(opts: &DriverOptions) -> Result<BTreeMap<String, f64>> {
    let mut conn = TcpStream::connect(&opts.addr)
        .map_err(|e| CfqError::Io(format!("connect {}: {e}", opts.addr)))?;
    conn.set_read_timeout(Some(opts.timeout))?;
    writeln!(conn, "{{\"v\":1,\"cmd\":\"metrics\"}}")?;
    let mut reply = String::new();
    BufReader::new(&mut conn).read_line(&mut reply)?;
    let v = json::parse(reply.trim_end())
        .map_err(|e| CfqError::Io(format!("metrics reply is not JSON: {e}")))?;
    let text = v
        .get("result")
        .and_then(|r| r.get("text"))
        .and_then(Json::as_str)
        .ok_or_else(|| CfqError::Io(format!("metrics reply has no result.text: {reply}")))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if !name.contains('{') {
                if let Ok(value) = value.parse::<f64>() {
                    out.insert(name.to_string(), value);
                }
            }
        }
    }
    Ok(out)
}

fn delta(before: &BTreeMap<String, f64>, after: &BTreeMap<String, f64>, name: &str) -> u64 {
    let b = before.get(name).copied().unwrap_or(0.0);
    let a = after.get(name).copied().unwrap_or(0.0);
    (a - b).max(0.0) as u64
}

/// Replays `workload` against the server, recording every reply and the
/// server-side counter deltas. Fails only on environment errors
/// (connect failures, a poisoned thread); bad *replies* are data, not
/// errors — they land in the records as protocol errors for the report
/// gates to judge.
pub fn run_scenario(
    workload: &Workload,
    opts: &DriverOptions,
    metrics: &ClientMetrics,
) -> Result<ScenarioOutcome> {
    let before = scrape(opts)?;
    let barrier = Arc::new(Barrier::new(workload.clients.len()));
    let mut handles = Vec::new();
    for (client, actions) in workload.clients.iter().enumerate() {
        let actions = actions.clone();
        let opts = opts.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || -> Vec<RequestRecord> {
            let mut records = Vec::with_capacity(actions.len());
            // A failed connect still reaches the barrier so the other
            // clients are not deadlocked waiting for this one.
            let mut conn = match TcpStream::connect(&opts.addr) {
                Ok(c) => c,
                Err(e) => {
                    barrier.wait();
                    records.push(RequestRecord {
                        client,
                        latency_us: 0,
                        outcome: Outcome::ProtocolError(format!("connect: {e}")),
                    });
                    return records;
                }
            };
            let _ = conn.set_read_timeout(Some(opts.timeout));
            let _ = conn.set_nodelay(true);
            let mut reader = match conn.try_clone() {
                Ok(c) => BufReader::new(c),
                Err(e) => {
                    barrier.wait();
                    records.push(RequestRecord {
                        client,
                        latency_us: 0,
                        outcome: Outcome::ProtocolError(format!("clone: {e}")),
                    });
                    return records;
                }
            };
            barrier.wait();
            let mut reply = String::new();
            for action in &actions {
                if action.delay_us > 0 {
                    std::thread::sleep(Duration::from_micros(action.delay_us));
                }
                let start = Instant::now();
                if writeln!(conn, "{}", action.line).and_then(|_| conn.flush()).is_err() {
                    records.push(RequestRecord {
                        client,
                        latency_us: 0,
                        outcome: Outcome::ProtocolError("write failed".into()),
                    });
                    break;
                }
                reply.clear();
                let outcome = match reader.read_line(&mut reply) {
                    Ok(0) => Outcome::ProtocolError("server closed the connection".into()),
                    Ok(_) => classify(action.expect, &reply),
                    Err(e) => Outcome::ProtocolError(format!("read: {e}")),
                };
                let broken = matches!(
                    outcome,
                    Outcome::ProtocolError(_)
                ) && reply.is_empty();
                records.push(RequestRecord {
                    client,
                    latency_us: start.elapsed().as_micros() as u64,
                    outcome,
                });
                if broken {
                    break; // the stream is desynced; stop rather than misattribute
                }
            }
            let _ = writeln!(conn, ":quit");
            records
        }));
    }

    let mut records = Vec::new();
    for h in handles {
        let mut r = h
            .join()
            .map_err(|_| CfqError::Engine("loadgen client thread panicked".into()))?;
        records.append(&mut r);
    }
    for r in &records {
        metrics.record(r);
    }
    let after = scrape(opts)?;
    Ok(ScenarioOutcome {
        name: workload.spec.name.to_string(),
        records,
        server: ServerDeltas {
            coalesced: delta(&before, &after, "cfq_scheduler_coalesced_total"),
            batched: delta(&before, &after, "cfq_scheduler_batched_total"),
            overloaded: delta(&before, &after, "cfq_scheduler_overloaded_total"),
            mining_passes: delta(&before, &after, "cfq_mining_passes_total"),
            lattice_hits: delta(&before, &after, "cfq_lattice_hits_total"),
            queries: delta(&before, &after, "cfq_queries_total"),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_envelope_replies() {
        for (reply, want) in [
            (r#"{"v":1,"result":{"pair_count":3}}"#, Outcome::Ok),
            (
                r#"{"v":1,"error":{"kind":"overloaded","message":"overloaded: full","overloaded":true}}"#,
                Outcome::Overloaded,
            ),
            (
                r#"{"v":1,"error":{"kind":"parse","message":"bad"}}"#,
                Outcome::RequestError("parse".into()),
            ),
            (
                r#"{"error":":json is a legacy command","kind":"unsupported_command"}"#,
                Outcome::RequestError("unsupported_command".into()),
            ),
        ] {
            assert_eq!(classify(Expect::Envelope, reply), want, "{reply}");
        }
        for bad in [
            "3 valid pairs (prose leak)",
            "{not json",
            r#"{"v":1}"#,
            r#"{"error":{"message":"kindless"}}"#,
        ] {
            assert!(
                matches!(classify(Expect::Envelope, bad), Outcome::ProtocolError(_)),
                "{bad}"
            );
        }
    }

    #[test]
    fn classify_prose_replies() {
        assert_eq!(classify(Expect::Prose, "appended 3 transactions: now epoch 2"), Outcome::Ok);
        assert_eq!(
            classify(Expect::Prose, "error: no such file"),
            Outcome::RequestError("prose".into())
        );
        assert_eq!(classify(Expect::Prose, "overloaded: queue full"), Outcome::Overloaded);
        assert!(matches!(classify(Expect::Prose, ""), Outcome::ProtocolError(_)));
    }

    #[test]
    fn client_metrics_register_and_record() {
        let reg = Registry::new();
        let m = ClientMetrics::new(&reg);
        for outcome in [
            Outcome::Ok,
            Outcome::Overloaded,
            Outcome::RequestError("parse".into()),
            Outcome::ProtocolError("x".into()),
        ] {
            m.record(&RequestRecord { client: 0, latency_us: 1500, outcome });
        }
        let text = reg.render();
        for needle in [
            "cfq_loadgen_requests_total 4",
            "cfq_loadgen_overloaded_total 1",
            "cfq_loadgen_request_errors_total 1",
            "cfq_loadgen_protocol_errors_total 1",
            "cfq_loadgen_latency_seconds_count 4",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}

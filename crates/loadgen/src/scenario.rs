//! Seeded construction of per-client CFQ action streams.
//!
//! A scenario is a named recipe: how many clients, what mix of
//! constraint classes, how supports and universes are skewed, and how
//! arrivals are paced. [`build`] expands a recipe into a [`Workload`] —
//! one `Vec<Action>` per client — using nothing but the seed, so the
//! same `(scenario, seed, options)` triple always yields the same bytes
//! (`cfq loadgen --emit` twice and `cmp` is the CI determinism gate).

use cfq_datagen::dist::Zipf;
use cfq_engine::{QueryRequest, SupportSpec};
use cfq_types::{CfqError, ItemId, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What shape of reply an action's line must produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// One line of JSON: a v1 result/error envelope, or the typed
    /// `unsupported_command` rejection a gated legacy command gets.
    Envelope,
    /// One line of operator prose (`:append` replies), where only an
    /// `error:` prefix counts against the scenario.
    Prose,
}

/// One protocol line with its open-loop pacing.
#[derive(Clone, Debug, PartialEq)]
pub struct Action {
    /// Microseconds to wait before sending (0 = back-to-back burst).
    pub delay_us: u64,
    /// The full protocol line (the driver appends the newline).
    pub line: String,
    /// Reply classification mode.
    pub expect: Expect,
}

/// A named scenario recipe plus the expectations CI gates on.
#[derive(Debug)]
pub struct ScenarioSpec {
    /// Stable scenario name (`cfq loadgen --scenario NAME`).
    pub name: &'static str,
    /// One-line description for `--list` and docs.
    pub summary: &'static str,
    /// Concurrent client connections.
    pub clients: usize,
    /// Actions per client.
    pub requests_per_client: usize,
    /// Whether the scenario is built to provoke admission-gate
    /// rejections (gate: some overloads iff this is set).
    pub expects_overload: bool,
    /// Whether typed request errors are part of the plan (gate: some
    /// request errors iff this is set; overloads count separately).
    pub expects_request_errors: bool,
    /// Whether the scenario targets the single-flight batch window
    /// (gate: coalesced + batched server delta must be positive).
    pub expects_sharing: bool,
    /// Whether the workload interleaves `:append` of a delta file.
    pub needs_append_file: bool,
}

/// The closed list of named scenarios, in run order. `append_churn`
/// mutates the engine epoch, so it runs after the latency-sensitive
/// scenarios; `adversarial` runs last because its only job is proving
/// the protocol surface stays typed under garbage.
pub const SCENARIOS: &[ScenarioSpec] = &[
    ScenarioSpec {
        name: "steady_mixed",
        summary: "closed-loop warm traffic mixing all constraint classes",
        clients: 3,
        requests_per_client: 12,
        expects_overload: false,
        expects_request_errors: false,
        expects_sharing: false,
        needs_append_file: false,
    },
    ScenarioSpec {
        name: "zipf_cold",
        summary: "cache-bypassing queries with Zipf-skewed thresholds and universes",
        clients: 2,
        requests_per_client: 10,
        expects_overload: false,
        expects_request_errors: false,
        expects_sharing: false,
        needs_append_file: false,
    },
    ScenarioSpec {
        name: "multi_support_batch",
        summary: "one query text at many supports, aimed at the single-flight batch window",
        clients: 4,
        requests_per_client: 8,
        expects_overload: false,
        expects_request_errors: false,
        expects_sharing: true,
        needs_append_file: false,
    },
    ScenarioSpec {
        name: "overload_burst",
        summary: "bursty cold traffic past the admission gate; rejections must stay typed",
        clients: 10,
        requests_per_client: 6,
        expects_overload: true,
        expects_request_errors: false,
        expects_sharing: false,
        needs_append_file: false,
    },
    ScenarioSpec {
        name: "append_churn",
        summary: ":append interleaved with warm queries (FUP upgrades under load)",
        clients: 3,
        requests_per_client: 8,
        expects_overload: false,
        expects_request_errors: false,
        expects_sharing: false,
        needs_append_file: true,
    },
    ScenarioSpec {
        name: "adversarial",
        summary: "malformed envelopes, bad requests, and gated legacy commands",
        clients: 2,
        requests_per_client: 13,
        expects_overload: false,
        expects_request_errors: true,
        expects_sharing: false,
        needs_append_file: false,
    },
];

/// Looks up a scenario by name.
pub fn scenario_by_name(name: &str) -> Option<&'static ScenarioSpec> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// Inputs that parameterize generation beyond the seed.
#[derive(Clone, Debug, Default)]
pub struct GenOptions {
    /// Delta transaction file for `append_churn`'s `:append` lines. The
    /// placeholder `delta.txt` is used when unset, which is fine for
    /// `--emit` but makes a live `:append` fail loudly.
    pub append_file: Option<String>,
    /// Item universe size of the served database (0 = skip universe
    /// restrictions). Lets `zipf_cold` carve Zipf-sized `s_universe`
    /// prefixes, and gives `multi_support_batch` / `overload_burst` the
    /// scenario-private cold windows their sharing and overload
    /// guarantees ride on — set it to the server's item count.
    pub items: usize,
}

/// A fully expanded workload: one action stream per client.
#[derive(Debug)]
pub struct Workload {
    /// The recipe this was built from.
    pub spec: &'static ScenarioSpec,
    /// `clients[i]` is client `i`'s ordered action stream.
    pub clients: Vec<Vec<Action>>,
}

/// Expands `spec` into per-client action streams, deterministically in
/// `(seed, opts)`.
pub fn build(spec: &'static ScenarioSpec, seed: u64, opts: &GenOptions) -> Workload {
    let clients = (0..spec.clients)
        .map(|c| {
            let mut rng = StdRng::seed_from_u64(client_seed(seed, spec.name, c));
            match spec.name {
                "steady_mixed" => steady_mixed(&mut rng, spec),
                "zipf_cold" => zipf_cold(&mut rng, spec, opts),
                "multi_support_batch" => multi_support_batch(c, spec, opts),
                "overload_burst" => overload_burst(c, spec, opts),
                "append_churn" => append_churn(&mut rng, c, spec, opts),
                "adversarial" => adversarial(c),
                other => unreachable!("unknown scenario `{other}`"),
            }
        })
        .collect();
    Workload { spec, clients }
}

/// Builds every scenario named in `selection` (`"all"` = the full list).
pub fn build_selection(
    selection: &str,
    seed: u64,
    opts: &GenOptions,
) -> Result<Vec<Workload>> {
    if selection == "all" {
        return Ok(SCENARIOS.iter().map(|s| build(s, seed, opts)).collect());
    }
    let mut out = Vec::new();
    for name in selection.split(',') {
        let spec = scenario_by_name(name.trim()).ok_or_else(|| {
            CfqError::Config(format!(
                "unknown scenario `{name}` (try one of: {})",
                SCENARIOS.iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
            ))
        })?;
        out.push(build(spec, seed, opts));
    }
    Ok(out)
}

/// Per-client stream seed: FNV-1a over the scenario name, mixed with the
/// run seed and the client index so every stream is independent but
/// reproducible.
fn client_seed(seed: u64, name: &str, client: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ seed.rotate_left(17) ^ (client as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn pick(rng: &mut StdRng, n: usize) -> usize {
    ((rng.gen::<f64>() * n as f64) as usize).min(n - 1)
}

/// Wraps a [`QueryRequest`] in the v1 query envelope.
fn envelope(req: &QueryRequest) -> String {
    format!("{{\"v\":1,\"cmd\":\"query\",\"req\":{}}}", req.to_json())
}

fn query_action(req: &QueryRequest, delay_us: u64) -> Action {
    Action { delay_us, line: envelope(req), expect: Expect::Envelope }
}

/// The support-fraction grid scenarios draw from. Values stay ≥ 5% so a
/// CI-sized database never explodes combinatorially; rank 0 is the hot
/// end Zipf sampling concentrates on.
fn support_grid() -> Vec<f64> {
    (0..16).map(|k| 0.05 + 0.025 * k as f64).collect()
}

/// One query text drawn from the full constraint-class palette of the
/// paper's language: anti-monotone domain bounds, quasi-succinct `avg`,
/// induced-weaker `sum`, succinct set constraints, and the two
/// 2-variable forms. Every query mentions both S and T.
fn mixed_query(rng: &mut StdRng) -> String {
    let v = 300 + 50 * pick(rng, 12);
    let w = 100 + 50 * pick(rng, 10);
    match pick(rng, 6) {
        0 => format!("max(S.Price) <= {v} & min(T.Price) >= {w}"),
        1 => format!("avg(S.Price) <= {v} & min(T.Price) >= {w}"),
        2 => format!("sum(S.Price) <= {} & min(T.Price) >= {w}", v + 600),
        3 => {
            let a = pick(rng, 5);
            format!("S.Type subseteq {{Type{a}, Type{}}} & min(T.Price) >= {w}", a + 1)
        }
        4 => "max(S.Price) <= min(T.Price)".to_string(),
        _ => format!("max(S.Price) <= {v} & min(T.Price) >= {w} & S.Type = T.Type"),
    }
}

/// Closed-loop warm traffic: a small hot set of supports (Zipf over the
/// low grid ranks) and the full query palette, paced by exponential
/// think time. After the first cold round most requests are lattice
/// cache hits — this is the baseline tail-latency scenario.
fn steady_mixed(rng: &mut StdRng, spec: &ScenarioSpec) -> Vec<Action> {
    let grid = support_grid();
    let zipf = Zipf::new(4, 1.2); // hot: ranks 0..4 of the grid
    (0..spec.requests_per_client)
        .map(|i| {
            let mut req = QueryRequest::new(mixed_query(rng));
            req.support = SupportSpec::Frac(grid[zipf.sample(rng) + 2]);
            let delay = if i == 0 {
                0
            } else {
                cfq_datagen::dist::exponential(rng, 1500.0) as u64
            };
            query_action(&req, delay)
        })
        .collect()
}

/// Cache-bypassing one-shot executions with Zipf-skewed thresholds and
/// universe windows: every request is a cold optimizer run, so this
/// scenario prices the uncached path's tail.
fn zipf_cold(rng: &mut StdRng, spec: &ScenarioSpec, opts: &GenOptions) -> Vec<Action> {
    let grid = support_grid();
    let support_zipf = Zipf::new(grid.len(), 1.1);
    let threshold_zipf = Zipf::new(12, 0.8);
    (0..spec.requests_per_client)
        .map(|_| {
            let v = 300 + 50 * threshold_zipf.sample(rng);
            let mut req =
                QueryRequest::new(format!("max(S.Price) <= {v} & count(T) >= 1"));
            req.support = SupportSpec::Frac(grid[support_zipf.sample(rng)]);
            req.bypass_cache = true;
            if opts.items > 1 {
                // A Zipf-sized prefix window of the item universe: hot
                // ranks keep most items, the tail shrinks the domain.
                let drop = Zipf::new(opts.items, 1.0).sample(rng);
                let keep = (opts.items - drop).max(1);
                req.s_universe = (0..keep as u32).map(ItemId).collect();
            }
            query_action(&req, cfq_datagen::dist::exponential(rng, 800.0) as u64)
        })
        .collect()
}

/// The S-universe window reserved for `multi_support_batch`: every
/// other item. No other scenario restricts S to this window (zipf_cold
/// uses contiguous prefixes, everything else runs the full universe),
/// so the scenario's first request is a cold miss even when earlier
/// scenarios already warmed the full-universe lattice down to the
/// lowest absolute support.
fn stride_window(items: usize) -> Vec<ItemId> {
    (0..items as u32).step_by(2).map(ItemId).collect()
}

/// One query text, every request at a distinct support fraction, over a
/// scenario-private universe window: compatible cache misses over the
/// same universe are exactly what the scheduler's batch window exists
/// to share, so the server-side `coalesced + batched` delta must move.
///
/// Coldness is guaranteed by the workload's *support ladder*, not the
/// window alone: a cached lattice over a superset universe at an
/// equal-or-lower threshold serves any request, so the opening supports
/// here (< 0.07) sit strictly below everything `steady_mixed` mines
/// (≥ 0.1). Client 0 bursts immediately and becomes the cold group
/// leader, holding its admission slot for the whole batch window; the
/// other clients start staggered a few milliseconds apart — safely
/// inside any realistic window — so their equally-cold openings reach
/// the collecting group and join instead of mining.
fn multi_support_batch(client: usize, spec: &ScenarioSpec, opts: &GenOptions) -> Vec<Action> {
    (0..spec.requests_per_client)
        .map(|i| {
            let idx = client * spec.requests_per_client + i;
            let mut req = QueryRequest::new("max(S.Price) <= min(T.Price)");
            // Openings ladder 0.05..0.065 (cold, join-compatible); the
            // rest climb 0.08..0.38 and drain warm. All 32 distinct.
            req.support = SupportSpec::Frac(if i == 0 {
                0.05 + 0.005 * client as f64
            } else {
                0.07 + 0.01 * idx as f64
            });
            if opts.items >= 4 {
                req.s_universe = stride_window(opts.items);
            }
            // First requests arrive 5ms apart per client rank; the rest
            // follow closed-loop with a token pause.
            query_action(&req, if i == 0 { 5_000 * client as u64 } else { 500 })
        })
        .collect()
}

/// A burst of cold queries from more clients than the admission gate
/// holds: every burst must produce typed `overloaded` envelopes, never
/// a dropped connection or prose.
///
/// All ten clients open with the *same* query at support 0.03 — below
/// every threshold earlier scenarios mine, so the opening is one cold
/// cache key. The first client admitted leads a group and sleeps out
/// the batch window holding its slot; every other admitted opening
/// joins the group and waits (still holding its slot), so the in-flight
/// gate pins shut, the wait queue fills, and the rest of the
/// barrier-synced burst has nowhere to go: the server must reject.
///
/// Every request — opening and follow-ups alike — runs over the same
/// eight-item window on both sides. The window caps the cold pass at a
/// 2^8 lattice (a full-universe mine at 3% support is combinatorially
/// explosive on CI-sized databases), and the follow-ups, whose supports
/// sit above the opening's, drain warm from the lattice that very
/// opening cached: the burst provokes the gate, not the miner.
fn overload_burst(client: usize, spec: &ScenarioSpec, opts: &GenOptions) -> Vec<Action> {
    let window: Vec<ItemId> = (0..opts.items.min(8) as u32).map(ItemId).collect();
    (0..spec.requests_per_client)
        .map(|i| {
            let idx = client * spec.requests_per_client + i;
            let mut req = QueryRequest::new("avg(S.Price) <= 800 & min(T.Price) >= 100");
            req.support =
                SupportSpec::Frac(if i == 0 { 0.03 } else { 0.05 + 0.005 * idx as f64 });
            req.s_universe = window.clone();
            req.t_universe = window.clone();
            // Bursts of 3 back-to-back, then a gap to let the gate drain.
            query_action(&req, if i % 3 == 0 && i > 0 { 15_000 } else { 0 })
        })
        .collect()
}

/// Client 0 interleaves `:append` of a delta file with warm queries;
/// the others keep querying two hot supports throughout. Exercises FUP
/// lattice upgrades racing reads — the cache must stay warm and every
/// reply well-formed across epoch bumps.
fn append_churn(
    rng: &mut StdRng,
    client: usize,
    spec: &ScenarioSpec,
    opts: &GenOptions,
) -> Vec<Action> {
    let file = opts.append_file.as_deref().unwrap_or("delta.txt");
    (0..spec.requests_per_client)
        .map(|i| {
            if client == 0 && i % 4 == 1 {
                return Action {
                    delay_us: 2_000,
                    line: format!(":append {file}"),
                    expect: Expect::Prose,
                };
            }
            let mut req = QueryRequest::new(mixed_query(rng));
            req.support = SupportSpec::Frac(if i % 2 == 0 { 0.2 } else { 0.25 });
            query_action(&req, cfq_datagen::dist::exponential(rng, 1000.0) as u64)
        })
        .collect()
}

/// Protocol garbage and bad requests, all `{`- or `:`-shaped so every
/// reply must be one JSON line: broken framing, wrong versions, unknown
/// commands and fields, out-of-range values, unparseable CFQ text, and
/// the three gated legacy commands. A healthy server answers each with
/// a typed error envelope and still serves the interleaved good
/// queries.
fn adversarial(client: usize) -> Vec<Action> {
    let good = {
        let mut req = QueryRequest::new("max(S.Price) <= min(T.Price)");
        req.support = SupportSpec::Frac(0.2);
        envelope(&req)
    };
    let lines: Vec<&str> = if client == 0 {
        vec![
            r#"{"v":1,"cmd":"query""#,
            r#"{"v":1}"#,
            r#"{"v":2,"cmd":"metrics"}"#,
            r#"{"v":1,"cmd":"reboot"}"#,
            r#"{"v":1,"cmd":"query","extra":1}"#,
            r#"{"v":1,"cmd":"query","req":{"quary":"x"}}"#,
            r#"{"v":1,"cmd":"query","req":{"query":"count(S) >= 1","support":0}}"#,
            r#"{"v":1,"cmd":"query","req":{"query":"count(S) >= 1","shards":0}}"#,
            r#"{"v":1,"cmd":"query","req":{"query":"count(S) >= 1","backend":"vertical"}}"#,
            r#"{"v":1,"cmd":"query","req":{"query":"max(S.Price <= 10","support":0.25}}"#,
            r#"{"v":1,"cmd":"query","req":{"query":"   ","support":0.25}}"#,
            r#"{"v":1,"cmd":"status"}"#,
            "@GOOD",
        ]
    } else {
        vec![
            r#":json {"query":"count(S) >= 1"}"#,
            ":metrics",
            ":slowlog",
            r#"{"v":1,"cmd":"query","req":{"query":"count(S) >= 1","support":1.5}}"#,
            r#"{"v":1,"cmd":"query","req":{"query":"count(S) >= 1","strategy":"warp"}}"#,
            r#"{}"#,
            r#"{"v":1,"cmd":"query","req":[]}"#,
            r#"{"v":true,"cmd":"query"}"#,
            r#"{"v":1,"cmd":"query","req":{"query":"count(S) >= 1","max_level":true}}"#,
            r#"{"v":1,"cmd":"query","req":{"query":"count(S) >= 1","support":{"s":0,"t":2}}}"#,
            "@GOOD",
            r#"{"v":1,"cmd":"snapshot"}"#,
            "@GOOD",
        ]
    };
    lines
        .into_iter()
        .map(|l| Action {
            delay_us: 200,
            line: if l == "@GOOD" { good.clone() } else { l.to_string() },
            expect: Expect::Envelope,
        })
        .collect()
}

/// Renders a workload as stable text, one action per line — what
/// `cfq loadgen --emit` prints and CI `cmp`s across two runs to prove
/// byte-reproducibility.
pub fn emit(w: &Workload) -> String {
    let mut out = String::new();
    for (c, actions) in w.clients.iter().enumerate() {
        for a in actions {
            out.push_str(&format!(
                "{}\t{c}\t{}\t{}\t{}\n",
                w.spec.name,
                a.delay_us,
                match a.expect {
                    Expect::Envelope => "envelope",
                    Expect::Prose => "prose",
                },
                a.line
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfq_engine::wire::{parse_envelope, WireCmd};

    fn opts() -> GenOptions {
        GenOptions { append_file: Some("delta.txt".into()), items: 24 }
    }

    #[test]
    fn all_scenarios_build_with_declared_shape() {
        for spec in SCENARIOS {
            let w = build(spec, 7, &opts());
            assert_eq!(w.clients.len(), spec.clients, "{}", spec.name);
            for actions in &w.clients {
                assert_eq!(actions.len(), spec.requests_per_client, "{}", spec.name);
            }
        }
    }

    #[test]
    fn generation_is_byte_deterministic_in_the_seed() {
        for spec in SCENARIOS {
            let a = emit(&build(spec, 42, &opts()));
            let b = emit(&build(spec, 42, &opts()));
            assert_eq!(a, b, "{} not deterministic", spec.name);
            // Scenarios that draw from the rng must react to the seed;
            // the purely index-driven ones are seed-invariant by design.
            if matches!(spec.name, "steady_mixed" | "zipf_cold" | "append_churn") {
                let c = emit(&build(spec, 43, &opts()));
                assert_ne!(a, c, "{} ignores the seed", spec.name);
            }
        }
    }

    #[test]
    fn non_adversarial_envelopes_are_valid_and_mention_both_vars() {
        for spec in SCENARIOS.iter().filter(|s| s.name != "adversarial") {
            for actions in build(spec, 11, &opts()).clients {
                for a in actions {
                    match a.expect {
                        Expect::Prose => assert!(a.line.starts_with(":append "), "{}", a.line),
                        Expect::Envelope => match parse_envelope(&a.line) {
                            Ok(WireCmd::Query(req)) => {
                                assert!(req.query.contains('S'), "{}", req.query);
                                assert!(req.query.contains('T'), "{}", req.query);
                                req.validate().unwrap();
                            }
                            other => panic!("{}: not a query envelope: {other:?}", a.line),
                        },
                    }
                }
            }
        }
    }

    #[test]
    fn multi_support_fracs_are_all_distinct() {
        let spec = scenario_by_name("multi_support_batch").unwrap();
        let w = build(spec, 7, &opts());
        let mut fracs = Vec::new();
        for actions in &w.clients {
            for a in actions {
                match parse_envelope(&a.line).unwrap() {
                    WireCmd::Query(req) => match req.support {
                        SupportSpec::Frac(f) => fracs.push(f),
                        other => panic!("{other:?}"),
                    },
                    other => panic!("{other:?}"),
                }
            }
        }
        let n = fracs.len();
        fracs.sort_by(|a, b| a.total_cmp(b));
        fracs.dedup();
        assert_eq!(fracs.len(), n, "duplicate supports would coalesce, not batch");
    }

    #[test]
    fn cold_opening_scenarios_respect_the_support_ladder() {
        let opening = |spec: &'static ScenarioSpec, c: usize| {
            let w = build(spec, 7, &GenOptions { append_file: None, items: 6 });
            match parse_envelope(&w.clients[c][0].line).unwrap() {
                WireCmd::Query(req) => (w.clients[c][0].delay_us, req),
                other => panic!("{other:?}"),
            }
        };

        // overload_burst: all ten clients open with the *same* cold key
        // (one leader, nine joiners — the pile-up that forces typed
        // rejections), strictly below multi_support_batch's openings.
        let spec = scenario_by_name("overload_burst").unwrap();
        let (_, first) = opening(spec, 0);
        for c in 0..spec.clients {
            let (delay, req) = opening(spec, c);
            assert_eq!(delay, 0, "the burst must be simultaneous");
            assert_eq!(req.to_json(), first.to_json(), "client {c} breaks the shared key");
            assert!(matches!(req.support, SupportSpec::Frac(f) if f == 0.03));
            let window: Vec<ItemId> = (0..6).map(ItemId).collect();
            assert_eq!(req.s_universe, window, "the burst must stay inside its window");
            assert_eq!(req.t_universe, window);
        }

        // multi_support_batch: openings ladder below steady_mixed's 0.1
        // floor over a private stride window, staggered into the batch
        // window so the non-leaders join the collecting group.
        let spec = scenario_by_name("multi_support_batch").unwrap();
        for c in 0..spec.clients {
            let (delay, req) = opening(spec, c);
            assert_eq!(delay, 5_000 * c as u64);
            assert_eq!(req.s_universe, vec![ItemId(0), ItemId(2), ItemId(4)]);
            match req.support {
                SupportSpec::Frac(f) => assert!(f < 0.07, "opening {f} is not cold"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn adversarial_lines_never_get_prose_replies() {
        let spec = scenario_by_name("adversarial").unwrap();
        for actions in build(spec, 7, &opts()).clients {
            for a in actions {
                // Every line is either envelope-shaped (first non-space
                // after `{` is `"` or `}`) or a gated legacy `:command`,
                // both of which the server answers in JSON.
                let l = a.line.trim_start();
                assert!(l.starts_with('{') || l.starts_with(':'), "{}", a.line);
            }
        }
    }

    #[test]
    fn selection_parses_names_and_rejects_unknown() {
        assert_eq!(build_selection("all", 1, &opts()).unwrap().len(), SCENARIOS.len());
        let two = build_selection("steady_mixed, adversarial", 1, &opts()).unwrap();
        assert_eq!(two.len(), 2);
        assert_eq!(two[1].spec.name, "adversarial");
        assert!(build_selection("nope", 1, &opts()).is_err());
    }
}

#![warn(missing_docs)]

//! # cfq-loadgen
//!
//! Adversarial CFQ workload generation and tail-latency scenario
//! benchmarking against a live `cfq serve`, speaking **only** the v1
//! JSON envelope (`{"v":1,"cmd":...}`) — the loadgen doubles as a
//! conformance client for the canonical wire protocol.
//!
//! The crate splits into three layers:
//!
//! * [`scenario`] — seeded, deterministic construction of per-client
//!   action streams. Each named [`scenario::ScenarioSpec`] mixes
//!   constraint classes (anti-monotone domain bounds, quasi-succinct
//!   `avg`, induced-weaker `sum`, set constraints, 2-variable
//!   constraints), Zipf-skewed support thresholds and item universes,
//!   bursty arrivals, and — in the adversarial scenario — deliberately
//!   malformed envelopes. Same seed, same bytes: generation never looks
//!   at a clock or ambient randomness.
//! * [`driver`] — a thread-per-client TCP driver that replays a
//!   [`scenario::Workload`] against a server, records per-request
//!   latency and a typed outcome for every reply, and brackets the run
//!   with `{"v":1,"cmd":"metrics"}` scrapes so server-side scheduler
//!   deltas (coalesced / batched / overloaded / mining passes) are
//!   attributed per scenario. Client-side counters and a latency
//!   histogram land in a [`cfq_obs::metrics::Registry`] under
//!   `cfq_loadgen_*` names.
//! * [`report`] — exact (not bucketed) p50/p95/p99 over the recorded
//!   latencies, the one-line `BENCH_loadgen.json` rendering, and the
//!   gate checks CI fails on: zero protocol errors everywhere, overload
//!   only where a scenario provokes it, batching where a scenario
//!   targets the single-flight window.
//!
//! The driver assumes the server runs *without* `--legacy-protocol`:
//! every reply to an envelope-shaped line is one line of JSON, so
//! framing is trivial and any prose leak is a protocol error by
//! definition.

pub mod driver;
pub mod report;
pub mod scenario;

pub use driver::{
    classify, run_scenario, ClientMetrics, DriverOptions, Outcome, RequestRecord, ScenarioOutcome,
    ServerDeltas,
};
pub use report::{check, percentile, render, ScenarioReport};
pub use scenario::{
    build, build_selection, emit, scenario_by_name, Action, Expect, GenOptions, ScenarioSpec,
    Workload, SCENARIOS,
};

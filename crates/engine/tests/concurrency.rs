//! Concurrent-session smoke test: several threads hammer one shared
//! [`Engine`] while an append swaps the epoch underneath them. Every
//! answer must be exact for the epoch it reports — either the old or the
//! new database, never a torn mixture — and the post-append run must be
//! served by FUP-upgraded cache entries without a scan.

use cfq_constraints::{bind_query, parse_query};
use cfq_core::{ExecutionOutcome, Optimizer, QueryEnv};
use cfq_datagen::{QuestConfig, ScenarioBuilder};
use cfq_engine::{Engine, EngineConfig};
use cfq_types::{CatalogBuilder, ItemId, TransactionDb};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

const QUERIES: [&str; 2] = [
    "max(S.Price) <= 80 & min(T.Price) >= 80",
    "sum(S.Price) <= sum(T.Price)",
];
const SUPPORT: u64 = 3;

fn assert_same_answer(got: &ExecutionOutcome, want: &ExecutionOutcome, context: &str) {
    assert_eq!(got.s_sets, want.s_sets, "s_sets diverged: {context}");
    assert_eq!(got.t_sets, want.t_sets, "t_sets diverged: {context}");
    assert_eq!(got.pair_result.count, want.pair_result.count, "pair count diverged: {context}");
    assert_eq!(got.pair_result.pairs, want.pair_result.pairs, "pairs diverged: {context}");
}

#[test]
fn concurrent_sessions_survive_an_append() {
    let sc = ScenarioBuilder::new(QuestConfig::tiny())
        .split_uniform_prices((10.0, 100.0), (40.0, 160.0))
        .unwrap();
    let rows: Vec<Vec<ItemId>> = sc.db.iter().map(|r| r.to_vec()).collect();
    let cut = rows.len() * 9 / 10;
    let base = TransactionDb::new(sc.db.n_items(), rows[..cut].to_vec()).unwrap();
    let delta = TransactionDb::new(sc.db.n_items(), rows[cut..].to_vec()).unwrap();
    let combined = base.concat(&delta).unwrap();

    let engine = Engine::new(base.clone(), sc.catalog).unwrap();
    let catalog = engine.catalog();

    // Reference answers per (epoch, query), from the one-shot optimizer.
    let reference = |db: &TransactionDb, q: &str| -> ExecutionOutcome {
        let bound = bind_query(&parse_query(q).unwrap(), &catalog).unwrap();
        let env = QueryEnv::new(db, &catalog, SUPPORT)
            .with_s_universe(sc.s_items.clone())
            .with_t_universe(sc.t_items.clone());
        Optimizer::default().evaluate(&bound, &env).unwrap()
    };
    let expected: Vec<Vec<ExecutionOutcome>> = [&base, &combined]
        .into_iter()
        .map(|db| QUERIES.iter().map(|q| reference(db, q)).collect())
        .collect();
    let expected = Arc::new(expected);

    let n_threads = 4;
    let iterations = 6;
    let mut handles = Vec::new();
    for tid in 0..n_threads {
        let session = engine.session();
        let s_items = sc.s_items.clone();
        let t_items = sc.t_items.clone();
        let expected = Arc::clone(&expected);
        handles.push(thread::spawn(move || {
            for i in 0..iterations {
                let qi = (tid + i) % QUERIES.len();
                let out = session
                    .query(QUERIES[qi])
                    .min_support(SUPPORT)
                    .s_universe(s_items.clone())
                    .t_universe(t_items.clone())
                    .run()
                    .unwrap();
                let epoch = out.epoch as usize;
                assert!(epoch < 2, "unexpected epoch {epoch}");
                assert_same_answer(
                    &out.outcome,
                    &expected[epoch][qi],
                    &format!("thread {tid} iteration {i} epoch {epoch} query {qi}"),
                );
            }
        }));
    }

    // Land the append while the readers are mid-flight.
    thread::sleep(Duration::from_millis(5));
    let info = engine.append(delta).unwrap();
    assert_eq!(info.epoch, 1);

    for h in handles {
        h.join().unwrap();
    }

    // After the dust settles: the new epoch answers from FUP-upgraded or
    // freshly cached entries, and a re-run of a query that already ran
    // post-append is scan-free.
    let session = engine.session();
    for (qi, q) in QUERIES.iter().enumerate() {
        let first = session
            .query(q)
            .min_support(SUPPORT)
            .s_universe(sc.s_items.clone())
            .t_universe(sc.t_items.clone())
            .run()
            .unwrap();
        assert_eq!(first.epoch, 1);
        assert_same_answer(&first.outcome, &expected[1][qi], &format!("post-append query {qi}"));
        let warm = session
            .query(q)
            .min_support(SUPPORT)
            .s_universe(sc.s_items.clone())
            .t_universe(sc.t_items.clone())
            .run()
            .unwrap();
        assert_eq!(warm.outcome.db_scans, 0, "warm post-append query {qi} must not scan");
    }

    let stats = engine.cache_stats();
    assert!(stats.lattice_hits > 0, "concurrent runs should share cached lattices");
}

/// The scheduler's single-flight guarantee, end to end: K identical cold
/// queries released simultaneously perform exactly ONE mining pass —
/// one leader mines, the other K-1 coalesce onto it and are answered
/// from the shared lattice.
#[test]
fn identical_cold_queries_share_one_mining_pass() {
    // `min(T.Price) >= 999` is succinct-unsatisfiable (no such item), so
    // the T side never requests a lattice and each query makes exactly
    // one scheduler request (for S) — making the pass count exact.
    const Q: &str = "max(S.Price) <= 30 & min(T.Price) >= 999";
    const K: usize = 6;

    let mut b = CatalogBuilder::new(6);
    b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
    let db = TransactionDb::from_u32(
        6,
        &[
            &[0, 1, 2, 3],
            &[0, 1, 2],
            &[1, 2, 3, 4],
            &[0, 2, 4],
            &[0, 1, 3, 5],
            &[2, 3, 4, 5],
            &[0, 1, 2, 3, 4],
            &[1, 3, 5],
        ],
    );
    // A generous batch window: the leader holds its group open long
    // enough that every barrier-released peer joins it, keeping the
    // assertion deterministic even on a loaded machine.
    let config =
        EngineConfig { batch_window: Duration::from_millis(200), ..EngineConfig::default() };
    let engine = Engine::with_config(db, b.build(), config).unwrap();

    let barrier = Arc::new(Barrier::new(K));
    let handles: Vec<_> = (0..K)
        .map(|_| {
            let session = engine.session();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                session.query(Q).min_support(2).run().unwrap()
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every member of the group got the same (empty-pair) answer.
    for out in &outcomes {
        assert_eq!(out.outcome.s_sets, outcomes[0].outcome.s_sets);
        assert_eq!(out.outcome.pair_result.count, 0, "T side is unsatisfiable");
    }

    let sched = engine.scheduler_stats();
    assert_eq!(sched.mining_passes, 1, "one leader mined for everyone: {sched:?}");
    assert_eq!(sched.coalesced as usize, K - 1, "the rest coalesced: {sched:?}");
    assert_eq!(sched.batched, 0, "identical supports are not batches: {sched:?}");
    assert_eq!(sched.admitted as usize, K, "{sched:?}");
    assert_eq!(sched.overloaded, 0, "{sched:?}");

    // Every lookup missed (the entry lands only after the group mines),
    // but the K-1 coalesced queries credited the leader's scan cost as
    // saved work — and only the leader actually touched the database.
    let cache = engine.cache_stats();
    assert_eq!(cache.lattice_misses as usize, K, "{cache:?}");
    assert!(cache.scans_saved > 0, "coalesced scans credited: {cache:?}");
    let scanning: Vec<_> = outcomes.iter().filter(|o| o.outcome.db_scans > 0).collect();
    assert_eq!(scanning.len(), 1, "only the leader touched the database");
}

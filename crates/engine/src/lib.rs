#![warn(missing_docs)]

//! # cfq-engine
//!
//! The session engine: a long-lived [`Engine`] that owns an
//! epoch-versioned transaction database plus catalog and serves
//! concurrent queries through cheap [`Session`] handles, caching work
//! *across* queries:
//!
//! * **Lattice cache** — complete frequent-set families keyed by
//!   effective universe, absolute threshold and epoch, LRU-evicted under
//!   a byte budget. A refined query whose 1-var envelope is weaker or
//!   equal reuses the mined lattice and re-runs with **zero database
//!   scans**.
//! * **Plan cache** — optimizer plans keyed by a bound-query
//!   fingerprint; plans never read the data, so they survive epoch
//!   swaps.
//! * **FUP maintenance** — [`Engine::append`] installs a new epoch and
//!   upgrades every cached lattice in place with the FUP algorithm
//!   instead of invalidating it, so the cache stays warm across
//!   insertions.
//! * **Scheduler** — every query passes an admission gate (bounded
//!   in-flight and queue depth, typed `Overloaded` rejection beyond
//!   them), and cold lattice minings are **single-flighted**: concurrent
//!   identical misses share one mining pass, and compatible misses
//!   arriving within a short batch window ride along, mined once at the
//!   minimum requested support.
//!
//! Queries are described by a serializable [`QueryRequest`] (JSON in,
//! [`QueryResponse`] JSON out — the wire form the serve protocol's
//! `:json` command speaks); the fluent [`QueryBuilder`] is sugar that
//! fills one in.
//!
//! Answers from the cached path are identical to every one-shot
//! [`cfq_core::Optimizer`] strategy because both end with final pair
//! formation re-verifying the original 2-var constraints.
//!
//! ```
//! use cfq_engine::Engine;
//! use cfq_types::{CatalogBuilder, TransactionDb};
//!
//! let mut b = CatalogBuilder::new(4);
//! b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0]).unwrap();
//! let catalog = b.build();
//! let db = TransactionDb::from_u32(
//!     4,
//!     &[&[0, 1, 2], &[1, 2, 3], &[0, 2], &[1, 3], &[0, 1, 3]],
//! );
//!
//! let engine = Engine::new(db, catalog).unwrap();
//! let session = engine.session();
//! let q = "max(S.Price) <= 20 & min(T.Price) >= 30";
//!
//! let cold = session.query(q).min_support(1).run().unwrap();
//! assert!(cold.outcome.db_scans > 0);
//!
//! // The identical query again: served entirely from the cache.
//! let warm = session.query(q).min_support(1).run().unwrap();
//! assert_eq!(warm.outcome.db_scans, 0);
//! assert_eq!(warm.outcome.s_sets, cold.outcome.s_sets);
//! assert!(warm.explain().contains("cache hit"));
//! ```

pub mod cache;
pub mod engine;
pub mod json;
pub mod request;
pub mod scheduler;
pub mod session;
pub mod snapshot;
pub mod wal;
pub mod wire;

pub use cache::CacheStats;
pub use engine::{
    DurabilityStats, Engine, EngineConfig, EngineConfigBuilder, EpochInfo, SnapshotInfo,
};
pub use request::{QueryRequest, QueryResponse, SupportSpec};
pub use scheduler::SchedulerStats;
pub use session::{QueryBuilder, QueryOutcome, Session, SessionPool};

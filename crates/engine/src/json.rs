//! A minimal JSON reader/writer for the wire request/response structs.
//!
//! The workspace is dependency-free by policy (the same reason rand and
//! proptest are vendored stubs), so [`QueryRequest`](crate::QueryRequest)
//! cannot lean on serde. This module implements exactly the JSON subset
//! the wire protocol needs: objects, arrays, strings with `\uXXXX`
//! escapes, finite numbers, booleans, and `null` — strict on structure
//! (trailing garbage and unterminated literals are errors) and tolerant
//! on whitespace.

use cfq_types::{CfqError, Result};
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup-by-first semantics of [`Json::get`] — requests should not
    /// repeat keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parses one JSON value from `text`, rejecting trailing non-whitespace.
pub fn parse(text: &str) -> Result<Json> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(v)
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> CfqError {
        CfqError::Parse(format!("json: {msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are rejected rather than
                            // combined; the protocol never emits them.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = &self.bytes[self.pos..];
                    // SAFETY: `self.bytes` came from a `&str`, and `pos`
                    // only ever advances past whole ASCII bytes or by
                    // `len_utf8` of a decoded scalar, so `rest` starts on
                    // a character boundary of valid UTF-8.
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        // `peek()` said a byte is there; an empty `rest`
                        // cannot happen, but a protocol error beats a
                        // panic in the request path.
                        None => return Err(self.err("truncated string")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        // Only ASCII sign/digit/exponent bytes were consumed, so the
        // slice is valid UTF-8; map the impossible failure to a protocol
        // error rather than panicking the worker.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| CfqError::Parse(format!("json: bad number bytes at {start}")))?;
        let n: f64 = text
            .parse()
            .map_err(|_| CfqError::Parse(format!("json: bad number `{text}` at byte {start}")))?;
        if !n.is_finite() {
            return Err(CfqError::Parse(format!("json: non-finite number `{text}`")));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_subset() {
        let v = parse(
            r#"{"query":"max(S.Price) <= 30","support":{"frac":0.25},
                "s_universe":[0,1,2],"trim":null,"bypass_cache":false}"#,
        )
        .unwrap();
        assert_eq!(v.get("query").unwrap().as_str().unwrap(), "max(S.Price) <= 30");
        assert_eq!(v.get("support").unwrap().get("frac").unwrap().as_f64(), Some(0.25));
        let u: Vec<u64> =
            v.get("s_universe").unwrap().as_arr().unwrap().iter().map(|j| j.as_u64().unwrap()).collect();
        assert_eq!(u, vec![0, 1, 2]);
        assert!(v.get("trim").unwrap().is_null());
        assert_eq!(v.get("bypass_cache").unwrap().as_bool(), Some(false));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\u{1}f — π");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str().unwrap(), "a\"b\\c\nd\te\u{1}f — π");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "\"unterminated", "01x", "{\"a\":1} trailing",
            "nul", "1e999",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn numbers_and_nesting() {
        let v = parse("[-1.5, 0, 2e3, [true, false], {\"k\": null}]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(-1.5));
        assert_eq!(a[0].as_u64(), None, "negative is not a u64");
        assert_eq!(a[1].as_u64(), Some(0));
        assert_eq!(a[2].as_u64(), Some(2000));
        assert_eq!(a[3].as_arr().unwrap()[0].as_bool(), Some(true));
        assert!(a[4].get("k").unwrap().is_null());
    }
}

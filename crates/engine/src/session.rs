//! The fluent query API: `Session::query(..).min_support(..).run()`.
//!
//! A [`Session`] is a cheap handle on an [`Engine`]. The canonical query
//! shape is a [`QueryRequest`] — [`QueryBuilder`] is sugar that fills one
//! in, and [`Session::execute`] is the single entry point both feed
//! into. Each execution takes a scheduler admission slot, snapshots the
//! engine's current epoch, plans through the plan cache, and serves each
//! variable's lattice cache-first:
//!
//! * the *effective universe* of a variable is its domain after the
//!   succinct allowed-item filter of its 1-var constraints — the largest
//!   restriction that is sound to bake into a reusable lattice;
//! * a cached **complete** lattice over any superset universe at any
//!   equal-or-lower threshold is filtered down (subset-of-universe,
//!   support, level, full 1-var evaluation) instead of re-mined;
//! * a cold miss goes through the scheduler's single-flight groups, so
//!   concurrent identical misses share one mining pass and compatible
//!   ones batch onto it at the minimum requested support;
//! * final pair formation re-verifies every original 2-var constraint
//!   and the answer is compacted to the sets participating in a valid
//!   pair — the same step the one-shot [`Optimizer`] ends with, which is
//!   why the cached path returns bit-identical answers to every mining
//!   strategy, including a fully cold run.
//!
//! A warm re-run of a query therefore performs **zero database scans**
//! (`outcome.db_scans == 0`), the property the `engine` benchmark target
//! asserts.

use crate::engine::{plan_fingerprint, Engine, EpochState};
use crate::request::QueryRequest;
use cfq_constraints::{bind_query, eval_all_one, parse_query, OneVar, SuccinctForm, Var};
use cfq_core::{
    compact_used, form_pairs_with, CfqPlan, ExecutionOutcome, LatticeSource, Optimizer,
    OutcomeProvenance, QueryEnv,
};
use cfq_mining::{CountingBackend, WorkStats};
use cfq_obs as obs;
use cfq_types::{Catalog, ItemId, Itemset, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A handle for running queries against an [`Engine`]. Cheap to clone;
/// open one per thread of work.
#[derive(Clone)]
pub struct Session {
    engine: Arc<Engine>,
}

impl Session {
    pub(crate) fn new(engine: Arc<Engine>) -> Session {
        Session { engine }
    }

    /// Starts a query from CFQ text, e.g.
    /// `"max(S.Price) <= 30 & min(T.Price) >= 40"`. Configure with the
    /// builder methods, then [`QueryBuilder::run`] or
    /// [`QueryBuilder::explain`].
    pub fn query(&self, text: &str) -> QueryBuilder {
        QueryBuilder { engine: Arc::clone(&self.engine), req: QueryRequest::new(text) }
    }

    /// Runs a fully-specified [`QueryRequest`] — the entry point the
    /// builder, the wire protocol, and programmatic callers share.
    pub fn execute(&self, req: &QueryRequest) -> Result<QueryOutcome> {
        execute(&self.engine, req)
    }

    /// Plans `req` and renders the EXPLAIN text without executing (and
    /// without taking an admission slot).
    pub fn explain(&self, req: &QueryRequest) -> Result<String> {
        explain(&self.engine, req)
    }

    /// The engine this session runs against.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }
}

/// A fixed-size, round-robin pool of [`Session`]s over one engine.
///
/// Serving stacks hand every request `pool.session()` instead of opening
/// a session per connection: scheduler fairness (admission order,
/// batching) is then per-*request*, and a connection that never speaks
/// again holds no query state.
pub struct SessionPool {
    sessions: Vec<Session>,
    next: AtomicUsize,
}

impl SessionPool {
    /// A pool of `size` sessions (at least 1) on `engine`.
    pub fn new(engine: &Arc<Engine>, size: usize) -> SessionPool {
        let size = size.max(1);
        SessionPool {
            sessions: (0..size).map(|_| engine.session()).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// The next session, round-robin.
    pub fn session(&self) -> &Session {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        &self.sessions[i % self.sessions.len()]
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        self.sessions[0].engine()
    }
}

/// Fluent configuration of one query — a thin front-end that fills in a
/// [`QueryRequest`]; terminal methods are [`QueryBuilder::run`] and
/// [`QueryBuilder::explain`].
#[derive(Clone)]
pub struct QueryBuilder {
    engine: Arc<Engine>,
    req: QueryRequest,
}

impl QueryBuilder {
    /// Absolute minimum support for both variables.
    pub fn min_support(mut self, support: u64) -> Self {
        self.req.support = crate::request::SupportSpec::Abs(support, support);
        self
    }

    /// Minimum support as a fraction of the transaction count (the
    /// default is 1%).
    pub fn min_support_frac(mut self, frac: f64) -> Self {
        self.req.support = crate::request::SupportSpec::Frac(frac);
        self
    }

    /// Distinct absolute thresholds for S and T.
    pub fn supports(mut self, s: u64, t: u64) -> Self {
        self.req.support = crate::request::SupportSpec::Abs(s, t);
        self
    }

    /// Restricts the S domain (empty = all items). Order is normalized.
    pub fn s_universe(mut self, items: Vec<ItemId>) -> Self {
        self.req.s_universe = items;
        self
    }

    /// Restricts the T domain (empty = all items). Order is normalized.
    pub fn t_universe(mut self, items: Vec<ItemId>) -> Self {
        self.req.t_universe = items;
        self
    }

    /// Caps the lattice depth (0 = unbounded). Capped queries can still
    /// *hit* the cache or join a single-flight group, but their own cold
    /// minings are not cached — a truncated family is not complete.
    pub fn max_level(mut self, max_level: usize) -> Self {
        self.req.max_level = max_level;
        self
    }

    /// Caps pair materialization (`None` = materialize all).
    pub fn max_pairs(mut self, max_pairs: usize) -> Self {
        self.req.max_pairs = Some(max_pairs);
        self
    }

    /// Selects the strategy family. With the cache enabled (the default)
    /// this shapes the plan and EXPLAIN output — answers are
    /// strategy-invariant by final pair verification. With
    /// [`QueryBuilder::bypass_cache`] it selects the one-shot executor
    /// actually run.
    pub fn strategy(mut self, strategy: Optimizer) -> Self {
        self.req.strategy = strategy;
        self
    }

    /// Overrides the engine's default support-counting thread count.
    pub fn counting_threads(mut self, threads: usize) -> Self {
        self.req.counting_threads = Some(threads);
        self
    }

    /// Overrides the engine's default horizontal shard count for
    /// counting (1 = unsharded). Sharded answers are bit-identical.
    pub fn shards(mut self, shards: usize) -> Self {
        self.req.shards = Some(shards);
        self
    }

    /// Overrides the engine's default per-level database reduction.
    pub fn trim(mut self, trim: bool) -> Self {
        self.req.trim = Some(trim);
        self
    }

    /// Overrides the engine's default support-counting backend. Every
    /// backend produces bit-identical lattices; this only changes how
    /// cold minings count.
    pub fn backend(mut self, backend: CountingBackend) -> Self {
        self.req.backend = Some(backend);
        self
    }

    /// Executes this query as a one-shot [`Optimizer`] run against the
    /// epoch snapshot — no lattice cache lookups, insertions, or
    /// single-flight groups. The plan cache is still used (plans never
    /// read the data). This is the knob benchmarks use to compare the
    /// cached path against the paper's per-query strategies.
    pub fn bypass_cache(mut self) -> Self {
        self.req.bypass_cache = true;
        self
    }

    /// The accumulated [`QueryRequest`] — what [`QueryBuilder::run`]
    /// will execute; serialize it with `to_json` to replay elsewhere.
    pub fn request(&self) -> &QueryRequest {
        &self.req
    }

    /// Plans the query and renders the EXPLAIN text, including predicted
    /// cache provenance for both lattices. Does not touch the data or
    /// perturb cache counters.
    pub fn explain(&self) -> Result<String> {
        explain(&self.engine, &self.req)
    }

    /// Runs the query and returns the outcome together with the epoch it
    /// was answered at.
    pub fn run(self) -> Result<QueryOutcome> {
        execute(&self.engine, &self.req)
    }
}

fn full_universe(req: &QueryRequest, var: Var, catalog: &Catalog) -> Vec<ItemId> {
    let u = match var {
        Var::S => &req.s_universe,
        Var::T => &req.t_universe,
    };
    if u.is_empty() {
        (0..catalog.n_items() as u32).map(ItemId).collect()
    } else {
        let mut u = u.clone();
        u.sort_unstable();
        u.dedup();
        u
    }
}

/// Plans `req` and renders the EXPLAIN text with predicted provenance.
pub(crate) fn explain(engine: &Arc<Engine>, req: &QueryRequest) -> Result<String> {
    req.validate()?;
    let snap = engine.snapshot();
    let bound = bind_query(&parse_query(&req.query)?, &snap.catalog)?;
    let (plan, plan_cached) = engine
        .plan_for(plan_fingerprint(&req.strategy, &bound, &snap.catalog), || {
            req.strategy.build_plan(&bound, &snap.catalog)
        });
    let (s_sup, t_sup) = req.support.resolve(snap.db.len())?;
    let mut provenance = OutcomeProvenance { plan_cached, ..Default::default() };
    if !req.bypass_cache {
        for (var, sup, slot) in [
            (Var::S, s_sup, &mut provenance.s_lattice),
            (Var::T, t_sup, &mut provenance.t_lattice),
        ] {
            let one: Vec<OneVar> = bound.one_var_for(var).cloned().collect();
            let form = SuccinctForm::compile(&one, &snap.catalog);
            if !form.unsatisfiable() {
                let eff = form.filter_universe(&full_universe(req, var, &snap.catalog));
                *slot = engine.peek_source(&snap, &eff, sup);
            }
        }
    }
    Ok(format!("{}{}", plan.explain(&snap.catalog), provenance.render()))
}

/// Executes `req` against `engine`: admission, snapshot, plan, both
/// sides cache-first, final pair formation.
pub(crate) fn execute(engine: &Arc<Engine>, req: &QueryRequest) -> Result<QueryOutcome> {
    // A request that can never run must not consume an admission slot.
    req.validate()?;
    // Admission covers the whole execution, including the bypass path —
    // every query holds exactly one slot while it runs.
    let permit = engine.admit()?;
    let admission_wait = permit.wait;

    let snap = engine.snapshot();
    let mut query_span = obs::span(obs::Level::Info, "session.query")
        .str("query", req.query.clone())
        .u64("epoch", snap.epoch)
        .u64("wait_us", admission_wait.as_micros() as u64);
    let bound = bind_query(&parse_query(&req.query)?, &snap.catalog)?;
    let fingerprint = plan_fingerprint(&req.strategy, &bound, &snap.catalog);
    let (plan, plan_cached) =
        engine.plan_for(fingerprint, || req.strategy.build_plan(&bound, &snap.catalog));
    let (s_sup, t_sup) = req.support.resolve(snap.db.len())?;
    let threads = req.counting_threads.unwrap_or(engine.config().counting_threads);
    let trim = req.trim.unwrap_or(engine.config().trim);
    let backend = req.backend.unwrap_or(engine.config().backend);
    let shards = req.shards.unwrap_or(engine.config().shards);

    if req.bypass_cache {
        let env = QueryEnv {
            db: &snap.db,
            catalog: &snap.catalog,
            s_universe: full_universe(req, Var::S, &snap.catalog),
            t_universe: full_universe(req, Var::T, &snap.catalog),
            s_min_support: s_sup,
            t_min_support: t_sup,
            max_level: req.max_level,
            max_pairs: req.max_pairs,
            form_pairs: true,
            counting_threads: threads,
            trim,
            backend,
            shards,
        };
        let mut outcome = req.strategy.execute_plan(&plan, &env)?;
        outcome.provenance.plan_cached = plan_cached;
        query_span.record_u64("db_scans", outcome.db_scans);
        query_span.record_str("path", "bypass_cache");
        return Ok(QueryOutcome {
            outcome,
            epoch: snap.epoch,
            admission_wait,
            plan,
            fingerprint,
            catalog: Arc::clone(&snap.catalog),
        });
    }

    let s_side =
        run_side(engine, req, &snap, &bound, Var::S, s_sup, threads, trim, backend, shards);
    let t_side =
        run_side(engine, req, &snap, &bound, Var::T, t_sup, threads, trim, backend, shards);

    let mut pair_result = form_pairs_with(
        &s_side.sets,
        &t_side.sets,
        &plan.trace().final_two,
        &snap.catalog,
        req.max_pairs,
        threads,
    );
    let (s_sets, s_remap) = compact_used(s_side.sets, &pair_result.s_used);
    let (t_sets, t_remap) = compact_used(t_side.sets, &pair_result.t_used);
    for (si, ti) in &mut pair_result.pairs {
        *si = s_remap[*si as usize];
        *ti = t_remap[*ti as usize];
    }

    let db_scans = s_side.stats.db_scans + t_side.stats.db_scans;
    let mut scan = s_side.stats.scan.clone();
    scan.absorb(&t_side.stats.scan);
    let outcome = ExecutionOutcome {
        s_sets,
        t_sets,
        pair_result,
        s_stats: s_side.stats,
        t_stats: t_side.stats,
        db_scans,
        scan,
        v_histories: Vec::new(),
        provenance: OutcomeProvenance {
            s_lattice: s_side.source,
            t_lattice: t_side.source,
            plan_cached,
        },
    };
    query_span.record_u64("db_scans", outcome.db_scans);
    query_span.record_u64("pairs", outcome.pair_result.count);
    query_span.record_str("s_lattice", outcome.provenance.s_lattice.describe());
    query_span.record_str("t_lattice", outcome.provenance.t_lattice.describe());
    Ok(QueryOutcome {
        outcome,
        epoch: snap.epoch,
        admission_wait,
        plan,
        fingerprint,
        catalog: Arc::clone(&snap.catalog),
    })
}

/// One variable's cache-first evaluation: effective universe, lattice
/// (cached, coalesced, or mined), then the filter that carves this
/// query's frequent valid sets out of the complete family.
#[allow(clippy::too_many_arguments)]
fn run_side(
    engine: &Arc<Engine>,
    req: &QueryRequest,
    snap: &EpochState,
    bound: &cfq_constraints::BoundQuery,
    var: Var,
    min_support: u64,
    threads: usize,
    trim: bool,
    backend: CountingBackend,
    shards: usize,
) -> SideOutcome {
    let one: Vec<OneVar> = bound.one_var_for(var).cloned().collect();
    let form = SuccinctForm::compile(&one, &snap.catalog);
    let mut stats = WorkStats::new();
    if form.unsatisfiable() {
        return SideOutcome { sets: Vec::new(), stats, source: LatticeSource::MinedCold };
    }
    let eff = form.filter_universe(&full_universe(req, var, &snap.catalog));
    let (lattice, source) = engine.lattice_for(
        snap,
        &eff,
        min_support,
        req.max_level,
        threads,
        trim,
        backend,
        shards,
        &mut stats,
    );

    let mut sets: Vec<(Itemset, u64)> = Vec::new();
    let mut checks = 0u64;
    for (set, n) in lattice.iter() {
        if req.max_level != 0 && set.len() > req.max_level {
            break; // iteration is by ascending level
        }
        if n < min_support {
            continue;
        }
        if !set.iter().all(|i| eff.binary_search(&i).is_ok()) {
            continue; // entry was mined over a wider universe
        }
        checks += one.len() as u64;
        if eval_all_one(&one, set, &snap.catalog) {
            sets.push((set.clone(), n));
        }
    }
    stats.record_checks(checks);
    SideOutcome { sets, stats, source }
}

struct SideOutcome {
    sets: Vec<(Itemset, u64)>,
    stats: WorkStats,
    source: LatticeSource,
}

/// A query's result: the execution outcome plus the epoch and plan it was
/// answered with.
pub struct QueryOutcome {
    /// The answer and work counters, identical in shape to a one-shot
    /// [`Optimizer`] run.
    pub outcome: ExecutionOutcome,
    /// The engine epoch this answer is exact for.
    pub epoch: u64,
    /// Time spent waiting at the scheduler's admission gate (zero on the
    /// uncontended fast path).
    pub admission_wait: Duration,
    plan: Arc<CfqPlan>,
    fingerprint: u64,
    catalog: Arc<Catalog>,
}

impl std::fmt::Debug for QueryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryOutcome")
            .field("epoch", &self.epoch)
            .field("outcome", &self.outcome)
            .finish()
    }
}

impl QueryOutcome {
    /// The plan the query ran with.
    pub fn plan(&self) -> &CfqPlan {
        &self.plan
    }

    /// The plan-cache fingerprint of the bound query + strategy — what
    /// the slow-query log records so identical plans group together.
    pub fn plan_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The EXPLAIN text: the plan plus the actual cache provenance of
    /// this execution.
    pub fn explain(&self) -> String {
        format!("{}{}", self.plan.explain(&self.catalog), self.outcome.provenance.render())
    }

    /// Number of valid (S, T) pairs.
    pub fn pair_count(&self) -> u64 {
        self.outcome.pair_result.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::request::SupportSpec;
    use cfq_types::{CatalogBuilder, CfqError, TransactionDb};

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        b.build()
    }

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[1, 2, 3, 4],
                &[0, 2, 4],
                &[0, 1, 3, 5],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4],
                &[1, 3, 5],
            ],
        )
    }

    const Q: &str = "max(S.Price) <= 30 & min(T.Price) >= 40";

    fn assert_same_answer(a: &ExecutionOutcome, b: &ExecutionOutcome) {
        assert_eq!(a.s_sets, b.s_sets);
        assert_eq!(a.t_sets, b.t_sets);
        assert_eq!(a.pair_result.count, b.pair_result.count);
        assert_eq!(a.pair_result.pairs, b.pair_result.pairs);
    }

    #[test]
    fn session_matches_one_shot_optimizer() {
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        let session = engine.session();
        let got = session.query(Q).min_support(2).run().unwrap();

        let d = db();
        let cat = catalog();
        let bound = bind_query(&parse_query(Q).unwrap(), &cat).unwrap();
        let env = QueryEnv::new(&d, &cat, 2);
        let want = Optimizer::default().evaluate(&bound, &env).unwrap();
        assert_same_answer(&got.outcome, &want);
        assert_eq!(got.epoch, 0);
        assert_eq!(got.outcome.provenance.s_lattice, LatticeSource::MinedCold);
    }

    #[test]
    fn builder_and_request_are_the_same_query() {
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        let session = engine.session();
        let built = session.query(Q).min_support(2).run().unwrap();

        let mut req = QueryRequest::new(Q);
        req.support = SupportSpec::Abs(2, 2);
        assert_eq!(session.query(Q).min_support(2).request(), &req);
        let executed = session.execute(&req).unwrap();
        assert_same_answer(&built.outcome, &executed.outcome);

        // And through the wire form.
        let wire = QueryRequest::from_json(&req.to_json()).unwrap();
        let from_wire = session.execute(&wire).unwrap();
        assert_same_answer(&built.outcome, &from_wire.outcome);
    }

    #[test]
    fn warm_rerun_scans_nothing() {
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        let session = engine.session();
        let cold = session.query(Q).min_support(2).run().unwrap();
        assert!(cold.outcome.db_scans > 0);

        let warm = session.query(Q).min_support(2).run().unwrap();
        assert_eq!(warm.outcome.db_scans, 0, "warm re-run must not scan");
        assert_eq!(warm.outcome.provenance.s_lattice, LatticeSource::Cached);
        assert_eq!(warm.outcome.provenance.t_lattice, LatticeSource::Cached);
        assert!(warm.outcome.provenance.plan_cached);
        assert_same_answer(&cold.outcome, &warm.outcome);

        let stats = engine.cache_stats();
        assert_eq!(stats.lattice_hits, 2);
        assert!(stats.scans_saved > 0);
        assert!(stats.plan_hits >= 1);

        let sched = engine.scheduler_stats();
        assert_eq!(sched.mining_passes, 2, "one pass per cold side");
        assert_eq!(sched.coalesced, 0, "sequential queries never coalesce");
        assert_eq!(sched.admitted, 2);
    }

    #[test]
    fn weaker_envelope_reuses_stronger_mining() {
        // Mine once with a loose 1-var envelope, then run a refined query
        // whose allowed set is a subset and threshold is higher: the
        // refined query must be served from the cache.
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        let session = engine.session();
        session.query("max(S.Price) <= 50 & min(T.Price) >= 30").min_support(2).run().unwrap();
        let refined =
            session.query("max(S.Price) <= 30 & min(T.Price) >= 40").min_support(3).run().unwrap();
        assert_eq!(refined.outcome.db_scans, 0);
        assert_eq!(refined.outcome.provenance.s_lattice, LatticeSource::Cached);
        assert_eq!(refined.outcome.provenance.t_lattice, LatticeSource::Cached);

        // And it matches a cold optimizer run.
        let d = db();
        let cat = catalog();
        let bound =
            bind_query(&parse_query("max(S.Price) <= 30 & min(T.Price) >= 40").unwrap(), &cat)
                .unwrap();
        let env = QueryEnv::new(&d, &cat, 3);
        let want = Optimizer::default().evaluate(&bound, &env).unwrap();
        assert_same_answer(&refined.outcome, &want);
    }

    #[test]
    fn shared_universe_sides_share_one_mining() {
        // No 1-var constraints: both sides range over the same effective
        // universe, so T hits the entry S just inserted — already on the
        // first run.
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        let session = engine.session();
        let out = session.query("sum(S.Price) <= sum(T.Price)").min_support(2).run().unwrap();
        assert_eq!(out.outcome.provenance.s_lattice, LatticeSource::MinedCold);
        assert_eq!(out.outcome.provenance.t_lattice, LatticeSource::Cached);
        assert_eq!(out.outcome.t_stats.db_scans, 0);
    }

    #[test]
    fn bypass_cache_runs_the_selected_strategy() {
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        let session = engine.session();
        let direct = session
            .query(Q)
            .min_support(2)
            .strategy(Optimizer::apriori_plus())
            .bypass_cache()
            .run()
            .unwrap();
        assert_eq!(engine.cache_stats().entries, 0, "bypass must not populate the cache");
        let cached = session.query(Q).min_support(2).run().unwrap();
        assert_same_answer(&direct.outcome, &cached.outcome);
    }

    #[test]
    fn backend_override_keeps_answers_and_cache_sharing() {
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        let session = engine.session();
        let reference = session.query(Q).min_support(2).run().unwrap();
        for b in CountingBackend::all() {
            // Lattices are backend-invariant, so every override is served
            // by the entry the first run cached — and a bypass run that
            // actually counts with the backend still matches.
            let warm = session.query(Q).min_support(2).backend(b).run().unwrap();
            assert_eq!(warm.outcome.db_scans, 0, "{b}: cache must serve any backend");
            assert_same_answer(&reference.outcome, &warm.outcome);
            let direct = session.query(Q).min_support(2).backend(b).bypass_cache().run().unwrap();
            assert_same_answer(&reference.outcome, &direct.outcome);
        }
    }

    #[test]
    fn explain_reports_provenance() {
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        let session = engine.session();
        let before = session.query(Q).min_support(2).explain().unwrap();
        assert!(before.contains("freshly mined (cold)"), "{before}");
        session.query(Q).min_support(2).run().unwrap();
        let after = session.query(Q).min_support(2).explain().unwrap();
        assert!(after.contains("cache hit (reused mined lattice)"), "{after}");
        assert!(after.contains("plan cache hit"), "{after}");
    }

    #[test]
    fn append_keeps_the_cache_warm_and_correct() {
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        let session = engine.session();
        session.query(Q).min_support(2).run().unwrap();

        let delta = TransactionDb::from_u32(6, &[&[0, 1, 2], &[3, 4, 5], &[1, 2, 3]]);
        let info = engine.append(delta.clone()).unwrap();
        assert!(info.upgraded_lattices >= 2);

        let warm = session.query(Q).min_support(2).run().unwrap();
        assert_eq!(warm.epoch, 1);
        assert_eq!(warm.outcome.db_scans, 0, "FUP-upgraded entries must serve scan-free");
        assert_eq!(warm.outcome.provenance.s_lattice, LatticeSource::FupUpgraded);

        // Equivalent to a cold engine over the combined database.
        let combined = db().concat(&delta).unwrap();
        let fresh = crate::Engine::new(combined, catalog()).unwrap();
        let want = fresh.session().query(Q).min_support(2).run().unwrap();
        assert_same_answer(&warm.outcome, &want.outcome);
    }

    #[test]
    fn tiny_budget_rejects_oversize_but_answers() {
        let cfg = EngineConfig { cache_budget_bytes: 16, ..EngineConfig::default() };
        let engine = crate::Engine::with_config(db(), catalog(), cfg).unwrap();
        let session = engine.session();
        let out = session.query(Q).min_support(2).run().unwrap();
        assert!(out.outcome.db_scans > 0, "query still mines and answers");
        let stats = engine.cache_stats();
        assert!(stats.oversize_rejections >= 1);
        assert_eq!(stats.entries, 0);
        // No entry retained: the re-run mines again.
        let again = session.query(Q).min_support(2).run().unwrap();
        assert!(again.outcome.db_scans > 0);
    }

    #[test]
    fn zero_support_is_a_typed_config_error() {
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        let err = engine.session().query(Q).min_support(0).run().unwrap_err();
        assert!(matches!(err, CfqError::Config(_)), "{err}");
        let err = engine.session().query(Q).min_support_frac(1.5).run().unwrap_err();
        assert!(matches!(err, CfqError::Config(_)), "{err}");
    }

    #[test]
    fn zero_support_fraction_is_rejected_not_clamped() {
        // Regression: `0` used to pass the `[0, 1]` range check and
        // silently mean "support 1 transaction".
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        let err = engine.session().query(Q).min_support_frac(0.0).run().unwrap_err();
        assert!(matches!(err, CfqError::Config(_)), "{err}");
        assert_eq!(err.to_string(), "configuration error: support fraction 0 is outside (0, 1]");
        let err = engine.session().query(Q).min_support_frac(-0.1).run().unwrap_err();
        assert!(err.to_string().contains("outside (0, 1]"), "{err}");
    }

    #[test]
    fn parse_errors_surface() {
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        assert!(engine.session().query("max(S.Price <= 30").min_support(2).run().is_err());
    }

    #[test]
    fn session_pool_round_robins_over_one_engine() {
        let engine = crate::Engine::new(db(), catalog()).unwrap();
        let pool = SessionPool::new(&engine, 3);
        assert!(Arc::ptr_eq(pool.engine(), &engine));
        // Warm the cache through one pool session, then observe every
        // session sharing it.
        pool.session().query(Q).min_support(2).run().unwrap();
        for _ in 0..3 {
            let out = pool.session().query(Q).min_support(2).run().unwrap();
            assert_eq!(out.outcome.db_scans, 0, "pool sessions share the engine cache");
        }
        // Size 0 is clamped to a working pool.
        let tiny = SessionPool::new(&engine, 0);
        tiny.session().query(Q).min_support(2).run().unwrap();
    }

    #[test]
    fn uncontended_admission_is_free_and_counted() {
        let cfg = EngineConfig {
            max_inflight_queries: 1,
            max_queued_queries: 1,
            ..EngineConfig::default()
        };
        let engine = crate::Engine::with_config(db(), catalog(), cfg).unwrap();
        let out = engine.session().query(Q).min_support(2).run().unwrap();
        assert_eq!(out.admission_wait, Duration::ZERO);
        let sched = engine.scheduler_stats();
        assert_eq!(sched.admitted, 1);
        assert_eq!((sched.inflight, sched.queued, sched.overloaded), (0, 0, 0));
    }
}

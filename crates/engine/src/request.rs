//! The serializable query API: [`QueryRequest`] in, [`QueryResponse`] out.
//!
//! [`QueryRequest`] is the single source of truth for *every* option a
//! query can carry — [`QueryBuilder`](crate::QueryBuilder) is a thin
//! fluent front-end that mutates one, `Session::execute` consumes one,
//! and the serve protocol's `:json` command parses one off the wire. The
//! JSON codec is hand-rolled on [`crate::json`] because the workspace is
//! dependency-free.
//!
//! ```
//! use cfq_engine::QueryRequest;
//!
//! let req = QueryRequest::from_json(
//!     r#"{"query": "max(S.Price) <= 30 & min(T.Price) >= 40",
//!         "support": {"frac": 0.25}, "strategy": "full"}"#,
//! ).unwrap();
//! let round = QueryRequest::from_json(&req.to_json()).unwrap();
//! assert_eq!(req, round);
//! ```

use crate::json::{self, Json};
use crate::session::QueryOutcome;
use cfq_core::Strategy;
use cfq_mining::CountingBackend;
use cfq_types::{CfqError, ItemId, Result};
use std::fmt::Write as _;

/// How the support threshold is specified.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SupportSpec {
    /// Fraction of the epoch's transaction count (default 1%).
    Frac(f64),
    /// Absolute thresholds, S and T.
    Abs(u64, u64),
}

impl SupportSpec {
    /// Resolves to absolute `(s, t)` thresholds against a transaction
    /// count, rejecting fractions outside `(0, 1]` and absolute zeros.
    pub fn resolve(self, rows: usize) -> Result<(u64, u64)> {
        match self {
            SupportSpec::Frac(f) => {
                // Zero is rejected, not clamped: `0` silently meaning
                // "support 1 transaction" misled serve clients into
                // mining everything.
                if !(f > 0.0 && f <= 1.0) {
                    return Err(CfqError::Config(format!(
                        "support fraction {f} is outside (0, 1]"
                    )));
                }
                let s = ((f * rows as f64).ceil() as u64).max(1);
                Ok((s, s))
            }
            SupportSpec::Abs(s, t) => {
                if s == 0 || t == 0 {
                    return Err(CfqError::Config(
                        "absolute minimum support must be at least 1".into(),
                    ));
                }
                Ok((s, t))
            }
        }
    }
}

/// One query, fully specified. Field-for-field this is everything
/// [`QueryBuilder`](crate::QueryBuilder) can express; the builder is
/// sugar over this struct.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// CFQ text, e.g. `"max(S.Price) <= 30 & min(T.Price) >= 40"`.
    pub query: String,
    /// Support threshold (default: 1% of transactions).
    pub support: SupportSpec,
    /// Restriction of the S domain (empty = all items).
    pub s_universe: Vec<ItemId>,
    /// Restriction of the T domain (empty = all items).
    pub t_universe: Vec<ItemId>,
    /// Lattice depth cap (0 = unbounded).
    pub max_level: usize,
    /// Pair materialization cap (`None` = materialize all).
    pub max_pairs: Option<usize>,
    /// Support-counting thread override (`None` = engine default).
    pub counting_threads: Option<usize>,
    /// Horizontal shard-count override for counting (`None` = engine
    /// default; 1 = unsharded). Sharded answers are bit-identical.
    pub shards: Option<usize>,
    /// Per-level database reduction override (`None` = engine default).
    pub trim: Option<bool>,
    /// Support-counting backend override (`None` = engine default).
    pub backend: Option<CountingBackend>,
    /// Strategy-family flags (plan shape; the executor when
    /// `bypass_cache` is set).
    pub strategy: Strategy,
    /// Run as a one-shot optimizer execution, skipping the lattice cache
    /// and the scheduler's single-flight groups.
    pub bypass_cache: bool,
}

impl QueryRequest {
    /// A request with the same defaults as `Session::query`.
    pub fn new(query: impl Into<String>) -> QueryRequest {
        QueryRequest {
            query: query.into(),
            support: SupportSpec::Frac(0.01),
            s_universe: Vec::new(),
            t_universe: Vec::new(),
            max_level: 0,
            max_pairs: None,
            counting_threads: None,
            shards: None,
            trim: None,
            backend: None,
            strategy: Strategy::default(),
            bypass_cache: false,
        }
    }

    /// Validates every field whose legal range is known without touching
    /// the database, returning a typed [`CfqError::Config`] naming the
    /// offending field. Both entry points call this — `Session::execute`
    /// before taking an admission slot, and the v1 wire envelope right
    /// after decoding `req` — so a bad request is rejected identically
    /// whether it arrives through the builder or off the wire. (Unknown
    /// backend/strategy *names* never reach this point: they fail JSON
    /// decoding with a [`CfqError::Parse`], and the typed fields cannot
    /// hold an invalid variant.)
    pub fn validate(&self) -> Result<()> {
        if self.query.trim().is_empty() {
            return Err(CfqError::Config("`query` must be a non-empty CFQ conjunction".into()));
        }
        match self.support {
            SupportSpec::Frac(f) if !(f > 0.0 && f <= 1.0) => {
                return Err(CfqError::Config(format!(
                    "support fraction {f} is outside (0, 1]"
                )));
            }
            SupportSpec::Abs(s, t) if s == 0 || t == 0 => {
                return Err(CfqError::Config(
                    "absolute minimum support must be at least 1".into(),
                ));
            }
            _ => {}
        }
        if self.shards == Some(0) {
            return Err(CfqError::Config(
                "`shards` must be at least 1 (omit it for the engine default)".into(),
            ));
        }
        Ok(())
    }

    /// Renders the request as one line of JSON. Named strategy families
    /// serialize as their name; hand-rolled flag sets as a bool object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"query\":");
        json::write_escaped(&mut out, &self.query);
        match self.support {
            SupportSpec::Frac(f) => {
                let _ = write!(out, ",\"support\":{{\"frac\":{f}}}");
            }
            SupportSpec::Abs(s, t) => {
                let _ = write!(out, ",\"support\":{{\"s\":{s},\"t\":{t}}}");
            }
        }
        for (key, universe) in
            [("s_universe", &self.s_universe), ("t_universe", &self.t_universe)]
        {
            if !universe.is_empty() {
                let _ = write!(out, ",\"{key}\":[");
                for (i, item) in universe.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}", item.0);
                }
                out.push(']');
            }
        }
        if self.max_level != 0 {
            let _ = write!(out, ",\"max_level\":{}", self.max_level);
        }
        if let Some(n) = self.max_pairs {
            let _ = write!(out, ",\"max_pairs\":{n}");
        }
        if let Some(n) = self.counting_threads {
            let _ = write!(out, ",\"counting_threads\":{n}");
        }
        if let Some(n) = self.shards {
            let _ = write!(out, ",\"shards\":{n}");
        }
        if let Some(t) = self.trim {
            let _ = write!(out, ",\"trim\":{t}");
        }
        if let Some(b) = self.backend {
            let _ = write!(out, ",\"backend\":\"{}\"", b.name());
        }
        match self.strategy.name() {
            Some(name) => {
                let _ = write!(out, ",\"strategy\":\"{name}\"");
            }
            None => {
                let _ = write!(
                    out,
                    ",\"strategy\":{{\"push_one_var\":{},\"push_two_var\":{},\"use_jkmax\":{},\"dovetail\":{}}}",
                    self.strategy.push_one_var,
                    self.strategy.push_two_var,
                    self.strategy.use_jkmax,
                    self.strategy.dovetail
                );
            }
        }
        if self.bypass_cache {
            out.push_str(",\"bypass_cache\":true");
        }
        out.push('}');
        out
    }

    /// Parses a request from JSON. Only `"query"` is required; every
    /// other field falls back to its [`QueryRequest::new`] default.
    /// Unknown keys are rejected so typos fail loudly instead of
    /// silently running with defaults.
    pub fn from_json(text: &str) -> Result<QueryRequest> {
        let v = json::parse(text)?;
        QueryRequest::from_value(&v)
    }

    /// Parses a request from an already-parsed JSON value — the entry
    /// point the v1 wire envelope uses for its embedded `req` object.
    pub fn from_value(v: &Json) -> Result<QueryRequest> {
        let fields = match v {
            Json::Obj(fields) => fields,
            _ => return Err(CfqError::Parse("request must be a JSON object".into())),
        };
        const KNOWN: &[&str] = &[
            "query", "support", "s_universe", "t_universe", "max_level", "max_pairs",
            "counting_threads", "shards", "trim", "backend", "strategy", "bypass_cache",
        ];
        for (key, _) in fields {
            if !KNOWN.contains(&key.as_str()) {
                return Err(CfqError::Parse(format!("unknown request field `{key}`")));
            }
        }
        let query = v
            .get("query")
            .and_then(Json::as_str)
            .ok_or_else(|| CfqError::Parse("request needs a string `query` field".into()))?;
        let mut req = QueryRequest::new(query);

        if let Some(s) = v.get("support") {
            req.support = parse_support(s)?;
        }
        for (key, slot) in
            [("s_universe", &mut req.s_universe), ("t_universe", &mut req.t_universe)]
        {
            if let Some(u) = v.get(key) {
                let items = u
                    .as_arr()
                    .ok_or_else(|| CfqError::Parse(format!("`{key}` must be an array")))?;
                *slot = items
                    .iter()
                    .map(|j| {
                        j.as_u64()
                            .filter(|&n| n <= u32::MAX as u64)
                            .map(|n| ItemId(n as u32))
                            .ok_or_else(|| {
                                CfqError::Parse(format!("`{key}` entries must be item ids"))
                            })
                    })
                    .collect::<Result<Vec<_>>>()?;
            }
        }
        if let Some(n) = v.get("max_level") {
            req.max_level = n
                .as_u64()
                .ok_or_else(|| CfqError::Parse("`max_level` must be a non-negative integer".into()))?
                as usize;
        }
        for (key, slot) in [
            ("max_pairs", &mut req.max_pairs),
            ("counting_threads", &mut req.counting_threads),
            ("shards", &mut req.shards),
        ] {
            match v.get(key) {
                None => {}
                Some(j) if j.is_null() => {}
                Some(j) => {
                    *slot = Some(j.as_u64().ok_or_else(|| {
                        CfqError::Parse(format!("`{key}` must be a non-negative integer"))
                    })? as usize);
                }
            }
        }
        match v.get("trim") {
            None => {}
            Some(j) if j.is_null() => {}
            Some(j) => {
                req.trim = Some(
                    j.as_bool()
                        .ok_or_else(|| CfqError::Parse("`trim` must be a boolean".into()))?,
                );
            }
        }
        match v.get("backend") {
            None => {}
            Some(j) if j.is_null() => {}
            Some(j) => {
                let name = j.as_str().ok_or_else(|| {
                    CfqError::Parse("`backend` must be a backend name".into())
                })?;
                req.backend = Some(CountingBackend::parse(name).ok_or_else(|| {
                    CfqError::Parse(format!(
                        "unknown backend `{name}` (expected horizontal, tidset, bitmap, or auto)"
                    ))
                })?);
            }
        }
        if let Some(s) = v.get("strategy") {
            req.strategy = parse_strategy(s)?;
        }
        if let Some(b) = v.get("bypass_cache") {
            req.bypass_cache = b
                .as_bool()
                .ok_or_else(|| CfqError::Parse("`bypass_cache` must be a boolean".into()))?;
        }
        Ok(req)
    }
}

fn parse_support(v: &Json) -> Result<SupportSpec> {
    // Accepted shapes: 0.25 (fraction shorthand), {"frac": 0.25},
    // {"s": 3, "t": 4}, {"abs": 3} (both sides).
    if let Some(f) = v.as_f64() {
        return Ok(SupportSpec::Frac(f));
    }
    if let Some(f) = v.get("frac").and_then(Json::as_f64) {
        return Ok(SupportSpec::Frac(f));
    }
    if let Some(n) = v.get("abs").and_then(Json::as_u64) {
        return Ok(SupportSpec::Abs(n, n));
    }
    if let (Some(s), Some(t)) =
        (v.get("s").and_then(Json::as_u64), v.get("t").and_then(Json::as_u64))
    {
        return Ok(SupportSpec::Abs(s, t));
    }
    Err(CfqError::Parse(
        "`support` must be a fraction, {\"frac\":f}, {\"abs\":n}, or {\"s\":n,\"t\":n}".into(),
    ))
}

fn parse_strategy(v: &Json) -> Result<Strategy> {
    if let Some(name) = v.as_str() {
        return Strategy::from_name(name)
            .ok_or_else(|| CfqError::Parse(format!("unknown strategy `{name}`")));
    }
    if matches!(v, Json::Obj(_)) {
        let flag = |key: &str, default: bool| -> Result<bool> {
            match v.get(key) {
                None => Ok(default),
                Some(j) => j
                    .as_bool()
                    .ok_or_else(|| CfqError::Parse(format!("strategy `{key}` must be a boolean"))),
            }
        };
        let d = Strategy::default();
        return Ok(Strategy {
            push_one_var: flag("push_one_var", d.push_one_var)?,
            push_two_var: flag("push_two_var", d.push_two_var)?,
            use_jkmax: flag("use_jkmax", d.use_jkmax)?,
            dovetail: flag("dovetail", d.dovetail)?,
        });
    }
    Err(CfqError::Parse("`strategy` must be a name or a flag object".into()))
}

/// A query's answer in wire form: the valid sets and pairs plus the
/// provenance and work counters a client needs to reason about cost.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResponse {
    /// The engine epoch the answer is exact for.
    pub epoch: u64,
    /// Number of valid (S, T) pairs (counted even past `max_pairs`).
    pub pair_count: u64,
    /// Materialized pairs as `(s_index, t_index)` into the set lists.
    pub pairs: Vec<(u32, u32)>,
    /// Frequent valid S-sets as `(items, support)`.
    pub s_sets: Vec<(Vec<u32>, u64)>,
    /// Frequent valid T-sets as `(items, support)`.
    pub t_sets: Vec<(Vec<u32>, u64)>,
    /// Database scans this execution performed (0 = fully cache-served).
    pub db_scans: u64,
    /// Provenance of the S lattice (`LatticeSource::describe`).
    pub s_lattice: String,
    /// Provenance of the T lattice.
    pub t_lattice: String,
    /// Whether the plan came from the plan cache.
    pub plan_cached: bool,
    /// Microseconds the query waited in the scheduler's admission queue.
    pub wait_us: u64,
}

impl QueryResponse {
    /// Projects a [`QueryOutcome`] into wire form.
    pub fn from_outcome(out: &QueryOutcome) -> QueryResponse {
        let project = |sets: &[(cfq_types::Itemset, u64)]| {
            sets.iter()
                .map(|(set, n)| (set.iter().map(|i| i.0).collect(), *n))
                .collect()
        };
        QueryResponse {
            epoch: out.epoch,
            pair_count: out.outcome.pair_result.count,
            pairs: out.outcome.pair_result.pairs.clone(),
            s_sets: project(&out.outcome.s_sets),
            t_sets: project(&out.outcome.t_sets),
            db_scans: out.outcome.db_scans,
            s_lattice: out.outcome.provenance.s_lattice.describe().to_string(),
            t_lattice: out.outcome.provenance.t_lattice.describe().to_string(),
            plan_cached: out.outcome.provenance.plan_cached,
            wait_us: out.admission_wait.as_micros() as u64,
        }
    }

    /// Renders the response as one line of JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"epoch\":{},\"pair_count\":{}", self.epoch, self.pair_count);
        out.push_str(",\"pairs\":[");
        for (i, (s, t)) in self.pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{s},{t}]");
        }
        out.push(']');
        for (key, sets) in [("s_sets", &self.s_sets), ("t_sets", &self.t_sets)] {
            let _ = write!(out, ",\"{key}\":[");
            for (i, (items, support)) in sets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"items\":[");
                for (j, item) in items.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{item}");
                }
                let _ = write!(out, "],\"support\":{support}}}");
            }
            out.push(']');
        }
        let _ = write!(out, ",\"db_scans\":{}", self.db_scans);
        out.push_str(",\"s_lattice\":");
        json::write_escaped(&mut out, &self.s_lattice);
        out.push_str(",\"t_lattice\":");
        json::write_escaped(&mut out, &self.t_lattice);
        let _ = write!(out, ",\"plan_cached\":{},\"wait_us\":{}", self.plan_cached, self.wait_us);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_gets_defaults() {
        let req = QueryRequest::from_json(r#"{"query": "count(S) >= 1"}"#).unwrap();
        assert_eq!(req, QueryRequest::new("count(S) >= 1"));
        assert_eq!(req.support, SupportSpec::Frac(0.01));
        assert!(!req.bypass_cache);
    }

    #[test]
    fn full_request_round_trips() {
        let req = QueryRequest {
            query: "max(S.Price) <= 30 & min(T.Price) >= 40".into(),
            support: SupportSpec::Abs(2, 3),
            s_universe: vec![ItemId(0), ItemId(1)],
            t_universe: vec![ItemId(4)],
            max_level: 3,
            max_pairs: Some(100),
            counting_threads: Some(2),
            shards: Some(4),
            trim: Some(false),
            backend: Some(CountingBackend::Auto),
            strategy: Strategy::cap_one_var(),
            bypass_cache: true,
        };
        let round = QueryRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(req, round);
    }

    #[test]
    fn hand_rolled_strategy_round_trips_as_flags() {
        let mut req = QueryRequest::new("count(S) >= 1");
        req.strategy = Strategy { dovetail: false, ..Strategy::default() };
        assert!(req.strategy.name().is_none());
        assert!(req.to_json().contains("\"dovetail\":false"));
        assert_eq!(QueryRequest::from_json(&req.to_json()).unwrap(), req);
    }

    #[test]
    fn support_shorthands() {
        let frac =
            QueryRequest::from_json(r#"{"query":"q", "support": 0.5}"#).unwrap();
        assert_eq!(frac.support, SupportSpec::Frac(0.5));
        let abs = QueryRequest::from_json(r#"{"query":"q", "support": {"abs": 7}}"#).unwrap();
        assert_eq!(abs.support, SupportSpec::Abs(7, 7));
        let st =
            QueryRequest::from_json(r#"{"query":"q", "support": {"s": 2, "t": 9}}"#).unwrap();
        assert_eq!(st.support, SupportSpec::Abs(2, 9));
    }

    #[test]
    fn typos_are_rejected_not_defaulted() {
        let err = QueryRequest::from_json(r#"{"query":"q", "bypass_cahce": true}"#).unwrap_err();
        assert!(err.to_string().contains("bypass_cahce"), "{err}");
        assert!(QueryRequest::from_json(r#"{"support": 0.5}"#).is_err(), "query is required");
        assert!(QueryRequest::from_json(r#"{"query":"q","strategy":"fastest"}"#).is_err());
        assert!(QueryRequest::from_json(r#"{"query":"q","backend":"vertical"}"#).is_err());
    }

    #[test]
    fn backend_round_trips_by_name() {
        for name in ["horizontal", "tidset", "bitmap", "auto"] {
            let req = QueryRequest::from_json(&format!(
                r#"{{"query":"q","backend":"{name}"}}"#
            ))
            .unwrap();
            assert_eq!(req.backend.unwrap().name(), name);
            assert_eq!(QueryRequest::from_json(&req.to_json()).unwrap(), req);
        }
        let dflt = QueryRequest::from_json(r#"{"query":"q","backend":null}"#).unwrap();
        assert_eq!(dflt.backend, None);
    }

    #[test]
    fn validate_rejects_out_of_range_fields_with_typed_errors() {
        let ok = QueryRequest::new("count(S) >= 1");
        assert!(ok.validate().is_ok());

        let mut req = ok.clone();
        req.support = SupportSpec::Frac(0.0);
        let err = req.validate().unwrap_err();
        assert!(matches!(err, CfqError::Config(_)), "{err}");
        assert_eq!(err.to_string(), "configuration error: support fraction 0 is outside (0, 1]");
        req.support = SupportSpec::Frac(1.5);
        assert!(req.validate().is_err());
        req.support = SupportSpec::Abs(0, 3);
        assert!(matches!(req.validate().unwrap_err(), CfqError::Config(_)));

        let mut req = ok.clone();
        req.shards = Some(0);
        let err = req.validate().unwrap_err();
        assert!(err.to_string().contains("shards"), "{err}");
        req.shards = Some(1);
        assert!(req.validate().is_ok());

        let empty = QueryRequest::new("   ");
        assert!(matches!(empty.validate().unwrap_err(), CfqError::Config(_)));
    }

    #[test]
    fn support_resolution_validates() {
        assert_eq!(SupportSpec::Frac(0.5).resolve(8).unwrap(), (4, 4));
        assert_eq!(SupportSpec::Abs(2, 3).resolve(8).unwrap(), (2, 3));
        assert!(SupportSpec::Frac(0.0).resolve(8).is_err());
        assert!(SupportSpec::Frac(1.5).resolve(8).is_err());
        assert!(SupportSpec::Abs(0, 1).resolve(8).is_err());
    }

    #[test]
    fn response_renders_valid_json() {
        let resp = QueryResponse {
            epoch: 1,
            pair_count: 2,
            pairs: vec![(0, 1), (1, 0)],
            s_sets: vec![(vec![0, 2], 3)],
            t_sets: vec![(vec![4], 2), (vec![5], 2)],
            db_scans: 0,
            s_lattice: "cache hit (reused mined lattice)".into(),
            t_lattice: "coalesced (shared an in-flight mining)".into(),
            plan_cached: true,
            wait_us: 17,
        };
        let v = crate::json::parse(&resp.to_json()).unwrap();
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("pairs").unwrap().as_arr().unwrap().len(), 2);
        let s0 = &v.get("s_sets").unwrap().as_arr().unwrap()[0];
        assert_eq!(s0.get("support").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("t_lattice").unwrap().as_str().unwrap(), resp.t_lattice);
        assert_eq!(v.get("wait_us").unwrap().as_u64(), Some(17));
    }
}

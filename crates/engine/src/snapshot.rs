//! Binary snapshots of the engine's state: the epoch, the full
//! [`TransactionDb`], and the hot lattices the LRU budget was holding.
//!
//! A snapshot bounds WAL replay at boot — recovery loads the newest
//! snapshot, then replays only the records above its epoch — and it is
//! what makes a restart *warm*: the lattices inside it go straight back
//! into the cache, so the first query after `kill -9` answers with zero
//! database scans, exactly like the process that died.
//!
//! Codec (hand-rolled, same dependency policy as [`crate::wal`]):
//!
//! ```text
//! file    := magic "CFQSNAP1" len:u32 crc:u32 payload[len]
//! payload := epoch:u64 db lattice_count:u64 lattice*
//! db      := n_items:u64 n_rows:u64 (row_len:u32 item:u32*)*
//! lattice := ulen:u64 item:u32* min_support:u64 scans_cost:u64
//!            n_levels:u64 (n_sets:u64 (slen:u32 item:u32* support:u64)*)*
//! ```
//!
//! Writes go to a `.tmp` sibling, fsync, then rename — a crash mid-write
//! leaves the previous snapshot intact. Every load is gated by the CRC,
//! by [`TransactionDb::validate`], and by structural checks on each
//! lattice (sorted levels, per-level cardinality) before anything is
//! installed.

use crate::wal::{crc32, decode_db, encode_db, fsync_dir, put_u32, put_u64, Cursor};
use cfq_mining::FrequentSets;
use cfq_types::{CfqError, ItemId, Itemset, Result, TransactionDb};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic header of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CFQSNAP1";
/// File extension of snapshot files.
pub const SNAPSHOT_EXT: &str = "cfqs";
/// Snapshot generations kept on disk (the newest plus one fallback).
const KEEP_SNAPSHOTS: usize = 2;

/// A borrowed view of one cache entry being snapshotted.
pub struct LatticeView<'a> {
    /// Ascending universe the lattice was mined over.
    pub universe: &'a [ItemId],
    /// Absolute threshold the family is complete down to.
    pub min_support: u64,
    /// Scans the original mining cost (LRU credit on future hits).
    pub scans_cost: u64,
    /// The family itself.
    pub lattice: &'a FrequentSets,
}

/// A decoded snapshot, validated and ready to install.
pub struct SnapshotImage {
    /// The epoch the snapshot captured.
    pub epoch: u64,
    /// The full database at that epoch.
    pub db: TransactionDb,
    /// The hot lattices that were cached at that epoch.
    pub lattices: Vec<LatticeImage>,
}

/// One recovered cache entry.
pub struct LatticeImage {
    /// Ascending universe the lattice was mined over.
    pub universe: Vec<ItemId>,
    /// Absolute threshold the family is complete down to.
    pub min_support: u64,
    /// Scans the original mining cost.
    pub scans_cost: u64,
    /// The family itself.
    pub lattice: FrequentSets,
}

/// Path of the snapshot capturing `epoch`.
pub fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch:020}.{SNAPSHOT_EXT}"))
}

/// Snapshot files in `dir`, `(epoch, path)`, ascending by epoch.
pub fn snapshot_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        let Some(stem) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(&format!(".{SNAPSHOT_EXT}")))
        else {
            continue;
        };
        if let Ok(epoch) = stem.parse::<u64>() {
            out.push((epoch, path));
        }
    }
    out.sort_unstable_by_key(|(epoch, _)| *epoch);
    Ok(out)
}

/// Writes a snapshot of `db` and `lattices` at `epoch` into `dir`
/// (tmp-write, fsync, rename), pruning generations beyond
/// `KEEP_SNAPSHOTS`. Returns the final path and the byte size.
pub fn write(
    dir: &Path,
    epoch: u64,
    db: &TransactionDb,
    lattices: &[LatticeView<'_>],
) -> Result<(PathBuf, u64)> {
    let mut payload = Vec::with_capacity(64 + db.total_items() * 4);
    put_u64(&mut payload, epoch);
    encode_db(&mut payload, db);
    put_u64(&mut payload, lattices.len() as u64);
    for l in lattices {
        put_u64(&mut payload, l.universe.len() as u64);
        for item in l.universe {
            put_u32(&mut payload, item.0);
        }
        put_u64(&mut payload, l.min_support);
        put_u64(&mut payload, l.scans_cost);
        put_u64(&mut payload, l.lattice.n_levels() as u64);
        for k in 1..=l.lattice.n_levels() {
            let level = l.lattice.level(k);
            put_u64(&mut payload, level.len() as u64);
            for (set, support) in level {
                put_u32(&mut payload, set.len() as u32);
                for item in set.iter() {
                    put_u32(&mut payload, item.0);
                }
                put_u64(&mut payload, *support);
            }
        }
    }

    let path = snapshot_path(dir, epoch);
    let tmp = path.with_extension(format!("{SNAPSHOT_EXT}.tmp"));
    let mut file = File::create(&tmp)
        .map_err(|e| CfqError::Io(format!("create {}: {e}", tmp.display())))?;
    file.write_all(SNAPSHOT_MAGIC)?;
    file.write_all(&(payload.len() as u32).to_le_bytes())?;
    file.write_all(&crc32(&payload).to_le_bytes())?;
    file.write_all(&payload)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, &path)?;
    fsync_dir(dir);

    // Prune old generations, newest-first survivorship.
    let mut files = snapshot_files(dir)?;
    while files.len() > KEEP_SNAPSHOTS {
        let (_, old) = files.remove(0);
        fs::remove_file(&old)?;
    }

    let bytes = (SNAPSHOT_MAGIC.len() + 8 + payload.len()) as u64;
    Ok((path, bytes))
}

/// Loads and validates the snapshot at `path`.
pub fn load(path: &Path) -> Result<SnapshotImage> {
    let bytes =
        fs::read(path).map_err(|e| CfqError::Io(format!("read {}: {e}", path.display())))?;
    let head = SNAPSHOT_MAGIC.len() + 8;
    if bytes.len() < head || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(CfqError::Io(format!("{} is not a cfq snapshot", path.display())));
    }
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    let payload = &bytes[head..];
    if payload.len() != len {
        return Err(CfqError::Io(format!(
            "{}: truncated snapshot ({} payload bytes, header says {len})",
            path.display(),
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(CfqError::Io(format!("{}: snapshot checksum mismatch", path.display())));
    }

    let mut c = Cursor::new(payload);
    let epoch = c.u64()?;
    let db = decode_db(&mut c)?;
    let n_lattices = c.u64()? as usize;
    let mut lattices = Vec::with_capacity(n_lattices);
    for _ in 0..n_lattices {
        let ulen = c.u64()? as usize;
        let mut universe = Vec::with_capacity(ulen);
        for _ in 0..ulen {
            universe.push(ItemId(c.u32()?));
        }
        if !universe.windows(2).all(|w| w[0] < w[1]) {
            return Err(CfqError::Io("corrupt snapshot: universe not ascending".into()));
        }
        let min_support = c.u64()?;
        let scans_cost = c.u64()?;
        let n_levels = c.u64()? as usize;
        let mut lattice = FrequentSets::new();
        for level_no in 1..=n_levels {
            let n_sets = c.u64()? as usize;
            let mut sets: Vec<(Itemset, u64)> = Vec::with_capacity(n_sets);
            for _ in 0..n_sets {
                let slen = c.u32()? as usize;
                if slen != level_no {
                    return Err(CfqError::Io(format!(
                        "corrupt snapshot: a {slen}-set stored at level {level_no}"
                    )));
                }
                let mut items = Vec::with_capacity(slen);
                for _ in 0..slen {
                    items.push(ItemId(c.u32()?));
                }
                if !items.windows(2).all(|w| w[0] < w[1]) {
                    return Err(CfqError::Io(
                        "corrupt snapshot: itemset not ascending".into(),
                    ));
                }
                let support = c.u64()?;
                if support < min_support {
                    return Err(CfqError::Io(format!(
                        "corrupt snapshot: support {support} below the lattice \
                         threshold {min_support}"
                    )));
                }
                sets.push((Itemset::from_sorted_vec(items), support));
            }
            if !sets.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(CfqError::Io("corrupt snapshot: level not sorted".into()));
            }
            lattice.push_level(sets);
        }
        lattices.push(LatticeImage { universe, min_support, scans_cost, lattice });
    }
    if !c.done() {
        return Err(CfqError::Io("corrupt snapshot: trailing bytes".into()));
    }
    Ok(SnapshotImage { epoch, db, lattices })
}

/// Loads the newest snapshot in `dir`, or `None` when there is none. A
/// snapshot that fails validation falls back to the previous generation
/// (and an error is returned only when every generation is bad).
pub fn load_latest(dir: &Path) -> Result<Option<SnapshotImage>> {
    let files = snapshot_files(dir)?;
    let mut last_err: Option<CfqError> = None;
    for (_, path) in files.into_iter().rev() {
        match load(&path) {
            Ok(image) => return Ok(Some(image)),
            Err(e) => last_err = Some(e),
        }
    }
    match last_err {
        Some(e) => Err(e),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "cfq_snap_{tag}_{}_{n}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn db() -> TransactionDb {
        TransactionDb::from_u32(4, &[&[0, 1, 2], &[1, 2], &[0, 3]])
    }

    fn lattice() -> FrequentSets {
        let mut fs = FrequentSets::new();
        fs.push_level(vec![
            (Itemset::singleton(ItemId(0)), 2),
            (Itemset::singleton(ItemId(1)), 2),
            (Itemset::singleton(ItemId(2)), 2),
        ]);
        fs.push_level(vec![(
            Itemset::from_sorted_vec(vec![ItemId(1), ItemId(2)]),
            2,
        )]);
        fs
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tmp_dir("roundtrip");
        let fs1 = lattice();
        let universe: Vec<ItemId> = (0..4u32).map(ItemId).collect();
        let views = vec![LatticeView {
            universe: &universe,
            min_support: 2,
            scans_cost: 3,
            lattice: &fs1,
        }];
        let (path, bytes) = write(&dir, 7, &db(), &views).unwrap();
        assert!(path.to_string_lossy().contains("snapshot-"));
        assert!(bytes > 0);

        let image = load_latest(&dir).unwrap().unwrap();
        assert_eq!(image.epoch, 7);
        assert_eq!(image.db.len(), 3);
        assert_eq!(image.db.transaction(2), &[ItemId(0), ItemId(3)]);
        assert_eq!(image.lattices.len(), 1);
        let l = &image.lattices[0];
        assert_eq!(l.min_support, 2);
        assert_eq!(l.scans_cost, 3);
        assert_eq!(l.lattice.total(), 4);
        assert_eq!(
            l.lattice.support(&Itemset::from_sorted_vec(vec![ItemId(1), ItemId(2)])),
            Some(2)
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_rejected_and_falls_back() {
        let dir = tmp_dir("corrupt");
        write(&dir, 1, &db(), &[]).unwrap();
        let (path2, _) = write(&dir, 2, &db(), &[]).unwrap();
        // Corrupt the newest generation: loading falls back to epoch 1.
        let mut bytes = fs::read(&path2).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path2, &bytes).unwrap();
        let image = load_latest(&dir).unwrap().unwrap();
        assert_eq!(image.epoch, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_loads_nothing() {
        let dir = tmp_dir("empty");
        assert!(load_latest(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn old_generations_are_pruned() {
        let dir = tmp_dir("prune");
        for epoch in 1..=4u64 {
            write(&dir, epoch, &db(), &[]).unwrap();
        }
        let epochs: Vec<u64> =
            snapshot_files(&dir).unwrap().into_iter().map(|(e, _)| e).collect();
        assert_eq!(epochs, vec![3, 4]);
        fs::remove_dir_all(&dir).ok();
    }
}

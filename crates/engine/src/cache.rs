//! The engine's cross-query caches.
//!
//! Two caches live behind the [`crate::Engine`] state lock:
//!
//! * `LatticeCache` — mined frequent-set lattices, keyed by the
//!   *effective universe* they were mined over (the query universe after
//!   the succinct allowed-item filter), their absolute support threshold,
//!   and the database epoch. Only **complete** lattices are stored: mined
//!   unbounded, with no validity pruning beyond the universe restriction.
//!   Completeness is what makes an entry reusable — any query whose
//!   effective universe is a subset and whose threshold is no lower can
//!   carve its answer out of the entry by filtering, and it is what keeps
//!   the family downward-closed so FUP can upgrade it in place at an
//!   epoch swap. Eviction is least-recently-used under a byte budget
//!   measured with [`FrequentSets::approx_bytes`].
//! * `PlanCache` — optimizer plans keyed by a fingerprint of the bound
//!   query and strategy flags. Plans never read the data, so entries
//!   survive epoch swaps; the cache is count-capped, not byte-budgeted.
//!
//! Neither cache is itself thread-safe; the engine serializes access
//! through its state mutex and keeps mining *outside* that lock.

use cfq_core::{CfqPlan, LatticeSource};
use cfq_mining::FrequentSets;
use cfq_obs as obs;
use cfq_types::{CfqError, FxHashMap, ItemId, Result};
use std::sync::Arc;

/// Point-in-time snapshot of the engine's cache counters, returned by
/// `Engine::cache_stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries whose lattice was served from the cache.
    pub lattice_hits: u64,
    /// Queries that had to mine a lattice.
    pub lattice_misses: u64,
    /// Database scans avoided by lattice hits (the sum of the mining cost
    /// of every entry at each hit).
    pub scans_saved: u64,
    /// Plans served from the plan cache.
    pub plan_hits: u64,
    /// Plans built fresh.
    pub plan_misses: u64,
    /// Lattice entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Lattices too large for the whole budget, rejected at insertion.
    pub oversize_rejections: u64,
    /// Freshly mined lattices dropped because the epoch moved underneath
    /// the mining (an `append` landed mid-query).
    pub stale_drops: u64,
    /// Live lattice entries.
    pub entries: usize,
    /// Bytes currently held by lattice entries.
    pub bytes_used: usize,
    /// The configured lattice byte budget.
    pub budget_bytes: usize,
}

/// One cached lattice: the complete frequent-set family of `universe` in
/// the epoch's database at threshold `min_support`.
pub(crate) struct LatticeEntry {
    /// Epoch of the database the supports are exact for.
    pub epoch: u64,
    /// The ascending effective universe the lattice was mined over.
    pub universe: Arc<Vec<ItemId>>,
    /// Absolute support threshold the family is complete down to.
    pub min_support: u64,
    /// The mined family.
    pub lattice: Arc<FrequentSets>,
    /// How this entry was produced (cold mining or FUP upgrade).
    pub source: LatticeSource,
    /// Budget charge, from [`FrequentSets::approx_bytes`].
    pub bytes: usize,
    /// Database scans the original mining cost — credited to
    /// `scans_saved` on every hit.
    pub scans_cost: u64,
    /// LRU clock stamp of the last hit (or the insertion).
    pub last_used: u64,
}

/// What a successful lattice lookup hands back to the engine.
pub(crate) struct CacheHit {
    pub lattice: Arc<FrequentSets>,
    pub source: LatticeSource,
    pub scans_cost: u64,
}

/// The byte-budgeted LRU cache of complete lattices.
pub(crate) struct LatticeCache {
    entries: Vec<LatticeEntry>,
    budget: usize,
    bytes_used: usize,
    clock: u64,
    pub hits: u64,
    pub misses: u64,
    pub scans_saved: u64,
    pub evictions: u64,
    pub oversize_rejections: u64,
    pub stale_drops: u64,
}

/// Two-pointer subset test over ascending item lists.
fn is_superset(sup: &[ItemId], sub: &[ItemId]) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    let mut i = 0;
    for x in sub {
        while i < sup.len() && sup[i] < *x {
            i += 1;
        }
        if i == sup.len() || sup[i] != *x {
            return false;
        }
        i += 1;
    }
    true
}

impl LatticeCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget: usize) -> Self {
        LatticeCache {
            entries: Vec::new(),
            budget,
            bytes_used: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            scans_saved: 0,
            evictions: 0,
            oversize_rejections: 0,
            stale_drops: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Index of the best entry serving `(universe, min_support)` at
    /// `epoch`: any same-epoch entry mined over a superset universe at a
    /// threshold no higher than requested. Prefers the smallest superset
    /// (least filtering), tie-broken toward the closest threshold.
    fn find(&self, epoch: u64, universe: &[ItemId], min_support: u64) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.epoch == epoch
                    && e.min_support <= min_support
                    && is_superset(&e.universe, universe)
            })
            .min_by_key(|(_, e)| (e.universe.len(), u64::MAX - e.min_support))
            .map(|(i, _)| i)
    }

    /// Looks up a lattice, recording the hit or miss and bumping LRU.
    pub fn lookup(&mut self, epoch: u64, universe: &[ItemId], min_support: u64) -> Option<CacheHit> {
        match self.find(epoch, universe, min_support) {
            Some(i) => {
                let stamp = self.tick();
                let e = &mut self.entries[i];
                e.last_used = stamp;
                self.hits += 1;
                self.scans_saved += e.scans_cost;
                Some(CacheHit {
                    lattice: Arc::clone(&e.lattice),
                    source: e.source,
                    scans_cost: e.scans_cost,
                })
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Like [`LatticeCache::lookup`] but without touching any counter or
    /// LRU state — used by `explain` to predict provenance.
    pub fn peek(&self, epoch: u64, universe: &[ItemId], min_support: u64) -> Option<LatticeSource> {
        self.find(epoch, universe, min_support).map(|i| self.entries[i].source)
    }

    /// Inserts an entry, evicting least-recently-used entries until the
    /// budget holds. An entry larger than the entire budget is rejected
    /// with [`CfqError::CacheBudget`]; the query it came from already
    /// succeeded, the lattice is just not retained.
    pub fn insert(&mut self, mut entry: LatticeEntry) -> Result<()> {
        if entry.bytes > self.budget {
            self.oversize_rejections += 1;
            obs::event(
                obs::Level::Warn,
                "cache.oversize_reject",
                &[
                    ("bytes", obs::FieldValue::U64(entry.bytes as u64)),
                    ("budget", obs::FieldValue::U64(self.budget as u64)),
                ],
            );
            return Err(CfqError::CacheBudget(format!(
                "lattice of {} bytes exceeds the cache budget of {} bytes",
                entry.bytes, self.budget
            )));
        }
        // Replace an entry for the same key outright.
        if let Some(i) = self.entries.iter().position(|e| {
            e.epoch == entry.epoch
                && e.min_support == entry.min_support
                && *e.universe == *entry.universe
        }) {
            let old = self.entries.swap_remove(i);
            self.bytes_used -= old.bytes;
        }
        while self.bytes_used + entry.bytes > self.budget {
            self.evict_lru();
        }
        entry.last_used = self.tick();
        self.bytes_used += entry.bytes;
        self.entries.push(entry);
        Ok(())
    }

    fn evict_lru(&mut self) {
        let i = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)
            .expect("evict_lru called on a non-empty cache");
        let old = self.entries.swap_remove(i);
        self.bytes_used -= old.bytes;
        self.evictions += 1;
        obs::event(
            obs::Level::Debug,
            "cache.evict",
            &[
                ("bytes", obs::FieldValue::U64(old.bytes as u64)),
                ("universe", obs::FieldValue::U64(old.universe.len() as u64)),
                ("min_support", obs::FieldValue::U64(old.min_support)),
            ],
        );
    }

    /// Clones out every entry of `epoch` for FUP upgrading outside the
    /// engine's state lock.
    pub fn snapshot_epoch(&self, epoch: u64) -> Vec<LatticeEntry> {
        self.entries
            .iter()
            .filter(|e| e.epoch == epoch)
            .map(|e| LatticeEntry {
                epoch: e.epoch,
                universe: Arc::clone(&e.universe),
                min_support: e.min_support,
                lattice: Arc::clone(&e.lattice),
                source: e.source,
                bytes: e.bytes,
                scans_cost: e.scans_cost,
                last_used: e.last_used,
            })
            .collect()
    }

    /// Replaces the whole population with FUP-upgraded entries at the new
    /// epoch (stale-epoch entries are discarded wholesale), re-enforcing
    /// the budget.
    pub fn replace_all(&mut self, entries: Vec<LatticeEntry>) {
        self.entries = entries;
        self.bytes_used = self.entries.iter().map(|e| e.bytes).sum();
        while self.bytes_used > self.budget {
            self.evict_lru();
        }
    }

    /// Credits scans avoided outside a lookup — a query that coalesced
    /// onto an in-flight mining saved the leader's scan cost without ever
    /// hitting an entry.
    pub fn credit_saved(&mut self, scans: u64) {
        self.scans_saved += scans;
    }

    /// Records a cold mining result dropped because its epoch is stale.
    pub fn record_stale_drop(&mut self) {
        self.stale_drops += 1;
        obs::event(obs::Level::Debug, "cache.stale_drop", &[]);
    }

    /// Live lattice entries.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Bytes currently charged against the budget.
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }
}

/// A count-capped LRU cache of optimizer plans. Plans depend only on the
/// bound query, catalog and strategy flags — never on the data — so
/// entries stay valid across epoch swaps.
pub(crate) struct PlanCache {
    entries: FxHashMap<u64, (Arc<CfqPlan>, u64)>,
    cap: usize,
    clock: u64,
    pub hits: u64,
    pub misses: u64,
}

impl PlanCache {
    /// An empty cache holding at most `cap` plans.
    pub fn new(cap: usize) -> Self {
        PlanCache { entries: FxHashMap::default(), cap, clock: 0, hits: 0, misses: 0 }
    }

    /// Fetches the plan for `fingerprint`, recording hit/miss.
    pub fn get(&mut self, fingerprint: u64) -> Option<Arc<CfqPlan>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&fingerprint) {
            Some((plan, stamp)) => {
                *stamp = clock;
                self.hits += 1;
                Some(Arc::clone(plan))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a plan, evicting the least recently used entry at capacity.
    /// A zero capacity disables the cache entirely.
    pub fn insert(&mut self, fingerprint: u64, plan: Arc<CfqPlan>) {
        if self.cap == 0 {
            return;
        }
        if self.entries.len() >= self.cap && !self.entries.contains_key(&fingerprint) {
            if let Some(&lru) =
                self.entries.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k)
            {
                self.entries.remove(&lru);
            }
        }
        self.clock += 1;
        self.entries.insert(fingerprint, (plan, self.clock));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n_singletons: u32) -> Arc<FrequentSets> {
        let mut fs = FrequentSets::new();
        fs.push_level(
            (0..n_singletons).map(|i| (cfq_types::Itemset::singleton(ItemId(i)), 2)).collect(),
        );
        Arc::new(fs)
    }

    fn entry(epoch: u64, universe: Vec<u32>, min_support: u64) -> LatticeEntry {
        let lattice = lattice(universe.len() as u32);
        let bytes = lattice.approx_bytes();
        LatticeEntry {
            epoch,
            universe: Arc::new(universe.into_iter().map(ItemId).collect()),
            min_support,
            lattice,
            source: LatticeSource::MinedCold,
            bytes,
            scans_cost: 3,
            last_used: 0,
        }
    }

    #[test]
    fn superset_walk() {
        let u: Vec<ItemId> = [1u32, 3, 5, 7].into_iter().map(ItemId).collect();
        assert!(is_superset(&u, &[ItemId(3), ItemId(7)]));
        assert!(is_superset(&u, &u));
        assert!(is_superset(&u, &[]));
        assert!(!is_superset(&u, &[ItemId(2)]));
        assert!(!is_superset(&[ItemId(1)], &[ItemId(1), ItemId(2)]));
    }

    #[test]
    fn lookup_honors_epoch_support_and_universe() {
        let mut c = LatticeCache::new(1 << 20);
        c.insert(entry(0, vec![1, 2, 3, 4], 2)).unwrap();
        // Subset universe at an equal-or-higher threshold hits.
        let ids: Vec<ItemId> = vec![ItemId(2), ItemId(4)];
        assert!(c.lookup(0, &ids, 2).is_some());
        assert!(c.lookup(0, &ids, 5).is_some());
        // Lower threshold than mined, wrong epoch, or wider universe miss.
        assert!(c.lookup(0, &ids, 1).is_none());
        assert!(c.lookup(1, &ids, 2).is_none());
        let wide: Vec<ItemId> = vec![ItemId(2), ItemId(9)];
        assert!(c.lookup(0, &wide, 2).is_none());
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 3);
        assert_eq!(c.scans_saved, 6);
    }

    #[test]
    fn prefers_the_tightest_entry() {
        let mut c = LatticeCache::new(1 << 20);
        c.insert(entry(0, vec![1, 2, 3, 4, 5, 6], 1)).unwrap();
        c.insert(entry(0, vec![1, 2, 3], 2)).unwrap();
        let hit_universe: Vec<ItemId> = vec![ItemId(1), ItemId(2)];
        let hit = c.lookup(0, &hit_universe, 2).unwrap();
        // The 3-item entry is the smaller superset: 3 singletons, not 6.
        assert_eq!(hit.lattice.total(), 3);
    }

    #[test]
    fn lru_eviction_under_budget() {
        let one = entry(0, vec![1, 2, 3], 2);
        let budget = one.bytes * 2 + one.bytes / 2; // fits two, not three
        let mut c = LatticeCache::new(budget);
        c.insert(entry(0, vec![1, 2, 3], 2)).unwrap();
        c.insert(entry(0, vec![4, 5, 6], 2)).unwrap();
        // Touch the first so the second becomes LRU.
        assert!(c.lookup(0, &[ItemId(1)], 2).is_some());
        c.insert(entry(0, vec![7, 8, 9], 2)).unwrap();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.entries(), 2);
        assert!(c.lookup(0, &[ItemId(1)], 2).is_some(), "recently used survives");
        assert!(c.lookup(0, &[ItemId(4)], 2).is_none(), "LRU evicted");
        assert!(c.lookup(0, &[ItemId(7)], 2).is_some());
    }

    #[test]
    fn oversize_entry_is_a_typed_error() {
        let mut c = LatticeCache::new(8);
        let err = c.insert(entry(0, vec![1, 2, 3], 2)).unwrap_err();
        assert!(matches!(err, CfqError::CacheBudget(_)), "{err}");
        assert_eq!(c.oversize_rejections, 1);
        assert_eq!(c.entries(), 0);
    }

    #[test]
    fn peek_does_not_mutate_counters() {
        let mut c = LatticeCache::new(1 << 20);
        c.insert(entry(0, vec![1, 2], 2)).unwrap();
        assert_eq!(c.peek(0, &[ItemId(1)], 2), Some(LatticeSource::MinedCold));
        assert_eq!(c.peek(1, &[ItemId(1)], 2), None);
        assert_eq!(c.hits + c.misses, 0);
    }

    #[test]
    fn plan_cache_caps_and_bumps() {
        let plan = |q: &str| {
            let mut b = cfq_types::CatalogBuilder::new(3);
            b.num_attr("Price", vec![10.0, 20.0, 30.0]).unwrap();
            let catalog = b.build();
            let bound = cfq_constraints::bind_query(
                &cfq_constraints::parse_query(q).unwrap(),
                &catalog,
            )
            .unwrap();
            Arc::new(cfq_core::Optimizer::default().build_plan(&bound, &catalog))
        };
        let mut c = PlanCache::new(2);
        c.insert(1, plan("max(S.Price) <= 10"));
        c.insert(2, plan("max(S.Price) <= 20"));
        assert!(c.get(1).is_some());
        c.insert(3, plan("max(S.Price) <= 30")); // evicts key 2 (LRU)
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 1);
        // Zero capacity disables insertion.
        let mut off = PlanCache::new(0);
        off.insert(1, plan("max(S.Price) <= 10"));
        assert!(off.get(1).is_none());
    }
}

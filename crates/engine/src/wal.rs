//! Write-ahead log of [`Engine`](crate::Engine) appends.
//!
//! Every acknowledged `Engine::append` is first written here — one
//! length-prefixed, checksummed binary record per delta, fsync'd before
//! the new epoch is installed — so a `kill -9` after the acknowledgement
//! can never lose the append. On boot the engine replays the log over the
//! latest snapshot (see [`crate::snapshot`]); a read replica tails the
//! same files with [`WalTailer`] and applies records as they land.
//!
//! The codec is hand-rolled (the workspace is dependency-free, same
//! precedent as the JSON codec in [`crate::json`]):
//!
//! ```text
//! file   := magic "CFQWAL1\n" record*
//! record := len:u32 crc:u32 payload[len]      (crc = CRC-32/IEEE of payload)
//! payload:= epoch:u64 n_items:u64 n_rows:u64 (row_len:u32 item:u32*)*
//! ```
//!
//! Files are named `wal-<start_epoch>.cfqw` (zero-padded so the
//! lexicographic order is the numeric order); the writer rotates to a
//! fresh file at every snapshot and prunes generations the snapshot made
//! redundant. A torn tail — a partial frame or a checksum mismatch at the
//! end of the newest file — is an unacknowledged append mid-write: boot
//! recovery truncates it, a tailing replica retries the same offset until
//! the frame completes or disappears.

use cfq_types::{CfqError, ItemId, Result, TransactionDb};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic header of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"CFQWAL1\n";
/// File extension of WAL files.
pub const WAL_EXT: &str = "cfqw";
/// Frame head: payload length (u32) + payload CRC-32 (u32).
const FRAME_HEAD: usize = 8;
/// Upper bound on a single record's payload; larger lengths are treated
/// as corruption rather than attempted as allocations.
const MAX_PAYLOAD: u32 = 1 << 30;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected), table built at compile time.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the per-record checksum of the WAL and
/// snapshot codecs.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Little-endian codec helpers shared with the snapshot module.
// ---------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian reader over a decoded payload.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the head of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            CfqError::Io(format!(
                "truncated record: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            ))
        })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// True when every payload byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Encodes a transaction delta: `n_items, n_rows, (row_len, items...)*`.
pub(crate) fn encode_db(out: &mut Vec<u8>, db: &TransactionDb) {
    put_u64(out, db.n_items() as u64);
    put_u64(out, db.len() as u64);
    for row in db.iter() {
        put_u32(out, row.len() as u32);
        for item in row {
            put_u32(out, item.0);
        }
    }
}

/// Decodes a transaction delta written by [`encode_db`], rebuilding the
/// CSR arena directly.
pub(crate) fn decode_db(c: &mut Cursor<'_>) -> Result<TransactionDb> {
    let n_items = c.u64()? as usize;
    let n_rows = c.u64()? as usize;
    let mut items: Vec<ItemId> = Vec::new();
    let mut offsets: Vec<u32> = Vec::with_capacity(n_rows + 1);
    offsets.push(0);
    for _ in 0..n_rows {
        let len = c.u32()? as usize;
        for _ in 0..len {
            let id = c.u32()?;
            if id as usize >= n_items {
                return Err(CfqError::Io(format!(
                    "corrupt record: item {id} outside universe of {n_items}"
                )));
            }
            items.push(ItemId(id));
        }
        let total = u32::try_from(items.len())
            .map_err(|_| CfqError::Io("corrupt record: item arena overflows u32".into()))?;
        offsets.push(total);
    }
    let db = TransactionDb::from_parts(n_items, items, offsets);
    db.validate()?;
    Ok(db)
}

// ---------------------------------------------------------------------
// Records and files
// ---------------------------------------------------------------------

/// One logged append: the epoch it created and the delta it appended.
pub struct WalRecord {
    /// The epoch this append installed (`old epoch + 1`).
    pub epoch: u64,
    /// The appended transactions.
    pub delta: TransactionDb,
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(24 + self.delta.total_items() * 4);
        put_u64(&mut payload, self.epoch);
        encode_db(&mut payload, &self.delta);
        let mut frame = Vec::with_capacity(FRAME_HEAD + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }

    fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut c = Cursor::new(payload);
        let epoch = c.u64()?;
        let delta = decode_db(&mut c)?;
        if !c.done() {
            return Err(CfqError::Io("corrupt record: trailing bytes in payload".into()));
        }
        Ok(WalRecord { epoch, delta })
    }
}

/// Path of the WAL file whose first record installs `start_epoch`.
pub fn wal_path(dir: &Path, start_epoch: u64) -> PathBuf {
    dir.join(format!("wal-{start_epoch:020}.{WAL_EXT}"))
}

/// WAL files in `dir`, `(start_epoch, path)`, ascending by start epoch.
pub fn wal_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        let Some(stem) = name.strip_prefix("wal-").and_then(|s| s.strip_suffix(&format!(".{WAL_EXT}")))
        else {
            continue;
        };
        if let Ok(start) = stem.parse::<u64>() {
            out.push((start, path));
        }
    }
    out.sort_unstable_by_key(|(start, _)| *start);
    Ok(out)
}

/// Best-effort directory fsync so a create/rename is durable; some
/// filesystems refuse to sync a directory handle, which is survivable.
pub(crate) fn fsync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Appends records to the newest WAL file, fsync'ing each one before the
/// caller acknowledges the append.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// Records written by this writer.
    pub records: u64,
    /// Frame bytes written by this writer.
    pub bytes: u64,
    /// fsyncs issued (one per record plus one per file creation).
    pub fsyncs: u64,
}

impl WalWriter {
    /// Creates a fresh `wal-<start_epoch>` file (failing if it exists —
    /// two writers on one directory is operator error).
    pub fn create(dir: &Path, start_epoch: u64) -> Result<WalWriter> {
        let path = wal_path(dir, start_epoch);
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| CfqError::Io(format!("create {}: {e}", path.display())))?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        fsync_dir(dir);
        Ok(WalWriter { file, path, records: 0, bytes: 0, fsyncs: 1 })
    }

    /// Reopens `path` for appending at `valid_end` — the end of its last
    /// intact record — truncating any torn tail a crash left behind.
    pub fn reopen(path: &Path, valid_end: u64) -> Result<WalWriter> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| CfqError::Io(format!("open {}: {e}", path.display())))?;
        let len = file.metadata()?.len();
        if len > valid_end {
            file.set_len(valid_end)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_end))?;
        Ok(WalWriter { file, path: path.to_path_buf(), records: 0, bytes: 0, fsyncs: 0 })
    }

    /// Writes and fsyncs one record. Only after this returns may the
    /// caller install (and acknowledge) the new epoch.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        let frame = record.encode();
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.records += 1;
        self.bytes += frame.len() as u64;
        self.fsyncs += 1;
        Ok(frame.len() as u64)
    }

    /// The file currently being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// One step of a sequential WAL read.
pub enum WalItem {
    /// An intact record.
    Record(WalRecord),
    /// End of file, cleanly on a frame boundary.
    Eof,
    /// A partial or checksum-failing frame starting at `offset` —
    /// either an append crashed mid-write (recovery truncates it) or the
    /// writer is mid-write right now (a tailer retries the same offset).
    Torn {
        /// File offset of the first byte of the torn frame.
        offset: u64,
    },
}

/// Sequential reader over one WAL file.
pub struct WalReader {
    file: File,
    /// Offset of the next unread byte.
    offset: u64,
}

impl WalReader {
    /// Opens `path` and verifies the magic header.
    pub fn open(path: &Path) -> Result<WalReader> {
        let mut file =
            File::open(path).map_err(|e| CfqError::Io(format!("open {}: {e}", path.display())))?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)
            .map_err(|e| CfqError::Io(format!("{}: short magic: {e}", path.display())))?;
        if &magic != WAL_MAGIC {
            return Err(CfqError::Io(format!("{} is not a cfq WAL file", path.display())));
        }
        Ok(WalReader { file, offset: WAL_MAGIC.len() as u64 })
    }

    /// Opens `path` positioned at `offset` (a frame boundary from an
    /// earlier read) — how a tailer resumes.
    pub fn open_at(path: &Path, offset: u64) -> Result<WalReader> {
        let mut r = WalReader::open(path)?;
        if offset > r.offset {
            r.file.seek(SeekFrom::Start(offset))?;
            r.offset = offset;
        }
        Ok(r)
    }

    /// The frame boundary the next read starts from.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads the next frame. Distinguishes a clean EOF from a torn tail;
    /// a checksum mismatch is reported as [`WalItem::Torn`] (the caller
    /// decides whether that is a crash artifact or in-flight write).
    pub fn next_item(&mut self) -> Result<WalItem> {
        let start = self.offset;
        let mut head = [0u8; FRAME_HEAD];
        let got = read_up_to(&mut self.file, &mut head)?;
        if got == 0 {
            return Ok(WalItem::Eof);
        }
        if got < FRAME_HEAD {
            return Ok(WalItem::Torn { offset: start });
        }
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
        if len > MAX_PAYLOAD {
            return Ok(WalItem::Torn { offset: start });
        }
        let mut payload = vec![0u8; len as usize];
        let got = read_up_to(&mut self.file, &mut payload)?;
        if got < payload.len() || crc32(&payload) != crc {
            return Ok(WalItem::Torn { offset: start });
        }
        self.offset = start + (FRAME_HEAD + payload.len()) as u64;
        // Reposition explicitly: a torn probe above may have read past.
        self.file.seek(SeekFrom::Start(self.offset))?;
        WalRecord::decode(&payload).map(WalItem::Record)
    }
}

/// Reads until `buf` is full or EOF; returns the bytes read.
fn read_up_to(file: &mut File, buf: &mut [u8]) -> Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

// ---------------------------------------------------------------------
// Replay (boot recovery)
// ---------------------------------------------------------------------

/// What a full-directory replay found.
#[derive(Debug)]
pub struct ReplaySummary {
    /// Records applied (epoch strictly above the starting point).
    pub records: u64,
    /// Highest epoch seen (the starting epoch when no record applied).
    pub last_epoch: u64,
    /// The newest WAL file and the end of its last intact record — where
    /// the writer resumes. `None` when the directory has no WAL files.
    pub tail: Option<(PathBuf, u64)>,
    /// Whether the newest file ended in a torn frame (truncated on
    /// writer reopen).
    pub torn_tail: bool,
}

/// Replays every record with epoch above `after_epoch`, in epoch order,
/// through `apply`. Records at or below `after_epoch` (already covered by
/// the snapshot) are skipped; an epoch gap or a torn frame anywhere but
/// the newest file's tail is corruption and fails the replay.
pub fn replay(
    dir: &Path,
    after_epoch: u64,
    mut apply: impl FnMut(WalRecord) -> Result<()>,
) -> Result<ReplaySummary> {
    let files = wal_files(dir)?;
    let mut summary = ReplaySummary {
        records: 0,
        last_epoch: after_epoch,
        tail: None,
        torn_tail: false,
    };
    let mut expected = after_epoch + 1;
    let n_files = files.len();
    for (i, (start, path)) in files.into_iter().enumerate() {
        let last_file = i + 1 == n_files;
        if start > expected {
            return Err(CfqError::Io(format!(
                "WAL gap: {} starts at epoch {start} but epoch {expected} was never logged",
                path.display()
            )));
        }
        let mut reader = WalReader::open(&path)?;
        loop {
            match reader.next_item()? {
                WalItem::Eof => break,
                WalItem::Torn { offset } => {
                    if !last_file {
                        return Err(CfqError::Io(format!(
                            "corrupt WAL record at {}:{offset} (not the newest file)",
                            path.display()
                        )));
                    }
                    summary.torn_tail = true;
                    break;
                }
                WalItem::Record(rec) => {
                    if rec.epoch <= after_epoch {
                        continue; // covered by the snapshot
                    }
                    if rec.epoch != expected {
                        return Err(CfqError::Io(format!(
                            "WAL gap in {}: expected epoch {expected}, found {}",
                            path.display(),
                            rec.epoch
                        )));
                    }
                    apply(rec)?;
                    summary.records += 1;
                    summary.last_epoch = expected;
                    expected += 1;
                }
            }
        }
        if last_file {
            summary.tail = Some((path, reader.offset()));
        }
    }
    Ok(summary)
}

/// Deletes WAL files made redundant by a snapshot at `snapshot_epoch`:
/// every file whose records all land at or below the snapshot, except the
/// newest such file — one old generation is kept as a grace window for
/// replicas still tailing it.
pub fn prune(dir: &Path, snapshot_epoch: u64) -> Result<usize> {
    let files = wal_files(dir)?;
    // A file's records are all <= snapshot_epoch iff the *next* file
    // starts at or below snapshot_epoch + 1.
    let mut redundant: Vec<PathBuf> = Vec::new();
    for w in files.windows(2) {
        let (_, ref path) = w[0];
        let (next_start, _) = w[1];
        if next_start <= snapshot_epoch + 1 {
            redundant.push(path.clone());
        }
    }
    // Keep the newest redundant generation for tailing replicas.
    redundant.pop();
    let removed = redundant.len();
    for path in redundant {
        fs::remove_file(&path)?;
    }
    if removed > 0 {
        fsync_dir(dir);
    }
    Ok(removed)
}

// ---------------------------------------------------------------------
// Tailer (read replicas)
// ---------------------------------------------------------------------

/// Follows a writer's WAL directory, yielding records in epoch order as
/// they are fsync'd — the read-replica transport.
pub struct WalTailer {
    dir: PathBuf,
    /// The epoch the next yielded record must install.
    next_epoch: u64,
    /// The file currently being read and the frame boundary reached.
    current: Option<(PathBuf, u64)>,
}

impl WalTailer {
    /// A tailer that yields records from `next_epoch` on.
    pub fn new(dir: &Path, next_epoch: u64) -> WalTailer {
        WalTailer { dir: dir.to_path_buf(), next_epoch, current: None }
    }

    /// The epoch the next record will install (how far behind the
    /// primary this tailer is).
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Picks the file that contains (or will contain) `next_epoch`: the
    /// newest file starting at or below it.
    fn pick_file(&self) -> Result<Option<PathBuf>> {
        let files = wal_files(&self.dir)?;
        let mut best: Option<(u64, PathBuf)> = None;
        for (start, path) in &files {
            if *start <= self.next_epoch {
                best = Some((*start, path.clone()));
            }
        }
        match best {
            Some((_, path)) => Ok(Some(path)),
            None => match files.first() {
                // The writer pruned past us: the records we need are gone.
                Some((start, _)) => Err(CfqError::Io(format!(
                    "replica fell behind: needs epoch {} but the oldest WAL starts at {start} \
                     (restart the replica to recover from the latest snapshot)",
                    self.next_epoch
                ))),
                None => Ok(None),
            },
        }
    }

    /// Drains every intact record currently available, in epoch order.
    /// Returns an empty vec when caught up (including mid-write torn
    /// tails, which a later poll retries).
    pub fn poll(&mut self) -> Result<Vec<WalRecord>> {
        let mut out = Vec::new();
        loop {
            if self.current.is_none() {
                match self.pick_file()? {
                    Some(path) => self.current = Some((path, 0)),
                    None => return Ok(out),
                }
            }
            let (path, offset) = self.current.clone().expect("current set above");
            let mut reader = if offset == 0 {
                WalReader::open(&path)?
            } else {
                WalReader::open_at(&path, offset)?
            };
            let mut progressed = false;
            while let WalItem::Record(rec) = reader.next_item()? {
                if rec.epoch >= self.next_epoch {
                    if rec.epoch != self.next_epoch {
                        return Err(CfqError::Io(format!(
                            "WAL gap while tailing {}: expected epoch {}, found {}",
                            path.display(),
                            self.next_epoch,
                            rec.epoch
                        )));
                    }
                    self.next_epoch += 1;
                    out.push(rec);
                    progressed = true;
                }
            }
            self.current = Some((path, reader.offset()));
            // At this file's end: a rotation puts the next epoch in a
            // newer file — switch to it and keep draining.
            let rotated = wal_files(&self.dir)?
                .into_iter()
                .any(|(start, p)| start == self.next_epoch && p != self.current.as_ref().expect("set").0);
            if rotated {
                self.current = None;
                continue;
            }
            if !progressed {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "cfq_wal_{tag}_{}_{n}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn delta(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::from_u32(8, rows)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_a_file() {
        let dir = tmp_dir("roundtrip");
        let mut w = WalWriter::create(&dir, 1).unwrap();
        w.append(&WalRecord { epoch: 1, delta: delta(&[&[0, 1], &[2]]) }).unwrap();
        w.append(&WalRecord { epoch: 2, delta: delta(&[&[3, 4, 5]]) }).unwrap();
        assert_eq!(w.records, 2);

        let mut got = Vec::new();
        let summary = replay(&dir, 0, |rec| {
            got.push(rec);
            Ok(())
        })
        .unwrap();
        assert_eq!(summary.records, 2);
        assert_eq!(summary.last_epoch, 2);
        assert!(!summary.torn_tail);
        assert_eq!(got[0].epoch, 1);
        assert_eq!(got[0].delta.transaction(0), &[ItemId(0), ItemId(1)]);
        assert_eq!(got[1].delta.transaction(0), &[ItemId(3), ItemId(4), ItemId(5)]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_on_reopen() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::create(&dir, 1).unwrap();
        w.append(&WalRecord { epoch: 1, delta: delta(&[&[0, 1]]) }).unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        // Simulate a crash mid-write: garbage half-frame at the tail.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x55; 5]).unwrap();
        drop(f);

        let summary = replay(&dir, 0, |_| Ok(())).unwrap();
        assert_eq!(summary.records, 1);
        assert!(summary.torn_tail);
        let (tail_path, valid_end) = summary.tail.unwrap();

        // Reopen truncates the garbage; the next append lands cleanly.
        let mut w = WalWriter::reopen(&tail_path, valid_end).unwrap();
        w.append(&WalRecord { epoch: 2, delta: delta(&[&[2]]) }).unwrap();
        let summary = replay(&dir, 0, |_| Ok(())).unwrap();
        assert_eq!(summary.records, 2);
        assert!(!summary.torn_tail);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_middle_record_fails_loudly() {
        let dir = tmp_dir("corrupt");
        let mut w = WalWriter::create(&dir, 1).unwrap();
        w.append(&WalRecord { epoch: 1, delta: delta(&[&[0, 1, 2]]) }).unwrap();
        w.append(&WalRecord { epoch: 2, delta: delta(&[&[3]]) }).unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        // Flip a byte inside the first record's payload.
        let mut bytes = fs::read(&path).unwrap();
        bytes[WAL_MAGIC.len() + FRAME_HEAD + 2] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        // The torn frame hides record 2 behind it: replay stops at the
        // corruption (newest file => reported as torn, not an error), so
        // the caller sees fewer records than were acked — which is why a
        // checksum failure mid-file on a *non*-newest file is fatal.
        let summary = replay(&dir, 0, |_| Ok(())).unwrap();
        assert_eq!(summary.records, 0);
        assert!(summary.torn_tail);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_gaps_are_rejected() {
        let dir = tmp_dir("gap");
        let mut w = WalWriter::create(&dir, 1).unwrap();
        w.append(&WalRecord { epoch: 1, delta: delta(&[&[0]]) }).unwrap();
        w.append(&WalRecord { epoch: 3, delta: delta(&[&[1]]) }).unwrap();
        drop(w);
        let err = replay(&dir, 0, |_| Ok(())).unwrap_err();
        assert!(err.to_string().contains("expected epoch 2"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tailer_follows_appends_and_rotation() {
        let dir = tmp_dir("tail");
        let mut w = WalWriter::create(&dir, 1).unwrap();
        let mut t = WalTailer::new(&dir, 1);
        assert!(t.poll().unwrap().is_empty());

        w.append(&WalRecord { epoch: 1, delta: delta(&[&[0]]) }).unwrap();
        w.append(&WalRecord { epoch: 2, delta: delta(&[&[1]]) }).unwrap();
        let got = t.poll().unwrap();
        assert_eq!(got.iter().map(|r| r.epoch).collect::<Vec<_>>(), vec![1, 2]);
        assert!(t.poll().unwrap().is_empty(), "caught up");

        // Rotate (as a snapshot would) and keep appending.
        drop(w);
        let mut w = WalWriter::create(&dir, 3).unwrap();
        w.append(&WalRecord { epoch: 3, delta: delta(&[&[2]]) }).unwrap();
        let got = t.poll().unwrap();
        assert_eq!(got.iter().map(|r| r.epoch).collect::<Vec<_>>(), vec![3]);
        assert_eq!(t.next_epoch(), 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_one_old_generation() {
        let dir = tmp_dir("prune");
        for start in [1u64, 3, 5] {
            let mut w = WalWriter::create(&dir, start).unwrap();
            w.append(&WalRecord { epoch: start, delta: delta(&[&[0]]) }).unwrap();
            w.append(&WalRecord { epoch: start + 1, delta: delta(&[&[1]]) }).unwrap();
        }
        // Snapshot at epoch 4: files starting at 1 and 3 are redundant;
        // the newest redundant one (3) is kept as the replica grace
        // window.
        let removed = prune(&dir, 4).unwrap();
        assert_eq!(removed, 1);
        let starts: Vec<u64> = wal_files(&dir).unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(starts, vec![3, 5]);
        fs::remove_dir_all(&dir).ok();
    }
}

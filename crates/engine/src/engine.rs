//! The long-lived engine: an epoch-versioned database plus the caches.
//!
//! An [`Engine`] owns one immutable [`TransactionDb`] snapshot per *epoch*
//! together with the catalog, and serves any number of concurrent
//! [`Session`] handles. Queries snapshot the current epoch
//! under a brief lock, mine (or reuse) lattices entirely outside the lock,
//! and re-acquire it only to install results — so readers never block on
//! each other's mining, and an [`Engine::append`] never blocks readers:
//! they keep serving the old epoch until the swap is a single pointer
//! store.
//!
//! `append` is the paper's maintenance story wired into the cache layer:
//! the new epoch's database is the old one plus the delta, and every
//! cached lattice is upgraded **in place** with FUP
//! ([`fup_update_abs`]) instead of being invalidated — the cache stays
//! warm across updates, which is what makes the Fig. 8 workloads re-run
//! with zero database scans after an append.

use crate::cache::{CacheHit, CacheStats, LatticeCache, LatticeEntry, PlanCache};
use crate::scheduler::{AdmissionPermit, GroupRole, Scheduler, SchedulerStats};
use crate::session::Session;
use crate::snapshot::{self, LatticeView};
use crate::wal::{self, WalRecord, WalWriter};
use cfq_core::{CfqPlan, LatticeSource, Optimizer};
use cfq_obs as obs;
use cfq_mining::{
    apriori, fup_update_abs, AprioriConfig, CountingBackend, FrequentSets, WorkStats,
};
use cfq_types::{Catalog, CfqError, ItemId, Result, TransactionDb};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Tuning knobs of an [`Engine`]. Construct with
/// [`EngineConfig::builder`] — the builder is the one canonical surface
/// for every knob the CLI flags and wire requests expose.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Byte budget of the lattice cache (default 64 MiB). Must be
    /// positive; construction fails with [`CfqError::CacheBudget`]
    /// otherwise.
    pub cache_budget_bytes: usize,
    /// Entry cap of the plan cache (default 128; 0 disables it).
    pub plan_cache_entries: usize,
    /// Default support-counting threads for sessions (1 = sequential,
    /// 0 = one per core); overridable per query.
    pub counting_threads: usize,
    /// Default per-level database reduction for cold mining; overridable
    /// per query. Cached lattices are identical either way, so entries
    /// are shared across queries regardless of their trim setting.
    pub trim: bool,
    /// Default support-counting backend for cold mining; overridable per
    /// query. All backends produce bit-identical lattices, so cache
    /// entries are shared across queries regardless of backend.
    pub backend: CountingBackend,
    /// Default horizontal shard count for cold mining (1 = unsharded);
    /// overridable per query. Sharded lattices are bit-identical to
    /// unsharded ones, so cache entries are shared regardless of the
    /// shard count.
    pub shards: usize,
    /// Maximum concurrently executing queries (0 = unlimited;
    /// default 256).
    pub max_inflight_queries: usize,
    /// Maximum queries waiting for an execution slot beyond the in-flight
    /// cap before new arrivals are rejected with
    /// [`CfqError::Overloaded`] (0 = unlimited; default 1024).
    pub max_queued_queries: usize,
    /// How long a cold mining waits for compatible queries to batch onto
    /// its single-flight group (default 2 ms; zero disables batching but
    /// keeps single-flight).
    pub batch_window: Duration,
    /// Durability directory (default `None` = ephemeral engine). When
    /// set, construction recovers from the newest snapshot plus WAL
    /// replay, and every [`Engine::append`] is written to the WAL and
    /// fsynced before it is acknowledged.
    pub wal_dir: Option<PathBuf>,
    /// Write a snapshot and rotate the WAL every N durable appends
    /// (default 8; 0 = snapshots only via [`Engine::snapshot_now`]).
    pub snapshot_every: u64,
    /// Run as a read replica: recover from `wal_dir` but open no writer,
    /// reject [`Engine::append`], and accept deltas only through
    /// [`Engine::replay_append`] (fed by a WAL tailer). Requires
    /// `wal_dir`.
    pub follow: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_budget_bytes: 64 << 20,
            plan_cache_entries: 128,
            counting_threads: 1,
            trim: true,
            backend: CountingBackend::Horizontal,
            shards: 1,
            max_inflight_queries: 256,
            max_queued_queries: 1024,
            batch_window: Duration::from_millis(2),
            wal_dir: None,
            snapshot_every: 8,
            follow: false,
        }
    }
}

impl EngineConfig {
    /// Starts a builder over the default configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder { config: EngineConfig::default() }
    }
}

/// Fluent builder for [`EngineConfig`] — one method per knob, mirroring
/// the `cfq serve` flags (`--backend`, `--max-inflight`,
/// `--batch-window-ms`, `--wal-dir`, `--snapshot-every`, `--follow`).
#[derive(Clone, Debug)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Byte budget of the lattice cache.
    pub fn cache_budget_bytes(mut self, bytes: usize) -> Self {
        self.config.cache_budget_bytes = bytes;
        self
    }

    /// Entry cap of the plan cache (0 disables it).
    pub fn plan_cache_entries(mut self, entries: usize) -> Self {
        self.config.plan_cache_entries = entries;
        self
    }

    /// Default support-counting threads (1 = sequential, 0 = per core).
    pub fn counting_threads(mut self, threads: usize) -> Self {
        self.config.counting_threads = threads;
        self
    }

    /// Default per-level database reduction for cold mining.
    pub fn trim(mut self, trim: bool) -> Self {
        self.config.trim = trim;
        self
    }

    /// Default support-counting backend.
    pub fn backend(mut self, backend: CountingBackend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Default horizontal shard count for counting (1 = unsharded).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Maximum concurrently executing queries (0 = unlimited).
    pub fn max_inflight_queries(mut self, n: usize) -> Self {
        self.config.max_inflight_queries = n;
        self
    }

    /// Maximum queued queries beyond the in-flight cap (0 = unlimited).
    pub fn max_queued_queries(mut self, n: usize) -> Self {
        self.config.max_queued_queries = n;
        self
    }

    /// Single-flight batch window.
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.config.batch_window = window;
        self
    }

    /// Single-flight batch window in milliseconds (the `--batch-window-ms`
    /// flag's unit).
    pub fn batch_window_ms(mut self, ms: u64) -> Self {
        self.config.batch_window = Duration::from_millis(ms);
        self
    }

    /// Durability directory: WAL + snapshots + boot-time recovery.
    pub fn wal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.wal_dir = Some(dir.into());
        self
    }

    /// Snapshot-and-rotate cadence in durable appends (0 = manual only).
    pub fn snapshot_every(mut self, every: u64) -> Self {
        self.config.snapshot_every = every;
        self
    }

    /// Read-replica mode (requires [`Self::wal_dir`]).
    pub fn follow(mut self, follow: bool) -> Self {
        self.config.follow = follow;
        self
    }

    /// Finishes the builder. Validation (budget, follow/wal-dir
    /// coherence) happens in [`Engine::with_config`].
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// A counter snapshot of the durability subsystem
/// ([`Engine::durability_stats`]). All zeros on an ephemeral engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct DurabilityStats {
    /// Whether a WAL directory is configured.
    pub enabled: bool,
    /// Whether this engine is a read replica.
    pub follow: bool,
    /// WAL records written by this process.
    pub wal_records: u64,
    /// WAL payload bytes written by this process.
    pub wal_bytes: u64,
    /// WAL fsyncs issued by this process.
    pub wal_fsyncs: u64,
    /// WAL records replayed (at boot, plus tailed records on a replica).
    pub replayed_records: u64,
    /// Snapshots written by this process.
    pub snapshot_writes: u64,
    /// Snapshot bytes written by this process.
    pub snapshot_bytes: u64,
    /// Snapshot attempts that failed (the append itself still
    /// succeeded; the WAL covers the gap until the next attempt).
    pub snapshot_failures: u64,
    /// Epoch of the newest snapshot written or recovered from.
    pub last_snapshot_epoch: u64,
}

/// What [`Engine::snapshot_now`] wrote.
#[derive(Clone, Debug)]
pub struct SnapshotInfo {
    /// The epoch the snapshot captures.
    pub epoch: u64,
    /// Final snapshot file path.
    pub path: PathBuf,
    /// Snapshot file size in bytes.
    pub bytes: u64,
}

/// Mutable durability state, locked after `append_lock` and before the
/// engine state lock.
struct DurabilityState {
    dir: PathBuf,
    /// `None` on replicas (they never write).
    writer: Option<WalWriter>,
    snapshot_every: u64,
    appends_since_snapshot: u64,
    replayed_records: u64,
    snapshot_writes: u64,
    snapshot_bytes: u64,
    snapshot_failures: u64,
    last_snapshot_epoch: u64,
    /// Counters carried over from writers retired by WAL rotation, so
    /// the process totals survive segment changes.
    retired_records: u64,
    retired_bytes: u64,
    retired_fsyncs: u64,
}

/// What an [`Engine::append`] did: the new epoch and the FUP work.
#[derive(Clone, Copy, Debug)]
pub struct EpochInfo {
    /// The epoch now current.
    pub epoch: u64,
    /// Transactions in the new epoch's database.
    pub transactions: usize,
    /// Cached lattices upgraded in place with FUP.
    pub upgraded_lattices: usize,
    /// Candidate sets FUP had to re-count against the old database across
    /// all upgrades (its cost driver; 0 when the delta resembles the
    /// past).
    pub old_db_recounts: u64,
}

/// One epoch's immutable view of the data: queries hold an `Arc` to this
/// and are unaffected by later appends.
pub(crate) struct EpochState {
    pub epoch: u64,
    pub db: Arc<TransactionDb>,
    pub catalog: Arc<Catalog>,
}

struct EngineState {
    current: Arc<EpochState>,
    lattices: LatticeCache,
    plans: PlanCache,
}

/// The session engine. Construct with [`Engine::new`], hand out
/// [`Session`]s with [`Engine::session`], grow the data with
/// [`Engine::append`].
pub struct Engine {
    state: Mutex<EngineState>,
    /// Serializes appends with each other (never with queries).
    append_lock: Mutex<()>,
    /// Lock order: `append_lock` → `durability` → `state`.
    durability: Option<Mutex<DurabilityState>>,
    scheduler: Scheduler,
    config: EngineConfig,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.locked();
        f.debug_struct("Engine")
            .field("epoch", &st.current.epoch)
            .field("transactions", &st.current.db.len())
            .field("cached_lattices", &st.lattices.entries())
            .finish()
    }
}

impl Engine {
    /// Creates an engine over `db` and `catalog` with default
    /// configuration.
    pub fn new(db: TransactionDb, catalog: Catalog) -> Result<Arc<Engine>> {
        Engine::with_config(db, catalog, EngineConfig::default())
    }

    /// Creates an engine with explicit configuration. Fails with
    /// [`CfqError::Engine`] when the catalog covers fewer items than the
    /// database references, with [`CfqError::CacheBudget`] on a zero
    /// cache budget, and with [`CfqError::Config`] when `follow` is set
    /// without `wal_dir`.
    ///
    /// With `wal_dir` set, `db` is the *seed* for a fresh directory: when
    /// the directory already holds a snapshot or WAL, construction
    /// recovers — install the newest valid snapshot (database plus cached
    /// lattices, every image gated by `TransactionDb::validate` and the
    /// lattice shape checks), then replay every WAL record above its
    /// epoch — and serves warm from the recovered state.
    pub fn with_config(
        db: TransactionDb,
        catalog: Catalog,
        config: EngineConfig,
    ) -> Result<Arc<Engine>> {
        if catalog.n_items() < db.n_items() {
            return Err(CfqError::Engine(format!(
                "catalog covers {} items but the database references up to {}",
                catalog.n_items(),
                db.n_items()
            )));
        }
        if config.cache_budget_bytes == 0 {
            return Err(CfqError::CacheBudget(
                "the lattice cache budget must be positive".into(),
            ));
        }
        if config.follow && config.wal_dir.is_none() {
            return Err(CfqError::Config(
                "follow mode needs a WAL directory to tail (--wal-dir / --follow DIR)".into(),
            ));
        }
        let current = Arc::new(EpochState {
            epoch: 0,
            db: Arc::new(db),
            catalog: Arc::new(catalog),
        });
        let durability = config.wal_dir.as_ref().map(|dir| {
            Mutex::new(DurabilityState {
                dir: dir.clone(),
                writer: None,
                snapshot_every: config.snapshot_every,
                appends_since_snapshot: 0,
                replayed_records: 0,
                snapshot_writes: 0,
                snapshot_bytes: 0,
                snapshot_failures: 0,
                last_snapshot_epoch: 0,
                retired_records: 0,
                retired_bytes: 0,
                retired_fsyncs: 0,
            })
        });
        let engine = Engine {
            state: Mutex::new(EngineState {
                current,
                lattices: LatticeCache::new(config.cache_budget_bytes),
                plans: PlanCache::new(config.plan_cache_entries),
            }),
            append_lock: Mutex::new(()),
            durability,
            scheduler: Scheduler::new(
                config.max_inflight_queries,
                config.max_queued_queries,
                config.batch_window,
            ),
            config,
        };
        if let Some(dir) = engine.config.wal_dir.clone() {
            engine.recover(&dir)?;
        }
        Ok(Arc::new(engine))
    }

    /// Boot-time recovery: newest valid snapshot, then WAL replay, then
    /// (primaries only) reopen or create the tail WAL segment.
    fn recover(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut span = obs::span(obs::Level::Info, "engine.recover")
            .str("dir", dir.display().to_string());
        let mut snapshot_epoch = 0u64;
        if let Some(image) = snapshot::load_latest(dir)? {
            let mut st = self.locked();
            if image.db.n_items() > st.current.catalog.n_items() {
                return Err(CfqError::Engine(format!(
                    "snapshot references {} items but the catalog covers {}",
                    image.db.n_items(),
                    st.current.catalog.n_items()
                )));
            }
            snapshot_epoch = image.epoch;
            st.current = Arc::new(EpochState {
                epoch: image.epoch,
                db: Arc::new(image.db),
                catalog: Arc::clone(&st.current.catalog),
            });
            for l in image.lattices {
                let lattice = Arc::new(l.lattice);
                // Oversize images just don't re-enter the cache; the
                // budget may have shrunk since the snapshot was taken.
                let _ = st.lattices.insert(LatticeEntry {
                    epoch: image.epoch,
                    universe: Arc::new(l.universe),
                    min_support: l.min_support,
                    lattice: Arc::clone(&lattice),
                    source: LatticeSource::Cached,
                    bytes: lattice.approx_bytes(),
                    scans_cost: l.scans_cost,
                    last_used: 0,
                });
            }
        }
        let after_epoch = self.epoch();
        let summary = wal::replay(dir, after_epoch, |rec| {
            self.apply_append(rec.delta, false).map(|_| ())
        })?;
        span.record_u64("snapshot_epoch", snapshot_epoch);
        span.record_u64("replayed_records", summary.records);
        span.record_u64("epoch", self.epoch());
        let d = self.durability.as_ref().expect("recover runs only with wal_dir");
        let mut d = d.lock().unwrap_or_else(|e| e.into_inner());
        d.replayed_records = summary.records;
        d.appends_since_snapshot = summary.records;
        d.last_snapshot_epoch = snapshot_epoch;
        if !self.config.follow {
            d.writer = Some(match summary.tail {
                Some((path, valid_end)) => WalWriter::reopen(&path, valid_end)?,
                None => WalWriter::create(dir, self.epoch() + 1)?,
            });
        }
        Ok(())
    }

    fn locked(&self) -> MutexGuard<'_, EngineState> {
        // A panic while holding the lock can only happen between plain
        // field updates; the state is still consistent, so recover it.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a session on this engine. Sessions are cheap handles; open
    /// one per thread of work.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current epoch (0 at construction, +1 per append).
    pub fn epoch(&self) -> u64 {
        self.locked().current.epoch
    }

    /// The current epoch's database snapshot.
    pub fn db(&self) -> Arc<TransactionDb> {
        Arc::clone(&self.locked().current.db)
    }

    /// The catalog (immutable over the engine's lifetime).
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.locked().current.catalog)
    }

    /// A counter snapshot of the scheduler: mining passes, coalesced and
    /// batched queries, admission-control activity.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.scheduler.stats()
    }

    /// Takes a query execution slot, queueing at the scheduler's
    /// admission gate and failing fast with [`CfqError::Overloaded`]
    /// when both the in-flight and queue limits are exhausted.
    pub(crate) fn admit(&self) -> Result<AdmissionPermit<'_>> {
        self.scheduler.admit()
    }

    /// A counter snapshot of both caches.
    pub fn cache_stats(&self) -> CacheStats {
        let st = self.locked();
        CacheStats {
            lattice_hits: st.lattices.hits,
            lattice_misses: st.lattices.misses,
            scans_saved: st.lattices.scans_saved,
            plan_hits: st.plans.hits,
            plan_misses: st.plans.misses,
            evictions: st.lattices.evictions,
            oversize_rejections: st.lattices.oversize_rejections,
            stale_drops: st.lattices.stale_drops,
            entries: st.lattices.entries(),
            bytes_used: st.lattices.bytes_used(),
            budget_bytes: st.lattices.budget(),
        }
    }

    pub(crate) fn snapshot(&self) -> Arc<EpochState> {
        Arc::clone(&self.locked().current)
    }

    /// Serves the plan for `fingerprint` from the plan cache, building it
    /// with `build` on a miss. Returns `(plan, was_cached)`.
    pub(crate) fn plan_for(
        &self,
        fingerprint: u64,
        build: impl FnOnce() -> CfqPlan,
    ) -> (Arc<CfqPlan>, bool) {
        let mut span = obs::span(obs::Level::Debug, "engine.plan")
            .str("fingerprint", format!("{fingerprint:016x}"));
        if let Some(plan) = self.locked().plans.get(fingerprint) {
            span.record_str("source", "plan_cache_hit");
            return (plan, true);
        }
        // Build outside the lock; losing a race just builds twice.
        let plan = Arc::new(build());
        self.locked().plans.insert(fingerprint, Arc::clone(&plan));
        span.record_str("source", "built");
        (plan, false)
    }

    /// Serves the complete lattice of `universe` at `min_support` in
    /// `snap`'s database: from the cache when a compatible entry exists,
    /// through the scheduler's single-flight groups on a miss. Cache work
    /// is recorded both in the engine's counters and in `stats`
    /// (hit/miss/scans-saved). Only unbounded minings (`max_level == 0`)
    /// may lead a group and be inserted — a level-capped family is not
    /// complete, so it cannot serve other queries or be FUP-upgraded;
    /// capped requests may still *join* a group, since the complete
    /// result it produces serves them by filtering.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn lattice_for(
        &self,
        snap: &EpochState,
        universe: &[ItemId],
        min_support: u64,
        max_level: usize,
        threads: usize,
        trim: bool,
        backend: CountingBackend,
        shards: usize,
        stats: &mut WorkStats,
    ) -> (Arc<FrequentSets>, LatticeSource) {
        if universe.is_empty() {
            // An unsatisfiable side mines nothing and caches nothing.
            return (Arc::new(FrequentSets::new()), LatticeSource::MinedCold);
        }
        let mut span = obs::span(obs::Level::Debug, "engine.lattice")
            .u64("universe", universe.len() as u64)
            .u64("min_support", min_support)
            .u64("epoch", snap.epoch);
        if let Some(CacheHit { lattice, source, scans_cost }) =
            self.locked().lattices.lookup(snap.epoch, universe, min_support)
        {
            stats.record_cache_hit(scans_cost);
            span.record_str("source", source.describe());
            span.record_u64("scans_saved", scans_cost);
            return (lattice, source);
        }

        // Miss: resolve through the scheduler so concurrent identical
        // misses share one mining pass. The group may mine at a lower
        // support than requested (a batched member asked for less); the
        // caller filters by its own threshold, so the superset is sound.
        let mut led_work: Option<WorkStats> = None;
        let role = self.scheduler.mine_or_join(
            snap.epoch,
            universe,
            min_support,
            max_level == 0,
            |support| {
                let mut mine = WorkStats::new();
                let cfg = AprioriConfig::new(support)
                    .with_universe(universe.to_vec())
                    .with_trim(trim)
                    .with_backend(backend)
                    .with_shards(shards)
                    .with_counting_threads(threads);
                let lattice = Arc::new(apriori(&snap.db, &cfg, &mut mine));
                let scans_cost = mine.db_scans;
                led_work = Some(mine);
                let entry = LatticeEntry {
                    epoch: snap.epoch,
                    universe: Arc::new(universe.to_vec()),
                    min_support: support,
                    lattice: Arc::clone(&lattice),
                    source: LatticeSource::Cached,
                    bytes: lattice.approx_bytes(),
                    scans_cost,
                    last_used: 0,
                };
                let mut st = self.locked();
                if st.current.epoch == snap.epoch {
                    // Oversize rejection is counted inside the cache; the
                    // query itself already has its lattice.
                    let _ = st.lattices.insert(entry);
                } else {
                    st.lattices.record_stale_drop();
                }
                (lattice, scans_cost)
            },
        );
        match role {
            Some(GroupRole::Led { lattice, scans_cost }) => {
                stats.record_cache_miss();
                stats.absorb(&led_work.expect("leader ran the mine closure"));
                span.record_str("source", "mined_cold");
                span.record_u64("db_scans", scans_cost);
                (lattice, LatticeSource::MinedCold)
            }
            Some(GroupRole::Joined { lattice, scans_cost }) => {
                stats.record_cache_hit(scans_cost);
                self.locked().lattices.credit_saved(scans_cost);
                span.record_str("source", LatticeSource::Coalesced.describe());
                span.record_u64("scans_saved", scans_cost);
                (lattice, LatticeSource::Coalesced)
            }
            None => {
                // Level-capped with nothing to join: mine directly, at
                // the requested cap, without caching.
                stats.record_cache_miss();
                span.record_str("source", "mined_cold");
                let mut mine = WorkStats::new();
                let cfg = AprioriConfig::new(min_support)
                    .with_universe(universe.to_vec())
                    .with_max_level(max_level)
                    .with_trim(trim)
                    .with_backend(backend)
                    .with_shards(shards)
                    .with_counting_threads(threads);
                let lattice = Arc::new(apriori(&snap.db, &cfg, &mut mine));
                self.scheduler.note_direct_mining();
                span.record_u64("db_scans", mine.db_scans);
                stats.absorb(&mine);
                (lattice, LatticeSource::MinedCold)
            }
        }
    }

    /// Predicted provenance of a lookup, without perturbing counters or
    /// LRU order (for `explain`).
    pub(crate) fn peek_source(
        &self,
        snap: &EpochState,
        universe: &[ItemId],
        min_support: u64,
    ) -> LatticeSource {
        if universe.is_empty() {
            return LatticeSource::MinedCold;
        }
        self.locked()
            .lattices
            .peek(snap.epoch, universe, min_support)
            .unwrap_or(LatticeSource::MinedCold)
    }

    /// Appends `delta` as a new epoch.
    ///
    /// The new epoch's database is the concatenation of the current one
    /// and `delta` (same item universe required). Every cached lattice of
    /// the outgoing epoch is upgraded in place with FUP at its own
    /// threshold — complete universe-restricted families are downward
    /// closed, exactly what [`fup_update_abs`] maintains — so sessions
    /// keep their cache warmth across the swap. Queries running during
    /// the append finish against their snapshot; results they try to
    /// cache afterwards are dropped as stale.
    ///
    /// With a WAL configured, the delta is written and fsynced *before*
    /// the epoch swap makes it visible, so an acknowledged append
    /// survives `kill -9`; a crash between the WAL write and the
    /// acknowledgment may replay an unacknowledged delta at recovery
    /// (at-least-once, never lossy). On a `--follow` replica this fails
    /// with [`CfqError::Engine`] — appends must go to the primary.
    pub fn append(&self, delta: TransactionDb) -> Result<EpochInfo> {
        if self.config.follow {
            return Err(CfqError::Engine(
                "this engine is a read-only replica (--follow); appends must go to the primary"
                    .into(),
            ));
        }
        self.apply_append(delta, true)
    }

    /// Applies a delta tailed from the primary's WAL. Only meaningful on
    /// a `--follow` replica — everything else must use
    /// [`Engine::append`] so the delta is logged.
    pub fn replay_append(&self, delta: TransactionDb) -> Result<EpochInfo> {
        if !self.config.follow {
            return Err(CfqError::Engine(
                "replay_append is reserved for --follow replicas; use append".into(),
            ));
        }
        let info = self.apply_append(delta, false)?;
        if let Some(d) = &self.durability {
            d.lock().unwrap_or_else(|e| e.into_inner()).replayed_records += 1;
        }
        Ok(info)
    }

    fn apply_append(&self, delta: TransactionDb, durable: bool) -> Result<EpochInfo> {
        let _serialize =
            self.append_lock.lock().unwrap_or_else(|e| e.into_inner());
        let mut span = obs::span(obs::Level::Info, "engine.fup_append")
            .u64("delta_rows", delta.len() as u64);
        let snap = self.snapshot();
        let combined = snap.db.concat(&delta)?;
        let old_entries = self.locked().lattices.snapshot_epoch(snap.epoch);
        let mut upgraded = Vec::with_capacity(old_entries.len());
        let mut old_db_recounts = 0u64;
        for e in old_entries {
            let mut stats = WorkStats::new();
            let out = fup_update_abs(
                &e.lattice,
                &snap.db,
                &delta,
                &e.universe,
                e.min_support,
                e.min_support,
                &mut stats,
            )?;
            old_db_recounts += out.old_db_recounts;
            let lattice = Arc::new(out.frequent);
            upgraded.push(LatticeEntry {
                epoch: snap.epoch + 1,
                universe: e.universe,
                min_support: e.min_support,
                lattice: Arc::clone(&lattice),
                source: LatticeSource::FupUpgraded,
                bytes: lattice.approx_bytes(),
                // Keep crediting what a cold re-mine would have cost; the
                // combined database is at least as expensive to scan.
                scans_cost: e.scans_cost,
                last_used: e.last_used,
            });
        }
        // Durable-before-visible: the record is on disk (fsynced) before
        // the swap below acknowledges the epoch. A failure here leaves
        // the in-memory state untouched.
        if durable {
            if let Some(d) = &self.durability {
                let mut d = d.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(writer) = &mut d.writer {
                    let record = WalRecord { epoch: snap.epoch + 1, delta };
                    let bytes = writer.append(&record)?;
                    span.record_u64("wal_bytes", bytes);
                }
            }
        }
        let upgraded_lattices = upgraded.len();
        let info = {
            let mut st = self.locked();
            st.current = Arc::new(EpochState {
                epoch: snap.epoch + 1,
                db: Arc::new(combined),
                catalog: Arc::clone(&snap.catalog),
            });
            st.lattices.replace_all(upgraded);
            EpochInfo {
                epoch: st.current.epoch,
                transactions: st.current.db.len(),
                upgraded_lattices,
                old_db_recounts,
            }
        };
        if durable {
            if let Some(d) = &self.durability {
                let mut d = d.lock().unwrap_or_else(|e| e.into_inner());
                if d.writer.is_some() && d.snapshot_every > 0 {
                    d.appends_since_snapshot += 1;
                    if d.appends_since_snapshot >= d.snapshot_every {
                        // The append already succeeded and its record is
                        // on the WAL; a failed snapshot only defers
                        // compaction to the next attempt.
                        if let Err(e) = self.write_snapshot(&mut d) {
                            d.snapshot_failures += 1;
                            span.record_str("snapshot_error", e.to_string());
                        }
                    }
                }
            }
        }
        span.record_u64("epoch", info.epoch);
        span.record_u64("upgraded_lattices", info.upgraded_lattices as u64);
        span.record_u64("old_db_recounts", info.old_db_recounts);
        Ok(info)
    }

    /// Writes a snapshot of the current epoch (database plus every cached
    /// lattice of that epoch) and rotates the WAL. Fails with
    /// [`CfqError::Config`] on an ephemeral engine and with
    /// [`CfqError::Engine`] on a replica (the WAL directory belongs to
    /// the primary).
    pub fn snapshot_now(&self) -> Result<SnapshotInfo> {
        if self.config.follow {
            return Err(CfqError::Engine(
                "a --follow replica does not own the WAL directory; snapshot on the primary"
                    .into(),
            ));
        }
        let d = self.durability.as_ref().ok_or_else(|| {
            CfqError::Config("snapshots need a durability directory (--wal-dir)".into())
        })?;
        let _serialize =
            self.append_lock.lock().unwrap_or_else(|e| e.into_inner());
        let mut d = d.lock().unwrap_or_else(|e| e.into_inner());
        self.write_snapshot(&mut d)
    }

    /// Snapshot + WAL rotation. Caller holds `append_lock` (or is still
    /// single-threaded construction) and the durability lock.
    fn write_snapshot(&self, d: &mut DurabilityState) -> Result<SnapshotInfo> {
        let mut span = obs::span(obs::Level::Info, "engine.snapshot");
        let (epoch, db, entries) = {
            let st = self.locked();
            let epoch = st.current.epoch;
            (epoch, Arc::clone(&st.current.db), st.lattices.snapshot_epoch(epoch))
        };
        let views: Vec<LatticeView<'_>> = entries
            .iter()
            .map(|e| LatticeView {
                universe: &e.universe,
                min_support: e.min_support,
                scans_cost: e.scans_cost,
                lattice: &e.lattice,
            })
            .collect();
        let (path, bytes) = snapshot::write(&d.dir, epoch, &db, &views)?;
        span.record_u64("epoch", epoch);
        span.record_u64("bytes", bytes);
        span.record_u64("lattices", views.len() as u64);
        // Rotate: later appends go to a fresh segment so generations at
        // or below the snapshot can be pruned. Skip when no epoch has
        // passed since the last rotation (back-to-back manual
        // snapshots) — the segment already starts past the snapshot.
        let next_segment = wal::wal_path(&d.dir, epoch + 1);
        let rotate = d
            .writer
            .as_ref()
            .is_some_and(|w| w.path() != next_segment.as_path());
        if rotate {
            let fresh = WalWriter::create(&d.dir, epoch + 1)?;
            if let Some(old) = d.writer.replace(fresh) {
                d.retired_records += old.records;
                d.retired_bytes += old.bytes;
                d.retired_fsyncs += old.fsyncs;
            }
            let _pruned = wal::prune(&d.dir, epoch)?;
        }
        d.snapshot_writes += 1;
        d.snapshot_bytes += bytes;
        d.last_snapshot_epoch = epoch;
        d.appends_since_snapshot = 0;
        Ok(SnapshotInfo { epoch, path, bytes })
    }

    /// A counter snapshot of the durability subsystem.
    pub fn durability_stats(&self) -> DurabilityStats {
        let Some(d) = &self.durability else {
            return DurabilityStats::default();
        };
        let d = d.lock().unwrap_or_else(|e| e.into_inner());
        let (wal_records, wal_bytes, wal_fsyncs) = d
            .writer
            .as_ref()
            .map_or((0, 0, 0), |w| (w.records, w.bytes, w.fsyncs));
        DurabilityStats {
            enabled: true,
            follow: self.config.follow,
            wal_records: d.retired_records + wal_records,
            wal_bytes: d.retired_bytes + wal_bytes,
            wal_fsyncs: d.retired_fsyncs + wal_fsyncs,
            replayed_records: d.replayed_records,
            snapshot_writes: d.snapshot_writes,
            snapshot_bytes: d.snapshot_bytes,
            snapshot_failures: d.snapshot_failures,
            last_snapshot_epoch: d.last_snapshot_epoch,
        }
    }
}

/// Fingerprint helper shared by `Session` and tests: hashes the strategy
/// flags and the bound constraints' display forms (which include every
/// resolved id and literal).
pub(crate) fn plan_fingerprint(
    strategy: &Optimizer,
    bound: &cfq_constraints::BoundQuery,
    catalog: &Catalog,
) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = cfq_types::FxHasher::default();
    (strategy.push_one_var, strategy.push_two_var, strategy.use_jkmax, strategy.dovetail)
        .hash(&mut h);
    for c in &bound.one_var {
        c.display(catalog).to_string().hash(&mut h);
    }
    for c in &bound.two_var {
        c.display(catalog).to_string().hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog(n: usize) -> Catalog {
        let mut b = cfq_types::CatalogBuilder::new(n);
        b.num_attr("Price", (0..n).map(|i| 10.0 * (i + 1) as f64).collect())
            .unwrap();
        b.build()
    }

    fn db() -> TransactionDb {
        TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[1, 2, 3, 4],
                &[0, 2, 4],
                &[0, 1, 3, 5],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4],
                &[1, 3, 5],
            ],
        )
    }

    #[test]
    fn construction_validates_catalog_and_budget() {
        let err = Engine::new(db(), catalog(2)).unwrap_err();
        assert!(matches!(err, CfqError::Engine(_)), "{err}");
        assert!(err.to_string().contains("catalog covers 2 items"));

        let cfg = EngineConfig { cache_budget_bytes: 0, ..EngineConfig::default() };
        let err = Engine::with_config(db(), catalog(6), cfg).unwrap_err();
        assert!(matches!(err, CfqError::CacheBudget(_)), "{err}");
    }

    #[test]
    fn append_concatenates_and_bumps_epoch() {
        let engine = Engine::new(db(), catalog(6)).unwrap();
        assert_eq!(engine.epoch(), 0);
        let delta = TransactionDb::from_u32(6, &[&[0, 1], &[2, 3, 4]]);
        let info = engine.append(delta).unwrap();
        assert_eq!(info.epoch, 1);
        assert_eq!(info.transactions, 10);
        assert_eq!(info.upgraded_lattices, 0, "nothing cached yet");
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.db().len(), 10);
    }

    #[test]
    fn append_rejects_mismatched_universe() {
        let engine = Engine::new(db(), catalog(6)).unwrap();
        let delta = TransactionDb::from_u32(4, &[&[0, 1]]);
        let err = engine.append(delta).unwrap_err();
        assert!(matches!(err, CfqError::Engine(_)), "{err}");
    }

    #[test]
    fn lattice_for_caches_and_reuses() {
        let engine = Engine::new(db(), catalog(6)).unwrap();
        let snap = engine.snapshot();
        let universe: Vec<ItemId> = (0..6u32).map(ItemId).collect();
        let mut stats = WorkStats::new();
        let (cold, src) = engine.lattice_for(&snap, &universe, 2, 0, 1, true, CountingBackend::Horizontal, 1, &mut stats);
        assert_eq!(src, LatticeSource::MinedCold);
        assert!(stats.db_scans > 0);
        assert_eq!(stats.cache_misses, 1);

        let mut warm_stats = WorkStats::new();
        let (warm, src) = engine.lattice_for(&snap, &universe, 2, 0, 1, true, CountingBackend::Horizontal, 1, &mut warm_stats);
        assert_eq!(src, LatticeSource::Cached);
        assert_eq!(warm_stats.db_scans, 0);
        assert_eq!(warm_stats.cache_hits, 1);
        assert_eq!(warm_stats.scans_saved, stats.db_scans);
        assert_eq!(warm.total(), cold.total());

        // A subset universe at a higher threshold also hits.
        let sub: Vec<ItemId> = vec![ItemId(1), ItemId(2)];
        let mut sub_stats = WorkStats::new();
        let (_, src) = engine.lattice_for(&snap, &sub, 3, 0, 1, true, CountingBackend::Horizontal, 1, &mut sub_stats);
        assert_eq!(src, LatticeSource::Cached);
        assert_eq!(sub_stats.db_scans, 0);
    }

    #[test]
    fn level_capped_minings_are_not_cached() {
        let engine = Engine::new(db(), catalog(6)).unwrap();
        let snap = engine.snapshot();
        let universe: Vec<ItemId> = (0..6u32).map(ItemId).collect();
        let mut stats = WorkStats::new();
        let (_, src) = engine.lattice_for(&snap, &universe, 2, 1, 1, true, CountingBackend::Horizontal, 1, &mut stats);
        assert_eq!(src, LatticeSource::MinedCold);
        assert_eq!(engine.cache_stats().entries, 0);
    }

    #[test]
    fn append_upgrades_cached_lattices_with_fup() {
        let engine = Engine::new(db(), catalog(6)).unwrap();
        let snap = engine.snapshot();
        let universe: Vec<ItemId> = (0..6u32).map(ItemId).collect();
        let mut stats = WorkStats::new();
        engine.lattice_for(&snap, &universe, 2, 0, 1, true, CountingBackend::Horizontal, 1, &mut stats);

        let delta = TransactionDb::from_u32(6, &[&[0, 1, 2], &[3, 4, 5], &[0, 3]]);
        let info = engine.append(delta.clone()).unwrap();
        assert_eq!(info.upgraded_lattices, 1);

        // The upgraded entry serves the new epoch without a scan and
        // matches a cold re-mine of the combined database.
        let snap2 = engine.snapshot();
        let mut warm = WorkStats::new();
        let (lattice, src) = engine.lattice_for(&snap2, &universe, 2, 0, 1, true, CountingBackend::Horizontal, 1, &mut warm);
        assert_eq!(src, LatticeSource::FupUpgraded);
        assert_eq!(warm.db_scans, 0);

        let combined = db().concat(&delta).unwrap();
        let mut remine = WorkStats::new();
        let cfg = AprioriConfig::new(2).with_universe(universe.clone());
        let expected = apriori(&combined, &cfg, &mut remine);
        assert_eq!(lattice.total(), expected.total());
        for (set, n) in expected.iter() {
            assert_eq!(lattice.support(set), Some(n), "support mismatch for {set}");
        }
    }
}

//! The versioned wire envelope — v1 of the serve control protocol.
//!
//! Every JSON line a client sends is one envelope
//! `{"v":1,"cmd":"query"|"metrics"|"slowlog"|"status"|"snapshot",...}`;
//! every reply is either `{"v":1,"result":...}` or a typed error object
//! `{"v":1,"error":{"kind":"...","message":"..."}}`. The `kind` field is
//! machine-dispatchable (one value per [`CfqError`] variant plus the
//! protocol-level kinds below), so clients branch on a token instead of
//! string-matching prose. The legacy `:json`/`:metrics`/`:slowlog` line
//! commands remain as a thin compat shim over the same handlers.
//!
//! Protocol-level error kinds (no `CfqError` behind them):
//!
//! * `protocol` — the line is not a well-formed envelope;
//! * `unsupported_version` — `v` is not a version this server speaks;
//! * `unknown_command` — `cmd` is not in the v1 command set.

use crate::json::{self, Json};
use crate::request::QueryRequest;
use cfq_types::CfqError;

/// The one wire version this build speaks.
pub const WIRE_VERSION: u64 = 1;

/// A parsed v1 envelope command.
#[derive(Debug)]
pub enum WireCmd {
    /// `{"v":1,"cmd":"query","req":{...}}` — run one [`QueryRequest`].
    Query(QueryRequest),
    /// `{"v":1,"cmd":"metrics"}` — Prometheus text dump.
    Metrics,
    /// `{"v":1,"cmd":"slowlog"}` — slow-query log dump.
    Slowlog,
    /// `{"v":1,"cmd":"status"}` — engine + durability status object.
    Status,
    /// `{"v":1,"cmd":"snapshot"}` — write a snapshot now.
    Snapshot,
}

/// A wire-level error: a kind token plus a human-readable message.
#[derive(Debug)]
pub struct WireError {
    /// Machine-dispatchable kind token.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Renders the v1 error envelope line.
    pub fn render(&self) -> String {
        error_object(self.kind, &self.message, false)
    }
}

/// The `kind` token of a [`CfqError`] — one stable value per variant.
pub fn error_kind(e: &CfqError) -> &'static str {
    match e {
        CfqError::Parse(_) => "parse",
        CfqError::Attr(_) => "attr",
        CfqError::UnsupportedConstraint(_) => "unsupported_constraint",
        CfqError::Config(_) => "config",
        CfqError::Io(_) => "io",
        CfqError::Engine(_) => "engine",
        CfqError::CacheBudget(_) => "cache_budget",
        CfqError::Audit(_) => "audit",
        CfqError::Overloaded(_) => "overloaded",
    }
}

fn error_object(kind: &str, message: &str, overloaded: bool) -> String {
    let mut out = format!("{{\"v\":{WIRE_VERSION},\"error\":{{\"kind\":");
    json::write_escaped(&mut out, kind);
    out.push_str(",\"message\":");
    json::write_escaped(&mut out, message);
    if overloaded {
        out.push_str(",\"overloaded\":true");
    }
    out.push_str("}}");
    out
}

/// Renders a [`CfqError`] as the v1 error envelope. Overload rejections
/// additionally carry `"overloaded":true` inside the error object so
/// back-off logic stays a field check.
pub fn error_from(e: &CfqError) -> String {
    error_object(error_kind(e), &e.to_string(), matches!(e, CfqError::Overloaded(_)))
}

/// Wraps an already-serialized JSON value in the v1 result envelope.
pub fn result_object(body_json: &str) -> String {
    format!("{{\"v\":{WIRE_VERSION},\"result\":{body_json}}}")
}

/// Wraps plain text (a metrics scrape, a slowlog dump) in the v1 result
/// envelope as `{"text": "..."}`.
pub fn text_result(text: &str) -> String {
    let mut out = format!("{{\"v\":{WIRE_VERSION},\"result\":{{\"text\":");
    json::write_escaped(&mut out, text);
    out.push_str("}}");
    out
}

/// Parses one wire line into a v1 command, or the typed error the server
/// should answer with.
pub fn parse_envelope(line: &str) -> Result<WireCmd, WireError> {
    let v = json::parse(line).map_err(|e| WireError {
        kind: "protocol",
        message: format!("envelope is not valid JSON: {e}"),
    })?;
    let fields = match &v {
        Json::Obj(fields) => fields,
        _ => {
            return Err(WireError {
                kind: "protocol",
                message: "envelope must be a JSON object".into(),
            })
        }
    };
    for (key, _) in fields {
        if !matches!(key.as_str(), "v" | "cmd" | "req") {
            return Err(WireError {
                kind: "protocol",
                message: format!("unknown envelope field `{key}`"),
            });
        }
    }
    let version = v.get("v").and_then(Json::as_u64).ok_or_else(|| WireError {
        kind: "protocol",
        message: "envelope needs a numeric `v` field (this server speaks v1)".into(),
    })?;
    if version != WIRE_VERSION {
        return Err(WireError {
            kind: "unsupported_version",
            message: format!("wire version {version} is not supported (this server speaks v1)"),
        });
    }
    let cmd = v.get("cmd").and_then(Json::as_str).ok_or_else(|| WireError {
        kind: "protocol",
        message: "envelope needs a string `cmd` field".into(),
    })?;
    match cmd {
        "query" => {
            let req = v.get("req").ok_or_else(|| WireError {
                kind: "protocol",
                message: "cmd `query` needs a `req` request object".into(),
            })?;
            let req = QueryRequest::from_value(req).map_err(|e| WireError {
                kind: error_kind(&e),
                message: e.to_string(),
            })?;
            // Reject out-of-range field values here, at decode time, so a
            // bad request never reaches the scheduler — same typed errors
            // the builder path gets from `Session::execute`.
            req.validate().map_err(|e| WireError {
                kind: error_kind(&e),
                message: e.to_string(),
            })?;
            Ok(WireCmd::Query(req))
        }
        "metrics" => Ok(WireCmd::Metrics),
        "slowlog" => Ok(WireCmd::Slowlog),
        "status" => Ok(WireCmd::Status),
        "snapshot" => Ok(WireCmd::Snapshot),
        other => Err(WireError {
            kind: "unknown_command",
            message: format!(
                "unknown command `{other}` (v1 speaks query, metrics, slowlog, status, snapshot)"
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_envelope_parses() {
        let cmd = parse_envelope(
            r#"{"v":1,"cmd":"query","req":{"query":"count(S) >= 1","support":0.25}}"#,
        )
        .unwrap();
        match cmd {
            WireCmd::Query(req) => assert_eq!(req.query, "count(S) >= 1"),
            other => panic!("wrong cmd: {other:?}"),
        }
    }

    #[test]
    fn control_commands_parse() {
        for (line, want) in [
            (r#"{"v":1,"cmd":"metrics"}"#, "Metrics"),
            (r#"{"v":1,"cmd":"slowlog"}"#, "Slowlog"),
            (r#"{"v":1,"cmd":"status"}"#, "Status"),
            (r#"{"v":1,"cmd":"snapshot"}"#, "Snapshot"),
        ] {
            let cmd = parse_envelope(line).unwrap();
            assert!(format!("{cmd:?}").starts_with(want), "{line} -> {cmd:?}");
        }
    }

    #[test]
    fn version_and_shape_errors_are_typed() {
        for (line, kind) in [
            ("{nope", "protocol"),
            ("[1,2]", "protocol"),
            (r#"{"cmd":"query"}"#, "protocol"),
            (r#"{"v":2,"cmd":"query"}"#, "unsupported_version"),
            (r#"{"v":1,"cmd":"reboot"}"#, "unknown_command"),
            (r#"{"v":1,"cmd":"query"}"#, "protocol"),
            (r#"{"v":1,"cmd":"query","req":{"quary":"q"}}"#, "parse"),
            (r#"{"v":1,"cmd":"query","req":{"query":"q","support":{"frac":0}}}"#, "config"),
            (r#"{"v":1,"cmd":"query","req":{"query":"q","shards":0}}"#, "config"),
            (r#"{"v":1,"cmd":"status","extra":true}"#, "protocol"),
        ] {
            let err = parse_envelope(line).unwrap_err();
            assert_eq!(err.kind, kind, "{line} -> {err:?}");
            let rendered = err.render();
            let v = json::parse(&rendered).unwrap();
            assert_eq!(
                v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
                Some(kind),
                "{rendered}"
            );
        }
    }

    #[test]
    fn error_objects_carry_kind_and_overload_flag() {
        let over = error_from(&CfqError::Overloaded("full".into()));
        let v = json::parse(&over).unwrap();
        let e = v.get("error").unwrap();
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(e.get("overloaded").and_then(Json::as_bool), Some(true));

        let plain = error_from(&CfqError::Parse("bad".into()));
        let v = json::parse(&plain).unwrap();
        let e = v.get("error").unwrap();
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("parse"));
        assert!(e.get("overloaded").is_none());
    }

    #[test]
    fn result_wrappers_render_valid_json() {
        let r = result_object(r#"{"epoch":3}"#);
        let v = json::parse(&r).unwrap();
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("result").and_then(|r| r.get("epoch")).and_then(Json::as_u64),
            Some(3)
        );
        let t = text_result("line one\nline \"two\"");
        let v = json::parse(&t).unwrap();
        assert_eq!(
            v.get("result").and_then(|r| r.get("text")).and_then(Json::as_str),
            Some("line one\nline \"two\"")
        );
    }
}

//! Multi-query admission and single-flight batch scheduling.
//!
//! Every query entering the engine passes through two gates:
//!
//! * **Admission** — at most `max_inflight_queries` queries execute at
//!   once; up to `max_queued_queries` more wait their turn, and anything
//!   beyond that is rejected immediately with [`CfqError::Overloaded`]
//!   so an overloaded server sheds load instead of queueing unboundedly.
//! * **Single-flight groups** — a cold lattice mining is keyed by
//!   `(epoch, universe)`. The first miss creates a *group* and waits a
//!   short batch window; identical or compatible misses arriving in the
//!   meantime **join** the group instead of mining. The group leader
//!   mines once at the *minimum* support any member requested — a
//!   complete lattice at a lower threshold serves every higher-threshold
//!   member by filtering, the same weaker-envelope property the lattice
//!   cache exploits — and every member wakes with the shared result.
//!
//! Joining a group whose mining has already started (support frozen) is
//! still allowed when the frozen threshold is low enough to serve the
//! request. Admission is *barging*: a freed slot may be taken by a new
//! arrival before a queued waiter wakes; the queue bounds work, it does
//! not promise FIFO order.

use cfq_mining::FrequentSets;
use cfq_obs as obs;
use cfq_types::{CfqError, ItemId, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A counter snapshot of the scheduler: mining passes actually executed,
/// queries served by someone else's pass, and admission-control activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Lattice mining passes executed (group-led and direct).
    pub mining_passes: u64,
    /// Queries that joined another query's in-flight mining instead of
    /// mining themselves. K identical concurrent cold queries show
    /// `mining_passes == 1, coalesced == K - 1`.
    pub coalesced: u64,
    /// Joiners whose requested support differed from the group's — the
    /// group was a genuine batch, mined once at the minimum.
    pub batched: u64,
    /// Queries rejected with [`CfqError::Overloaded`] at admission.
    pub overloaded: u64,
    /// Queries admitted (fast-path or after queueing).
    pub admitted: u64,
    /// Queries executing right now.
    pub inflight: usize,
    /// Queries waiting for an execution slot right now.
    pub queued: usize,
}

#[derive(Default)]
struct Admission {
    inflight: usize,
    queued: usize,
}

/// An admitted query's slot. Dropping it frees the slot and wakes one
/// queued waiter.
pub(crate) struct AdmissionPermit<'a> {
    sched: &'a Scheduler,
    /// How long admission took (zero on the uncontended fast path).
    pub wait: Duration,
}

impl std::fmt::Debug for AdmissionPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit").field("wait", &self.wait).finish()
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut st = self.sched.lock_admission();
        st.inflight -= 1;
        drop(st);
        self.sched.admitted_cv.notify_one();
    }
}

/// How a cold mining request was resolved by [`Scheduler::mine_or_join`].
pub(crate) enum GroupRole {
    /// This query created the group, waited out the batch window, and ran
    /// the one mining pass.
    Led {
        lattice: Arc<FrequentSets>,
        /// Database scans the pass performed.
        scans_cost: u64,
    },
    /// This query attached to another query's group and shared its
    /// result without scanning anything.
    Joined {
        lattice: Arc<FrequentSets>,
        /// Scans the leader spent — what this query avoided.
        scans_cost: u64,
    },
}

/// One single-flight group: every member needs the `(epoch, universe)`
/// lattice; the leader mines it once at the lowest requested support.
struct Group {
    epoch: u64,
    universe: Vec<ItemId>,
    state: Mutex<GroupState>,
    done: Condvar,
}

struct GroupState {
    /// The support the group will mine at. Joiners may lower it while
    /// the group is still collecting.
    min_support: u64,
    /// Once true the support is frozen: the leader is mining.
    mining: bool,
    result: Option<(Arc<FrequentSets>, u64)>,
}

/// The engine's query scheduler. Lock order: the group map before any
/// group's state, never the reverse.
pub(crate) struct Scheduler {
    max_inflight: usize,
    max_queued: usize,
    batch_window: Duration,
    admission: Mutex<Admission>,
    admitted_cv: Condvar,
    groups: Mutex<Vec<Arc<Group>>>,
    mining_passes: AtomicU64,
    coalesced: AtomicU64,
    batched: AtomicU64,
    overloaded: AtomicU64,
    admitted: AtomicU64,
}

impl Scheduler {
    /// `max_inflight` / `max_queued` of 0 mean unlimited; a zero
    /// `batch_window` disables batching but keeps single-flight (joiners
    /// can still catch a mining in progress).
    pub(crate) fn new(max_inflight: usize, max_queued: usize, batch_window: Duration) -> Scheduler {
        Scheduler {
            max_inflight,
            max_queued,
            batch_window,
            admission: Mutex::new(Admission::default()),
            admitted_cv: Condvar::new(),
            groups: Mutex::new(Vec::new()),
            mining_passes: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
        }
    }

    fn lock_admission(&self) -> MutexGuard<'_, Admission> {
        self.admission.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Takes an execution slot, queueing if the engine is saturated and
    /// failing fast with [`CfqError::Overloaded`] if the queue is full
    /// too.
    pub(crate) fn admit(&self) -> Result<AdmissionPermit<'_>> {
        let start = Instant::now();
        let mut wait = Duration::ZERO;
        let mut st = self.lock_admission();
        if self.max_inflight != 0 && st.inflight >= self.max_inflight {
            if self.max_queued != 0 && st.queued >= self.max_queued {
                self.overloaded.fetch_add(1, Ordering::Relaxed);
                return Err(CfqError::Overloaded(format!(
                    "{} queries in flight and {} queued (limits: {} in flight, {} queued)",
                    st.inflight, st.queued, self.max_inflight, self.max_queued
                )));
            }
            let mut span = obs::span(obs::Level::Debug, "scheduler.wait")
                .u64("queued_behind", st.queued as u64);
            st.queued += 1;
            while st.inflight >= self.max_inflight {
                st = self.admitted_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.queued -= 1;
            wait = start.elapsed();
            span.record_u64("wait_us", wait.as_micros() as u64);
        }
        st.inflight += 1;
        drop(st);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(AdmissionPermit { sched: self, wait })
    }

    /// Resolves a cache miss for the `(epoch, universe)` lattice at
    /// `min_support`.
    ///
    /// Joins a compatible in-flight group when one exists (collecting at
    /// any support, or already mining at a support low enough to serve
    /// this request). Otherwise, when `can_lead`, creates a group, waits
    /// out the batch window so compatible misses can pile on, and runs
    /// `mine(support)` exactly once at the group's final (minimum)
    /// support. Returns `None` when there is nothing to join and leading
    /// is not allowed — level-capped requests, whose truncated result
    /// could not serve other members.
    pub(crate) fn mine_or_join(
        &self,
        epoch: u64,
        universe: &[ItemId],
        min_support: u64,
        can_lead: bool,
        mine: impl FnOnce(u64) -> (Arc<FrequentSets>, u64),
    ) -> Option<GroupRole> {
        let groups = self.groups.lock().unwrap_or_else(|e| e.into_inner());
        let mut joined = None;
        for g in groups.iter() {
            if g.epoch != epoch || g.universe[..] != *universe {
                continue;
            }
            let mut st = g.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.mining && st.min_support > min_support {
                // Frozen too high: its result cannot serve this request.
                continue;
            }
            if st.min_support != min_support {
                self.batched.fetch_add(1, Ordering::Relaxed);
            }
            if !st.mining && min_support < st.min_support {
                st.min_support = min_support;
            }
            drop(st);
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            joined = Some(Arc::clone(g));
            break;
        }
        drop(groups);

        if let Some(g) = joined {
            let mut st = g.state.lock().unwrap_or_else(|e| e.into_inner());
            let (lattice, scans_cost) = loop {
                if let Some(r) = st.result.clone() {
                    break r;
                }
                st = g.done.wait(st).unwrap_or_else(|e| e.into_inner());
            };
            return Some(GroupRole::Joined { lattice, scans_cost });
        }

        if !can_lead {
            return None;
        }

        let g = Arc::new(Group {
            epoch,
            universe: universe.to_vec(),
            state: Mutex::new(GroupState { min_support, mining: false, result: None }),
            done: Condvar::new(),
        });
        self.groups.lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&g));

        if !self.batch_window.is_zero() {
            std::thread::sleep(self.batch_window);
        }
        let support = {
            let mut st = g.state.lock().unwrap_or_else(|e| e.into_inner());
            st.mining = true;
            st.min_support
        };
        let (lattice, scans_cost) = mine(support);
        self.mining_passes.fetch_add(1, Ordering::Relaxed);
        // Unpublish before waking members: later arrivals must not join a
        // finished group.
        self.groups
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|x| !Arc::ptr_eq(x, &g));
        let mut st = g.state.lock().unwrap_or_else(|e| e.into_inner());
        st.result = Some((Arc::clone(&lattice), scans_cost));
        drop(st);
        g.done.notify_all();
        Some(GroupRole::Led { lattice, scans_cost })
    }

    /// Counts a mining pass that ran outside any group (a level-capped
    /// request with nothing to join).
    pub(crate) fn note_direct_mining(&self) {
        self.mining_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// A counter snapshot.
    pub(crate) fn stats(&self) -> SchedulerStats {
        let adm = self.lock_admission();
        SchedulerStats {
            mining_passes: self.mining_passes.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            batched: self.batched.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            inflight: adm.inflight,
            queued: adm.queued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;
    use std::thread;

    fn universe() -> Vec<ItemId> {
        vec![ItemId(0), ItemId(1), ItemId(2)]
    }

    #[test]
    fn identical_concurrent_requests_share_one_mining() {
        const K: usize = 4;
        let sched = Arc::new(Scheduler::new(0, 0, Duration::from_millis(150)));
        let mined = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(K));
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let (s, m, b) = (Arc::clone(&sched), Arc::clone(&mined), Arc::clone(&barrier));
                thread::spawn(move || {
                    b.wait();
                    s.mine_or_join(0, &universe(), 2, true, |support| {
                        assert_eq!(support, 2);
                        m.fetch_add(1, Ordering::SeqCst);
                        (Arc::new(FrequentSets::new()), 7)
                    })
                    .expect("can_lead requests always resolve")
                })
            })
            .collect();
        let roles: Vec<GroupRole> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        assert_eq!(mined.load(Ordering::SeqCst), 1, "exactly one mining pass");
        let led = roles.iter().filter(|r| matches!(r, GroupRole::Led { .. })).count();
        assert_eq!(led, 1);
        for r in &roles {
            let (GroupRole::Led { scans_cost, .. } | GroupRole::Joined { scans_cost, .. }) = r;
            assert_eq!(*scans_cost, 7);
        }
        let st = sched.stats();
        assert_eq!(st.mining_passes, 1);
        assert_eq!(st.coalesced, (K - 1) as u64);
        assert_eq!(st.batched, 0, "same support everywhere: coalesced, not batched");
    }

    #[test]
    fn joiner_lowers_the_group_support_before_freeze() {
        let sched = Arc::new(Scheduler::new(0, 0, Duration::from_millis(250)));
        let s2 = Arc::clone(&sched);
        let leader = thread::spawn(move || {
            // Report the support actually mined at through scans_cost.
            s2.mine_or_join(0, &universe(), 5, true, |support| {
                (Arc::new(FrequentSets::new()), support)
            })
        });
        thread::sleep(Duration::from_millis(60));
        let joined = sched
            .mine_or_join(0, &universe(), 3, true, |_| unreachable!("joiner must not mine"))
            .unwrap();
        match joined {
            GroupRole::Joined { scans_cost, .. } => {
                assert_eq!(scans_cost, 3, "the group mined at the joiner's lower support");
            }
            GroupRole::Led { .. } => panic!("second request must join, not lead"),
        }
        match leader.join().unwrap().unwrap() {
            GroupRole::Led { scans_cost, .. } => assert_eq!(scans_cost, 3),
            GroupRole::Joined { .. } => panic!("first request must lead"),
        }
        let st = sched.stats();
        assert_eq!((st.mining_passes, st.coalesced, st.batched), (1, 1, 1));
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sched = Scheduler::new(0, 0, Duration::ZERO);
        for (epoch, universe) in [(0, vec![ItemId(0)]), (0, vec![ItemId(1)]), (1, vec![ItemId(0)])]
        {
            let role = sched
                .mine_or_join(epoch, &universe, 2, true, |_| (Arc::new(FrequentSets::new()), 1))
                .unwrap();
            assert!(matches!(role, GroupRole::Led { .. }));
        }
        let st = sched.stats();
        assert_eq!((st.mining_passes, st.coalesced), (3, 0));
    }

    #[test]
    fn non_leaders_fall_through_when_nothing_is_in_flight() {
        let sched = Scheduler::new(0, 0, Duration::ZERO);
        let role = sched.mine_or_join(0, &universe(), 2, false, |_| unreachable!());
        assert!(role.is_none());
        sched.note_direct_mining();
        assert_eq!(sched.stats().mining_passes, 1);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let sched = Arc::new(Scheduler::new(1, 1, Duration::ZERO));
        let permit = sched.admit().unwrap();
        assert_eq!(permit.wait, Duration::ZERO);

        // Fills the one queue slot and blocks until the permit drops.
        let s2 = Arc::clone(&sched);
        let queued = thread::spawn(move || {
            let p = s2.admit().unwrap();
            assert!(p.wait > Duration::ZERO);
        });
        while sched.stats().queued == 0 {
            thread::sleep(Duration::from_millis(5));
        }

        let err = sched.admit().unwrap_err();
        assert!(matches!(err, CfqError::Overloaded(_)), "{err}");
        assert!(err.to_string().contains("limits: 1 in flight, 1 queued"), "{err}");

        drop(permit);
        queued.join().unwrap();
        let st = sched.stats();
        assert_eq!(st.overloaded, 1);
        assert_eq!(st.admitted, 2);
        assert_eq!((st.inflight, st.queued), (0, 0));
    }

    #[test]
    fn unlimited_admission_never_blocks() {
        let sched = Scheduler::new(0, 0, Duration::ZERO);
        let permits: Vec<_> = (0..64).map(|_| sched.admit().unwrap()).collect();
        assert_eq!(sched.stats().inflight, 64);
        drop(permits);
        assert_eq!(sched.stats().inflight, 0);
    }
}

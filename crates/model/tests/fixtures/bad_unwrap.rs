// Lint fixture: `.unwrap()` / `.expect(...)` in a request-handling path.
// Scanned with FileClass::Hot by the fixture test; never compiled.

fn handle(line: Option<&str>) -> usize {
    let text = line.unwrap();
    text.parse::<usize>().expect("malformed request")
}

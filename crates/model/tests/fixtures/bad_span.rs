// Lint fixture: a span guard in statement position — it drops (and
// closes the span) before the work it was meant to cover even starts.
// Never compiled.

fn run_query(q: &str) {
    obs::span("cfq.query", &[("q", q)]);
    execute(q);
}

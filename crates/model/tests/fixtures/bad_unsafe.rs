// Lint fixture: an `unsafe` block with no `// SAFETY:` justification.
// Never compiled.

fn first_byte(p: *const u8) -> u8 {
    unsafe { *p }
}

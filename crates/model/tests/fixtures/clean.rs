// Lint fixture: clean under every rule — documented public items, a
// justified unsafe block, conforming metric names, a bound span guard,
// and unwraps confined to test code. Never compiled.

/// Reads the first byte of a non-empty buffer.
pub fn first(buf: &[u8]) -> u8 {
    // SAFETY: the caller guarantees `buf` is non-empty, so index 0 is in
    // bounds of the allocation.
    unsafe { *buf.as_ptr() }
}

/// Registers this module's metrics.
pub fn wire(reg: &obs::Registry) {
    reg.counter("cfq_fixture_requests_total", "requests seen");
    reg.histogram("cfq_fixture_latency_micros", "request latency");
}

/// Traces one request.
pub fn traced(q: &str) {
    let _span = obs::span("cfq.fixture", &[("q", q)]);
    drop(q);
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}

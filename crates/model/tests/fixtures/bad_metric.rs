// Lint fixture: metric registrations violating the naming scheme — one
// missing the `cfq_` prefix, one counter without the `_total` suffix.
// Never compiled.

fn wire(reg: &obs::Registry) {
    reg.gauge("queue_depth", "requests waiting for a worker");
    reg.counter("cfq_requests_count", "requests admitted");
}

//! Integration tests for `cfq lint`: the seeded violation fixtures under
//! `tests/fixtures/` must each trip their rule, the clean fixture must be
//! silent, and the workspace itself must scan clean (the same gate
//! `scripts/ci.sh` enforces through the CLI).

use cfq_model::lint::{lint_source, lint_workspace, FileClass};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn bad_unwrap_fixture_is_flagged() {
    let (findings, _) =
        lint_source("fixtures/bad_unwrap.rs", FileClass::Hot, &fixture("bad_unwrap.rs"));
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "no-unwrap"), "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("unwrap")), "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("expect")), "{findings:?}");
}

#[test]
fn bad_unsafe_fixture_is_flagged() {
    let (findings, _) =
        lint_source("fixtures/bad_unsafe.rs", FileClass::Normal, &fixture("bad_unsafe.rs"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "unsafe-needs-safety");
    // The unsafe rule holds even for test/bench files.
    let (findings, _) =
        lint_source("fixtures/bad_unsafe.rs", FileClass::TestOrBench, &fixture("bad_unsafe.rs"));
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn bad_metric_fixture_is_flagged() {
    let (findings, regs) =
        lint_source("fixtures/bad_metric.rs", FileClass::Normal, &fixture("bad_metric.rs"));
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "metric-name"), "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("queue_depth")), "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("_total")), "{findings:?}");
    assert_eq!(regs.len(), 2);
}

#[test]
fn bad_span_fixture_is_flagged() {
    let (findings, _) =
        lint_source("fixtures/bad_span.rs", FileClass::Normal, &fixture("bad_span.rs"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "span-guard-bound");
}

#[test]
fn clean_fixture_is_silent() {
    let (findings, regs) = lint_source("fixtures/clean.rs", FileClass::Hot, &fixture("clean.rs"));
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(regs.len(), 2, "clean fixture registers two metrics");
}

#[test]
fn workspace_scans_clean() {
    // Two levels up from crates/model is the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    assert!(root.join("Cargo.toml").exists(), "not a workspace root: {}", root.display());
    let report = lint_workspace(&root);
    assert!(
        report.clean(),
        "cfq lint must pass on the workspace itself:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files > 50, "walker found only {} files", report.files);
    assert!(report.metrics > 5, "only {} metric names seen", report.metrics);
}

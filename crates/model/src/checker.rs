//! The exhaustive deterministic-interleaving checker.
//!
//! A [`Model`] describes a small concurrent protocol as an explicit state
//! machine: a `Clone + Hash + Eq` state (shared data *plus* every
//! thread's program counter) and a `step` function that advances one
//! thread by one atomic action. The [`Checker`] explores the reachable
//! state graph with an iterative depth-first search:
//!
//! * **every** enabled thread is tried from **every** reachable state, so
//!   all interleavings of the modeled atomic steps are covered;
//! * states are deduplicated by a 64-bit hash of
//!   `(state, last-scheduled thread, preemptions used)`, which collapses
//!   the exponential schedule tree onto the (usually small) state graph;
//! * an optional **preemption bound** restricts exploration to schedules
//!   with at most `k` involuntary context switches, the CHESS heuristic —
//!   most concurrency bugs manifest within two preemptions;
//! * the per-state [`Model::invariant`] runs after every transition, the
//!   terminal [`Model::finale`] at every completed execution, and a state
//!   where some thread is unfinished but none can step is reported as a
//!   **deadlock**.
//!
//! The number of distinct schedules covered (`interleavings`) is counted
//! exactly by dynamic programming over the deduplicated graph: the paths
//! from the initial node to any terminal node are in bijection with the
//! explored schedules.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// What one attempted step of one model thread did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The thread performed one atomic action; the state may have changed.
    Ran,
    /// The thread cannot act in this state (lock held elsewhere, condvar
    /// parked, …). The state must be left untouched.
    Blocked,
    /// The thread's program has finished. The state must be left
    /// untouched, and the thread must keep reporting `Done`.
    Done,
}

/// A small concurrent protocol the checker can explore.
pub trait Model {
    /// Shared data plus every thread's program counter. Equal states must
    /// behave identically from here on — include everything the threads
    /// can observe.
    type State: Clone + Hash + Eq;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// How many threads the model runs.
    fn threads(&self) -> usize;

    /// Advances thread `tid` by one atomic action. A `Blocked` or `Done`
    /// return must leave `state` unmodified.
    fn step(&self, state: &mut Self::State, tid: usize) -> Step;

    /// Checked after every transition; an `Err` is recorded as a
    /// violation together with the schedule that reached it.
    fn invariant(&self, _state: &Self::State) -> Result<(), String> {
        Ok(())
    }

    /// Checked once all threads are `Done`.
    fn finale(&self, _state: &Self::State) -> Result<(), String> {
        Ok(())
    }
}

/// Exploration limits and options.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Stop after exploring this many distinct states (safety valve
    /// against unexpectedly large models). The run is marked incomplete.
    pub max_states: usize,
    /// Maximum schedule length explored before a path is cut off.
    pub max_depth: usize,
    /// `Some(k)`: only explore schedules with at most `k` preemptions
    /// (context switches away from a thread that could have continued).
    /// `None`: explore every schedule.
    pub preemption_bound: Option<usize>,
    /// Stop exploring after this many violations (at least 1).
    pub max_violations: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_states: 1 << 22,
            max_depth: 4096,
            preemption_bound: None,
            max_violations: 8,
        }
    }
}

/// Why a state was recorded as violating.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// [`Model::invariant`] returned `Err` after a transition.
    Invariant,
    /// [`Model::finale`] returned `Err` at a completed execution.
    Finale,
    /// Some thread was unfinished but no thread could step.
    Deadlock,
}

impl ViolationKind {
    /// Stable lowercase label, used by reports.
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::Invariant => "invariant",
            ViolationKind::Finale => "finale",
            ViolationKind::Deadlock => "deadlock",
        }
    }
}

/// One violating execution: what failed and the schedule reproducing it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The class of failure.
    pub kind: ViolationKind,
    /// The model's error message (empty for deadlocks).
    pub message: String,
    /// The thread ids scheduled, in order, from the initial state to the
    /// violating state — a deterministic reproduction recipe.
    pub schedule: Vec<usize>,
}

/// Counters describing one exploration.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// Distinct `(state, last thread, preemptions)` nodes visited.
    pub states: u64,
    /// Distinct complete schedules covered by the explored graph
    /// (saturating; exact while below `u64::MAX`).
    pub interleavings: u64,
    /// Transitions taken (edges in the explored graph).
    pub transitions: u64,
    /// Longest schedule prefix explored.
    pub max_depth_seen: usize,
    /// Completed executions ending with every thread `Done`.
    pub terminal_states: u64,
}

/// The result of [`Checker::run`].
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Exploration counters.
    pub stats: CheckStats,
    /// Violations found (empty when the protocol holds).
    pub violations: Vec<Violation>,
    /// Whether the state space was exhausted (no limit was hit).
    pub complete: bool,
}

impl Outcome {
    /// Whether the exploration finished with zero violations.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn hash_node<S: Hash>(state: &S, last: Option<usize>, preemptions: usize) -> u64 {
    let mut h = DefaultHasher::new();
    state.hash(&mut h);
    last.hash(&mut h);
    preemptions.hash(&mut h);
    h.finish()
}

fn hash_state<S: Hash>(state: &S) -> u64 {
    let mut h = DefaultHasher::new();
    state.hash(&mut h);
    h.finish()
}

/// The explorer. Construct with a config, point it at a [`Model`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Checker {
    config: CheckConfig,
}

/// One DFS frame: (state, last thread, preemptions used, node key, depth).
type Frame<S> = (S, Option<usize>, usize, u64, usize);

struct NodeInfo {
    /// Hash of the predecessor node and the thread scheduled to get here
    /// (schedule reconstruction).
    parent: Option<(u64, usize)>,
    /// Successor node hashes (graph for interleaving counting).
    successors: Vec<u64>,
    /// Whether every thread is `Done` here.
    terminal: bool,
}

impl Checker {
    /// A checker with the given configuration.
    pub fn new(config: CheckConfig) -> Self {
        Checker { config }
    }

    /// Exhaustively explores `model` and returns what was found.
    pub fn run<M: Model>(&self, model: &M) -> Outcome {
        let cfg = self.config;
        let n = model.threads();
        assert!((1..=64).contains(&n), "model must declare 1..=64 threads");

        // With no preemption bound the schedule context is irrelevant to
        // what remains explorable, so nodes dedup on the state alone; a
        // bound makes (last thread, preemptions used) part of the node
        // identity, keeping dedup sound under budget accounting.
        let bounded = cfg.preemption_bound.is_some();
        let node_key = |state: &M::State, last: Option<usize>, preempts: usize| {
            if bounded {
                hash_node(state, last, preempts)
            } else {
                hash_node(state, None, 0)
            }
        };

        let init = model.init();
        let init_key = node_key(&init, None, 0);

        let mut nodes: HashMap<u64, NodeInfo> = HashMap::new();
        nodes.insert(
            init_key,
            NodeInfo { parent: None, successors: Vec::new(), terminal: false },
        );

        let mut stats = CheckStats::default();
        let mut violations: Vec<Violation> = Vec::new();
        let mut complete = true;

        // DFS over (state, last thread, preemptions used).
        let mut stack: Vec<Frame<M::State>> = vec![(init, None, 0, init_key, 0)];
        stats.states = 1;

        while let Some((state, last, preempts, key, depth)) = stack.pop() {
            if violations.len() >= cfg.max_violations {
                complete = false;
                break;
            }
            stats.max_depth_seen = stats.max_depth_seen.max(depth);

            // Probe every thread once to learn its status here.
            let before = hash_state(&state);
            let mut statuses = [Step::Done; 64];
            let mut scratch: Vec<(usize, M::State)> = Vec::new();
            for (tid, status) in statuses.iter_mut().enumerate().take(n) {
                let mut next = state.clone();
                let st = model.step(&mut next, tid);
                *status = st;
                match st {
                    Step::Ran => scratch.push((tid, next)),
                    Step::Blocked | Step::Done => {
                        debug_assert_eq!(
                            hash_state(&next),
                            before,
                            "thread {tid} mutated the state while reporting {st:?}"
                        );
                    }
                }
            }

            let all_done = (0..n).all(|t| statuses[t] == Step::Done);
            if all_done {
                if let Some(info) = nodes.get_mut(&key) {
                    info.terminal = true;
                }
                stats.terminal_states += 1;
                if let Err(msg) = model.finale(&state) {
                    violations.push(Violation {
                        kind: ViolationKind::Finale,
                        message: msg,
                        schedule: reconstruct(&nodes, key),
                    });
                }
                continue;
            }

            if scratch.is_empty() {
                // Unfinished threads, none runnable: deadlock.
                violations.push(Violation {
                    kind: ViolationKind::Deadlock,
                    message: format!(
                        "deadlock: threads {:?} blocked with no runnable peer",
                        (0..n).filter(|&t| statuses[t] == Step::Blocked).collect::<Vec<_>>()
                    ),
                    schedule: reconstruct(&nodes, key),
                });
                continue;
            }

            if depth >= cfg.max_depth {
                complete = false;
                continue;
            }

            for (tid, next) in scratch {
                // A switch away from a thread that could have kept
                // running costs one preemption (CHESS accounting).
                let cost = match last {
                    Some(l) if l != tid && statuses[l] == Step::Ran => 1,
                    _ => 0,
                };
                let next_preempts = preempts + cost;
                if let Some(bound) = cfg.preemption_bound {
                    if next_preempts > bound {
                        complete = false;
                        continue;
                    }
                }
                let next_key = node_key(&next, Some(tid), next_preempts);
                if let Some(info) = nodes.get_mut(&key) {
                    info.successors.push(next_key);
                }
                stats.transitions += 1;

                match nodes.entry(next_key) {
                    Entry::Occupied(_) => {} // deduplicated: already explored or queued
                    Entry::Vacant(v) => {
                        v.insert(NodeInfo {
                            parent: Some((key, tid)),
                            successors: Vec::new(),
                            terminal: false,
                        });
                        stats.states += 1;
                        if let Err(msg) = model.invariant(&next) {
                            violations.push(Violation {
                                kind: ViolationKind::Invariant,
                                message: msg,
                                schedule: reconstruct(&nodes, next_key),
                            });
                            if violations.len() >= cfg.max_violations {
                                continue;
                            }
                        }
                        if nodes.len() > cfg.max_states {
                            complete = false;
                        } else {
                            stack.push((next, Some(tid), next_preempts, next_key, depth + 1));
                        }
                    }
                }
            }
        }

        stats.interleavings = count_paths(&nodes, init_key);
        Outcome { stats, violations, complete }
    }
}

/// Walks parent pointers back to the root to recover the schedule.
fn reconstruct(nodes: &HashMap<u64, NodeInfo>, mut key: u64) -> Vec<usize> {
    let mut sched = Vec::new();
    while let Some(info) = nodes.get(&key) {
        match info.parent {
            Some((pkey, tid)) => {
                sched.push(tid);
                key = pkey;
            }
            None => break,
        }
    }
    sched.reverse();
    sched
}

/// Counts root→terminal paths in the explored graph by iterative
/// post-order dynamic programming (saturating at `u64::MAX`). Every such
/// path is one distinct schedule whose every state was invariant-checked.
/// Back edges (cyclic models) contribute zero, making the count a lower
/// bound in that case; the protocol models here are acyclic by
/// construction (program counters only advance).
fn count_paths(nodes: &HashMap<u64, NodeInfo>, root: u64) -> u64 {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        OnStack,
        Counted(u128),
    }
    let mut marks: HashMap<u64, Mark> = HashMap::new();
    // Explicit stack of (node, next successor index) to avoid recursion.
    let mut stack: Vec<(u64, usize)> = vec![(root, 0)];
    marks.insert(root, Mark::OnStack);
    while let Some(&mut (key, ref mut idx)) = stack.last_mut() {
        let info = match nodes.get(&key) {
            Some(i) => i,
            None => {
                stack.pop();
                marks.insert(key, Mark::Counted(0));
                continue;
            }
        };
        if *idx < info.successors.len() {
            let succ = info.successors[*idx];
            *idx += 1;
            // Unmarked: descend. Marked: counted already, or a back edge
            // (counts 0 now, resolved below).
            if let std::collections::hash_map::Entry::Vacant(e) = marks.entry(succ) {
                e.insert(Mark::OnStack);
                stack.push((succ, 0));
            }
            continue;
        }
        // Post-order: all successors resolved.
        let mut total: u128 = if info.terminal || info.successors.is_empty() { 1 } else { 0 };
        if !info.successors.is_empty() {
            // A terminal node with successors cannot happen (terminal =>
            // all done => no runnable thread), but sum defensively.
            for s in &info.successors {
                if let Some(Mark::Counted(c)) = marks.get(s) {
                    total = total.saturating_add(*c);
                }
            }
        }
        marks.insert(key, Mark::Counted(total));
        stack.pop();
    }
    match marks.get(&root) {
        Some(Mark::Counted(c)) => (*c).min(u64::MAX as u128) as u64,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{MockAtomic, MockMutex};

    /// Two threads each do load-add-store on a shared cell without a
    /// lock: the classic lost update. With a lock the invariant holds.
    struct CounterModel {
        locked: bool,
    }

    #[derive(Clone, Hash, PartialEq, Eq)]
    struct CState {
        m: MockMutex<()>,
        cell: MockAtomic<u64>,
        // Per-thread: pc plus the value read.
        pc: [u8; 2],
        read: [u64; 2],
    }

    impl Model for CounterModel {
        type State = CState;

        fn init(&self) -> CState {
            CState { m: MockMutex::new(()), cell: MockAtomic::new(0), pc: [0; 2], read: [0; 2] }
        }

        fn threads(&self) -> usize {
            2
        }

        fn step(&self, s: &mut CState, tid: usize) -> Step {
            match s.pc[tid] {
                0 if self.locked => {
                    if !s.m.try_lock(tid) {
                        return Step::Blocked;
                    }
                    s.pc[tid] = 1;
                    Step::Ran
                }
                0 => {
                    s.pc[tid] = 1;
                    Step::Ran
                }
                1 => {
                    s.read[tid] = s.cell.load();
                    s.pc[tid] = 2;
                    Step::Ran
                }
                2 => {
                    s.cell.store(s.read[tid] + 1);
                    if self.locked {
                        s.m.unlock(tid);
                    }
                    s.pc[tid] = 3;
                    Step::Ran
                }
                _ => Step::Done,
            }
        }

        fn finale(&self, s: &CState) -> Result<(), String> {
            if s.cell.load() == 2 {
                Ok(())
            } else {
                Err(format!("lost update: final count {}", s.cell.load()))
            }
        }
    }

    #[test]
    fn unlocked_counter_loses_updates() {
        let out = Checker::new(CheckConfig::default()).run(&CounterModel { locked: false });
        assert!(!out.ok(), "the race must be found");
        assert!(out.complete);
        let v = &out.violations[0];
        assert_eq!(v.kind, ViolationKind::Finale);
        assert!(v.message.contains("lost update"), "{}", v.message);
        assert!(!v.schedule.is_empty());
    }

    #[test]
    fn locked_counter_is_clean_and_exhaustive() {
        let out = Checker::new(CheckConfig::default()).run(&CounterModel { locked: true });
        assert!(out.ok(), "{:?}", out.violations);
        assert!(out.complete);
        // Two serialized critical sections: the lock admits exactly the
        // two orders of the (indivisible) sections, times nothing else.
        assert!(out.stats.interleavings >= 2);
        assert!(out.stats.terminal_states >= 1);
    }

    #[test]
    fn violation_schedule_replays_to_the_failure() {
        let model = CounterModel { locked: false };
        let out = Checker::new(CheckConfig::default()).run(&model);
        // Replay the reported schedule (it leads to the *finale* check, so
        // run every listed step then assert the finale fails).
        let v = out.violations.iter().find(|v| v.kind == ViolationKind::Finale).unwrap();
        let mut s = model.init();
        for &tid in &v.schedule {
            model.step(&mut s, tid);
        }
        // Drive all threads to completion deterministically.
        loop {
            let mut progressed = false;
            for tid in 0..model.threads() {
                if model.step(&mut s, tid) == Step::Ran {
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(model.finale(&s).is_err(), "replayed schedule must fail the finale");
    }

    /// Classic AB/BA lock-order deadlock, found as a Deadlock violation.
    struct AbBa;

    #[derive(Clone, Hash, PartialEq, Eq)]
    struct DState {
        a: MockMutex<()>,
        b: MockMutex<()>,
        pc: [u8; 2],
    }

    impl Model for AbBa {
        type State = DState;

        fn init(&self) -> DState {
            DState { a: MockMutex::new(()), b: MockMutex::new(()), pc: [0; 2] }
        }

        fn threads(&self) -> usize {
            2
        }

        fn step(&self, s: &mut DState, tid: usize) -> Step {
            // Thread 0 takes a then b; thread 1 takes b then a.
            let (first, second) = if tid == 0 {
                (&mut s.a, &mut s.b)
            } else {
                (&mut s.b, &mut s.a)
            };
            match s.pc[tid] {
                0 => {
                    if !first.try_lock(tid) {
                        return Step::Blocked;
                    }
                    s.pc[tid] = 1;
                    Step::Ran
                }
                1 => {
                    if !second.try_lock(tid) {
                        return Step::Blocked;
                    }
                    s.pc[tid] = 2;
                    Step::Ran
                }
                2 => {
                    second.unlock(tid);
                    first.unlock(tid);
                    s.pc[tid] = 3;
                    Step::Ran
                }
                _ => Step::Done,
            }
        }
    }

    #[test]
    fn lock_order_inversion_deadlocks() {
        let out = Checker::new(CheckConfig::default()).run(&AbBa);
        assert!(out.violations.iter().any(|v| v.kind == ViolationKind::Deadlock), "{out:?}");
    }

    #[test]
    fn preemption_bound_zero_still_finds_no_false_positives() {
        let cfg = CheckConfig { preemption_bound: Some(0), ..CheckConfig::default() };
        let out = Checker::new(cfg).run(&CounterModel { locked: true });
        assert!(out.ok());
        // Non-preemptive schedules alone cannot expose the lost update
        // (each thread runs its read-modify-write to completion).
        let out = Checker::new(cfg).run(&CounterModel { locked: false });
        assert!(out.ok(), "0-preemption schedules serialize the race");
        // One preemption is enough to expose it.
        let cfg = CheckConfig { preemption_bound: Some(1), ..CheckConfig::default() };
        let out = Checker::new(cfg).run(&CounterModel { locked: false });
        assert!(!out.ok());
    }

    #[test]
    fn state_cap_marks_incomplete() {
        let cfg = CheckConfig { max_states: 3, ..CheckConfig::default() };
        let out = Checker::new(cfg).run(&CounterModel { locked: false });
        assert!(!out.complete);
    }
}

//! Model of sharded mining's per-shard trim → count → merge protocol.
//!
//! `ShardedRun` splits the CSR store into row ranges; at each level every
//! shard worker *trims* its rows against the **global** live set, counts
//! the candidates over its trimmed rows, and folds both its partial count
//! vector and its trim accounting (rows dropped) into shared accumulators
//! at the level barrier. The soundness claim under test: because the live
//! set is built from the global candidate list (it does not depend on
//! which shard a row landed in), per-shard trimming drops exactly the
//! rows global trimming would drop — no shard can lose a row that still
//! supports a candidate, so the merged counts are bit-identical to the
//! unsharded run's and the merged drop totals match the global trim's.
//!
//! Like [`super::merge::MergeModel`], the per-shard data are caller
//! supplied — tests and `cfq model` feed *real* `cfq-mining` trim and
//! count results — and the checker explores every interleaving of the
//! lock-free trim steps with the locked merge sections. There is no
//! built-in bug switch: callers seed bugs by perturbing one shard's data,
//! e.g. dropping a live row's contribution (counts lost to an over-eager
//! trim) while bumping its drop count.

use crate::checker::{Model, Step};
use crate::sync::MockMutex;

/// The sharded trim model. Workers = `shard_counts.len()`.
pub struct ShardedTrimModel {
    /// Per-shard partial count vector, computed over the shard's
    /// *trimmed* rows; all the same length.
    pub shard_counts: Vec<Vec<u64>>,
    /// Rows each shard's trim pass dropped.
    pub shard_drops: Vec<u64>,
    /// The unsharded (global) counts the merge must reproduce.
    pub expected: Vec<u64>,
    /// The unsharded (global) trim's dropped-row total.
    pub expected_drops: u64,
    /// Count elements folded per lock section (1 = finest interleaving).
    pub granularity: usize,
}

/// Per-worker phase: trim locally, then merge under the lock.
#[derive(Clone, Hash, PartialEq, Eq)]
enum Phase {
    /// Shard not yet trimmed: counting cannot start.
    Untrimmed,
    /// Trimmed; next count element to merge is the payload.
    Merging(usize),
    /// Drops folded in; worker finished.
    Done,
}

/// Full model state: the shared accumulators plus per-worker phase.
#[derive(Clone, Hash, PartialEq, Eq)]
pub struct ShardedTrimState {
    /// Shared level accumulator: merged counts + merged drop total.
    acc: MockMutex<(Vec<u64>, u64)>,
    phase: Vec<Phase>,
}

impl Model for ShardedTrimModel {
    type State = ShardedTrimState;

    fn init(&self) -> ShardedTrimState {
        ShardedTrimState {
            acc: MockMutex::new((vec![0; self.expected.len()], 0)),
            phase: vec![Phase::Untrimmed; self.shard_counts.len()],
        }
    }

    fn threads(&self) -> usize {
        self.shard_counts.len()
    }

    fn step(&self, s: &mut ShardedTrimState, tid: usize) -> Step {
        match s.phase[tid] {
            Phase::Untrimmed => {
                // Trimming is shard-local: no lock, no shared state. The
                // step exists so the checker interleaves slow trims with
                // other shards' merges.
                s.phase[tid] = Phase::Merging(0);
                Step::Ran
            }
            Phase::Merging(from) => {
                let part = &self.shard_counts[tid];
                if !s.acc.try_lock(tid) {
                    return Step::Blocked;
                }
                if from < part.len() {
                    let to = (from + self.granularity.max(1)).min(part.len());
                    let acc = s.acc.data_mut(tid);
                    for (a, p) in acc.0[from..to].iter_mut().zip(&part[from..to]) {
                        *a += p;
                    }
                    s.acc.unlock(tid);
                    s.phase[tid] = Phase::Merging(to);
                } else {
                    // Final locked section: fold in the trim accounting.
                    s.acc.data_mut(tid).1 += self.shard_drops[tid];
                    s.acc.unlock(tid);
                    s.phase[tid] = Phase::Done;
                }
                Step::Ran
            }
            Phase::Done => Step::Done,
        }
    }

    fn invariant(&self, s: &ShardedTrimState) -> Result<(), String> {
        let (counts, drops) = s.acc.peek();
        for (i, (&got, &want)) in counts.iter().zip(&self.expected).enumerate() {
            if got > want {
                return Err(format!(
                    "candidate {i} overshot the unsharded count: {got} > {want}"
                ));
            }
        }
        if *drops > self.expected_drops {
            return Err(format!(
                "shards dropped more rows than the global trim: {drops} > {}",
                self.expected_drops
            ));
        }
        Ok(())
    }

    fn finale(&self, s: &ShardedTrimState) -> Result<(), String> {
        let (counts, drops) = s.acc.peek();
        if *counts != self.expected {
            return Err(format!(
                "sharded counts diverged: {counts:?} != {:?}",
                self.expected
            ));
        }
        if *drops != self.expected_drops {
            return Err(format!(
                "trim accounting diverged: {drops} dropped != {}",
                self.expected_drops
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckConfig, Checker};

    fn model(granularity: usize) -> ShardedTrimModel {
        ShardedTrimModel {
            shard_counts: vec![vec![2, 1, 0], vec![1, 0, 2], vec![0, 2, 1]],
            shard_drops: vec![1, 0, 2],
            expected: vec![3, 3, 3],
            expected_drops: 3,
            granularity,
        }
    }

    #[test]
    fn clean_protocol_verifies_across_all_interleavings() {
        let out = Checker::new(CheckConfig::default()).run(&model(1));
        assert!(out.ok(), "{:?}", out.violations.first());
        assert!(out.complete);
    }

    #[test]
    fn coarse_merges_verify_too() {
        let out = Checker::new(CheckConfig::default()).run(&model(3));
        assert!(out.ok(), "{:?}", out.violations.first());
    }

    #[test]
    fn seeded_over_trim_is_caught() {
        // Shard 0's trim wrongly drops a live row: its counts lose that
        // row's contribution and its drop count gains one.
        let mut m = model(1);
        m.shard_counts[0] = vec![1, 0, 0];
        m.shard_drops[0] += 1;
        let out = Checker::new(CheckConfig::default()).run(&m);
        assert!(!out.ok(), "an over-eager shard trim must be caught");
    }

    #[test]
    fn seeded_double_drop_accounting_is_caught() {
        // Counts intact but a shard reports its drops twice: the drop
        // invariant trips even though the counts verify.
        let mut m = model(1);
        m.shard_drops[2] *= 2;
        let out = Checker::new(CheckConfig::default()).run(&m);
        assert!(!out.ok(), "double-counted trim accounting must be caught");
    }
}

//! Model of the lattice cache's byte-budgeted LRU eviction against
//! concurrent hits.
//!
//! The real `LatticeCache` is not itself thread-safe — the engine
//! serializes access through its state mutex and hands lattices out as
//! `Arc<FrequentSets>` clones, so a query keeps *using* a lattice after
//! the entry is evicted. The model mirrors that shape:
//!
//! * lattices are abstract **buffers** in a pool, each with an `alive`
//!   flag and a refcount (the Arc);
//! * two inserter threads each mine (outside the lock) and insert
//!   (under the lock) two fixed-size entries, running the LRU evict loop
//!   until the byte budget holds — eviction drops the *cache's*
//!   reference, freeing the buffer only when no reader still holds it;
//! * one reader thread does two rounds of: hit an entry under the lock
//!   (LRU bump + Arc clone), use the buffer outside the lock, drop the
//!   reference under the lock.
//!
//! Checked invariants: the byte budget is never exceeded, `bytes_used`
//! matches the entries exactly, and every reference a reader holds
//! points at a live buffer (**no use-after-evict**). Seeded bugs:
//! [`CacheBug::BudgetLeak`] turns the evict *loop* into a single `if`
//! (two oversized inserts overrun the budget), and
//! [`CacheBug::EagerFree`] frees the buffer at eviction regardless of
//! the refcount (a concurrent reader's handle dangles).

use crate::checker::{Model, Step};
use crate::sync::MockMutex;

/// Inserter threads (the reader is thread [`READER`]).
const INSERTERS: usize = 2;
/// Thread id of the reader.
const READER: usize = INSERTERS;
/// Entries each inserter adds.
const INSERTS_EACH: usize = 2;
/// Reader hit/use/drop rounds.
const READS: usize = 2;
/// Byte sizes of each inserter's entries: the small-then-large shape
/// means the large insert can need **two** evictions in one call, which
/// is what separates the evict *loop* from a single buggy `if`.
const SIZES: [u8; INSERTS_EACH] = [3, 8];
/// Cache byte budget: holds both small entries plus one large only after
/// evicting twice.
const BUDGET: u8 = 10;
/// Buffer pool size: every insert allocates one buffer.
const POOL: usize = INSERTERS * INSERTS_EACH;

/// Which seeded bug to inject, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheBug {
    /// The evict loop runs at most once per insert (`if` instead of
    /// `while` — the budget silently overruns).
    BudgetLeak,
    /// Eviction frees the buffer immediately, ignoring readers that still
    /// hold a reference.
    EagerFree,
}

impl CacheBug {
    /// Every injectable bug, with its stable report name.
    pub fn all() -> &'static [(CacheBug, &'static str)] {
        &[(CacheBug::BudgetLeak, "budget_leak"), (CacheBug::EagerFree, "eager_free")]
    }
}

#[derive(Clone, Hash, PartialEq, Eq)]
struct Entry {
    /// Buffer index in the pool.
    buf: u8,
    /// Budget charge.
    bytes: u8,
    /// LRU clock stamp of the last hit (or the insertion).
    last_used: u8,
}

#[derive(Clone, Hash, PartialEq, Eq)]
struct Cache {
    entries: Vec<Entry>,
    bytes_used: u8,
    clock: u8,
    evictions: u8,
    /// Arc refcounts per pool buffer (cache + readers).
    refs: [u8; POOL],
    /// Buffer is allocated and not yet freed.
    alive: [bool; POOL],
    /// Next pool slot to allocate.
    alloc_next: u8,
}

impl Cache {
    /// Drops one reference; the buffer is freed when the last goes.
    fn unref(&mut self, buf: u8) {
        let b = buf as usize;
        self.refs[b] -= 1;
        if self.refs[b] == 0 {
            self.alive[b] = false;
        }
    }

    /// Evicts the least-recently-used entry (cache reference dropped; an
    /// `EagerFree` eviction frees the buffer outright).
    fn evict_lru(&mut self, eager_free: bool) {
        let Some(i) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)
        else {
            return;
        };
        let old = self.entries.swap_remove(i);
        self.bytes_used -= old.bytes;
        self.evictions += 1;
        if eager_free {
            self.refs[old.buf as usize] = self.refs[old.buf as usize].saturating_sub(1);
            self.alive[old.buf as usize] = false;
        } else {
            self.unref(old.buf);
        }
    }
}

/// Full model state: the cache behind the engine mutex plus thread PCs.
#[derive(Clone, Hash, PartialEq, Eq)]
pub struct CacheEvictState {
    cache: MockMutex<Cache>,
    /// Per-inserter: entries inserted so far and a mined-not-yet-inserted
    /// flag (the mine step runs outside the lock).
    ins_done: [u8; INSERTERS],
    ins_mined: [bool; INSERTERS],
    /// Reader: rounds completed, PC within the round, held buffer.
    reads_done: u8,
    rpc: u8,
    held: Option<u8>,
}

/// The cache eviction model. `bug: None` must verify clean.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheEvictModel {
    /// Seeded bug to inject, or `None` for the faithful protocol.
    pub bug: Option<CacheBug>,
}

impl CacheEvictModel {
    fn inserter_step(&self, s: &mut CacheEvictState, tid: usize) -> Step {
        if usize::from(s.ins_done[tid]) == INSERTS_EACH {
            return Step::Done;
        }
        if !s.ins_mined[tid] {
            // Mine the lattice outside the lock.
            s.ins_mined[tid] = true;
            return Step::Ran;
        }
        // Insert under the lock, evicting LRU until the budget holds.
        if !s.cache.try_lock(tid) {
            return Step::Blocked;
        }
        let leak = self.bug == Some(CacheBug::BudgetLeak);
        let eager = self.bug == Some(CacheBug::EagerFree);
        let bytes = SIZES[usize::from(s.ins_done[tid])];
        let c = s.cache.data_mut(tid);
        let buf = c.alloc_next;
        c.alloc_next += 1;
        c.refs[buf as usize] = 1;
        c.alive[buf as usize] = true;
        if leak {
            // Buggy: one eviction at most, however far over budget.
            if c.bytes_used + bytes > BUDGET {
                c.evict_lru(eager);
            }
        } else {
            while c.bytes_used + bytes > BUDGET {
                c.evict_lru(eager);
            }
        }
        c.clock += 1;
        let stamp = c.clock;
        c.entries.push(Entry { buf, bytes, last_used: stamp });
        c.bytes_used += bytes;
        s.cache.unlock(tid);
        s.ins_done[tid] += 1;
        s.ins_mined[tid] = false;
        Step::Ran
    }

    fn reader_step(&self, s: &mut CacheEvictState) -> Step {
        let tid = READER;
        if usize::from(s.reads_done) == READS {
            return Step::Done;
        }
        match s.rpc {
            // Hit: find the LRU-newest entry, bump it, clone the Arc.
            0 => {
                if !s.cache.try_lock(tid) {
                    return Step::Blocked;
                }
                let c = s.cache.data_mut(tid);
                c.clock += 1;
                let stamp = c.clock;
                match c.entries.iter_mut().max_by_key(|e| e.last_used) {
                    Some(e) => {
                        e.last_used = stamp;
                        let buf = e.buf;
                        c.refs[buf as usize] += 1;
                        s.held = Some(buf);
                        s.rpc = 1;
                    }
                    None => {
                        // Cold cache: count the round as a miss.
                        s.reads_done += 1;
                    }
                }
                s.cache.unlock(tid);
                Step::Ran
            }
            // Use the lattice outside the lock — the entry may have been
            // evicted by now; the Arc must keep the buffer alive.
            1 => {
                s.rpc = 2;
                Step::Ran
            }
            // Drop the reference under the lock.
            _ => {
                if !s.cache.try_lock(tid) {
                    return Step::Blocked;
                }
                if let Some(buf) = s.held.take() {
                    s.cache.data_mut(tid).unref(buf);
                }
                s.cache.unlock(tid);
                s.rpc = 0;
                s.reads_done += 1;
                Step::Ran
            }
        }
    }
}

impl Model for CacheEvictModel {
    type State = CacheEvictState;

    fn init(&self) -> CacheEvictState {
        CacheEvictState {
            cache: MockMutex::new(Cache {
                entries: Vec::new(),
                bytes_used: 0,
                clock: 0,
                evictions: 0,
                refs: [0; POOL],
                alive: [false; POOL],
                alloc_next: 0,
            }),
            ins_done: [0; INSERTERS],
            ins_mined: [false; INSERTERS],
            reads_done: 0,
            rpc: 0,
            held: None,
        }
    }

    fn threads(&self) -> usize {
        INSERTERS + 1
    }

    fn step(&self, s: &mut CacheEvictState, tid: usize) -> Step {
        if tid == READER {
            self.reader_step(s)
        } else {
            self.inserter_step(s, tid)
        }
    }

    fn invariant(&self, s: &CacheEvictState) -> Result<(), String> {
        let c = s.cache.peek();
        if c.bytes_used > BUDGET {
            return Err(format!("byte budget exceeded: {} used, budget {BUDGET}", c.bytes_used));
        }
        let sum: u8 = c.entries.iter().map(|e| e.bytes).sum();
        if sum != c.bytes_used {
            return Err(format!("bytes_used {} out of sync with entries ({sum})", c.bytes_used));
        }
        for e in &c.entries {
            if !c.alive[e.buf as usize] {
                return Err(format!("cache entry points at freed buffer {}", e.buf));
            }
        }
        if let Some(buf) = s.held {
            if !c.alive[buf as usize] {
                return Err(format!(
                    "use-after-evict: reader holds a reference to freed buffer {buf}"
                ));
            }
            if c.refs[buf as usize] == 0 {
                return Err(format!("reader's reference to buffer {buf} is not counted"));
            }
        }
        Ok(())
    }

    fn finale(&self, s: &CacheEvictState) -> Result<(), String> {
        let c = s.cache.peek();
        // All references dropped except the cache's own; live buffers are
        // exactly the cached ones.
        for (i, &refs) in c.refs.iter().enumerate() {
            let cached = c.entries.iter().filter(|e| usize::from(e.buf) == i).count() as u8;
            if refs != cached {
                return Err(format!("buffer {i} ends with {refs} refs, {cached} cache entries"));
            }
        }
        let total = INSERTERS * INSERTS_EACH;
        if usize::from(c.alloc_next) != total {
            return Err(format!("{} buffers allocated (want {total})", c.alloc_next));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckConfig, Checker};

    #[test]
    fn faithful_protocol_is_clean() {
        let out = Checker::new(CheckConfig::default()).run(&CacheEvictModel { bug: None });
        assert!(out.ok(), "{:?}", out.violations.first());
        assert!(out.complete);
        assert!(out.stats.interleavings >= 10_000, "{:?}", out.stats);
    }

    #[test]
    fn budget_leak_is_caught() {
        let out = Checker::new(CheckConfig::default())
            .run(&CacheEvictModel { bug: Some(CacheBug::BudgetLeak) });
        assert!(!out.ok());
        assert!(
            out.violations.iter().any(|v| v.message.contains("budget exceeded")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn eager_free_is_caught() {
        let out = Checker::new(CheckConfig::default())
            .run(&CacheEvictModel { bug: Some(CacheBug::EagerFree) });
        assert!(!out.ok());
        assert!(
            out.violations.iter().any(|v| v.message.contains("use-after-evict")
                || v.message.contains("freed buffer")),
            "{:?}",
            out.violations
        );
    }
}

//! Model of the scheduler's single-flight group protocol.
//!
//! Mirrors `Scheduler::mine_or_join`: K queriers miss the lattice cache
//! with the same `(epoch, universe)` key. The first to arrive publishes a
//! group and becomes its **leader**; the rest join the batch. The leader
//! waits out the batch window (modeled as a premise: the freeze step
//! blocks until all K members have arrived), **freezes** the group at the
//! *minimum* support of its members, runs the mining pass exactly once,
//! installs the lattice into the cache *before* unpublishing the group,
//! then publishes the result and `notify_all`s the joiners. Each joiner
//! filters the batch result down to its own (stronger or equal)
//! envelope.
//!
//! Mining is abstracted by the support it ran at: a result mined at
//! support `s` is usable by a member that asked for support `r` iff
//! `s <= r` (a weaker envelope can always be filtered down; a stronger
//! one cannot be widened). The checked properties:
//!
//! 1. at most one mining pass ever runs (single flight), and exactly one
//!    has run by the end;
//! 2. every member's answer was mined at a support ≤ its own request
//!    (weaker-envelope filtering is sound for every joiner);
//! 3. the coalesce credit equals `(K-1) * scan_cost` — the scans the
//!    joiners *actually* avoided, counted once;
//! 4. a published result implies the lattice was already in the cache
//!    and the group already unpublished (late arrivals re-mine from the
//!    cache instead of joining a dead group);
//! 5. no member waits forever (the checker's deadlock detection).
//!
//! Seeded bugs: [`SingleFlightBug::FreezeIgnoresJoiner`] freezes at the
//! leader's own support instead of the batch minimum,
//! [`SingleFlightBug::DoubleCredit`] counts the leader itself as a saved
//! scan, and [`SingleFlightBug::NotifyBeforeResult`] notifies before the
//! result is visible (the classic lost wakeup).

use crate::checker::{Model, Step};
use crate::sync::{MockAtomic, MockCondvar, MockMutex};

/// Members in the batch (all miss the same `(epoch, universe)` key).
const K: usize = 4;
/// Per-member requested minimum support. The batch minimum is 1.
const SUPPORTS: [u8; K] = [2, 2, 3, 1];
/// Abstract cost of one mining scan, for the coalesce-credit accounting.
const SCAN_COST: u8 = 7;

/// Which seeded bug to inject, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SingleFlightBug {
    /// Freeze at the leader's own support, ignoring joiners' weaker
    /// envelopes — a joiner asking for less support gets an unusable
    /// (too-strong) result.
    FreezeIgnoresJoiner,
    /// Count the leader's own scan as a coalesce saving — the credit is
    /// `members * cost` instead of `(members - 1) * cost`.
    DoubleCredit,
    /// `notify_all` before the result is stored; the result lands in a
    /// later critical section with no further notify — a joiner that
    /// re-checks in between re-parks and sleeps forever.
    NotifyBeforeResult,
}

impl SingleFlightBug {
    /// Every injectable bug, with its stable report name.
    pub fn all() -> &'static [(SingleFlightBug, &'static str)] {
        &[
            (SingleFlightBug::FreezeIgnoresJoiner, "freeze_ignores_joiner"),
            (SingleFlightBug::DoubleCredit, "double_credit"),
            (SingleFlightBug::NotifyBeforeResult, "notify_before_result"),
        ]
    }
}

#[derive(Clone, Hash, PartialEq, Eq)]
struct Group {
    /// First arrival; `None` until the group exists.
    leader: Option<usize>,
    /// Members registered so far.
    members: u8,
    /// Minimum support across registered members.
    min_support: u8,
    /// Leader froze the batch (no further support changes).
    frozen: bool,
    /// Support the mining pass runs at, fixed at freeze.
    mined_support: Option<u8>,
    /// Published result: the support the lattice was mined at.
    result: Option<u8>,
    /// Lattice installed into the shared cache.
    cache_inserted: bool,
    /// Group still discoverable in the scheduler's map.
    published: bool,
    /// Coalesce credit recorded against the metrics.
    credit_saved: u8,
}

/// Full model state: the group behind its mutex, the result condvar, the
/// mining-pass counter, and every member's program counter.
#[derive(Clone, Hash, PartialEq, Eq)]
pub struct SingleFlightState {
    group: MockMutex<Group>,
    done: MockCondvar,
    /// Mining passes started (incremented by the pass itself, outside the
    /// group lock — exactly where real code pays the cost).
    passes: MockAtomic<u64>,
    pc: [u8; K],
    /// The support each member's answer was mined at.
    observed: [Option<u8>; K],
}

/// The single-flight protocol model. `bug: None` must verify clean.
#[derive(Clone, Copy, Debug, Default)]
pub struct SingleFlightModel {
    /// Seeded bug to inject, or `None` for the faithful protocol.
    pub bug: Option<SingleFlightBug>,
}

const PC_FREEZE: u8 = 1;
const PC_MINE: u8 = 2;
const PC_INSTALL: u8 = 3;
const PC_PUBLISH: u8 = 4;
const PC_LATE_RESULT: u8 = 5;
const PC_WAIT: u8 = 10;
const PC_DONE: u8 = 20;

impl Model for SingleFlightModel {
    type State = SingleFlightState;

    fn init(&self) -> SingleFlightState {
        SingleFlightState {
            group: MockMutex::new(Group {
                leader: None,
                members: 0,
                min_support: u8::MAX,
                frozen: false,
                mined_support: None,
                result: None,
                cache_inserted: false,
                published: false,
                credit_saved: 0,
            }),
            done: MockCondvar::new(),
            passes: MockAtomic::new(0),
            pc: [0; K],
            observed: [None; K],
        }
    }

    fn threads(&self) -> usize {
        K
    }

    fn step(&self, s: &mut SingleFlightState, tid: usize) -> Step {
        match s.pc[tid] {
            // Arrive: create the group (becoming leader) or join it.
            0 => {
                if !s.group.try_lock(tid) {
                    return Step::Blocked;
                }
                let g = s.group.data_mut(tid);
                let am_leader = g.leader.is_none();
                if am_leader {
                    g.leader = Some(tid);
                    g.published = true;
                }
                g.members += 1;
                g.min_support = g.min_support.min(SUPPORTS[tid]);
                s.group.unlock(tid);
                s.pc[tid] = if am_leader { PC_FREEZE } else { PC_WAIT };
                Step::Ran
            }
            // Leader: freeze once the whole batch has arrived (the batch
            // window, as a premise), fixing the mining support.
            PC_FREEZE => {
                if !s.group.try_lock(tid) {
                    return Step::Blocked;
                }
                if usize::from(s.group.data(tid).members) < K {
                    s.group.unlock(tid);
                    return Step::Blocked;
                }
                let g = s.group.data_mut(tid);
                g.frozen = true;
                g.mined_support = Some(if self.bug == Some(SingleFlightBug::FreezeIgnoresJoiner) {
                    SUPPORTS[tid]
                } else {
                    g.min_support
                });
                s.group.unlock(tid);
                s.pc[tid] = PC_MINE;
                Step::Ran
            }
            // Leader: the mining pass itself, outside the group lock.
            PC_MINE => {
                s.passes.fetch_add(1);
                s.pc[tid] = PC_INSTALL;
                Step::Ran
            }
            // Leader: install into the cache, record the coalesce credit,
            // unpublish the group — one critical section, cache first.
            PC_INSTALL => {
                if !s.group.try_lock(tid) {
                    return Step::Blocked;
                }
                let double = self.bug == Some(SingleFlightBug::DoubleCredit);
                let g = s.group.data_mut(tid);
                g.cache_inserted = true;
                let saved_scans = if double { g.members } else { g.members - 1 };
                g.credit_saved += saved_scans * SCAN_COST;
                g.published = false;
                s.group.unlock(tid);
                s.pc[tid] = PC_PUBLISH;
                Step::Ran
            }
            // Leader: publish the result and wake the joiners.
            PC_PUBLISH => {
                if !s.group.try_lock(tid) {
                    return Step::Blocked;
                }
                if self.bug == Some(SingleFlightBug::NotifyBeforeResult) {
                    // Buggy: wake first, store the result in a later
                    // section with no further notify.
                    s.done.notify_all();
                    s.group.unlock(tid);
                    s.pc[tid] = PC_LATE_RESULT;
                } else {
                    let g = s.group.data_mut(tid);
                    let mined = g.mined_support;
                    g.result = mined;
                    s.observed[tid] = mined;
                    s.done.notify_all();
                    s.group.unlock(tid);
                    s.pc[tid] = PC_DONE;
                }
                Step::Ran
            }
            // NotifyBeforeResult tail: the result lands silently.
            PC_LATE_RESULT => {
                if !s.group.try_lock(tid) {
                    return Step::Blocked;
                }
                let g = s.group.data_mut(tid);
                let mined = g.mined_support;
                g.result = mined;
                s.observed[tid] = mined;
                s.group.unlock(tid);
                s.pc[tid] = PC_DONE;
                Step::Ran
            }
            // Joiner: condvar wait loop — check under the lock, park when
            // the result is not there yet, re-check on wakeup.
            PC_WAIT => {
                if s.done.is_parked(tid) {
                    return Step::Blocked;
                }
                if !s.group.try_lock(tid) {
                    return Step::Blocked;
                }
                match s.group.data(tid).result {
                    Some(r) => {
                        s.observed[tid] = Some(r);
                        s.group.unlock(tid);
                        s.pc[tid] = PC_DONE;
                    }
                    None => {
                        s.done.park(tid);
                        s.group.unlock(tid);
                    }
                }
                Step::Ran
            }
            _ => Step::Done,
        }
    }

    fn invariant(&self, s: &SingleFlightState) -> Result<(), String> {
        let g = s.group.peek();
        if s.passes.load() > 1 {
            return Err(format!("single flight broken: {} mining passes started", s.passes.load()));
        }
        if g.frozen && usize::from(g.members) != K {
            return Err(format!("froze at {} members (batch window promised {K})", g.members));
        }
        let max_credit = (K as u8 - 1) * SCAN_COST;
        if g.credit_saved > max_credit {
            return Err(format!(
                "coalesce credit over-counted: {} > {} == (K-1)*scan_cost",
                g.credit_saved, max_credit
            ));
        }
        if g.result.is_some() && (!g.cache_inserted || g.published) {
            return Err(
                "result published before the cache insert + unpublish critical section".into()
            );
        }
        Ok(())
    }

    fn finale(&self, s: &SingleFlightState) -> Result<(), String> {
        if s.passes.load() != 1 {
            return Err(format!("{} mining passes for one batch (want 1)", s.passes.load()));
        }
        for (tid, obs) in s.observed.iter().enumerate() {
            match obs {
                None => return Err(format!("member {tid} finished without a result")),
                Some(r) if *r > SUPPORTS[tid] => {
                    return Err(format!(
                        "member {tid} got a result mined at support {r}, but asked for \
                         {} — too strong to filter down",
                        SUPPORTS[tid]
                    ));
                }
                Some(_) => {}
            }
        }
        let g = s.group.peek();
        let want_credit = (K as u8 - 1) * SCAN_COST;
        if g.credit_saved != want_credit {
            return Err(format!("coalesce credit {} (want {want_credit})", g.credit_saved));
        }
        if !g.cache_inserted || g.published {
            return Err("batch ended without cache insert + unpublish".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckConfig, Checker, ViolationKind};

    #[test]
    fn faithful_protocol_is_clean() {
        let out = Checker::new(CheckConfig::default()).run(&SingleFlightModel { bug: None });
        assert!(out.ok(), "{:?}", out.violations.first());
        assert!(out.complete);
        assert!(out.stats.interleavings >= 10_000, "{:?}", out.stats);
    }

    #[test]
    fn freeze_ignoring_joiners_is_caught() {
        let out = Checker::new(CheckConfig::default())
            .run(&SingleFlightModel { bug: Some(SingleFlightBug::FreezeIgnoresJoiner) });
        assert!(!out.ok());
        assert!(
            out.violations.iter().any(|v| v.message.contains("too strong")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn double_credit_is_caught() {
        let out = Checker::new(CheckConfig::default())
            .run(&SingleFlightModel { bug: Some(SingleFlightBug::DoubleCredit) });
        assert!(!out.ok());
        assert!(
            out.violations.iter().any(|v| v.message.contains("credit")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn lost_wakeup_deadlocks() {
        let out = Checker::new(CheckConfig::default())
            .run(&SingleFlightModel { bug: Some(SingleFlightBug::NotifyBeforeResult) });
        assert!(
            out.violations.iter().any(|v| v.kind == ViolationKind::Deadlock),
            "{:?}",
            out.violations
        );
    }
}

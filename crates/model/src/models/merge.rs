//! Model of the chunk-sharded counter's merge phase.
//!
//! `count_supports_with` shards rows into contiguous chunks, counts each
//! chunk in an isolated per-worker buffer, and folds the partials into
//! one accumulator by commutative addition. This model takes the partial
//! vectors as *data* (the caller computes them — tests and `cfq model`
//! feed real `cfq-mining` counts) and explores every order in which
//! worker threads can fold them in, `granularity` elements per lock
//! section:
//!
//! * `granularity == partial length` — whole-vector merges, one atomic
//!   step per worker (the Lipton-reduced shape of merging under a lock
//!   after join): schedules are exactly the chunk permutations;
//! * `granularity == 1` — element-wise merges: tens of thousands of
//!   distinct interleavings against the same finale.
//!
//! The invariant bounds every intermediate sum by the sequential total
//! (counts only grow toward it), and the finale demands exact agreement.
//! There is no built-in bug switch: callers seed bugs by perturbing a
//! partial (e.g. doubling chunk 0 — what a missed join would allow).

use crate::checker::{Model, Step};
use crate::sync::MockMutex;

/// The merge model. Workers = `partials.len()`.
pub struct MergeModel {
    /// One partial count vector per worker, all the same length.
    pub partials: Vec<Vec<u64>>,
    /// The sequential count the merge must reproduce in every schedule.
    pub expected: Vec<u64>,
    /// Elements folded per lock section (1 = finest interleaving).
    pub granularity: usize,
}

/// Full model state: the shared accumulator plus per-worker progress.
#[derive(Clone, Hash, PartialEq, Eq)]
pub struct MergeState {
    acc: MockMutex<Vec<u64>>,
    /// Per-worker index of the next element to merge.
    idx: Vec<usize>,
}

impl Model for MergeModel {
    type State = MergeState;

    fn init(&self) -> MergeState {
        MergeState {
            acc: MockMutex::new(vec![0; self.expected.len()]),
            idx: vec![0; self.partials.len()],
        }
    }

    fn threads(&self) -> usize {
        self.partials.len()
    }

    fn step(&self, s: &mut MergeState, tid: usize) -> Step {
        let part = &self.partials[tid];
        if s.idx[tid] >= part.len() {
            return Step::Done;
        }
        if !s.acc.try_lock(tid) {
            return Step::Blocked;
        }
        let from = s.idx[tid];
        let to = (from + self.granularity.max(1)).min(part.len());
        let acc = s.acc.data_mut(tid);
        for i in from..to {
            acc[i] += part[i];
        }
        s.acc.unlock(tid);
        s.idx[tid] = to;
        Step::Ran
    }

    fn invariant(&self, s: &MergeState) -> Result<(), String> {
        for (i, (&got, &want)) in s.acc.peek().iter().zip(&self.expected).enumerate() {
            if got > want {
                return Err(format!("candidate {i} overshot the sequential count: {got} > {want}"));
            }
        }
        Ok(())
    }

    fn finale(&self, s: &MergeState) -> Result<(), String> {
        let acc = s.acc.peek();
        if *acc != self.expected {
            return Err(format!("merge diverged: {acc:?} != {:?}", self.expected));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckConfig, Checker};

    fn model(granularity: usize) -> MergeModel {
        MergeModel {
            partials: vec![vec![1, 0, 2], vec![0, 3, 1], vec![2, 1, 0]],
            expected: vec![3, 4, 3],
            granularity,
        }
    }

    #[test]
    fn coarse_merge_counts_permutations() {
        let out = Checker::new(CheckConfig::default()).run(&model(3));
        assert!(out.ok(), "{:?}", out.violations.first());
        assert_eq!(out.stats.interleavings, 6, "3 whole-vector merges = 3! schedules");
    }

    #[test]
    fn fine_merge_is_clean_across_all_interleavings() {
        let out = Checker::new(CheckConfig::default()).run(&model(1));
        assert!(out.ok(), "{:?}", out.violations.first());
        assert!(out.complete);
        // multinomial(9; 3,3,3) = 1680 element-merge schedules.
        assert_eq!(out.stats.interleavings, 1680);
    }

    #[test]
    fn seeded_double_merge_is_caught() {
        let mut m = model(1);
        for x in &mut m.partials[0] {
            *x *= 2;
        }
        let out = Checker::new(CheckConfig::default()).run(&m);
        assert!(!out.ok(), "double-counted chunk must be caught");
    }
}

//! Model of the engine's epoch-versioned swap + FUP append protocol.
//!
//! Mirrors `Engine::append` against concurrent readers
//! (`Engine::lattice_for`):
//!
//! * the engine state (current epoch + lattice cache) lives behind one
//!   mutex; queries snapshot the epoch under the lock, **mine outside
//!   it**, and re-acquire it to install results;
//! * `append` snapshots the cache under the lock, FUP-upgrades every
//!   entry **outside** the lock, then installs `(epoch+1, upgraded
//!   entries)` in a single critical section — the swap;
//! * a reader that mined against an epoch that has since moved must have
//!   its insert **dropped as stale**, never installed.
//!
//! A lattice's contents are abstracted to one byte that must equal
//! `expected(epoch, slot)` — "the correct complete lattice for this
//! epoch". The protocol invariant (what "no reader ever observes a
//! half-upgraded lattice" means at this abstraction):
//!
//! 1. every cache entry belongs to the **current** epoch;
//! 2. every cache entry's value is exactly `expected(entry.epoch, slot)`;
//! 3. every value a reader ever observed from the cache was exact for
//!    the epoch it snapshotted.
//!
//! Two seeded bugs: [`EpochBug::TornSwap`] splits the swap into separate
//! epoch-bump and per-entry-upgrade critical sections (readers can see a
//! new-epoch entry with old-epoch contents), and
//! [`EpochBug::SkipStaleCheck`] installs a reader's cold mining without
//! re-checking the epoch under the lock (a stale lattice enters a cache
//! that claims to be current).

use crate::checker::{Model, Step};
use crate::sync::MockMutex;

/// Number of reader threads (thread 0 is the appender).
const READERS: usize = 3;
/// Cache slots (readers target slot `tid - 1`).
const SLOTS: usize = 3;
/// Appends the writer performs (final epoch).
const APPENDS: u8 = 2;

/// The exact lattice byte for `(epoch, slot)` — what a correct mining or
/// FUP upgrade of that slot at that epoch produces.
fn expected(epoch: u8, slot: usize) -> u8 {
    epoch * 16 + slot as u8
}

/// Which seeded bug to inject, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochBug {
    /// The swap is torn: the epoch pointer moves in one critical section,
    /// cached entries are upgraded one per section afterwards.
    TornSwap,
    /// Reader inserts skip the `current == snapshot` re-check.
    SkipStaleCheck,
}

impl EpochBug {
    /// Every injectable bug, with its stable report name.
    pub fn all() -> &'static [(EpochBug, &'static str)] {
        &[(EpochBug::TornSwap, "torn_swap"), (EpochBug::SkipStaleCheck, "skip_stale_check")]
    }
}

#[derive(Clone, Hash, PartialEq, Eq)]
struct Entry {
    epoch: u8,
    val: u8,
}

#[derive(Clone, Hash, PartialEq, Eq)]
struct Engine {
    epoch: u8,
    cache: [Option<Entry>; SLOTS],
    stale_drops: u8,
}

/// Full model state: the engine behind its mutex plus thread PCs.
#[derive(Clone, Hash, PartialEq, Eq)]
pub struct EpochState {
    state: MockMutex<Engine>,
    /// Writer program counter and its in-flight append snapshot.
    wpc: u8,
    wsnap_epoch: u8,
    wsnap: [Option<Entry>; SLOTS],
    wupgraded: [Option<Entry>; SLOTS],
    wdone_appends: u8,
    /// Per-reader program counter, snapshot epoch, mined value.
    rpc: [u8; READERS],
    rsnap: [u8; READERS],
    rmined: [u8; READERS],
    /// Every (epoch, slot, value) observation a reader made on a hit.
    observed: Vec<(u8, u8, u8)>,
}

/// The epoch swap protocol model. `bug: None` must verify clean.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochSwapModel {
    /// Seeded bug to inject, or `None` for the faithful protocol.
    pub bug: Option<EpochBug>,
}

impl EpochSwapModel {
    fn writer_step(&self, s: &mut EpochState) -> Step {
        const TID: usize = 0;
        match s.wpc {
            // Snapshot epoch + cache under the state lock (one critical
            // section, so one atomic step).
            0 => {
                if s.wdone_appends == APPENDS {
                    return Step::Done;
                }
                if !s.state.try_lock(TID) {
                    return Step::Blocked;
                }
                let eng = s.state.data(TID);
                s.wsnap_epoch = eng.epoch;
                let mut snap: [Option<Entry>; SLOTS] = Default::default();
                for (i, e) in eng.cache.iter().enumerate() {
                    if let Some(e) = e {
                        if e.epoch == s.wsnap_epoch {
                            snap[i] = Some(e.clone());
                        }
                    }
                }
                s.wsnap = snap;
                s.state.unlock(TID);
                s.wpc = 1;
                Step::Ran
            }
            // FUP-upgrade every snapshotted entry OUTSIDE the lock.
            1 => {
                let mut up: [Option<Entry>; SLOTS] = Default::default();
                for (i, e) in s.wsnap.iter().enumerate() {
                    if e.is_some() {
                        up[i] = Some(Entry {
                            epoch: s.wsnap_epoch + 1,
                            val: expected(s.wsnap_epoch + 1, i),
                        });
                    }
                }
                s.wupgraded = up;
                s.wpc = 2;
                Step::Ran
            }
            // Install: epoch bump + wholesale cache replacement in ONE
            // critical section (the swap). TornSwap tears it apart.
            2 => {
                if !s.state.try_lock(TID) {
                    return Step::Blocked;
                }
                let new_epoch = s.wsnap_epoch + 1;
                if self.bug == Some(EpochBug::TornSwap) {
                    // Buggy: bump the epoch and relabel entries now,
                    // upgrade the values in later critical sections.
                    let upgraded = s.wupgraded.clone();
                    let eng = s.state.data_mut(TID);
                    eng.epoch = new_epoch;
                    for (i, up) in upgraded.iter().enumerate() {
                        eng.cache[i] = up.as_ref().map(|u| Entry {
                            epoch: u.epoch,
                            // Torn: new label, stale value for now.
                            val: eng.cache[i].as_ref().map(|e| e.val).unwrap_or(u.val),
                        });
                    }
                    s.state.unlock(TID);
                    s.wpc = 3;
                } else {
                    let upgraded = s.wupgraded.clone();
                    let eng = s.state.data_mut(TID);
                    eng.epoch = new_epoch;
                    eng.cache = upgraded;
                    s.state.unlock(TID);
                    s.wpc = 10; // append complete
                }
                Step::Ran
            }
            // TornSwap tail: upgrade one entry's value per critical
            // section.
            pc @ 3..=5 => {
                let slot = (pc - 3) as usize;
                if !s.state.try_lock(TID) {
                    return Step::Blocked;
                }
                let up = s.wupgraded[slot].clone();
                let eng = s.state.data_mut(TID);
                if let Some(u) = up {
                    eng.cache[slot] = Some(u);
                }
                s.state.unlock(TID);
                s.wpc = if slot + 1 == SLOTS { 10 } else { pc + 1 };
                Step::Ran
            }
            // Append finished; loop for the next one.
            10 => {
                s.wdone_appends += 1;
                s.wpc = 0;
                Step::Ran
            }
            _ => Step::Done,
        }
    }

    fn reader_step(&self, s: &mut EpochState, tid: usize) -> Step {
        let r = tid - 1;
        let slot = r % SLOTS;
        match s.rpc[r] {
            // Snapshot + cache lookup in one critical section.
            0 => {
                if !s.state.try_lock(tid) {
                    return Step::Blocked;
                }
                let eng = s.state.data(tid);
                let epoch = eng.epoch;
                s.rsnap[r] = epoch;
                let hit = match &eng.cache[slot] {
                    Some(e) if e.epoch == epoch => Some(e.val),
                    _ => None,
                };
                s.state.unlock(tid);
                match hit {
                    Some(val) => {
                        s.observed.push((epoch, slot as u8, val));
                        s.rpc[r] = 3; // served from cache, done
                    }
                    None => s.rpc[r] = 1, // cold: mine outside the lock
                }
                Step::Ran
            }
            // Mine against the snapshot, outside any lock. Mining is
            // correct by construction: it derives from the snapshot.
            1 => {
                s.rmined[r] = expected(s.rsnap[r], slot);
                s.rpc[r] = 2;
                Step::Ran
            }
            // Install under the lock iff the epoch did not move
            // (stale-insert guard); SkipStaleCheck installs regardless.
            2 => {
                if !s.state.try_lock(tid) {
                    return Step::Blocked;
                }
                let (snap, mined) = (s.rsnap[r], s.rmined[r]);
                let skip_guard = self.bug == Some(EpochBug::SkipStaleCheck);
                let eng = s.state.data_mut(tid);
                if eng.epoch == snap || skip_guard {
                    eng.cache[slot] = Some(Entry { epoch: snap, val: mined });
                } else {
                    eng.stale_drops += 1;
                }
                s.state.unlock(tid);
                s.rpc[r] = 3;
                Step::Ran
            }
            _ => Step::Done,
        }
    }
}

impl Model for EpochSwapModel {
    type State = EpochState;

    fn init(&self) -> EpochState {
        let mut cache: [Option<Entry>; SLOTS] = Default::default();
        // Two warm entries at epoch 0; slot 2 starts cold so one reader
        // exercises the mine-and-install path.
        cache[0] = Some(Entry { epoch: 0, val: expected(0, 0) });
        cache[1] = Some(Entry { epoch: 0, val: expected(0, 1) });
        EpochState {
            state: MockMutex::new(Engine { epoch: 0, cache, stale_drops: 0 }),
            wpc: 0,
            wsnap_epoch: 0,
            wsnap: Default::default(),
            wupgraded: Default::default(),
            wdone_appends: 0,
            rpc: [0; READERS],
            rsnap: [0; READERS],
            rmined: [0; READERS],
            observed: Vec::new(),
        }
    }

    fn threads(&self) -> usize {
        1 + READERS
    }

    fn step(&self, s: &mut EpochState, tid: usize) -> Step {
        if tid == 0 {
            self.writer_step(s)
        } else {
            self.reader_step(s, tid)
        }
    }

    fn invariant(&self, s: &EpochState) -> Result<(), String> {
        let eng = s.state.peek();
        for (i, e) in eng.cache.iter().enumerate() {
            if let Some(e) = e {
                if e.epoch != eng.epoch {
                    return Err(format!(
                        "cache slot {i} holds epoch {} while the engine is at epoch {}",
                        e.epoch, eng.epoch
                    ));
                }
                if e.val != expected(e.epoch, i) {
                    return Err(format!(
                        "half-upgraded lattice: slot {i} labeled epoch {} holds {} (want {})",
                        e.epoch,
                        e.val,
                        expected(e.epoch, i)
                    ));
                }
            }
        }
        for &(epoch, slot, val) in &s.observed {
            if val != expected(epoch, slot as usize) {
                return Err(format!(
                    "reader observed {val} for slot {slot} at epoch {epoch} (want {})",
                    expected(epoch, slot as usize)
                ));
            }
        }
        Ok(())
    }

    fn finale(&self, s: &EpochState) -> Result<(), String> {
        let eng = s.state.peek();
        if eng.epoch != APPENDS {
            return Err(format!("writer finished at epoch {} (want {APPENDS})", eng.epoch));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckConfig, Checker};

    #[test]
    fn faithful_protocol_is_clean() {
        let out = Checker::new(CheckConfig::default()).run(&EpochSwapModel { bug: None });
        assert!(out.ok(), "{:?}", out.violations.first());
        assert!(out.complete);
        assert!(out.stats.interleavings >= 10_000, "{:?}", out.stats);
    }

    #[test]
    fn torn_swap_is_caught() {
        let out =
            Checker::new(CheckConfig::default()).run(&EpochSwapModel { bug: Some(EpochBug::TornSwap) });
        assert!(!out.ok());
        assert!(
            out.violations.iter().any(|v| v.message.contains("half-upgraded")
                || v.message.contains("observed")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn skipped_stale_check_is_caught() {
        let out = Checker::new(CheckConfig::default())
            .run(&EpochSwapModel { bug: Some(EpochBug::SkipStaleCheck) });
        assert!(!out.ok());
        assert!(
            out.violations.iter().any(|v| v.message.contains("while the engine is at epoch")),
            "{:?}",
            out.violations
        );
    }
}

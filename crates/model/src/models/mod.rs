//! Abstract models of the engine's live concurrency protocols.
//!
//! Each model is a small, dependency-free state machine mirroring one
//! protocol's *shape* — the lock sections, the lock-free steps between
//! them, and the invariant the surrounding code relies on:
//!
//! * [`epoch::EpochSwapModel`] — `Engine::append`'s snapshot → FUP →
//!   single-swap protocol against concurrent readers.
//! * [`single_flight::SingleFlightModel`] — the scheduler's
//!   `mine_or_join` group protocol: one mining pass, minimum-support
//!   batching, condvar publication.
//! * [`cache_evict::CacheEvictModel`] — the LRU lattice cache's byte
//!   budget and Arc-refcounted eviction against concurrent hits.
//! * [`merge::MergeModel`] — the sharded counter's partial-count merge,
//!   parameterized over caller-supplied partial vectors.
//! * [`sharded_trim::ShardedTrimModel`] — sharded mining's per-shard
//!   trim → count → merge level barrier, with trim accounting.
//!
//! Every model carries an optional **seeded bug** (`--inject`): a
//! deliberate protocol mutation the checker must flag. An injection that
//! goes uncaught means the model (or the checker) lost its teeth — CI
//! fails on it.

pub mod cache_evict;
pub mod epoch;
pub mod merge;
pub mod sharded_trim;
pub mod single_flight;

//! A hand-rolled, token-level lint pass over the workspace's own
//! sources.
//!
//! The build environment is offline — no clippy plugins, no `syn` — so
//! the invariants code review relies on are enforced by a small lexer
//! (comments, strings, raw strings, char-vs-lifetime) plus line/token
//! pattern rules:
//!
//! * **no-unwrap** — `.unwrap()` / `.expect(...)` are banned in the
//!   request-handling hot paths (`serve.rs`, `scheduler.rs`,
//!   `request.rs`, `session.rs`, `json.rs`): a malformed request must
//!   surface as a protocol error, never a panic that kills a worker.
//! * **unsafe-needs-safety** — every `unsafe` block carries a
//!   `// SAFETY:` comment within three lines above (or on the line).
//! * **metric-name** — metric registration names match `cfq_[a-z0-9_]+`,
//!   counters end in `_total`, and each name is registered at exactly
//!   one call site in the workspace (the obs crate itself is exempt).
//! * **durability-metric** — the `cfq_wal_*` / `cfq_snapshot_*`
//!   families are a closed catalog: a registration outside
//!   [`DURABILITY_METRICS`], or with the wrong instrument kind, is a
//!   finding. Primaries and replicas must export the same durability
//!   surface, so new families are added to the catalog deliberately.
//! * **shard-metric** — the `cfq_mining_shard_*` family is likewise a
//!   closed catalog ([`SHARD_METRICS`]): the CI shard stage scrapes it
//!   and the substrate bench charts a speedup curve from it.
//! * **span-guard-bound** — `obs::span(...)` in statement position is a
//!   guard dropped immediately (the span closes before the work runs);
//!   it must be bound to a local.
//! * **missing-docs** — `pub` items in non-bench crates carry a doc
//!   comment (`pub(...)`-scoped items and `pub use` re-exports are
//!   exempt).
//!
//! `#[cfg(test)]` modules and `#[test]` functions are excluded by brace
//! matching on the token stream; files under `tests/`, `benches/` or
//! `examples/` (and the bench crate) only get the `unsafe` rule.

use std::fs;
use std::path::{Path, PathBuf};

/// How a file is treated by the rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Request-handling hot path: all rules, including no-unwrap.
    Hot,
    /// Library source: all rules except no-unwrap.
    Normal,
    /// Tests, benches, examples: only the unsafe rule.
    TestOrBench,
}

/// File names whose request-path position bans `unwrap`/`expect`.
const HOT_FILES: &[&str] = &["serve.rs", "scheduler.rs", "request.rs", "session.rs", "json.rs"];

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path as scanned (repo-relative when walking a workspace).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule name.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// The closed catalog of durability metric families with their
/// instrument kinds. Every `cfq_wal_*` / `cfq_snapshot_*` registration
/// in the workspace must appear here — the durability surface is part
/// of the wire contract between primaries, replicas and dashboards, so
/// growing it is a deliberate edit to this table, not a drive-by
/// `.counter(...)` call.
pub const DURABILITY_METRICS: &[(&str, &str)] = &[
    ("cfq_wal_records_total", "counter"),
    ("cfq_wal_bytes_total", "counter"),
    ("cfq_wal_fsyncs_total", "counter"),
    ("cfq_wal_replayed_records_total", "counter"),
    ("cfq_snapshot_writes_total", "counter"),
    ("cfq_snapshot_bytes_total", "counter"),
    ("cfq_snapshot_last_epoch", "gauge"),
];

/// The closed catalog of sharded-mining metric families, enforced the
/// same way as [`DURABILITY_METRICS`]: the `cfq_mining_shard_*` surface
/// is what the CI shard stage scrapes and dashboards chart a speedup
/// curve from, so new families are a deliberate edit to this table.
pub const SHARD_METRICS: &[(&str, &str)] = &[
    ("cfq_mining_shard_levels_total", "counter"),
    ("cfq_mining_shard_merges_total", "counter"),
];

/// The closed catalog of load-generator client metric families,
/// enforced the same way as [`DURABILITY_METRICS`]: the `cfq_loadgen_*`
/// surface is what `BENCH_loadgen.json` and the CI loadgen stage are
/// derived from, so new families are a deliberate edit to this table.
pub const LOADGEN_METRICS: &[(&str, &str)] = &[
    ("cfq_loadgen_requests_total", "counter"),
    ("cfq_loadgen_overloaded_total", "counter"),
    ("cfq_loadgen_request_errors_total", "counter"),
    ("cfq_loadgen_protocol_errors_total", "counter"),
    ("cfq_loadgen_latency_seconds", "histogram"),
];

/// One metric registration site, collected for the cross-file
/// exactly-once check.
#[derive(Clone, Debug)]
pub struct MetricReg {
    /// The literal metric name.
    pub name: String,
    /// Registration method (`counter`, `counter_with`, `gauge`,
    /// `histogram`).
    pub kind: String,
    /// Path as scanned.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// The result of a workspace scan.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All violations, in file order.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// Distinct metric names seen at registration sites.
    pub metrics: usize,
}

impl LintReport {
    /// Whether the scan found nothing.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// One-line JSON rendering, mirroring the model report shape.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"bench\":\"lint\",\"files\":{},\"metrics\":{},\"findings\":[",
            self.files, self.metrics
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                escape(&f.file),
                f.line,
                f.rule,
                escape(&f.message),
            ));
        }
        out.push_str(&format!("],\"clean\":{}}}", self.clean()));
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TokKind {
    Ident,
    Str,
    Char,
    Lifetime,
    Num,
    Punct,
}

#[derive(Clone, Debug)]
struct Tok {
    kind: TokKind,
    text: String,
    line: u32,
}

#[derive(Clone, Debug)]
struct Comment {
    /// Line the comment starts on.
    line: u32,
    /// Full text including the `//` / `/*` introducer.
    text: String,
}

struct Lexed {
    toks: Vec<Tok>,
    comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes Rust source far enough for line/token rules: comments and
/// every string/char form are recognized so nothing inside them is ever
/// mistaken for code.
fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut toks = Vec::new();
    let mut comments = Vec::new();

    macro_rules! peek {
        ($off:expr) => {
            b.get(i + $off).copied()
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if peek!(1) == Some('/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment { line, text: b[start..i].iter().collect() });
            }
            '/' if peek!(1) == Some('*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && peek!(1) == Some('*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && peek!(1) == Some('/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment { line: start_line, text: b[start..i].iter().collect() });
            }
            '"' => {
                let (text, nl) = scan_string(&b, &mut i);
                toks.push(Tok { kind: TokKind::Str, text, line });
                line += nl;
            }
            '\'' => {
                // Lifetime ('a) vs char literal ('x', '\n', '\'').
                let next = peek!(1);
                let after = peek!(2);
                let is_lifetime = match (next, after) {
                    (Some(n), a) if is_ident_start(n) => a != Some('\''),
                    _ => false,
                };
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < b.len() && is_ident_cont(b[i]) {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() {
                        if b[i] == '\\' {
                            i += 2;
                        } else if b[i] == '\'' {
                            i += 1;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                    toks.push(Tok { kind: TokKind::Char, text: b[start..i].iter().collect(), line });
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
                let is_raw_prefix = matches!(text.as_str(), "r" | "br")
                    && matches!(peek!(0), Some('"') | Some('#'));
                let is_byte_str = text == "b" && peek!(0) == Some('"');
                if is_raw_prefix {
                    let mut hashes = 0;
                    while peek!(0) == Some('#') {
                        hashes += 1;
                        i += 1;
                    }
                    if peek!(0) == Some('"') {
                        i += 1;
                        let start_line = line;
                        'scan: while i < b.len() {
                            if b[i] == '\n' {
                                line += 1;
                                i += 1;
                                continue;
                            }
                            if b[i] == '"' {
                                let mut ok = true;
                                for h in 0..hashes {
                                    if b.get(i + 1 + h) != Some(&'#') {
                                        ok = false;
                                        break;
                                    }
                                }
                                if ok {
                                    i += 1 + hashes;
                                    break 'scan;
                                }
                            }
                            i += 1;
                        }
                        toks.push(Tok { kind: TokKind::Str, text: String::new(), line: start_line });
                    } else {
                        toks.push(Tok { kind: TokKind::Ident, text, line });
                    }
                } else if is_byte_str {
                    let (text, nl) = scan_string(&b, &mut i);
                    toks.push(Tok { kind: TokKind::Str, text, line });
                    line += nl;
                } else {
                    toks.push(Tok { kind: TokKind::Ident, text, line });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (is_ident_cont(b[i]) || b[i] == '.') {
                    // Stop a float scan before `1.method()` or `0..n`.
                    if b[i] == '.' && !peek!(1).map(|d| d.is_ascii_digit()).unwrap_or(false) {
                        break;
                    }
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Num, text: b[start..i].iter().collect(), line });
            }
            c => {
                toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
                i += 1;
            }
        }
    }
    Lexed { toks, comments }
}

/// Scans a `"…"` string starting at `b[*i] == '"'`; returns the contents
/// (without quotes) and the newlines crossed.
fn scan_string(b: &[char], i: &mut usize) -> (String, u32) {
    let mut out = String::new();
    let mut nl = 0;
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            '\\' => {
                if let Some(e) = b.get(*i + 1) {
                    out.push('\\');
                    out.push(*e);
                }
                *i += 2;
            }
            '"' => {
                *i += 1;
                break;
            }
            c => {
                if c == '\n' {
                    nl += 1;
                }
                out.push(c);
                *i += 1;
            }
        }
    }
    (out, nl)
}

// ---------------------------------------------------------------------
// `#[cfg(test)]` / `#[test]` exclusion
// ---------------------------------------------------------------------

/// Marks token index ranges covered by `#[cfg(test)]` items and
/// `#[test]` functions, by matching the brace block (or trailing `;`)
/// after the attribute.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "#" || toks.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Collect this attribute group.
        let mut j = i + 2;
        let mut depth = 1;
        let mut attr_idents: Vec<&str> = Vec::new();
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {
                    if toks[j].kind == TokKind::Ident {
                        attr_idents.push(&toks[j].text);
                    }
                }
            }
            j += 1;
        }
        let testish = attr_idents == ["test"]
            || (attr_idents.contains(&"cfg") && attr_idents.contains(&"test"));
        if !testish {
            i = j;
            continue;
        }
        // Skip any further attribute groups, then find the item's body
        // brace (or a `;` for extern/use forms) and mask through it.
        let mut k = j;
        while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
            let mut d = 1;
            k += 2;
            while k < toks.len() && d > 0 {
                match toks[k].text.as_str() {
                    "[" => d += 1,
                    "]" => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        let mut end = k;
        while end < toks.len() {
            match toks[end].text.as_str() {
                ";" => {
                    end += 1;
                    break;
                }
                "{" => {
                    let mut d = 1;
                    end += 1;
                    while end < toks.len() && d > 0 {
                        match toks[end].text.as_str() {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        end += 1;
                    }
                    break;
                }
                _ => end += 1,
            }
        }
        for m in mask.iter_mut().take(end.min(toks.len())).skip(i) {
            *m = true;
        }
        i = end;
    }
    mask
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

const ITEM_KEYWORDS: &[&str] =
    &["fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union"];

/// Lints one file's source. Returns the findings plus every (non-test)
/// metric registration site for the workspace-level exactly-once check.
pub fn lint_source(path: &str, class: FileClass, src: &str) -> (Vec<Finding>, Vec<MetricReg>) {
    let Lexed { toks, comments } = lex(src);
    let mask = test_mask(&toks);
    let mut findings = Vec::new();
    let mut metrics = Vec::new();
    let in_obs_crate = path.contains("crates/obs/") || path.starts_with("obs/");

    let finding = |line: u32, rule: &'static str, message: String| Finding {
        file: path.to_string(),
        line,
        rule,
        message,
    };

    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let next = toks.get(i + 1);

        // unsafe-needs-safety: applies to every class.
        if t.kind == TokKind::Ident
            && t.text == "unsafe"
            && next.map(|n| n.text.as_str()) == Some("{")
        {
            // A `// SAFETY:` comment anywhere in the contiguous comment
            // block directly above the `unsafe` (or on the line itself /
            // the line after, for trailing and inner-comment styles).
            let comment_lines: std::collections::HashSet<u32> =
                comments.iter().map(|c| c.line).collect();
            let documented = comments.iter().any(|c| {
                c.text.contains("SAFETY:")
                    && c.line <= t.line + 1
                    && (c.line + 1..t.line).all(|l| comment_lines.contains(&l))
            });
            if !documented {
                findings.push(finding(
                    t.line,
                    "unsafe-needs-safety",
                    "unsafe block without a `// SAFETY:` comment justifying it".into(),
                ));
            }
        }

        if class == FileClass::TestOrBench {
            continue;
        }

        // no-unwrap: hot request paths only.
        if class == FileClass::Hot
            && t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && prev.map(|p| p.text.as_str()) == Some(".")
            && next.map(|n| n.text.as_str()) == Some("(")
        {
            findings.push(finding(
                t.line,
                "no-unwrap",
                format!(
                    "`.{}(...)` in a request-handling path — return a protocol error instead \
                     of panicking a worker",
                    t.text
                ),
            ));
        }

        // metric-name: registration sites `.counter("name" ...)` etc.
        if !in_obs_crate
            && t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "counter" | "counter_with" | "gauge" | "histogram")
            && prev.map(|p| p.text.as_str()) == Some(".")
            && next.map(|n| n.text.as_str()) == Some("(")
        {
            // First argument: an optional `&` then a string literal.
            let mut a = i + 2;
            if toks.get(a).map(|x| x.text.as_str()) == Some("&") {
                a += 1;
            }
            if let Some(arg) = toks.get(a).filter(|x| x.kind == TokKind::Str) {
                let name = arg.text.clone();
                let valid = name.strip_prefix("cfq_").is_some_and(|rest| {
                    !rest.is_empty()
                        && rest.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                });
                if !valid {
                    findings.push(finding(
                        t.line,
                        "metric-name",
                        format!("metric `{name}` does not match `cfq_[a-z0-9_]+`"),
                    ));
                } else if t.text.starts_with("counter") && !name.ends_with("_total") {
                    findings.push(finding(
                        t.line,
                        "metric-name",
                        format!("counter `{name}` must end in `_total`"),
                    ));
                } else if name.starts_with("cfq_wal_") || name.starts_with("cfq_snapshot_") {
                    match DURABILITY_METRICS.iter().find(|(n, _)| *n == name) {
                        None => findings.push(finding(
                            t.line,
                            "durability-metric",
                            format!(
                                "durability metric `{name}` is not in the catalog — add it \
                                 to DURABILITY_METRICS (lint.rs) or fix the name"
                            ),
                        )),
                        Some((_, kind)) if !t.text.starts_with(kind) => findings.push(finding(
                            t.line,
                            "durability-metric",
                            format!(
                                "durability metric `{name}` must be registered as a {kind}, \
                                 not `{}`",
                                t.text
                            ),
                        )),
                        Some(_) => {}
                    }
                } else if name.starts_with("cfq_mining_shard_") {
                    match SHARD_METRICS.iter().find(|(n, _)| *n == name) {
                        None => findings.push(finding(
                            t.line,
                            "shard-metric",
                            format!(
                                "shard metric `{name}` is not in the catalog — add it \
                                 to SHARD_METRICS (lint.rs) or fix the name"
                            ),
                        )),
                        Some((_, kind)) if !t.text.starts_with(kind) => findings.push(finding(
                            t.line,
                            "shard-metric",
                            format!(
                                "shard metric `{name}` must be registered as a {kind}, \
                                 not `{}`",
                                t.text
                            ),
                        )),
                        Some(_) => {}
                    }
                } else if name.starts_with("cfq_loadgen_") {
                    match LOADGEN_METRICS.iter().find(|(n, _)| *n == name) {
                        None => findings.push(finding(
                            t.line,
                            "loadgen-metric",
                            format!(
                                "loadgen metric `{name}` is not in the catalog — add it \
                                 to LOADGEN_METRICS (lint.rs) or fix the name"
                            ),
                        )),
                        Some((_, kind)) if !t.text.starts_with(kind) => findings.push(finding(
                            t.line,
                            "loadgen-metric",
                            format!(
                                "loadgen metric `{name}` must be registered as a {kind}, \
                                 not `{}`",
                                t.text
                            ),
                        )),
                        Some(_) => {}
                    }
                }
                metrics.push(MetricReg {
                    name,
                    kind: t.text.clone(),
                    file: path.to_string(),
                    line: t.line,
                });
            }
        }

        // span-guard-bound: statement-position `obs::span(...)`.
        if t.kind == TokKind::Ident
            && t.text == "obs"
            && toks.get(i + 1).map(|x| x.text.as_str()) == Some(":")
            && toks.get(i + 2).map(|x| x.text.as_str()) == Some(":")
            && toks.get(i + 3).map(|x| x.text.as_str()) == Some("span")
            && toks.get(i + 4).map(|x| x.text.as_str()) == Some("(")
        {
            let at_statement_start =
                prev.is_none() || matches!(prev.map(|p| p.text.as_str()), Some(";" | "{" | "}"));
            if at_statement_start {
                findings.push(finding(
                    t.line,
                    "span-guard-bound",
                    "`obs::span(...)` guard dropped immediately — bind it \
                     (`let _span = obs::span(...)`) so the span covers the work"
                        .into(),
                ));
            }
        }

        // missing-docs: `pub` items (not `pub(...)`, not `pub use`).
        if t.kind == TokKind::Ident && t.text == "pub" {
            if matches!(next.map(|n| n.text.as_str()), Some("(") | Some("use")) {
                continue;
            }
            // Identify the item keyword within the next few tokens
            // (skipping `unsafe`, `async`, `extern "C"`, …).
            let mut kw = None;
            for x in toks.iter().skip(i + 1).take(4) {
                if x.kind == TokKind::Ident && ITEM_KEYWORDS.contains(&x.text.as_str()) {
                    kw = Some(x.text.clone());
                    break;
                }
            }
            let Some(kw) = kw else { continue };
            let name = toks
                .iter()
                .skip(i + 1)
                .skip_while(|x| x.text != kw)
                .skip(1)
                .find(|x| x.kind == TokKind::Ident)
                .map(|x| x.text.clone())
                .unwrap_or_default();
            // `pub mod name;` declarations carry their docs as `//!`
            // inner comments in the module file — rustdoc counts those,
            // so this rule must too.
            if kw == "mod" && toks.get(i + 3).map(|x| x.text.as_str()) == Some(";") {
                continue;
            }
            // Walk back over attribute groups to the item's first line.
            let mut start = i;
            while let Some(close) = start.checked_sub(1) {
                if toks[close].text != "]" {
                    break;
                }
                let mut d = 1;
                let mut open = close;
                while d > 0 {
                    let Some(p) = open.checked_sub(1) else { break };
                    open = p;
                    match toks[open].text.as_str() {
                        "]" => d += 1,
                        "[" => d -= 1,
                        _ => {}
                    }
                }
                match open.checked_sub(1) {
                    Some(h) if toks[h].text == "#" && d == 0 => start = h,
                    _ => break,
                }
            }
            let start_line = toks[start].line;
            let documented = comments.iter().any(|c| {
                (c.text.starts_with("///") || c.text.starts_with("/**"))
                    && c.line + 1 == start_line
            });
            if !documented {
                findings.push(finding(
                    t.line,
                    "missing-docs",
                    format!("public {kw} `{name}` has no doc comment"),
                ));
            }
        }
    }

    (findings, metrics)
}

// ---------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "corpus"];

fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let file = parts.last().copied().unwrap_or_default();
    let crate_name = match parts.first() {
        Some(&"crates") => parts.get(1).copied().unwrap_or_default(),
        _ => "cfq",
    };
    if crate_name == "bench"
        || parts.iter().any(|p| matches!(*p, "tests" | "benches" | "examples" | "bin"))
    {
        return FileClass::TestOrBench;
    }
    if HOT_FILES.contains(&file) && parts.contains(&"src") {
        return FileClass::Hot;
    }
    FileClass::Normal
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or_default();
            if !SKIP_DIRS.contains(&name) {
                walk(&p, out);
            }
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// Lints every Rust source in the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> LintReport {
    let mut files = Vec::new();
    walk(root, &mut files);
    let mut findings = Vec::new();
    let mut regs: Vec<MetricReg> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = fs::read_to_string(path) else { continue };
        let (mut f, mut m) = lint_source(&rel, classify(&rel), src.as_str());
        findings.append(&mut f);
        regs.append(&mut m);
    }
    // Exactly-once registration: the same metric name at two distinct
    // call sites is a split registration.
    let mut names: Vec<&str> = regs.iter().map(|r| r.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    for name in &names {
        let sites: Vec<&MetricReg> = regs.iter().filter(|r| r.name == *name).collect();
        if sites.len() > 1 {
            for extra in &sites[1..] {
                findings.push(Finding {
                    file: extra.file.clone(),
                    line: extra.line,
                    rule: "metric-name",
                    message: format!(
                        "metric `{name}` registered at {} sites (first at {}:{})",
                        sites.len(),
                        sites[0].file,
                        sites[0].line
                    ),
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    LintReport { findings, files: files.len(), metrics: names.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(src: &str) -> Vec<Finding> {
        lint_source("crates/engine/src/scheduler.rs", FileClass::Hot, src).0
    }

    #[test]
    fn lexer_skips_strings_comments_and_lifetimes() {
        let mut src = String::new();
        src.push_str("// .unwrap() in a comment\n");
        src.push_str("/* nested /* block */ .unwrap() */\n");
        src.push_str("fn f<'a>(_s: &'a str) -> char {\n");
        src.push_str("    let _x = \".unwrap()\";\n");
        src.push_str("    let _r = r#\".expect(\"#;\n");
        src.push_str("    let _b = b\"bytes .unwrap()\";\n");
        src.push_str("    '\\''\n}\n");
        assert!(hot(&src).is_empty(), "{:?}", hot(&src));
    }

    #[test]
    fn unwrap_in_hot_path_flagged_and_test_code_excluded() {
        let src = "
            fn f(x: Option<u8>) -> u8 { x.unwrap() }
            fn g(x: Option<u8>) -> u8 { x.expect(\"boom\") }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1u8).unwrap(); }
            }
        ";
        let f = hot(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "no-unwrap"));
        // The same source in a normal file is fine.
        let (f, _) = lint_source("crates/core/src/ccc.rs", FileClass::Normal, src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let (f, _) = lint_source("x.rs", FileClass::Normal, bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unsafe-needs-safety");
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid per the caller contract.\n    unsafe { *p }\n}";
        let (f, _) = lint_source("x.rs", FileClass::Normal, good);
        assert!(f.is_empty(), "{f:?}");
        // `unsafe fn` declarations are not blocks.
        let decl = "/// Docs.\npub unsafe fn f() {}";
        let (f, _) = lint_source("x.rs", FileClass::Normal, decl);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn metric_names_are_checked() {
        let src = r#"
            fn wire(r: &obs::Registry) {
                r.counter("cfq_good_total", "d");
                r.counter("cfq_bad_count", "d");
                r.gauge("queue_depth", "d");
                r.histogram("cfq_lat_micros", "d");
            }
        "#;
        let (f, m) = lint_source("crates/cli/src/commands.rs", FileClass::Normal, src);
        assert_eq!(m.len(), 4);
        let rules: Vec<&str> = f.iter().map(|x| x.message.as_str()).collect();
        assert_eq!(f.len(), 2, "{rules:?}");
        assert!(f.iter().any(|x| x.message.contains("cfq_bad_count")), "{rules:?}");
        assert!(f.iter().any(|x| x.message.contains("queue_depth")), "{rules:?}");
        // The obs crate registers internals without the prefix rule.
        let (f, m) = lint_source("crates/obs/src/metrics.rs", FileClass::Normal, src);
        assert!(f.is_empty() && m.is_empty());
    }

    #[test]
    fn unbound_span_guard_flagged() {
        let bad = "fn f() { obs::span(\"cfq.q\", &[]); work(); }";
        let (f, _) = lint_source("x.rs", FileClass::Normal, bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "span-guard-bound");
        let good = "fn f() { let _s = obs::span(\"cfq.q\", &[]); work(); }";
        let (f, _) = lint_source("x.rs", FileClass::Normal, good);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missing_docs_on_pub_items() {
        let bad = "pub fn naked() {}";
        let (f, _) = lint_source("x.rs", FileClass::Normal, bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "missing-docs");
        let good = "/// Documented.\n#[inline]\npub fn dressed() {}";
        let (f, _) = lint_source("x.rs", FileClass::Normal, good);
        assert!(f.is_empty(), "{f:?}");
        // Scoped visibility and re-exports are exempt; so are test files.
        let exempt = "pub(crate) fn a() {}\npub use std::fmt;";
        let (f, _) = lint_source("x.rs", FileClass::Normal, exempt);
        assert!(f.is_empty(), "{f:?}");
        let (f, _) = lint_source("x.rs", FileClass::TestOrBench, bad);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn classification_covers_the_workspace_shapes() {
        assert_eq!(classify("crates/engine/src/scheduler.rs"), FileClass::Hot);
        assert_eq!(classify("crates/cli/src/serve.rs"), FileClass::Hot);
        assert_eq!(classify("crates/engine/src/engine.rs"), FileClass::Normal);
        assert_eq!(classify("crates/engine/tests/concurrency.rs"), FileClass::TestOrBench);
        assert_eq!(classify("crates/bench/src/table.rs"), FileClass::TestOrBench);
        assert_eq!(classify("tests/equivalence.rs"), FileClass::TestOrBench);
        assert_eq!(classify("src/lib.rs"), FileClass::Normal);
    }

    #[test]
    fn durability_metrics_come_from_the_catalog() {
        let src = r#"
            fn wire(r: &obs::Registry) {
                r.counter("cfq_wal_records_total", "d");
                r.gauge("cfq_snapshot_last_epoch", "d");
                r.counter("cfq_wal_torn_tails_total", "d");
                r.gauge("cfq_wal_bytes_total", "d");
            }
        "#;
        let (f, m) = lint_source("crates/cli/src/serve.rs", FileClass::Hot, src);
        assert_eq!(m.len(), 4);
        let hits: Vec<&Finding> = f.iter().filter(|x| x.rule == "durability-metric").collect();
        assert_eq!(hits.len(), 2, "{f:?}");
        // Unknown family name: points at the catalog.
        assert!(
            hits.iter().any(|x| x.message.contains("cfq_wal_torn_tails_total")
                && x.message.contains("DURABILITY_METRICS")),
            "{hits:?}"
        );
        // Known name, wrong instrument: a byte counter is not a gauge.
        assert!(
            hits.iter().any(|x| x.message.contains("cfq_wal_bytes_total")
                && x.message.contains("counter")),
            "{hits:?}"
        );
    }

    #[test]
    fn shard_metrics_come_from_the_catalog() {
        let src = r#"
            fn wire(r: &obs::Registry) {
                r.counter("cfq_mining_shard_levels_total", "d");
                r.counter("cfq_mining_shard_merges_total", "d");
                r.counter("cfq_mining_shard_stalls_total", "d");
                r.gauge("cfq_mining_shard_levels_total", "d");
            }
        "#;
        let (f, m) = lint_source("crates/mining/src/backend.rs", FileClass::Normal, src);
        assert_eq!(m.len(), 4);
        let hits: Vec<&Finding> = f.iter().filter(|x| x.rule == "shard-metric").collect();
        assert_eq!(hits.len(), 2, "{f:?}");
        // Unknown family name: points at the catalog.
        assert!(
            hits.iter().any(|x| x.message.contains("cfq_mining_shard_stalls_total")
                && x.message.contains("SHARD_METRICS")),
            "{hits:?}"
        );
        // Known name, wrong instrument: the level counter is not a gauge.
        assert!(
            hits.iter().any(|x| x.message.contains("cfq_mining_shard_levels_total")
                && x.message.contains("counter")),
            "{hits:?}"
        );
    }

    #[test]
    fn loadgen_metrics_come_from_the_catalog() {
        let src = r#"
            fn wire(r: &obs::Registry) {
                r.counter("cfq_loadgen_requests_total", "d");
                r.histogram("cfq_loadgen_latency_seconds", "d", &bounds);
                r.counter("cfq_loadgen_retries_total", "d");
                r.gauge("cfq_loadgen_requests_total", "d");
            }
        "#;
        let (f, m) = lint_source("crates/loadgen/src/driver.rs", FileClass::Normal, src);
        assert_eq!(m.len(), 4);
        let hits: Vec<&Finding> = f.iter().filter(|x| x.rule == "loadgen-metric").collect();
        assert_eq!(hits.len(), 2, "{f:?}");
        // Unknown family name: points at the catalog.
        assert!(
            hits.iter().any(|x| x.message.contains("cfq_loadgen_retries_total")
                && x.message.contains("LOADGEN_METRICS")),
            "{hits:?}"
        );
        // Known name, wrong instrument: the request counter is not a gauge.
        assert!(
            hits.iter().any(|x| x.message.contains("cfq_loadgen_requests_total")
                && x.message.contains("counter")),
            "{hits:?}"
        );
    }

    #[test]
    fn duplicate_metric_registration_is_cross_file() {
        // Exercised through lint_workspace in the fixture integration
        // test; here just confirm a single file yields its sites.
        let src = "fn a(r: &R) { r.counter(\"cfq_x_total\", \"d\"); }";
        let (_, m) = lint_source("a.rs", FileClass::Normal, src);
        assert_eq!(m[0].name, "cfq_x_total");
        assert_eq!(m[0].kind, "counter");
    }
}

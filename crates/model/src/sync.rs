//! Mock synchronization primitives for model states.
//!
//! These are *data*, not OS objects: a [`MockMutex`], [`MockAtomic`] or
//! [`MockCondvar`] lives inside a model's `State` (which must be
//! `Clone + Hash + Eq`), and the checker explores every order in which
//! model threads may step against them. A real mutex blocks a thread; a
//! mock mutex merely *reports* that it is held, and the model's step
//! function translates that into [`Step::Blocked`](crate::Step::Blocked)
//! — the checker then simply never schedules that step until another
//! thread changes the state.
//!
//! The intended idiom inside a [`Model::step`](crate::Model::step)
//! program-counter machine:
//!
//! ```
//! # use cfq_model::{MockMutex, Step};
//! # struct S { m: MockMutex<u32> }
//! # fn demo(shared: &mut S, tid: usize) -> Step {
//! if !shared.m.try_lock(tid) {
//!     return Step::Blocked;
//! }
//! *shared.m.data_mut(tid) += 1;
//! shared.m.unlock(tid);
//! # Step::Ran
//! # }
//! ```
//!
//! A step that returns [`Step::Blocked`](crate::Step::Blocked) must leave
//! the state untouched — the checker debug-checks this by hashing.

/// A mutex modeled as an owner tag plus the protected data.
///
/// Lock acquisition is [`MockMutex::try_lock`]: it either takes ownership
/// and returns `true`, or returns `false` (the model step should then
/// return `Blocked` without mutating anything). Ownership persists across
/// steps until [`MockMutex::unlock`], so a model thread can hold the lock
/// over a multi-step critical section exactly like real code does.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct MockMutex<T> {
    owner: Option<usize>,
    data: T,
}

impl<T> MockMutex<T> {
    /// Wraps `data` in an unlocked mutex.
    pub fn new(data: T) -> Self {
        MockMutex { owner: None, data }
    }

    /// Attempts to take the lock for thread `tid`. Returns `false` when
    /// another thread holds it. Re-locking a mutex the thread already
    /// holds is a model bug and panics (real code would deadlock).
    pub fn try_lock(&mut self, tid: usize) -> bool {
        match self.owner {
            None => {
                self.owner = Some(tid);
                true
            }
            Some(o) if o == tid => panic!("model bug: thread {tid} re-locked a held MockMutex"),
            Some(_) => false,
        }
    }

    /// Releases the lock. Panics when `tid` is not the owner — that is a
    /// model bug, not an explorable behavior.
    pub fn unlock(&mut self, tid: usize) {
        match self.owner {
            Some(o) if o == tid => self.owner = None,
            other => panic!("model bug: thread {tid} unlocked a MockMutex owned by {other:?}"),
        }
    }

    /// Whether thread `tid` currently owns the lock.
    pub fn held_by(&self, tid: usize) -> bool {
        self.owner == Some(tid)
    }

    /// Whether any thread holds the lock.
    pub fn is_locked(&self) -> bool {
        self.owner.is_some()
    }

    /// Immutable access to the protected data *without* checking
    /// ownership — for invariant predicates, which observe the whole
    /// state from outside any thread.
    pub fn peek(&self) -> &T {
        &self.data
    }

    /// Mutable access for the owning thread. Panics when `tid` does not
    /// hold the lock — the data race a real mutex prevents.
    pub fn data_mut(&mut self, tid: usize) -> &mut T {
        assert!(
            self.held_by(tid),
            "model bug: thread {tid} touched MockMutex data without holding the lock"
        );
        &mut self.data
    }

    /// Immutable access for the owning thread, with the same ownership
    /// check as [`MockMutex::data_mut`].
    pub fn data(&self, tid: usize) -> &T {
        assert!(
            self.held_by(tid),
            "model bug: thread {tid} read MockMutex data without holding the lock"
        );
        &self.data
    }
}

/// A cell whose every access is one atomic model step.
///
/// There is nothing to interleave *inside* an access — the checker's
/// granularity is the step — so this is simply a typed cell with the
/// atomic vocabulary (`load`/`store`/`fetch_add`/`compare_exchange`),
/// kept distinct from plain fields to mark which shared locations the
/// modeled code accesses lock-free.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct MockAtomic<T: Copy>(T);

impl<T: Copy> MockAtomic<T> {
    /// Wraps an initial value.
    pub fn new(v: T) -> Self {
        MockAtomic(v)
    }

    /// Atomic read.
    pub fn load(&self) -> T {
        self.0
    }

    /// Atomic write.
    pub fn store(&mut self, v: T) {
        self.0 = v;
    }
}

impl MockAtomic<u64> {
    /// Atomic add, returning the previous value.
    pub fn fetch_add(&mut self, n: u64) -> u64 {
        let prev = self.0;
        self.0 += n;
        prev
    }

    /// Atomic compare-exchange: stores `new` and returns `Ok(current)`
    /// when the value equals `current`, else `Err(actual)`.
    pub fn compare_exchange(&mut self, current: u64, new: u64) -> Result<u64, u64> {
        if self.0 == current {
            self.0 = new;
            Ok(current)
        } else {
            Err(self.0)
        }
    }
}

/// A condition variable modeled as a bitmask of parked threads
/// (supporting up to 64 model threads — far beyond any tractable model).
///
/// The wait protocol mirrors `std::sync::Condvar`: a thread that finds
/// its predicate false calls [`MockCondvar::park`] *while holding the
/// mutex*, releases the mutex in the same step, and on subsequent steps
/// returns `Blocked` while [`MockCondvar::is_parked`]. A notifier clears
/// the mask; woken threads must re-acquire the mutex and re-check their
/// predicate, so spurious-wakeup-safe loops are modeled faithfully.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct MockCondvar {
    parked: u64,
}

impl MockCondvar {
    /// A condvar with no parked threads.
    pub fn new() -> Self {
        MockCondvar::default()
    }

    /// Parks thread `tid` (the caller must also release the mutex it
    /// holds, in the same step).
    pub fn park(&mut self, tid: usize) {
        assert!(tid < 64, "model bug: MockCondvar supports at most 64 threads");
        self.parked |= 1 << tid;
    }

    /// Whether thread `tid` is parked (its steps should return `Blocked`).
    pub fn is_parked(&self, tid: usize) -> bool {
        self.parked & (1 << tid) != 0
    }

    /// Wakes every parked thread.
    pub fn notify_all(&mut self) {
        self.parked = 0;
    }

    /// Wakes the lowest-numbered parked thread, if any.
    pub fn notify_one(&mut self) {
        if self.parked != 0 {
            // Clear the lowest set bit.
            self.parked &= self.parked - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_ownership_protocol() {
        let mut m = MockMutex::new(5u32);
        assert!(!m.is_locked());
        assert!(m.try_lock(0));
        assert!(m.held_by(0));
        assert!(!m.try_lock(1), "second thread must not acquire");
        *m.data_mut(0) = 6;
        assert_eq!(*m.peek(), 6);
        m.unlock(0);
        assert!(m.try_lock(1));
        assert_eq!(*m.data(1), 6);
        m.unlock(1);
    }

    #[test]
    #[should_panic(expected = "without holding the lock")]
    fn unlocked_data_access_panics() {
        let mut m = MockMutex::new(0u32);
        m.data_mut(0);
    }

    #[test]
    #[should_panic(expected = "re-locked")]
    fn relock_panics() {
        let mut m = MockMutex::new(0u32);
        assert!(m.try_lock(3));
        m.try_lock(3);
    }

    #[test]
    fn atomics_and_condvar() {
        let mut a = MockAtomic::new(1u64);
        assert_eq!(a.fetch_add(2), 1);
        assert_eq!(a.load(), 3);
        assert_eq!(a.compare_exchange(3, 9), Ok(3));
        assert_eq!(a.compare_exchange(3, 10), Err(9));

        let mut cv = MockCondvar::new();
        cv.park(2);
        cv.park(5);
        assert!(cv.is_parked(2) && cv.is_parked(5));
        cv.notify_one();
        assert!(!cv.is_parked(2) && cv.is_parked(5));
        cv.notify_all();
        assert!(!cv.is_parked(5));
    }
}

//! Machine-readable JSON reports for model-checking runs.
//!
//! The shape written to `BENCH_model.json` by `cfq model`:
//!
//! ```json
//! {"bench":"model",
//!  "protocols":[{"protocol":"epoch_swap","states":..,"interleavings":..,
//!                "transitions":..,"max_depth":..,"violations":0,
//!                "complete":true}],
//!  "injections":[{"protocol":"epoch_swap","bug":"torn_swap",
//!                 "caught":true,"violations":2,"kind":"invariant",
//!                 "schedule":[0,1,0]}],
//!  "all_clean":true,"all_injections_caught":true}
//! ```
//!
//! Rendering is hand-rolled (the workspace's dependency policy), matching
//! the precedent of the engine's wire codec.

use crate::checker::Outcome;

/// One clean protocol exploration, for the report.
#[derive(Clone, Debug)]
pub struct ProtocolReport {
    /// Stable protocol name (`epoch_swap`, `single_flight`, …).
    pub protocol: String,
    /// The exploration result.
    pub outcome: Outcome,
}

/// One seeded-bug run: the injected mutation and whether it was caught.
#[derive(Clone, Debug)]
pub struct InjectionReport {
    /// The protocol the bug was injected into.
    pub protocol: String,
    /// Stable bug name (`torn_swap`, `double_credit`, …).
    pub bug: String,
    /// The exploration result (caught means at least one violation).
    pub outcome: Outcome,
}

impl InjectionReport {
    /// Whether the checker caught the seeded bug.
    pub fn caught(&self) -> bool {
        !self.outcome.violations.is_empty()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_outcome_fields(out: &mut String, o: &Outcome) {
    out.push_str(&format!(
        "\"states\":{},\"interleavings\":{},\"transitions\":{},\"max_depth\":{},\
         \"terminal_states\":{},\"violations\":{},\"complete\":{}",
        o.stats.states,
        o.stats.interleavings,
        o.stats.transitions,
        o.stats.max_depth_seen,
        o.stats.terminal_states,
        o.violations.len(),
        o.complete,
    ));
}

/// Renders the combined report as one line of JSON.
pub fn render(protocols: &[ProtocolReport], injections: &[InjectionReport]) -> String {
    let mut out = String::from("{\"bench\":\"model\",\"protocols\":[");
    for (i, p) in protocols.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"protocol\":\"{}\",", escape(&p.protocol)));
        push_outcome_fields(&mut out, &p.outcome);
        if let Some(v) = p.outcome.violations.first() {
            out.push_str(&format!(
                ",\"first_violation\":{{\"kind\":\"{}\",\"message\":\"{}\",\"schedule\":{:?}}}",
                v.kind.label(),
                escape(&v.message),
                v.schedule,
            ));
        }
        out.push('}');
    }
    out.push_str("],\"injections\":[");
    for (i, inj) in injections.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"protocol\":\"{}\",\"bug\":\"{}\",\"caught\":{},",
            escape(&inj.protocol),
            escape(&inj.bug),
            inj.caught(),
        ));
        push_outcome_fields(&mut out, &inj.outcome);
        if let Some(v) = inj.outcome.violations.first() {
            out.push_str(&format!(
                ",\"kind\":\"{}\",\"message\":\"{}\",\"schedule\":{:?}",
                v.kind.label(),
                escape(&v.message),
                v.schedule,
            ));
        }
        out.push('}');
    }
    let all_clean = protocols.iter().all(|p| p.outcome.ok());
    let all_caught = injections.iter().all(InjectionReport::caught);
    out.push_str(&format!(
        "],\"all_clean\":{all_clean},\"all_injections_caught\":{all_caught}}}"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckStats, Outcome, Violation, ViolationKind};

    fn outcome(violations: usize) -> Outcome {
        Outcome {
            stats: CheckStats {
                states: 10,
                interleavings: 42,
                transitions: 20,
                max_depth_seen: 6,
                terminal_states: 3,
            },
            violations: (0..violations)
                .map(|i| Violation {
                    kind: ViolationKind::Invariant,
                    message: format!("broken \"{i}\""),
                    schedule: vec![0, 1, 0],
                })
                .collect(),
            complete: true,
        }
    }

    #[test]
    fn renders_clean_and_injected() {
        let p = vec![ProtocolReport { protocol: "epoch_swap".into(), outcome: outcome(0) }];
        let i = vec![InjectionReport {
            protocol: "epoch_swap".into(),
            bug: "torn_swap".into(),
            outcome: outcome(2),
        }];
        let text = render(&p, &i);
        assert!(text.starts_with("{\"bench\":\"model\""), "{text}");
        assert!(text.contains("\"protocol\":\"epoch_swap\""), "{text}");
        assert!(text.contains("\"interleavings\":42"), "{text}");
        assert!(text.contains("\"violations\":0"), "{text}");
        assert!(text.contains("\"bug\":\"torn_swap\",\"caught\":true"), "{text}");
        assert!(text.contains("\"schedule\":[0, 1, 0]"), "{text}");
        assert!(text.contains("\"all_clean\":true"), "{text}");
        assert!(text.contains("\"all_injections_caught\":true"), "{text}");
        // The message's embedded quotes must be escaped.
        assert!(text.contains("broken \\\"0\\\""), "{text}");
    }

    #[test]
    fn uncaught_injection_flips_the_flag() {
        let i = vec![InjectionReport {
            protocol: "cache_evict".into(),
            bug: "noop".into(),
            outcome: outcome(0),
        }];
        let text = render(&[], &i);
        assert!(text.contains("\"caught\":false"), "{text}");
        assert!(text.contains("\"all_injections_caught\":false"), "{text}");
    }
}

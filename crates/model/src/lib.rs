//! `cfq-model`: deterministic-interleaving model checking and
//! source-level lint passes for the cfq workspace.
//!
//! The workspace runs offline with no external dev-dependencies, so the
//! roles loom, miri-on-everything and clippy-with-custom-rules would play
//! are filled in-tree:
//!
//! * [`checker`] — an exhaustive explicit-state explorer over small
//!   protocol models built from the mock primitives in [`sync`]. Every
//!   interleaving of the modeled atomic steps is covered (optionally
//!   under a CHESS-style preemption bound), invariants run at every
//!   state, and violations come with a replayable thread schedule.
//! * [`models`] — the engine's three live concurrency protocols (epoch
//!   swap, single-flight mining, LRU cache eviction) as checkable
//!   models, each with seeded bugs that `--inject` uses to prove the
//!   checker still has teeth.
//! * [`lint`] — a hand-rolled, token-level scan of the workspace's own
//!   sources enforcing the invariants the code review relies on: no
//!   `unwrap` in request paths, `// SAFETY:` on every `unsafe`, metric
//!   naming and single registration, bound span guards, docs on public
//!   items.
//! * [`report`] — the JSON rendering `cfq model` writes to
//!   `BENCH_model.json`.

pub mod checker;
pub mod lint;
pub mod models;
pub mod report;
pub mod sync;

pub use checker::{CheckConfig, CheckStats, Checker, Model, Outcome, Step, Violation, ViolationKind};
pub use sync::{MockAtomic, MockCondvar, MockMutex};

//! `cfq repl` and `cfq serve` — long-lived front ends over one shared
//! session [`Engine`].
//!
//! Both speak the same line protocol (one request per line, handled by
//! [`handle_line`]): a CFQ conjunction runs as a query, `:`-prefixed
//! lines are control commands. Because every connection and every REPL
//! line goes through the same engine, lattices and plans mined for one
//! request serve the next — the second identical query answers without
//! touching the database, and `:append` upgrades the cache in place via
//! FUP instead of discarding it.

use crate::args::Args;
use crate::commands::{load, parse_strategy, wants_help};
use cfq_core::Optimizer;
use cfq_datagen::io;
use cfq_engine::Engine;
use cfq_types::{CfqError, Result};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

const PROTOCOL_HELP: &str = "\
enter a CFQ conjunction to run it, or a control command:
  :explain QUERY     show the plan and predicted cache provenance
  :append FILE       append a transaction file as a new epoch (FUP upgrade)
  :support FRAC      set the minimum support fraction (default 0.01)
  :strategy NAME     set the planning strategy (full|cap1|apriori+)
  :stats             show cache counters and epoch
  :help              this message
  :quit              leave";

/// Per-connection (or per-REPL) mutable state over the shared engine.
pub struct ReplState {
    engine: Arc<Engine>,
    support_frac: f64,
    strategy: Optimizer,
}

impl ReplState {
    /// Fresh state with the CLI defaults (1% support, full optimizer).
    pub fn new(engine: Arc<Engine>) -> ReplState {
        ReplState { engine, support_frac: 0.01, strategy: Optimizer::default() }
    }
}

/// Handles one protocol line. Returns `None` on `:quit`, otherwise the
/// text to print. Errors are rendered into the reply — a bad query must
/// not kill a shared server loop.
pub fn handle_line(state: &mut ReplState, line: &str) -> Option<String> {
    let line = line.trim();
    if line.is_empty() {
        return Some(String::new());
    }
    if line == ":quit" || line == ":q" {
        return None;
    }
    Some(dispatch(state, line).unwrap_or_else(|e| format!("error: {e}")))
}

fn dispatch(state: &mut ReplState, line: &str) -> Result<String> {
    if let Some(rest) = line.strip_prefix(':') {
        let (cmd, arg) = match rest.split_once(char::is_whitespace) {
            Some((c, a)) => (c, a.trim()),
            None => (rest, ""),
        };
        return match cmd {
            "help" => Ok(PROTOCOL_HELP.to_string()),
            "stats" => {
                let s = state.engine.cache_stats();
                Ok(format!(
                    "epoch {} | {} transactions | lattice cache: {} entries, {}/{} KiB, \
                     {} hits / {} misses, {} scans saved, {} evictions | plan cache: {} hits / {} misses",
                    state.engine.epoch(),
                    state.engine.db().len(),
                    s.entries,
                    s.bytes_used / 1024,
                    s.budget_bytes / 1024,
                    s.lattice_hits,
                    s.lattice_misses,
                    s.scans_saved,
                    s.evictions,
                    s.plan_hits,
                    s.plan_misses,
                ))
            }
            "support" => {
                let f: f64 = arg
                    .parse()
                    .map_err(|_| CfqError::Config(format!("bad support fraction `{arg}`")))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(CfqError::Config(format!("support fraction {f} outside [0, 1]")));
                }
                state.support_frac = f;
                Ok(format!("min support fraction set to {f}"))
            }
            "strategy" => {
                state.strategy = parse_strategy(Some(arg))?;
                Ok(format!("strategy set to {arg}"))
            }
            "explain" => {
                if arg.is_empty() {
                    return Err(CfqError::Config(":explain needs a query".into()));
                }
                state
                    .engine
                    .session()
                    .query(arg)
                    .min_support_frac(state.support_frac)
                    .strategy(state.strategy)
                    .explain()
            }
            "append" => {
                if arg.is_empty() {
                    return Err(CfqError::Config(":append needs a transaction file".into()));
                }
                let delta = io::load_transactions(arg)?;
                let rows = delta.len();
                let info = state.engine.append(delta)?;
                Ok(format!(
                    "appended {rows} transactions: now epoch {} with {} transactions; \
                     {} cached lattice(s) FUP-upgraded ({} old-db recounts)",
                    info.epoch, info.transactions, info.upgraded_lattices, info.old_db_recounts,
                ))
            }
            other => Err(CfqError::Config(format!("unknown command `:{other}` (try :help)"))),
        };
    }

    // Anything else is a query.
    let start = std::time::Instant::now();
    let out = state
        .engine
        .session()
        .query(line)
        .min_support_frac(state.support_frac)
        .strategy(state.strategy)
        .run()?;
    let p = &out.outcome.provenance;
    Ok(format!(
        "{} valid pairs ({} S-sets x {} T-sets) | epoch {} | {} db scans | [S] {} [T] {} | {:.3}s",
        out.pair_count(),
        out.outcome.s_sets.len(),
        out.outcome.t_sets.len(),
        out.epoch,
        out.outcome.db_scans,
        p.s_lattice.describe(),
        p.t_lattice.describe(),
        start.elapsed().as_secs_f64(),
    ))
}

/// Drives the line protocol over arbitrary reader/writer pairs — the REPL
/// over stdin/stdout, a TCP connection, or a test's in-memory buffers.
pub fn repl_loop<R: BufRead, W: Write>(
    state: &mut ReplState,
    reader: R,
    mut writer: W,
    prompt: bool,
) -> Result<()> {
    if prompt {
        write!(writer, "cfq> ")?;
        writer.flush()?;
    }
    for line in reader.lines() {
        let line = line?;
        match handle_line(state, &line) {
            None => break,
            Some(reply) => {
                if !reply.is_empty() {
                    writeln!(writer, "{reply}")?;
                }
            }
        }
        if prompt {
            write!(writer, "cfq> ")?;
        }
        writer.flush()?;
    }
    Ok(())
}

fn build_engine(a: &Args) -> Result<Arc<Engine>> {
    let (db, catalog) = load(a)?;
    let engine = Engine::new(db, catalog)?;
    println!(
        "engine up: {} transactions over {} items, epoch 0",
        engine.db().len(),
        engine.db().n_items()
    );
    Ok(engine)
}

/// `cfq repl` — interactive session over stdin/stdout.
pub fn repl(argv: Vec<String>) -> Result<()> {
    if wants_help(&argv) {
        println!("cfq repl --data FILE [--catalog FILE]\n\n{PROTOCOL_HELP}");
        return Ok(());
    }
    let a = Args::parse(argv, &[])?;
    let engine = build_engine(&a)?;
    let mut state = ReplState::new(engine);
    let stdin = std::io::stdin();
    repl_loop(&mut state, stdin.lock(), std::io::stdout(), true)
}

/// Accepts up to `max_conns` connections (`None` = forever), each served
/// by its own thread and [`ReplState`] over the shared engine.
pub fn serve_connections(
    listener: TcpListener,
    engine: Arc<Engine>,
    max_conns: Option<usize>,
) -> Result<()> {
    let mut handles = Vec::new();
    for (accepted, stream) in listener.incoming().enumerate() {
        let stream: TcpStream = stream?;
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut state = ReplState::new(engine);
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            let _ = repl_loop(&mut state, reader, stream, false);
        }));
        if let Some(cap) = max_conns {
            if accepted + 1 >= cap {
                break;
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

/// `cfq serve` — the line protocol over TCP; all connections share one
/// engine, so one client's mining warms every client's cache.
pub fn serve(argv: Vec<String>) -> Result<()> {
    if wants_help(&argv) {
        println!(
            "cfq serve --data FILE [--catalog FILE] [--listen ADDR (default 127.0.0.1:7878)]\n\n\
             protocol: one request per line\n{PROTOCOL_HELP}"
        );
        return Ok(());
    }
    let a = Args::parse(argv, &[])?;
    let engine = build_engine(&a)?;
    let addr = a.get("listen").unwrap_or("127.0.0.1:7878");
    let listener = TcpListener::bind(addr)?;
    println!("listening on {}", listener.local_addr()?);
    serve_connections(listener, engine, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfq_types::{CatalogBuilder, TransactionDb};
    use std::io::{Cursor, Read};

    fn engine() -> Arc<Engine> {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        let db = TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[1, 2, 3, 4],
                &[0, 2, 4],
                &[0, 1, 3, 5],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4],
                &[1, 3, 5],
            ],
        );
        Engine::new(db, b.build()).unwrap()
    }

    const Q: &str = "max(S.Price) <= 30 & min(T.Price) >= 40";

    #[test]
    fn repl_loop_runs_queries_and_commands() {
        let mut state = ReplState::new(engine());
        let input = format!(":support 0.25\n{Q}\n{Q}\n:stats\n:quit\nnever reached\n");
        let mut out = Vec::new();
        repl_loop(&mut state, Cursor::new(input), &mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("min support fraction set to 0.25"), "{text}");
        assert!(text.contains("valid pairs"), "{text}");
        // The second identical query is served from the cache.
        assert!(text.contains("cache hit (reused mined lattice)"), "{text}");
        assert!(text.contains("| 0 db scans |"), "{text}");
        assert!(text.contains("lattice cache: 2 entries"), "{text}");
        assert!(!text.contains("never reached"), "{text}");
    }

    #[test]
    fn bad_lines_reply_with_errors_not_death() {
        let mut state = ReplState::new(engine());
        for (line, needle) in [
            ("max(S.Price <= 30", "error:"),
            (":support nope", "bad support fraction"),
            (":wat", "unknown command"),
            (":explain", ":explain needs a query"),
        ] {
            let reply = handle_line(&mut state, line).unwrap();
            assert!(reply.contains(needle), "{line} -> {reply}");
        }
        assert!(handle_line(&mut state, ":quit").is_none());
    }

    #[test]
    fn append_command_bumps_epoch_and_keeps_cache_warm() {
        let mut state = ReplState::new(engine());
        assert!(handle_line(&mut state, ":support 0.25").is_some());
        handle_line(&mut state, Q).unwrap();

        let path = std::env::temp_dir().join("cfq_serve_append_test.txt");
        let delta = TransactionDb::from_u32(6, &[&[0, 1, 2], &[3, 4, 5]]);
        io::save_transactions(&delta, &path).unwrap();
        let reply = handle_line(&mut state, &format!(":append {}", path.display())).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(reply.contains("now epoch 1"), "{reply}");
        assert!(reply.contains("FUP-upgraded"), "{reply}");

        let warm = handle_line(&mut state, Q).unwrap();
        assert!(warm.contains("epoch 1"), "{warm}");
        assert!(warm.contains("| 0 db scans |"), "{warm}");
        assert!(warm.contains("FUP-upgraded at epoch swap"), "{warm}");
    }

    #[test]
    fn serve_answers_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let eng = engine();
        let server = std::thread::spawn(move || serve_connections(listener, eng, Some(1)));

        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, ":support 0.25\n{Q}\n:quit\n").unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut text = String::new();
        BufReader::new(conn).read_to_string(&mut text).unwrap();
        assert!(text.contains("valid pairs"), "{text}");

        server.join().unwrap().unwrap();
    }
}

//! `cfq repl` and `cfq serve` — long-lived front ends over one shared
//! session [`Engine`].
//!
//! Both speak the same line protocol (one request per line, handled by
//! [`handle_line`]): a CFQ conjunction runs as a query, `:`-prefixed
//! lines are control commands. Because every connection and every REPL
//! line goes through the same engine, lattices and plans mined for one
//! request serve the next — the second identical query answers without
//! touching the database, and `:append` upgrades the cache in place via
//! FUP instead of discarding it.
//!
//! The server side is built for unattended operation:
//!
//! * **bounded worker model** — at most `--max-clients` concurrent
//!   connections, each on its own reaped thread; arrivals beyond the cap
//!   get a polite `busy:` reply instead of a hang, and finished handles
//!   are collected continuously so memory stays O(active connections);
//! * **accept resilience** — transient `accept()` errors (EMFILE,
//!   aborted handshakes) are logged and retried with a capped backoff
//!   instead of killing the listener;
//! * **read timeouts** — a client idle past `--read-timeout` is told so
//!   and disconnected, freeing its worker;
//! * **graceful shutdown** — SIGINT (or the shutdown flag in
//!   [`ServeOptions`]) stops accepting, unblocks idle readers, and
//!   drains in-flight requests before the listener returns;
//! * **observability** — every request runs under `serve.conn` /
//!   `serve.request` tracing spans, a [`ServerMetrics`] registry is
//!   exported in Prometheus text format through the `:metrics` command
//!   and the `--metrics-addr` HTTP scrape listener, and queries slower
//!   than `--slow-ms` land in the `:slowlog` ring with plan fingerprint,
//!   provenance, and level-by-level timings.

use crate::args::Args;
use crate::args::MiningArgs;
use crate::commands::{load, parse_strategy, wants_help};
use cfq_core::Optimizer;
use cfq_datagen::io;
use cfq_engine::wal::WalTailer;
use cfq_engine::{
    json, wire, Engine, EngineConfig, QueryRequest, QueryResponse, SessionPool,
};
use cfq_obs::{self as obs, Counter, Gauge, Histogram, Registry, SlowLevel, SlowLog, SlowQuery};
use cfq_types::{CfqError, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const PROTOCOL_HELP: &str = "\
the machine protocol is the v1 JSON envelope: one JSON object per line,
one JSON reply per line. A CFQ conjunction typed bare still runs as a
query, and `:`-prefixed operator commands remain for humans.
v1 envelope:
  {\"v\":1,\"cmd\":\"query\",\"req\":{...}}   run a QueryRequest
  {\"v\":1,\"cmd\":\"metrics\"}             Prometheus text dump
  {\"v\":1,\"cmd\":\"slowlog\"}             recent slow queries
  {\"v\":1,\"cmd\":\"status\"}              engine + durability status object
  {\"v\":1,\"cmd\":\"snapshot\"}            write a snapshot now, rotate the WAL
  replies are {\"v\":1,\"result\":...} or
  {\"v\":1,\"error\":{\"kind\":\"...\",\"message\":\"...\"}}; unknown versions
  are rejected with kind \"unsupported_version\".
operator commands:
  :explain QUERY     show the plan and predicted cache provenance
  :append FILE       append a transaction file as a new epoch (FUP upgrade;
                     WAL-logged and fsynced before the ack under --wal-dir)
  :support FRAC      set the minimum support fraction in (0, 1] (default 0.01)
  :strategy NAME     set the planning strategy (full|cap1|apriori+)
  :stats             show cache counters and epoch
  :wal-status        one-line durability status (mode, WAL/snapshot counters)
  :snapshot          write a snapshot now and rotate the WAL
  :help              this message
  :quit              leave
legacy commands (answered only under `cfq serve --legacy-protocol`, and
in `cfq repl`; otherwise rejected with kind \"unsupported_command\"):
  :json REQUEST      run a JSON QueryRequest (use the envelope `query` cmd)
  :metrics           dump the metrics registry (use the envelope `metrics` cmd)
  :slowlog           show recent slow queries (use the envelope `slowlog` cmd)
replies: a saturated engine answers `overloaded: ...` (plain queries) or
a JSON error object with \"overloaded\":true (envelope and :json); back
off and retry.";

/// How often the non-blocking accept loop polls for shutdown/reaping.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// First backoff after an accept error; doubles up to [`ACCEPT_BACKOFF_MAX`].
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Ceiling for the accept-error backoff.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(1000);

/// Set by the SIGINT handler; checked by every accept/scrape loop.
static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint_handler() {
    extern "C" fn on_sigint(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        SIGINT_SEEN.store(true, Ordering::SeqCst);
    }
    // `signal` comes from the libc Rust already links; declaring it
    // directly keeps the crate dependency-free (same spirit as the
    // vendored rand/proptest stubs).
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    // SAFETY: `signal(2)` with these arguments is the documented libc
    // call: SIGINT is a valid signal number and the handler is an
    // `extern "C" fn(i32)` that only performs an async-signal-safe
    // atomic store. The cast to `usize` matches the declaration above.
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

/// Backoff after `consecutive` failed `accept()` calls in a row: 10ms
/// doubling to a 1s ceiling. Never gives up — only a failed `bind` is
/// fatal to the server; EMFILE and friends heal when load drops.
fn accept_backoff(consecutive: u32) -> Duration {
    let ms = ACCEPT_BACKOFF_MIN
        .as_millis()
        .saturating_mul(1u128 << consecutive.min(10))
        .min(ACCEPT_BACKOFF_MAX.as_millis());
    Duration::from_millis(ms as u64)
}

/// The server's metric families over one [`Registry`], plus handles for
/// the hot counters. Engine-owned counters (cache hits, epoch) are
/// synced from [`Engine::cache_stats`] at render time so a scrape is
/// always exact.
pub struct ServerMetrics {
    registry: Registry,
    /// Queries answered successfully.
    pub queries_total: Arc<Counter>,
    /// Queries that failed (parse error, bad config, execution error).
    pub query_errors_total: Arc<Counter>,
    /// End-to-end query latency in seconds.
    pub query_seconds: Arc<Histogram>,
    /// Queries recorded by the slow-query log.
    pub slow_queries_total: Arc<Counter>,
    /// Database scans performed by queries.
    pub db_scans_total: Arc<Counter>,
    /// `:append` epochs installed.
    pub appends_total: Arc<Counter>,
    /// Connections accepted (including ones rejected at the cap).
    pub connections_total: Arc<Counter>,
    /// Connections currently being served.
    pub connections_open: Arc<Gauge>,
    /// Connections turned away with a `busy:` reply at the cap.
    pub connections_rejected_total: Arc<Counter>,
    /// Connections closed for idling past the read timeout.
    pub read_timeouts_total: Arc<Counter>,
    /// Connections that ended without `:quit` (client vanished).
    pub disconnects_total: Arc<Counter>,
    /// Transient `accept()` failures survived.
    pub accept_errors_total: Arc<Counter>,
    /// Request bytes read from clients.
    pub bytes_in_total: Arc<Counter>,
    /// Reply bytes written to clients.
    pub bytes_out_total: Arc<Counter>,
    /// Time queries spent waiting at the scheduler's admission gate.
    pub scheduler_wait_seconds: Arc<Histogram>,
    // Synced from the engine at render time:
    mining_passes: Arc<Counter>,
    sched_coalesced: Arc<Counter>,
    sched_batched: Arc<Counter>,
    sched_overloaded: Arc<Counter>,
    sched_queue_depth: Arc<Gauge>,
    sched_inflight: Arc<Gauge>,
    lattice_hits: Arc<Counter>,
    lattice_misses: Arc<Counter>,
    scans_saved: Arc<Counter>,
    plan_hits: Arc<Counter>,
    plan_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_oversize: Arc<Counter>,
    cache_stale_drops: Arc<Counter>,
    cache_entries: Arc<Gauge>,
    cache_bytes: Arc<Gauge>,
    cache_budget_bytes: Arc<Gauge>,
    epoch: Arc<Gauge>,
    transactions: Arc<Gauge>,
    wal_records: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    wal_fsyncs: Arc<Counter>,
    wal_replayed: Arc<Counter>,
    snapshot_writes: Arc<Counter>,
    snapshot_bytes: Arc<Counter>,
    snapshot_last_epoch: Arc<Gauge>,
}

impl ServerMetrics {
    /// Creates the family set over a fresh registry. Each server (and
    /// each test) gets its own so parallel instances do not bleed into
    /// each other's scrapes.
    pub fn new() -> Arc<ServerMetrics> {
        let r = Registry::new();
        Arc::new(ServerMetrics {
            queries_total: r.counter("cfq_queries_total", "Queries answered successfully."),
            query_errors_total: r.counter(
                "cfq_query_errors_total",
                "Queries that failed to parse, plan, or execute.",
            ),
            query_seconds: r.histogram(
                "cfq_query_seconds",
                "End-to-end query latency in seconds.",
                &obs::latency_buckets(),
            ),
            slow_queries_total: r
                .counter("cfq_slow_queries_total", "Queries recorded by the slow-query log."),
            db_scans_total: r
                .counter("cfq_db_scans_total", "Database scans performed by queries."),
            appends_total: r.counter("cfq_appends_total", ":append epochs installed."),
            connections_total: r.counter("cfq_connections_total", "Connections accepted."),
            connections_open: r
                .gauge("cfq_connections_open", "Connections currently being served."),
            connections_rejected_total: r.counter(
                "cfq_connections_rejected_total",
                "Connections turned away at the --max-clients cap.",
            ),
            read_timeouts_total: r.counter(
                "cfq_read_timeouts_total",
                "Connections closed for idling past --read-timeout.",
            ),
            disconnects_total: r.counter(
                "cfq_disconnects_total",
                "Connections that ended without :quit.",
            ),
            accept_errors_total: r
                .counter("cfq_accept_errors_total", "Transient accept() failures survived."),
            bytes_in_total: r.counter("cfq_bytes_in_total", "Request bytes read from clients."),
            bytes_out_total: r.counter("cfq_bytes_out_total", "Reply bytes written to clients."),
            scheduler_wait_seconds: r.histogram(
                "cfq_scheduler_wait_seconds",
                "Time queries spent waiting at the scheduler's admission gate.",
                &obs::wait_buckets(),
            ),
            mining_passes: r.counter(
                "cfq_mining_passes_total",
                "Lattice mining passes the engine actually executed.",
            ),
            sched_coalesced: r.counter(
                "cfq_scheduler_coalesced_total",
                "Queries that joined another query's in-flight mining.",
            ),
            sched_batched: r.counter(
                "cfq_scheduler_batched_total",
                "Joiners whose support differed from the group's (true batches).",
            ),
            sched_overloaded: r.counter(
                "cfq_scheduler_overloaded_total",
                "Queries rejected at admission with `overloaded`.",
            ),
            sched_queue_depth: r.gauge(
                "cfq_scheduler_queue_depth",
                "Queries waiting for an execution slot right now.",
            ),
            sched_inflight: r.gauge(
                "cfq_scheduler_inflight",
                "Queries executing right now.",
            ),
            lattice_hits: r
                .counter("cfq_lattice_hits_total", "Queries whose lattice came from the cache."),
            lattice_misses: r
                .counter("cfq_lattice_misses_total", "Queries that had to mine a lattice."),
            scans_saved: r
                .counter("cfq_scans_saved_total", "Database scans avoided by lattice cache hits."),
            plan_hits: r.counter("cfq_plan_hits_total", "Plans served from the plan cache."),
            plan_misses: r.counter("cfq_plan_misses_total", "Plans built fresh."),
            cache_evictions: r
                .counter("cfq_cache_evictions_total", "Lattice entries evicted under the byte budget."),
            cache_oversize: r.counter(
                "cfq_cache_oversize_rejections_total",
                "Lattices larger than the whole budget, rejected at insert.",
            ),
            cache_stale_drops: r.counter(
                "cfq_cache_stale_drops_total",
                "Fresh minings dropped because an append moved the epoch mid-query.",
            ),
            cache_entries: r.gauge("cfq_cache_entries", "Live lattice cache entries."),
            cache_bytes: r.gauge("cfq_cache_bytes", "Bytes held by lattice cache entries."),
            cache_budget_bytes: r
                .gauge("cfq_cache_budget_bytes", "Configured lattice cache byte budget."),
            epoch: r.gauge("cfq_epoch", "Current engine epoch."),
            transactions: r.gauge("cfq_transactions", "Transactions in the current epoch."),
            wal_records: r
                .counter("cfq_wal_records_total", "WAL records written by this process."),
            wal_bytes: r
                .counter("cfq_wal_bytes_total", "WAL payload bytes written by this process."),
            wal_fsyncs: r.counter("cfq_wal_fsyncs_total", "WAL fsyncs issued by this process."),
            wal_replayed: r.counter(
                "cfq_wal_replayed_records_total",
                "WAL records replayed (boot recovery plus replica tailing).",
            ),
            snapshot_writes: r
                .counter("cfq_snapshot_writes_total", "Snapshots written by this process."),
            snapshot_bytes: r
                .counter("cfq_snapshot_bytes_total", "Snapshot bytes written by this process."),
            snapshot_last_epoch: r.gauge(
                "cfq_snapshot_last_epoch",
                "Epoch of the newest snapshot written or recovered from.",
            ),
            registry: r,
        })
    }

    /// The per-strategy query counter (`cfq_queries_by_strategy_total`).
    pub fn strategy_counter(&self, strategy: &str) -> Arc<Counter> {
        self.registry.counter_with(
            "cfq_queries_by_strategy_total",
            "Queries answered successfully, by planning strategy.",
            &[("strategy", strategy)],
        )
    }

    /// Syncs the engine-owned counters and renders every family in
    /// Prometheus text format, followed by the process-global registry
    /// (mining backend counters like `cfq_mining_backend_selected_total`
    /// live there — they are recorded deep inside the counting loops,
    /// not per-server).
    pub fn render(&self, engine: &Engine) -> String {
        let s = engine.cache_stats();
        self.lattice_hits.store(s.lattice_hits);
        self.lattice_misses.store(s.lattice_misses);
        self.scans_saved.store(s.scans_saved);
        self.plan_hits.store(s.plan_hits);
        self.plan_misses.store(s.plan_misses);
        self.cache_evictions.store(s.evictions);
        self.cache_oversize.store(s.oversize_rejections);
        self.cache_stale_drops.store(s.stale_drops);
        self.cache_entries.set(s.entries as i64);
        self.cache_bytes.set(s.bytes_used as i64);
        self.cache_budget_bytes.set(s.budget_bytes as i64);
        self.epoch.set(engine.epoch() as i64);
        self.transactions.set(engine.db().len() as i64);
        let sched = engine.scheduler_stats();
        self.mining_passes.store(sched.mining_passes);
        self.sched_coalesced.store(sched.coalesced);
        self.sched_batched.store(sched.batched);
        self.sched_overloaded.store(sched.overloaded);
        self.sched_queue_depth.set(sched.queued as i64);
        self.sched_inflight.set(sched.inflight as i64);
        let d = engine.durability_stats();
        self.wal_records.store(d.wal_records);
        self.wal_bytes.store(d.wal_bytes);
        self.wal_fsyncs.store(d.wal_fsyncs);
        self.wal_replayed.store(d.replayed_records);
        self.snapshot_writes.store(d.snapshot_writes);
        self.snapshot_bytes.store(d.snapshot_bytes);
        self.snapshot_last_epoch.set(d.last_snapshot_epoch as i64);
        let mut out = self.registry.render();
        out.push_str(&obs::metrics::global().render());
        out
    }
}

/// Per-connection (or per-REPL) mutable state over the shared engine.
/// Queries run through a [`SessionPool`] — server-wide when constructed
/// with [`ReplState::with_pool`] — so scheduler fairness is
/// per-*request*, not per-connection.
pub struct ReplState {
    engine: Arc<Engine>,
    pool: Arc<SessionPool>,
    support_frac: f64,
    strategy: Optimizer,
    strategy_name: String,
    metrics: Arc<ServerMetrics>,
    slow: Arc<SlowLog>,
    /// Whether the deprecated `:json`/`:metrics`/`:slowlog` line commands
    /// are answered. Off for served connections unless the server was
    /// started with `--legacy-protocol`; the interactive REPL keeps them.
    legacy_protocol: bool,
}

impl ReplState {
    /// Fresh state with the CLI defaults (1% support, full optimizer)
    /// and its own metrics registry / slow log — what the interactive
    /// REPL uses. Legacy line commands stay available here: deprecation
    /// targets wire clients, not a human at a prompt.
    pub fn new(engine: Arc<Engine>) -> ReplState {
        ReplState::with_observability(
            engine,
            ServerMetrics::new(),
            Arc::new(SlowLog::new(Duration::from_millis(500), 64)),
        )
        .with_legacy_protocol(true)
    }

    /// Sets whether the deprecated `:json`/`:metrics`/`:slowlog` line
    /// commands are answered (versus a typed `unsupported_command`
    /// rejection pointing at the v1 envelope).
    pub fn with_legacy_protocol(mut self, on: bool) -> ReplState {
        self.legacy_protocol = on;
        self
    }

    /// State sharing a server-wide metrics registry and slow log, with
    /// its own single-session pool (one REPL = one client).
    pub fn with_observability(
        engine: Arc<Engine>,
        metrics: Arc<ServerMetrics>,
        slow: Arc<SlowLog>,
    ) -> ReplState {
        let pool = Arc::new(SessionPool::new(&engine, 1));
        ReplState::with_pool(pool, metrics, slow)
    }

    /// State over a shared server-wide [`SessionPool`] — what
    /// [`serve_connections`] hands every connection so all requests
    /// contend at one scheduler gate.
    pub fn with_pool(
        pool: Arc<SessionPool>,
        metrics: Arc<ServerMetrics>,
        slow: Arc<SlowLog>,
    ) -> ReplState {
        ReplState {
            engine: Arc::clone(pool.engine()),
            pool,
            support_frac: 0.01,
            strategy: Optimizer::default(),
            strategy_name: "full".to_string(),
            metrics,
            slow,
            legacy_protocol: false,
        }
    }
}

/// Whether a line is addressed to the v1 JSON envelope rather than the
/// CFQ parser. A JSON object continues `{` with a quoted key (or closes
/// immediately); a CFQ set literal (`{Snacks} subseteq S.Type`)
/// continues with a bare ident or number, so the two never collide.
fn looks_like_envelope(line: &str) -> bool {
    let mut chars = line.trim_start().chars();
    chars.next() == Some('{')
        && matches!(chars.find(|c| !c.is_whitespace()), Some('"') | Some('}'))
}

/// Handles one protocol line. Returns `None` on `:quit`, otherwise the
/// text to print. Errors are rendered into the reply — a bad query must
/// not kill a shared server loop. JSON-object lines go to the v1
/// envelope and *always* reply with one JSON object, never prose.
pub fn handle_line(state: &mut ReplState, line: &str) -> Option<String> {
    let line = line.trim();
    if line.is_empty() {
        return Some(String::new());
    }
    if line == ":quit" || line == ":q" {
        return None;
    }
    if looks_like_envelope(line) {
        return Some(run_envelope(state, line));
    }
    Some(dispatch(state, line).unwrap_or_else(|e| match e {
        // Overload is back-pressure, not a malfunction: the Display form
        // already starts with `overloaded:`, which clients key off.
        CfqError::Overloaded(_) => e.to_string(),
        _ => format!("error: {e}"),
    }))
}

/// The typed rejection a gated legacy command gets: one JSON object with
/// `"kind":"unsupported_command"` pointing the client at the envelope
/// form (and at `--legacy-protocol` for the transition period). JSON
/// even for the text commands, so wire clients never parse prose.
fn legacy_gated(cmd: &str, envelope_cmd: &str) -> String {
    let mut out = String::from("{\"error\":");
    json::write_escaped(
        &mut out,
        &format!(
            ":{cmd} is a legacy command; send {{\"v\":1,\"cmd\":\"{envelope_cmd}\"{}}} \
             instead, or start the server with --legacy-protocol",
            if envelope_cmd == "query" { ",\"req\":{...}" } else { "" },
        ),
    );
    out.push_str(",\"kind\":\"unsupported_command\"}");
    out
}

fn dispatch(state: &mut ReplState, line: &str) -> Result<String> {
    if let Some(rest) = line.strip_prefix(':') {
        let (cmd, arg) = match rest.split_once(char::is_whitespace) {
            Some((c, a)) => (c, a.trim()),
            None => (rest, ""),
        };
        // The deprecated pre-envelope commands are answered only when
        // legacy mode is on; everything else (`:stats`, `:append`, ...)
        // is operator surface, not a machine protocol, and stays.
        if !state.legacy_protocol {
            if let Some(envelope_cmd) = match cmd {
                "json" => Some("query"),
                "metrics" => Some("metrics"),
                "slowlog" => Some("slowlog"),
                _ => None,
            } {
                return Ok(legacy_gated(cmd, envelope_cmd));
            }
        }
        return match cmd {
            "help" => Ok(PROTOCOL_HELP.to_string()),
            "json" => Ok(run_json(state, arg)),
            "stats" => {
                let s = state.engine.cache_stats();
                Ok(format!(
                    "epoch {} | {} transactions | lattice cache: {} entries, {}/{} KiB, \
                     {} hits / {} misses, {} scans saved, {} evictions | plan cache: {} hits / {} misses",
                    state.engine.epoch(),
                    state.engine.db().len(),
                    s.entries,
                    s.bytes_used / 1024,
                    s.budget_bytes / 1024,
                    s.lattice_hits,
                    s.lattice_misses,
                    s.scans_saved,
                    s.evictions,
                    s.plan_hits,
                    s.plan_misses,
                ))
            }
            "metrics" => Ok(state.metrics.render(&state.engine)),
            "slowlog" => Ok(state.slow.render()),
            "wal-status" => {
                let d = state.engine.durability_stats();
                if !d.enabled {
                    return Ok("durability off (ephemeral engine; start with --wal-dir)".into());
                }
                Ok(format!(
                    "{} | epoch {} | wal: {} records, {} bytes, {} fsyncs, {} replayed | \
                     snapshots: {} written ({} bytes), last at epoch {}",
                    if d.follow { "replica (--follow)" } else { "primary" },
                    state.engine.epoch(),
                    d.wal_records,
                    d.wal_bytes,
                    d.wal_fsyncs,
                    d.replayed_records,
                    d.snapshot_writes,
                    d.snapshot_bytes,
                    d.last_snapshot_epoch,
                ))
            }
            "snapshot" => {
                let info = state.engine.snapshot_now()?;
                Ok(format!(
                    "snapshot written: epoch {} ({} bytes) at {}",
                    info.epoch,
                    info.bytes,
                    info.path.display(),
                ))
            }
            "support" => {
                let f: f64 = arg
                    .parse()
                    .map_err(|_| CfqError::Config(format!("bad support fraction `{arg}`")))?;
                // Mirror `Session::min_support_frac`: zero is rejected,
                // not silently treated as "support 1 transaction".
                if !(f > 0.0 && f <= 1.0) {
                    return Err(CfqError::Config(format!(
                        "support fraction {f} is outside (0, 1]"
                    )));
                }
                state.support_frac = f;
                Ok(format!("min support fraction set to {f}"))
            }
            "strategy" => {
                state.strategy = parse_strategy(Some(arg))?;
                state.strategy_name = arg.to_string();
                Ok(format!("strategy set to {arg}"))
            }
            "explain" => {
                if arg.is_empty() {
                    return Err(CfqError::Config(":explain needs a query".into()));
                }
                state
                    .pool
                    .session()
                    .query(arg)
                    .min_support_frac(state.support_frac)
                    .strategy(state.strategy)
                    .explain()
            }
            "append" => {
                if arg.is_empty() {
                    return Err(CfqError::Config(":append needs a transaction file".into()));
                }
                let delta = io::load_transactions(arg)?;
                let rows = delta.len();
                let info = state.engine.append(delta)?;
                state.metrics.appends_total.inc();
                Ok(format!(
                    "appended {rows} transactions: now epoch {} with {} transactions; \
                     {} cached lattice(s) FUP-upgraded ({} old-db recounts)",
                    info.epoch, info.transactions, info.upgraded_lattices, info.old_db_recounts,
                ))
            }
            other => Err(CfqError::Config(format!("unknown command `:{other}` (try :help)"))),
        };
    }

    // Anything else is a query.
    run_query(state, line)
}

/// Runs one query line, recording latency, outcome metrics, and (when
/// slow enough) a slow-query log entry.
fn run_query(state: &mut ReplState, line: &str) -> Result<String> {
    let start = Instant::now();
    let result = state
        .pool
        .session()
        .query(line)
        .min_support_frac(state.support_frac)
        .strategy(state.strategy)
        .run();
    let elapsed = start.elapsed();
    let out = match result {
        Ok(out) => out,
        Err(e) => {
            state.metrics.query_errors_total.inc();
            return Err(e);
        }
    };

    state.metrics.queries_total.inc();
    state.metrics.strategy_counter(&state.strategy_name).inc();
    state.metrics.query_seconds.observe(elapsed.as_secs_f64());
    state.metrics.scheduler_wait_seconds.observe(out.admission_wait.as_secs_f64());
    state.metrics.db_scans_total.add(out.outcome.db_scans);

    let p = &out.outcome.provenance;
    let slow = SlowQuery {
        query: line.to_string(),
        fingerprint: out.plan_fingerprint(),
        provenance: format!("[S] {} [T] {}", p.s_lattice.describe(), p.t_lattice.describe()),
        total: elapsed,
        db_scans: out.outcome.db_scans,
        levels: out
            .outcome
            .s_stats
            .levels
            .iter()
            .chain(out.outcome.t_stats.levels.iter())
            .map(|l| SlowLevel {
                level: l.level,
                candidates: l.candidates,
                frequent: l.frequent,
                micros: l.micros,
            })
            .collect(),
    };
    if state.slow.maybe_record(slow) {
        state.metrics.slow_queries_total.inc();
        obs::event(
            obs::Level::Warn,
            "serve.slow_query",
            &[
                ("seconds", obs::FieldValue::F64(elapsed.as_secs_f64())),
                ("query", obs::FieldValue::Str(line.to_string())),
            ],
        );
    }

    Ok(format!(
        "{} valid pairs ({} S-sets x {} T-sets) | epoch {} | {} db scans | [S] {} [T] {} | {:.3}s",
        out.pair_count(),
        out.outcome.s_sets.len(),
        out.outcome.t_sets.len(),
        out.epoch,
        out.outcome.db_scans,
        p.s_lattice.describe(),
        p.t_lattice.describe(),
        elapsed.as_secs_f64(),
    ))
}

/// Renders an error as the one-line JSON object `:json` clients expect.
/// Every error carries a machine-dispatchable `"kind"` field; overload
/// rejections additionally carry `"overloaded":true` so a machine client
/// can back off without string-matching the message. (The v1 envelope
/// wraps the same kinds in `{"v":1,"error":{...}}` — see
/// [`cfq_engine::wire`].)
fn json_error(e: &CfqError) -> String {
    let mut out = String::from("{\"error\":");
    json::write_escaped(&mut out, &e.to_string());
    out.push_str(",\"kind\":");
    json::write_escaped(&mut out, wire::error_kind(e));
    if matches!(e, CfqError::Overloaded(_)) {
        out.push_str(",\"overloaded\":true");
    }
    out.push('}');
    out
}

/// Executes one [`QueryRequest`], recording latency, outcome metrics
/// and (when slow enough) a slow-query log entry — the shared engine
/// room behind both the legacy `:json` command and the v1 envelope.
/// Returns the [`QueryResponse`] as one JSON line.
fn run_request(state: &mut ReplState, req: &QueryRequest) -> Result<String> {
    let start = Instant::now();
    let result = state.pool.session().execute(req);
    let elapsed = start.elapsed();
    let out = match result {
        Ok(out) => out,
        Err(e) => {
            state.metrics.query_errors_total.inc();
            return Err(e);
        }
    };

    state.metrics.queries_total.inc();
    state.metrics.strategy_counter(req.strategy.name().unwrap_or("custom")).inc();
    state.metrics.query_seconds.observe(elapsed.as_secs_f64());
    state.metrics.scheduler_wait_seconds.observe(out.admission_wait.as_secs_f64());
    state.metrics.db_scans_total.add(out.outcome.db_scans);

    let p = &out.outcome.provenance;
    let slow = SlowQuery {
        query: req.query.clone(),
        fingerprint: out.plan_fingerprint(),
        provenance: format!("[S] {} [T] {}", p.s_lattice.describe(), p.t_lattice.describe()),
        total: elapsed,
        db_scans: out.outcome.db_scans,
        levels: out
            .outcome
            .s_stats
            .levels
            .iter()
            .chain(out.outcome.t_stats.levels.iter())
            .map(|l| SlowLevel {
                level: l.level,
                candidates: l.candidates,
                frequent: l.frequent,
                micros: l.micros,
            })
            .collect(),
    };
    if state.slow.maybe_record(slow) {
        state.metrics.slow_queries_total.inc();
    }

    Ok(QueryResponse::from_outcome(&out).to_json())
}

/// Runs one `:json REQUEST` line (the deprecated pre-envelope form).
/// Always replies with exactly one JSON line — a [`QueryResponse`] on
/// success, an error object otherwise — so wire clients never parse
/// prose.
fn run_json(state: &mut ReplState, arg: &str) -> String {
    if arg.is_empty() {
        return json_error(&CfqError::Config(":json needs a request object (try :help)".into()));
    }
    let req = match QueryRequest::from_json(arg) {
        Ok(req) => req,
        Err(e) => {
            state.metrics.query_errors_total.inc();
            return json_error(&e);
        }
    };
    run_request(state, &req).unwrap_or_else(|e| json_error(&e))
}

/// The `status` command's result object: serving mode plus the epoch,
/// cache, and durability counters a control plane watches.
fn status_json(state: &ReplState) -> String {
    use std::fmt::Write as _;
    let d = state.engine.durability_stats();
    let mode = if !d.enabled {
        "ephemeral"
    } else if d.follow {
        "replica"
    } else {
        "primary"
    };
    let c = state.engine.cache_stats();
    let mut out = String::from("{\"mode\":\"");
    out.push_str(mode);
    let _ = write!(
        out,
        "\",\"epoch\":{},\"transactions\":{},\"cache_entries\":{},\"cache_bytes\":{},\
         \"wal_records\":{},\"wal_bytes\":{},\"replayed_records\":{},\
         \"snapshot_writes\":{},\"last_snapshot_epoch\":{}}}",
        state.engine.epoch(),
        state.engine.db().len(),
        c.entries,
        c.bytes_used,
        d.wal_records,
        d.wal_bytes,
        d.replayed_records,
        d.snapshot_writes,
        d.last_snapshot_epoch,
    );
    out
}

/// Handles one v1 envelope line. Always replies with exactly one JSON
/// envelope — `{"v":1,"result":...}` or a typed error object.
fn run_envelope(state: &mut ReplState, line: &str) -> String {
    let cmd = match wire::parse_envelope(line) {
        Ok(cmd) => cmd,
        Err(e) => {
            state.metrics.query_errors_total.inc();
            return e.render();
        }
    };
    match cmd {
        wire::WireCmd::Query(req) => match run_request(state, &req) {
            Ok(resp) => wire::result_object(&resp),
            Err(e) => wire::error_from(&e),
        },
        wire::WireCmd::Metrics => wire::text_result(&state.metrics.render(&state.engine)),
        wire::WireCmd::Slowlog => wire::text_result(&state.slow.render()),
        wire::WireCmd::Status => wire::result_object(&status_json(state)),
        wire::WireCmd::Snapshot => match state.engine.snapshot_now() {
            Ok(info) => {
                let mut body = format!("{{\"epoch\":{},\"bytes\":{},\"path\":", info.epoch, info.bytes);
                json::write_escaped(&mut body, &info.path.display().to_string());
                body.push('}');
                wire::result_object(&body)
            }
            Err(e) => wire::error_from(&e),
        },
    }
}

/// Drives the line protocol over arbitrary reader/writer pairs — the REPL
/// over stdin/stdout, or a test's in-memory buffers. (TCP connections go
/// through the timeout-aware worker loop in [`serve_connections`].)
pub fn repl_loop<R: BufRead, W: Write>(
    state: &mut ReplState,
    reader: R,
    mut writer: W,
    prompt: bool,
) -> Result<()> {
    if prompt {
        write!(writer, "cfq> ")?;
        writer.flush()?;
    }
    for line in reader.lines() {
        let line = line?;
        match handle_line(state, &line) {
            None => break,
            Some(reply) => {
                if !reply.is_empty() {
                    writeln!(writer, "{reply}")?;
                }
            }
        }
        if prompt {
            write!(writer, "cfq> ")?;
        }
        writer.flush()?;
    }
    Ok(())
}

fn build_engine(a: &Args) -> Result<Arc<Engine>> {
    let (db, catalog) = load(a)?;
    let defaults = EngineConfig::default();
    let mining = MiningArgs::from_args(a, defaults.counting_threads)?;
    let mut builder = mining.apply_to(
        EngineConfig::builder()
            .max_inflight_queries(a.num("max-inflight", defaults.max_inflight_queries)?)
            .max_queued_queries(a.num("queue-depth", defaults.max_queued_queries)?)
            .batch_window_ms(a.num("batch-window-ms", defaults.batch_window.as_millis() as u64)?),
    );
    match (a.get("wal-dir"), a.get("follow")) {
        (Some(_), Some(_)) => {
            return Err(CfqError::Config(
                "--wal-dir and --follow are mutually exclusive: a primary owns its WAL \
                 directory, a replica only tails one"
                    .into(),
            ));
        }
        (Some(dir), None) => {
            builder = builder
                .wal_dir(dir)
                .snapshot_every(a.num("snapshot-every", defaults.snapshot_every)?);
        }
        (None, Some(dir)) => {
            builder = builder.wal_dir(dir).follow(true);
        }
        (None, None) => {}
    }
    let engine = Engine::with_config(db, catalog, builder.build())?;
    let d = engine.durability_stats();
    let mode = if !d.enabled {
        "ephemeral"
    } else if d.follow {
        "replica"
    } else {
        "durable"
    };
    println!(
        "engine up ({mode}): {} transactions over {} items, epoch {}",
        engine.db().len(),
        engine.db().n_items(),
        engine.epoch(),
    );
    if d.replayed_records > 0 || d.last_snapshot_epoch > 0 {
        println!(
            "recovered from snapshot epoch {} + {} WAL records",
            d.last_snapshot_epoch, d.replayed_records
        );
    }
    Ok(engine)
}

/// Tails the primary's WAL directory on a `--follow` replica: polls for
/// new fsynced records and replays them, keeping the replica's epoch
/// (and FUP-maintained caches) converged with the writer. Runs until
/// shutdown; transient read errors back off and retry, since the
/// primary may be mid-rotation.
fn follow_wal(engine: Arc<Engine>, dir: PathBuf, shutdown: Arc<AtomicBool>) {
    let mut tailer = WalTailer::new(&dir, engine.epoch() + 1);
    loop {
        if shutdown.load(Ordering::SeqCst) || SIGINT_SEEN.load(Ordering::SeqCst) {
            return;
        }
        match tailer.poll() {
            Ok(records) => {
                let caught_up = records.is_empty();
                for rec in records {
                    if let Err(e) = engine.replay_append(rec.delta) {
                        eprintln!("replica replay failed at epoch {}: {e}", rec.epoch);
                        return;
                    }
                }
                if caught_up {
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
            Err(e) => {
                eprintln!("replica WAL poll error (will retry): {e}");
                std::thread::sleep(Duration::from_millis(500));
            }
        }
    }
}

/// Installs the tracing subscriber requested by `--trace LEVEL` (or the
/// `CFQ_TRACE` environment variable): a line-oriented formatter on
/// stderr.
fn install_tracing(a: &Args) -> Result<()> {
    let requested = a
        .get("trace")
        .map(str::to_string)
        .or_else(|| std::env::var("CFQ_TRACE").ok());
    let Some(name) = requested else { return Ok(()) };
    match obs::Level::parse(&name) {
        Some(Some(level)) => {
            obs::set_subscriber(Some(Arc::new(obs::FmtSubscriber::stderr(level))), Some(level));
            Ok(())
        }
        Some(None) => {
            obs::set_subscriber(None, None);
            Ok(())
        }
        None => Err(CfqError::Config(format!(
            "bad --trace level `{name}` (use error|warn|info|debug|trace|off)"
        ))),
    }
}

/// `cfq repl` — interactive session over stdin/stdout.
pub fn repl(argv: Vec<String>) -> Result<()> {
    if wants_help(&argv) {
        println!(
            "cfq repl --data FILE [--catalog FILE] [--trace LEVEL]\n\n{PROTOCOL_HELP}"
        );
        return Ok(());
    }
    let a = Args::parse(argv, &[])?;
    install_tracing(&a)?;
    let engine = build_engine(&a)?;
    let mut state = ReplState::new(engine);
    let stdin = std::io::stdin();
    repl_loop(&mut state, stdin.lock(), std::io::stdout(), true)
}

/// Knobs of [`serve_connections`]; [`ServeOptions::default`] matches the
/// `cfq serve` CLI defaults.
pub struct ServeOptions {
    /// Stop after accepting this many connections (`None` = forever);
    /// used by tests and by drain-after-N workloads.
    pub max_conns: Option<usize>,
    /// Concurrent connection cap; arrivals beyond it get a `busy:` reply.
    pub max_clients: usize,
    /// Idle read (and write-stall) timeout per connection; `None` = no
    /// timeout.
    pub read_timeout: Option<Duration>,
    /// Cooperative shutdown flag — set it (or send SIGINT) to stop
    /// accepting and drain in-flight requests.
    pub shutdown: Arc<AtomicBool>,
    /// The server's metrics registry.
    pub metrics: Arc<ServerMetrics>,
    /// The server's slow-query log.
    pub slow: Arc<SlowLog>,
    /// Answer the deprecated `:json`/`:metrics`/`:slowlog` line commands
    /// (`--legacy-protocol`). Off by default: the v1 envelope is the
    /// wire protocol.
    pub legacy_protocol: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_conns: None,
            max_clients: 64,
            read_timeout: Some(Duration::from_secs(300)),
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics: ServerMetrics::new(),
            slow: Arc::new(SlowLog::new(Duration::from_millis(500), 64)),
            legacy_protocol: false,
        }
    }
}

impl ServeOptions {
    fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGINT_SEEN.load(Ordering::SeqCst)
    }
}

/// Why a connection's worker loop ended.
enum ConnEnd {
    /// The client said `:quit`.
    Quit,
    /// The client went away (EOF or I/O error) without `:quit`.
    Gone,
    /// The client idled past the read timeout.
    IdleTimeout,
}

/// Serves one accepted connection until it quits, vanishes, or idles out.
fn serve_client(state: &mut ReplState, stream: TcpStream, conn_id: u64) -> ConnEnd {
    let metrics = Arc::clone(&state.metrics);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return ConnEnd::Gone,
    });
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return ConnEnd::Gone,
            Ok(n) => {
                metrics.bytes_in_total.add(n as u64);
                let _req = obs::span(obs::Level::Info, "serve.request").u64("conn", conn_id);
                match handle_line(state, &line) {
                    None => return ConnEnd::Quit,
                    Some(reply) => {
                        if !reply.is_empty() {
                            if writeln!(writer, "{reply}").is_err() {
                                return ConnEnd::Gone;
                            }
                            metrics.bytes_out_total.add(reply.len() as u64 + 1);
                        }
                        if writer.flush().is_err() {
                            return ConnEnd::Gone;
                        }
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                let _ = writeln!(writer, "idle timeout: closing connection");
                return ConnEnd::IdleTimeout;
            }
            Err(_) => return ConnEnd::Gone,
        }
    }
}

/// Accepts connections until shutdown (or `max_conns`), each served by
/// its own thread and [`ReplState`] over the shared engine. Worker
/// handles are reaped continuously; on shutdown, idle readers are
/// unblocked and in-flight requests drained before returning.
pub fn serve_connections(
    listener: TcpListener,
    engine: Arc<Engine>,
    opts: ServeOptions,
) -> Result<()> {
    listener.set_nonblocking(true)?;
    // One engine-wide session pool: every request from every connection
    // contends at the same scheduler gate, so admission order, batching
    // and overload are per-request, not per-connection.
    let pool = Arc::new(SessionPool::new(&engine, opts.max_clients));
    // Streams of live connections, so shutdown can unblock their readers.
    let live: Arc<Mutex<std::collections::HashMap<u64, TcpStream>>> =
        Arc::new(Mutex::new(std::collections::HashMap::new()));
    let next_conn_id = AtomicU64::new(1);
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut accepted = 0usize;
    let mut accept_failures = 0u32;

    loop {
        if opts.shutdown_requested() {
            break;
        }
        // Reap finished workers so `handles` stays O(active connections)
        // even on a server that accepts forever.
        let mut i = 0;
        while i < handles.len() {
            if handles[i].is_finished() {
                let _ = handles.swap_remove(i).join();
            } else {
                i += 1;
            }
        }

        match listener.accept() {
            Ok((stream, peer)) => {
                accept_failures = 0;
                accepted += 1;
                opts.metrics.connections_total.inc();
                obs::event(
                    obs::Level::Info,
                    "serve.accept",
                    &[("peer", obs::FieldValue::Str(peer.to_string()))],
                );
                if handles.len() >= opts.max_clients {
                    opts.metrics.connections_rejected_total.inc();
                    let mut s = stream;
                    let _ = s.set_write_timeout(Some(Duration::from_secs(1)));
                    let _ = writeln!(
                        s,
                        "busy: connection limit {} reached, try again later",
                        opts.max_clients
                    );
                    // Dropping `s` closes the connection politely.
                } else {
                    // Accepted sockets must block again (some platforms
                    // inherit the listener's non-blocking flag) and honor
                    // the idle timeout both ways so a stalled client
                    // cannot pin a worker on read *or* write. Nagle is
                    // off: replies are single short lines, and letting
                    // them sit out a delayed ACK puts a ~40ms floor
                    // under every request-reply round trip.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(opts.read_timeout);
                    let _ = stream.set_write_timeout(opts.read_timeout);
                    let conn_id = next_conn_id.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        live.lock().unwrap_or_else(|e| e.into_inner()).insert(conn_id, clone);
                    }
                    opts.metrics.connections_open.add(1);
                    let pool = Arc::clone(&pool);
                    let metrics = Arc::clone(&opts.metrics);
                    let slow = Arc::clone(&opts.slow);
                    let live = Arc::clone(&live);
                    let legacy = opts.legacy_protocol;
                    handles.push(std::thread::spawn(move || {
                        let _conn = obs::span(obs::Level::Info, "serve.conn").u64("id", conn_id);
                        let mut state = ReplState::with_pool(pool, Arc::clone(&metrics), slow)
                            .with_legacy_protocol(legacy);
                        let end = serve_client(&mut state, stream, conn_id);
                        live.lock().unwrap_or_else(|e| e.into_inner()).remove(&conn_id);
                        metrics.connections_open.add(-1);
                        match end {
                            ConnEnd::Quit => {}
                            ConnEnd::Gone => metrics.disconnects_total.inc(),
                            ConnEnd::IdleTimeout => metrics.read_timeouts_total.inc(),
                        }
                    }));
                }
                if let Some(cap) = opts.max_conns {
                    if accepted >= cap {
                        break;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                // Transient failure (EMFILE under load, aborted
                // handshake): log, back off, keep listening. Bind-level
                // errors already failed before this loop.
                opts.metrics.accept_errors_total.inc();
                let backoff = accept_backoff(accept_failures);
                accept_failures = accept_failures.saturating_add(1);
                obs::event(
                    obs::Level::Warn,
                    "serve.accept_error",
                    &[
                        ("error", obs::FieldValue::Str(e.to_string())),
                        ("backoff_ms", obs::FieldValue::U64(backoff.as_millis() as u64)),
                    ],
                );
                eprintln!("accept error (retrying in {}ms): {e}", backoff.as_millis());
                std::thread::sleep(backoff);
            }
        }
    }

    // Graceful drain: stop idle readers (their current request, if any,
    // still completes and its reply still flushes — only the read side
    // closes), then wait for every worker.
    if opts.shutdown_requested() {
        for (_, s) in live.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let _ = s.shutdown(Shutdown::Read);
        }
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

/// Serves `GET /metrics`-style scrapes over plain HTTP on `listener`:
/// any request gets a `200 text/plain` with the current registry
/// rendering. Runs until shutdown.
fn metrics_listener(
    listener: TcpListener,
    engine: Arc<Engine>,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = listener.set_nonblocking(true);
    loop {
        if shutdown.load(Ordering::SeqCst) || SIGINT_SEEN.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut s, _)) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = s.set_write_timeout(Some(Duration::from_secs(2)));
                // Read (and discard) the request head; the reply is the
                // same for every path.
                let mut buf = [0u8; 1024];
                let _ = s.read(&mut buf);
                let body = metrics.render(&engine);
                let _ = write!(
                    s,
                    "HTTP/1.1 200 OK\r\n\
                     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                     Content-Length: {}\r\n\
                     Connection: close\r\n\r\n{body}",
                    body.len(),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// `cfq serve` — the line protocol over TCP; all connections share one
/// engine, so one client's mining warms every client's cache.
pub fn serve(argv: Vec<String>) -> Result<()> {
    if wants_help(&argv) {
        println!(
            "cfq serve --data FILE [--catalog FILE] [--listen ADDR (default 127.0.0.1:7878)]\n\
             [--metrics-addr ADDR]   export Prometheus metrics over HTTP\n\
             [--max-clients N]       concurrent connection cap (default 64)\n\
             [--max-inflight N]      concurrently executing queries (default 256, 0 = unlimited)\n\
             [--queue-depth N]       admission queue beyond the in-flight cap (default 1024, 0 = unlimited)\n\
             [--batch-window-ms MS]  cold-mining batch window (default 2, 0 = single-flight only)\n\
             [--read-timeout SECS]   idle client timeout (default 300, 0 = none)\n\
             [--legacy-protocol]     answer the deprecated :json/:metrics/:slowlog line commands\n\
             [--threads N]           default support-counting threads (0 = all cores; default 1)\n\
             [--trim on|off]         default per-level database reduction (default on)\n\
             [--backend NAME]        default counting backend (horizontal|tidset|bitmap|auto)\n\
             [--shards N]            default horizontal shard count for counting (default 1)\n\
             [--wal-dir DIR]         durable mode: WAL + snapshots in DIR, warm restart on boot\n\
             [--snapshot-every N]    snapshot cadence in appends (default 8, 0 = manual :snapshot only)\n\
             [--follow DIR]          read replica: tail the primary's WAL DIR (read-only)\n\
             [--slow-ms MS]          slow-query log threshold (default 500)\n\
             [--trace LEVEL]         stderr tracing (error|warn|info|debug|trace)\n\n\
             protocol: one request per line\n{PROTOCOL_HELP}\n\n\
             SIGINT drains in-flight requests before exiting."
        );
        return Ok(());
    }
    let a = Args::parse(argv, &["legacy-protocol"])?;
    install_tracing(&a)?;
    let engine = build_engine(&a)?;
    let addr = a.get("listen").unwrap_or("127.0.0.1:7878");
    let listener = TcpListener::bind(addr)?;
    println!("listening on {}", listener.local_addr()?);
    let legacy_protocol = a.flag("legacy-protocol");
    if legacy_protocol {
        println!("protocol: v1 envelope + legacy line commands (--legacy-protocol)");
    } else {
        println!("protocol: v1 envelope (legacy :json/:metrics/:slowlog disabled)");
    }

    let read_timeout_secs: f64 = a.num("read-timeout", 300.0f64)?;
    if read_timeout_secs < 0.0 {
        return Err(CfqError::Config("--read-timeout must be >= 0".into()));
    }
    let opts = ServeOptions {
        max_clients: a.num("max-clients", 64usize)?.max(1),
        read_timeout: (read_timeout_secs > 0.0)
            .then(|| Duration::from_secs_f64(read_timeout_secs)),
        slow: Arc::new(SlowLog::new(
            Duration::from_millis(a.num("slow-ms", 500u64)?),
            64,
        )),
        legacy_protocol,
        ..ServeOptions::default()
    };

    install_sigint_handler();

    let mut metrics_thread = None;
    if let Some(maddr) = a.get("metrics-addr") {
        let mlistener = TcpListener::bind(maddr)?;
        println!("metrics on http://{}", mlistener.local_addr()?);
        let engine = Arc::clone(&engine);
        let metrics = Arc::clone(&opts.metrics);
        let shutdown = Arc::clone(&opts.shutdown);
        metrics_thread = Some(std::thread::spawn(move || {
            metrics_listener(mlistener, engine, metrics, shutdown)
        }));
    }

    let mut follow_thread = None;
    if engine.config().follow {
        if let Some(dir) = engine.config().wal_dir.clone() {
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&opts.shutdown);
            follow_thread = Some(std::thread::spawn(move || follow_wal(engine, dir, shutdown)));
        }
    }

    let result = serve_connections(listener, engine, opts);
    if let Some(h) = follow_thread {
        let _ = h.join();
    }
    if let Some(h) = metrics_thread {
        let _ = h.join();
    }
    println!("shut down cleanly");
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfq_types::{CatalogBuilder, TransactionDb};
    use std::io::Cursor;

    fn engine() -> Arc<Engine> {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        let db = TransactionDb::from_u32(
            6,
            &[
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[1, 2, 3, 4],
                &[0, 2, 4],
                &[0, 1, 3, 5],
                &[2, 3, 4, 5],
                &[0, 1, 2, 3, 4],
                &[1, 3, 5],
            ],
        );
        Engine::new(db, b.build()).unwrap()
    }

    const Q: &str = "max(S.Price) <= 30 & min(T.Price) >= 40";

    #[test]
    fn repl_loop_runs_queries_and_commands() {
        let mut state = ReplState::new(engine());
        let input = format!(":support 0.25\n{Q}\n{Q}\n:stats\n:quit\nnever reached\n");
        let mut out = Vec::new();
        repl_loop(&mut state, Cursor::new(input), &mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("min support fraction set to 0.25"), "{text}");
        assert!(text.contains("valid pairs"), "{text}");
        // The second identical query is served from the cache.
        assert!(text.contains("cache hit (reused mined lattice)"), "{text}");
        assert!(text.contains("| 0 db scans |"), "{text}");
        assert!(text.contains("lattice cache: 2 entries"), "{text}");
        assert!(!text.contains("never reached"), "{text}");
    }

    #[test]
    fn bad_lines_reply_with_errors_not_death() {
        let mut state = ReplState::new(engine());
        for (line, needle) in [
            ("max(S.Price <= 30", "error:"),
            (":support nope", "bad support fraction"),
            (":wat", "unknown command"),
            (":explain", ":explain needs a query"),
        ] {
            let reply = handle_line(&mut state, line).unwrap();
            assert!(reply.contains(needle), "{line} -> {reply}");
        }
        assert!(handle_line(&mut state, ":quit").is_none());
    }

    #[test]
    fn zero_support_is_rejected_with_a_clear_error() {
        // Regression: `:support 0` used to pass the `[0, 1]` range check
        // and silently mean "support 1 transaction".
        let mut state = ReplState::new(engine());
        let reply = handle_line(&mut state, ":support 0").unwrap();
        assert_eq!(
            reply,
            "error: configuration error: support fraction 0 is outside (0, 1]"
        );
        let reply = handle_line(&mut state, ":support -0.5").unwrap();
        assert!(reply.contains("outside (0, 1]"), "{reply}");
        // The stored fraction is untouched and valid values still work.
        let reply = handle_line(&mut state, ":support 0.25").unwrap();
        assert!(reply.contains("set to 0.25"), "{reply}");
    }

    #[test]
    fn append_command_bumps_epoch_and_keeps_cache_warm() {
        let mut state = ReplState::new(engine());
        assert!(handle_line(&mut state, ":support 0.25").is_some());
        handle_line(&mut state, Q).unwrap();

        let path = std::env::temp_dir().join("cfq_serve_append_test.txt");
        let delta = TransactionDb::from_u32(6, &[&[0, 1, 2], &[3, 4, 5]]);
        io::save_transactions(&delta, &path).unwrap();
        let reply = handle_line(&mut state, &format!(":append {}", path.display())).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(reply.contains("now epoch 1"), "{reply}");
        assert!(reply.contains("FUP-upgraded"), "{reply}");

        let warm = handle_line(&mut state, Q).unwrap();
        assert!(warm.contains("epoch 1"), "{warm}");
        assert!(warm.contains("| 0 db scans |"), "{warm}");
        assert!(warm.contains("FUP-upgraded at epoch swap"), "{warm}");
    }

    #[test]
    fn metrics_command_renders_prometheus_text() {
        let mut state = ReplState::new(engine());
        handle_line(&mut state, ":support 0.25").unwrap();
        handle_line(&mut state, Q).unwrap();
        handle_line(&mut state, Q).unwrap();
        handle_line(&mut state, "max(S.Price <= oops").unwrap();
        let text = handle_line(&mut state, ":metrics").unwrap();
        for needle in [
            "# TYPE cfq_queries_total counter",
            "cfq_queries_total 2",
            "cfq_query_errors_total 1",
            "cfq_queries_by_strategy_total{strategy=\"full\"} 2",
            "cfq_query_seconds_count 2",
            "cfq_query_seconds_p50",
            "cfq_query_seconds_p95",
            "cfq_query_seconds_p99",
            "cfq_epoch 0",
            "cfq_transactions 8",
            "cfq_cache_entries 2",
            // One cold query mined both sides; the warm re-run mined
            // nothing and nobody waited at the admission gate.
            "cfq_mining_passes_total 2",
            "cfq_scheduler_coalesced_total 0",
            "cfq_scheduler_batched_total 0",
            "cfq_scheduler_overloaded_total 0",
            "cfq_scheduler_queue_depth 0",
            "cfq_scheduler_inflight 0",
            "cfq_scheduler_wait_seconds_count 2",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // The warm re-run hit both lattice caches.
        let hits: u64 = text
            .lines()
            .find(|l| l.starts_with("cfq_lattice_hits_total"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(hits >= 2, "{text}");
    }

    #[test]
    fn backend_metrics_surface_in_scrapes() {
        let mut state = ReplState::new(engine());
        let line = format!(
            ":json {{\"query\": \"{Q}\", \"support\": {{\"frac\": 0.25}}, \
             \"backend\": \"bitmap\", \"bypass_cache\": true}}"
        );
        let reply = handle_line(&mut state, &line).unwrap();
        let v = json::parse(&reply).unwrap();
        assert!(v.get("error").is_none(), "{reply}");
        let text = handle_line(&mut state, ":metrics").unwrap();
        for needle in [
            "cfq_mining_backend_selected_total{backend=\"bitmap\"}",
            "cfq_mining_backend_level_micros_total{backend=\"bitmap\"}",
            "cfq_mining_backend_words_anded_total",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn shard_metrics_surface_in_scrapes() {
        let mut state = ReplState::new(engine());
        let line = format!(
            ":json {{\"query\": \"{Q}\", \"support\": {{\"frac\": 0.25}}, \
             \"shards\": 2, \"bypass_cache\": true}}"
        );
        let reply = handle_line(&mut state, &line).unwrap();
        let v = json::parse(&reply).unwrap();
        assert!(v.get("error").is_none(), "{reply}");
        let text = handle_line(&mut state, ":metrics").unwrap();
        for needle in [
            "cfq_mining_shard_levels_total{shards=\"2\"}",
            "cfq_mining_shard_merges_total",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn json_command_speaks_queryresponse_both_ways() {
        let mut state = ReplState::new(engine());
        let line = format!(
            ":json {{\"query\": \"{Q}\", \"support\": {{\"frac\": 0.25}}}}"
        );

        // Cold: one JSON line out, parseable, with real work recorded.
        let reply = handle_line(&mut state, &line).unwrap();
        let v = json::parse(&reply).unwrap();
        assert!(v.get("error").is_none(), "{reply}");
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(0));
        assert!(v.get("pair_count").unwrap().as_u64().unwrap() > 0, "{reply}");
        assert!(v.get("db_scans").unwrap().as_u64().unwrap() > 0, "{reply}");
        assert_eq!(
            v.get("s_lattice").unwrap().as_str().unwrap(),
            "freshly mined (cold)"
        );

        // Warm: same answer, zero scans, cache provenance.
        let warm = handle_line(&mut state, &line).unwrap();
        let w = json::parse(&warm).unwrap();
        assert_eq!(w.get("db_scans").unwrap().as_u64(), Some(0));
        assert_eq!(
            w.get("pair_count").unwrap().as_u64(),
            v.get("pair_count").unwrap().as_u64()
        );
        assert_eq!(
            w.get("s_lattice").unwrap().as_str().unwrap(),
            "cache hit (reused mined lattice)"
        );

        // The wire response of a builder-equivalent query matches.
        let built = state
            .pool
            .session()
            .query(Q)
            .min_support_frac(0.25)
            .run()
            .unwrap();
        assert_eq!(QueryResponse::from_outcome(&built).to_json(), warm);
        assert_eq!(state.metrics.queries_total.get(), 2);
    }

    #[test]
    fn json_command_errors_are_json_objects() {
        let mut state = ReplState::new(engine());
        for (line, needle) in [
            (":json", ":json needs a request object"),
            (":json {nope}", "parse error"),
            (":json {\"quary\": \"q\"}", "unknown request field"),
            (":json {\"query\": \"max(S.Price <= 30\"}", "error"),
            (":json {\"query\": \"count(S) >= 1\", \"support\": 0.0}", "outside (0, 1]"),
        ] {
            let reply = handle_line(&mut state, line).unwrap();
            let v = json::parse(&reply)
                .unwrap_or_else(|e| panic!("non-JSON reply to `{line}`: {reply} ({e})"));
            let msg = v.get("error").and_then(json::Json::as_str).unwrap().to_string();
            assert!(msg.contains(needle), "`{line}` -> {reply}");
        }
        assert_eq!(state.metrics.queries_total.get(), 0);
        assert!(state.metrics.query_errors_total.get() >= 4);
    }

    #[test]
    fn overload_replies_are_machine_readable() {
        let e = CfqError::Overloaded("3 queries in flight and 2 queued".into());
        // The JSON form carries a flag clients can branch on...
        let obj = json_error(&e);
        assert!(obj.contains("\"overloaded\":true"), "{obj}");
        let v = json::parse(&obj).unwrap();
        assert!(v.get("error").unwrap().as_str().unwrap().starts_with("overloaded:"));
        // ...while ordinary errors carry none.
        assert!(!json_error(&CfqError::Parse("x".into())).contains("overloaded"));
    }

    #[test]
    fn slowlog_with_zero_threshold_records_everything() {
        let mut state = ReplState::with_observability(
            engine(),
            ServerMetrics::new(),
            Arc::new(SlowLog::new(Duration::ZERO, 8)),
        )
        .with_legacy_protocol(true);
        handle_line(&mut state, ":support 0.25").unwrap();
        handle_line(&mut state, Q).unwrap();
        let text = handle_line(&mut state, ":slowlog").unwrap();
        assert!(text.contains(Q), "{text}");
        assert!(text.contains("plan="), "{text}");
        assert!(text.contains("L1:"), "{text}");
        assert!(text.contains("[S] freshly mined (cold)"), "{text}");
        assert_eq!(state.metrics.slow_queries_total.get(), 1);
        // A 500ms-threshold log would not have recorded this tiny query.
        let quiet = ReplState::new(engine());
        assert!(quiet.slow.render().contains("slow-query log empty"));
    }

    #[test]
    fn serve_answers_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let eng = engine();
        let opts = ServeOptions { max_conns: Some(1), ..ServeOptions::default() };
        let server = std::thread::spawn(move || serve_connections(listener, eng, opts));

        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, ":support 0.25\n{Q}\n:quit\n").unwrap();
        conn.shutdown(Shutdown::Write).unwrap();
        let mut text = String::new();
        BufReader::new(conn).read_to_string(&mut text).unwrap();
        assert!(text.contains("valid pairs"), "{text}");

        server.join().unwrap().unwrap();
    }

    /// Sends one query on the healthy connection and asserts it answers.
    fn pump(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>) {
        writeln!(conn, "{Q}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("valid pairs"), "healthy client broken: {reply}");
    }

    /// Polls `cond` (pumping the healthy connection so it never idles out)
    /// until it holds or a deadline passes.
    fn pump_until(
        conn: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        what: &str,
        cond: impl Fn() -> bool,
    ) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            pump(conn, reader);
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// The four failure modes of ISSUE 4, all against one server, while a
    /// healthy connection keeps getting answers: a client that sends a
    /// malformed query, one that idles past the read timeout, one that
    /// arrives at the connection cap, and one that disconnects mid-line.
    #[test]
    fn concurrent_misbehaving_clients_do_not_starve_a_healthy_one() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let metrics = ServerMetrics::new();
        let opts = ServeOptions {
            max_conns: Some(5),
            max_clients: 2,
            read_timeout: Some(Duration::from_millis(400)),
            metrics: Arc::clone(&metrics),
            ..ServeOptions::default()
        };
        let eng = engine();
        let server = std::thread::spawn(move || serve_connections(listener, eng, opts));

        // Healthy client: holds its connection through all the chaos.
        let mut healthy = TcpStream::connect(addr).unwrap();
        let mut healthy_rd = BufReader::new(healthy.try_clone().unwrap());
        writeln!(healthy, ":support 0.25").unwrap();
        let mut reply = String::new();
        healthy_rd.read_line(&mut reply).unwrap();
        assert!(reply.contains("set to 0.25"), "{reply}");
        pump(&mut healthy, &mut healthy_rd);

        // Malformed query: gets an error reply, not a dropped server.
        {
            let mut bad = TcpStream::connect(addr).unwrap();
            let mut bad_rd = BufReader::new(bad.try_clone().unwrap());
            writeln!(bad, "max(S.Price <= oops").unwrap();
            let mut reply = String::new();
            bad_rd.read_line(&mut reply).unwrap();
            assert!(reply.contains("error:"), "{reply}");
            writeln!(bad, ":quit").unwrap();
        }
        pump_until(&mut healthy, &mut healthy_rd, "malformed client to drain", || {
            metrics.connections_open.get() == 1
        });
        // Give the accept loop a beat to reap the finished worker so the
        // cap below counts live connections only.
        std::thread::sleep(Duration::from_millis(100));

        // Idle client: connects, says nothing.
        let idler = TcpStream::connect(addr).unwrap();
        pump_until(&mut healthy, &mut healthy_rd, "idler to be accepted", || {
            metrics.connections_open.get() == 2
        });

        // At the cap (healthy + idler): the next arrival is told "busy".
        {
            let capped = TcpStream::connect(addr).unwrap();
            let mut reply = String::new();
            BufReader::new(capped).read_line(&mut reply).unwrap();
            assert!(reply.contains("busy: connection limit 2"), "{reply}");
        }

        // The idler times out and is told why; the healthy client keeps
        // getting answers the whole time.
        pump_until(&mut healthy, &mut healthy_rd, "idler to time out", || {
            metrics.read_timeouts_total.get() == 1
        });
        let mut idle_reply = String::new();
        let mut idler_rd = BufReader::new(idler);
        idler_rd.read_to_string(&mut idle_reply).unwrap();
        assert!(idle_reply.contains("idle timeout"), "{idle_reply}");

        // Mid-line disconnect: half a query, no newline, gone.
        {
            let mut gone = TcpStream::connect(addr).unwrap();
            write!(gone, "max(S.Pr").unwrap();
            gone.shutdown(Shutdown::Write).unwrap();
        }
        pump_until(&mut healthy, &mut healthy_rd, "mid-line disconnect", || {
            metrics.disconnects_total.get() == 1
        });

        // The healthy client still works and the scrape reflects all four
        // outcomes. Served connections speak the envelope (no legacy
        // `:metrics` without --legacy-protocol).
        pump(&mut healthy, &mut healthy_rd);
        write!(healthy, "{{\"v\":1,\"cmd\":\"metrics\"}}\n:quit\n").unwrap();
        let mut scrape = String::new();
        healthy_rd.read_to_string(&mut scrape).unwrap();
        for needle in [
            "cfq_connections_total 5",
            "cfq_connections_rejected_total 1",
            "cfq_read_timeouts_total 1",
            "cfq_disconnects_total 1",
            // The malformed line and the mid-line fragment both errored.
            "cfq_query_errors_total 2",
        ] {
            assert!(scrape.contains(needle), "missing `{needle}` in:\n{scrape}");
        }
        let healthy_queries = metrics.queries_total.get();
        assert!(scrape.contains(&format!("cfq_queries_total {healthy_queries}")), "{scrape}");
        assert!(healthy_queries >= 3, "healthy client answered throughout");

        server.join().unwrap().unwrap();
    }

    /// Envelope clients pushed past `--max-inflight` must see *only*
    /// well-formed v1 envelopes back: a result, or a typed error object
    /// with kind `overloaded` and the `"overloaded":true` back-off flag.
    /// No prose, no half-written lines, no unknown kinds.
    #[test]
    fn overload_rejections_over_tcp_are_typed_envelopes() {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        let db = TransactionDb::from_u32(
            6,
            &[&[0, 1, 2, 3], &[0, 1, 2], &[1, 2, 3, 4], &[0, 2, 4], &[0, 1, 3, 5], &[2, 3, 4, 5]],
        );
        // One query executes at a time, one may queue, and a cold leader
        // holds its admission slot for the whole 150ms batch window — so
        // concurrent cold queries (distinct supports = distinct cache
        // keys) are guaranteed to pile up past the gate.
        let config = EngineConfig::builder()
            .max_inflight_queries(1)
            .max_queued_queries(1)
            .batch_window_ms(150)
            .build();
        let eng = Engine::with_config(db, b.build(), config).unwrap();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        const CLIENTS: usize = 6;
        let opts = ServeOptions { max_conns: Some(CLIENTS), ..ServeOptions::default() };
        let server = std::thread::spawn(move || serve_connections(listener, eng, opts));

        let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut conn = TcpStream::connect(addr).unwrap();
                    let mut rd = BufReader::new(conn.try_clone().unwrap());
                    let mut replies = Vec::new();
                    barrier.wait();
                    for i in 0..3 {
                        // Unique support per request: every query is a
                        // cold cache miss that really mines.
                        let frac = 0.02 + 0.01 * (c * 3 + i) as f64;
                        writeln!(
                            conn,
                            "{{\"v\":1,\"cmd\":\"query\",\"req\":{{\"query\":\"{Q}\",\
                             \"support\":{{\"frac\":{frac}}}}}}}"
                        )
                        .unwrap();
                        let mut reply = String::new();
                        rd.read_line(&mut reply).unwrap();
                        replies.push(reply);
                    }
                    writeln!(conn, ":quit").unwrap();
                    replies
                })
            })
            .collect();
        let replies: Vec<String> =
            workers.into_iter().flat_map(|w| w.join().unwrap()).collect();
        server.join().unwrap().unwrap();

        let mut ok = 0usize;
        let mut overloaded = 0usize;
        for reply in &replies {
            let v = json::parse(reply)
                .unwrap_or_else(|e| panic!("non-JSON reply: {reply} ({e})"));
            assert_eq!(v.get("v").unwrap().as_u64(), Some(1), "{reply}");
            match (v.get("result"), v.get("error")) {
                (Some(result), None) => {
                    assert!(result.get("pair_count").unwrap().as_u64().is_some(), "{reply}");
                    ok += 1;
                }
                (None, Some(err)) => {
                    // The *only* acceptable error under pure overload.
                    assert_eq!(
                        err.get("kind").unwrap().as_str(),
                        Some("overloaded"),
                        "{reply}"
                    );
                    assert_eq!(err.get("overloaded").unwrap().as_bool(), Some(true), "{reply}");
                    assert!(
                        err.get("message").unwrap().as_str().unwrap().starts_with("overloaded:"),
                        "{reply}"
                    );
                    overloaded += 1;
                }
                _ => panic!("reply is neither result nor error envelope: {reply}"),
            }
        }
        assert_eq!(ok + overloaded, CLIENTS * 3);
        assert!(ok >= 1, "at least the first leader must answer");
        assert!(overloaded >= 1, "the gate must have rejected someone");
    }

    #[test]
    fn shutdown_flag_drains_and_returns() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let opts = ServeOptions { shutdown: Arc::clone(&shutdown), ..ServeOptions::default() };
        let eng = engine();
        let server = std::thread::spawn(move || serve_connections(listener, eng, opts));

        // A client blocked in read: shutdown must unblock it, not hang.
        let mut conn = TcpStream::connect(addr).unwrap();
        writeln!(conn, ":support 0.25").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("set to 0.25"), "{reply}");

        shutdown.store(true, Ordering::SeqCst);
        server.join().unwrap().unwrap();
    }

    #[test]
    fn accept_backoff_is_capped_and_monotonic() {
        assert_eq!(accept_backoff(0), Duration::from_millis(10));
        assert_eq!(accept_backoff(1), Duration::from_millis(20));
        for i in 1..20 {
            assert!(accept_backoff(i) >= accept_backoff(i - 1));
            assert!(accept_backoff(i) <= ACCEPT_BACKOFF_MAX);
        }
        assert_eq!(accept_backoff(30), ACCEPT_BACKOFF_MAX, "ceiling holds for huge streaks");
        // u32::MAX must not overflow the shift.
        assert_eq!(accept_backoff(u32::MAX), ACCEPT_BACKOFF_MAX);
    }

    /// Fresh per-test directory without `Date`/randomness: pid + counter.
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("cfq-serve-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_engine(dir: &std::path::Path) -> Arc<Engine> {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        let db = TransactionDb::from_u32(
            6,
            &[&[0, 1, 2, 3], &[0, 1, 2], &[1, 2, 3, 4], &[0, 2, 4], &[0, 1, 3, 5], &[2, 3, 4, 5]],
        );
        let config = EngineConfig::builder().wal_dir(dir).snapshot_every(0).build();
        Engine::with_config(db, b.build(), config).unwrap()
    }

    #[test]
    fn envelope_lines_are_told_apart_from_set_literal_queries() {
        // CFQ set literals legitimately start a line with `{`; only a
        // JSON object (`{` then `"` or `}`) is a v1 envelope.
        assert!(looks_like_envelope("{\"v\":1,\"cmd\":\"status\"}"));
        assert!(looks_like_envelope("  { \"v\": 1 }"));
        assert!(looks_like_envelope("{}"));
        assert!(!looks_like_envelope("{Snacks} subseteq S.Type"));
        assert!(!looks_like_envelope("{ Snacks, Beers } = S.Type"));
        assert!(!looks_like_envelope("max(S.Price) <= 30"));
        assert!(!looks_like_envelope(":json {\"query\": \"q\"}"));
    }

    #[test]
    fn envelope_query_round_trips_and_matches_legacy_json() {
        let mut state = ReplState::new(engine());
        let line = format!(
            "{{\"v\": 1, \"cmd\": \"query\", \"req\": {{\"query\": \"{Q}\", \
             \"support\": {{\"frac\": 0.25}}}}}}"
        );
        let reply = handle_line(&mut state, &line).unwrap();
        let v = json::parse(&reply).unwrap();
        assert_eq!(v.get("v").unwrap().as_u64(), Some(1), "{reply}");
        let result = v.get("result").unwrap();
        assert!(result.get("pair_count").unwrap().as_u64().unwrap() > 0, "{reply}");
        assert!(result.get("db_scans").unwrap().as_u64().unwrap() > 0, "{reply}");

        // The envelope result body is byte-identical to the deprecated
        // `:json` reply for the same request (warm, so both hit cache).
        let legacy = handle_line(
            &mut state,
            &format!(":json {{\"query\": \"{Q}\", \"support\": {{\"frac\": 0.25}}}}"),
        )
        .unwrap();
        let warm = handle_line(&mut state, &line).unwrap();
        assert_eq!(warm, wire::result_object(&legacy));
        assert_eq!(state.metrics.queries_total.get(), 3);
    }

    #[test]
    fn envelope_errors_are_typed_objects() {
        let mut state = ReplState::new(engine());
        for (line, kind, needle) in [
            ("{\"v\": 1", "protocol", "error"),
            ("{\"cmd\": \"metrics\"}", "protocol", "numeric `v` field"),
            ("{\"v\": 2, \"cmd\": \"metrics\"}", "unsupported_version", "this server speaks v1"),
            ("{\"v\": 1, \"cmd\": \"wat\"}", "unknown_command", "unknown command"),
            ("{\"v\": 1, \"cmd\": \"query\"}", "protocol", "needs a `req`"),
            ("{\"v\": 1, \"cmd\": \"metrics\", \"extra\": 1}", "protocol", "unknown envelope field"),
            (
                "{\"v\": 1, \"cmd\": \"query\", \"req\": {\"query\": \"max(S.Price <= 30\"}}",
                "parse",
                "error",
            ),
        ] {
            let reply = handle_line(&mut state, line).unwrap();
            let v = json::parse(&reply)
                .unwrap_or_else(|e| panic!("non-JSON reply to `{line}`: {reply} ({e})"));
            assert_eq!(v.get("v").unwrap().as_u64(), Some(1), "{reply}");
            let err = v.get("error").unwrap();
            assert_eq!(err.get("kind").unwrap().as_str(), Some(kind), "`{line}` -> {reply}");
            assert!(
                err.get("message").unwrap().as_str().unwrap().contains(needle),
                "`{line}` -> {reply}"
            );
        }
        assert_eq!(state.metrics.queries_total.get(), 0);
    }

    #[test]
    fn legacy_json_errors_carry_a_kind_field() {
        let mut state = ReplState::new(engine());
        for (line, kind) in [
            (":json {nope}", "parse"),
            (":json {\"quary\": \"q\"}", "parse"),
            (":json {\"query\": \"count(S) >= 1\", \"support\": 0.0}", "config"),
        ] {
            let reply = handle_line(&mut state, line).unwrap();
            let v = json::parse(&reply).unwrap();
            assert_eq!(v.get("kind").unwrap().as_str(), Some(kind), "`{line}` -> {reply}");
        }
        let obj = json_error(&CfqError::Overloaded("busy".into()));
        let v = json::parse(&obj).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("overloaded"));
        assert_eq!(v.get("overloaded").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn legacy_commands_are_gated_behind_the_flag() {
        // Default served-connection state: envelope only. Every gated
        // command answers with one typed JSON object, never prose, and
        // names both the envelope replacement and the escape hatch.
        let mut state = ReplState::new(engine()).with_legacy_protocol(false);
        for (line, replacement) in [
            (":json {\"query\": \"count(S) >= 1\"}", "\"cmd\":\"query\""),
            (":metrics", "\"cmd\":\"metrics\""),
            (":slowlog", "\"cmd\":\"slowlog\""),
        ] {
            let reply = handle_line(&mut state, line).unwrap();
            let v = json::parse(&reply)
                .unwrap_or_else(|e| panic!("non-JSON rejection for `{line}`: {reply} ({e})"));
            assert_eq!(
                v.get("kind").unwrap().as_str(),
                Some("unsupported_command"),
                "`{line}` -> {reply}"
            );
            let msg = v.get("error").unwrap().as_str().unwrap();
            assert!(msg.contains(replacement), "`{line}` -> {reply}");
            assert!(msg.contains("--legacy-protocol"), "`{line}` -> {reply}");
        }
        // Everything else still answers: operator commands, bare
        // queries, and the whole envelope surface.
        assert!(handle_line(&mut state, ":stats").unwrap().contains("epoch 0"));
        let scrape = handle_line(&mut state, "{\"v\":1,\"cmd\":\"metrics\"}").unwrap();
        assert!(scrape.contains("cfq_queries_total"), "{scrape}");

        // The flag restores the old surface.
        let mut state = ReplState::new(engine()).with_legacy_protocol(true);
        let text = handle_line(&mut state, ":metrics").unwrap();
        assert!(text.starts_with("# "), "{text}");
    }

    #[test]
    fn status_and_snapshot_commands_on_an_ephemeral_engine() {
        let mut state = ReplState::new(engine());
        let reply = handle_line(&mut state, "{\"v\": 1, \"cmd\": \"status\"}").unwrap();
        let v = json::parse(&reply).unwrap();
        let result = v.get("result").unwrap();
        assert_eq!(result.get("mode").unwrap().as_str(), Some("ephemeral"), "{reply}");
        assert_eq!(result.get("epoch").unwrap().as_u64(), Some(0));
        assert_eq!(result.get("transactions").unwrap().as_u64(), Some(8));

        // Snapshots need a WAL directory; the rejection is typed.
        let reply = handle_line(&mut state, "{\"v\": 1, \"cmd\": \"snapshot\"}").unwrap();
        let v = json::parse(&reply).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("config"),
            "{reply}"
        );
        let reply = handle_line(&mut state, ":wal-status").unwrap();
        assert!(reply.contains("durability off"), "{reply}");
        let reply = handle_line(&mut state, ":snapshot").unwrap();
        assert!(reply.contains("--wal-dir"), "{reply}");
    }

    #[test]
    fn status_snapshot_and_wal_status_on_a_durable_engine() {
        let dir = temp_dir("durable");
        let mut state = ReplState::new(durable_engine(&dir));

        let reply = handle_line(&mut state, ":wal-status").unwrap();
        assert!(reply.contains("primary"), "{reply}");

        // An append is WAL-logged; the status counters show it.
        let path = dir.join("delta.txt");
        let delta = TransactionDb::from_u32(6, &[&[0, 1, 2], &[3, 4, 5]]);
        io::save_transactions(&delta, &path).unwrap();
        let reply = handle_line(&mut state, &format!(":append {}", path.display())).unwrap();
        assert!(reply.contains("now epoch 1"), "{reply}");

        let reply = handle_line(&mut state, "{\"v\": 1, \"cmd\": \"status\"}").unwrap();
        let v = json::parse(&reply).unwrap();
        let result = v.get("result").unwrap();
        assert_eq!(result.get("mode").unwrap().as_str(), Some("primary"), "{reply}");
        assert_eq!(result.get("epoch").unwrap().as_u64(), Some(1));
        assert_eq!(result.get("wal_records").unwrap().as_u64(), Some(1));

        // Manual snapshot over the envelope, visible in :wal-status.
        let reply = handle_line(&mut state, "{\"v\": 1, \"cmd\": \"snapshot\"}").unwrap();
        let v = json::parse(&reply).unwrap();
        let result = v.get("result").unwrap();
        assert_eq!(result.get("epoch").unwrap().as_u64(), Some(1), "{reply}");
        assert!(result.get("bytes").unwrap().as_u64().unwrap() > 0, "{reply}");
        let reply = handle_line(&mut state, ":wal-status").unwrap();
        assert!(reply.contains("1 written"), "{reply}");

        // The scrape surfaces the new wal/snapshot families.
        let text = handle_line(&mut state, ":metrics").unwrap();
        for needle in [
            "cfq_wal_records_total 1",
            "cfq_wal_fsyncs_total",
            "cfq_snapshot_writes_total 1",
            "cfq_snapshot_last_epoch 1",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn envelope_metrics_and_slowlog_wrap_text() {
        let mut state = ReplState::new(engine());
        let reply = handle_line(&mut state, "{\"v\": 1, \"cmd\": \"metrics\"}").unwrap();
        let v = json::parse(&reply).unwrap();
        let text = v.get("result").unwrap().get("text").unwrap().as_str().unwrap();
        assert!(text.contains("cfq_queries_total"), "{reply}");
        let reply = handle_line(&mut state, "{\"v\": 1, \"cmd\": \"slowlog\"}").unwrap();
        let v = json::parse(&reply).unwrap();
        let text = v.get("result").unwrap().get("text").unwrap().as_str().unwrap();
        assert!(text.contains("slow-query log empty"), "{reply}");
    }
}

//! The CLI subcommands.

use crate::args::{Args, MiningArgs};
use cfq_audit::{AuditReport, Auditor};
use cfq_constraints::{bind_dnf, parse_dnf};
use cfq_core::{form_rules, Optimizer, QueryEnv, RuleConfig};
use cfq_datagen::{generate_transactions, io, QuestConfig};
use cfq_mining::{
    apriori, fp_growth, partition_mine, AprioriConfig, FpGrowthConfig,
    FrequentSets, PartitionConfig, WorkStats,
};
use cfq_types::{Catalog, CatalogBuilder, CfqError, Result, TransactionDb};
use rand_lite::Pcg;

/// `cfq gen` — write a Quest database.
pub fn gen(argv: Vec<String>) -> Result<()> {
    if wants_help(&argv) {
        println!(
            "cfq gen --out FILE [--items N] [--transactions N] [--seed N]\n\
             [--avg-trans-len F] [--avg-pattern-len F] [--patterns N]"
        );
        return Ok(());
    }
    let a = Args::parse(argv, &[])?;
    let cfg = QuestConfig {
        n_items: a.num("items", 1000usize)?,
        n_transactions: a.num("transactions", 10_000usize)?,
        avg_trans_len: a.num("avg-trans-len", 10.0f64)?,
        avg_pattern_len: a.num("avg-pattern-len", 4.0f64)?,
        n_patterns: a.num("patterns", 2000usize)?,
        seed: a.num("seed", 19990601u64)?,
        ..QuestConfig::default()
    };
    let out = a.require("out")?;
    let db = generate_transactions(&cfg)?;
    io::save_transactions(&db, out)?;
    println!(
        "wrote {} transactions over {} items (avg len {:.2}) to {out}",
        db.len(),
        db.n_items(),
        db.avg_transaction_len()
    );
    Ok(())
}

/// `cfq gen-catalog` — write an itemInfo catalog. Attribute specs:
/// `--num "Name:uniform:LO:HI"`, `--num "Name:normal:MEAN:SD"`,
/// `--cat "Name:N_TYPES"`. (Options are single-valued; separate several
/// attributes with commas: `--num "Price:uniform:0:1000,Weight:normal:5:1"`.)
pub fn gen_catalog(argv: Vec<String>) -> Result<()> {
    if wants_help(&argv) {
        println!(
            "cfq gen-catalog --items N --out FILE [--seed N]\n\
             [--num \"Name:uniform:LO:HI[,...]\"] [--num \"Name:normal:MEAN:SD\"]\n\
             [--cat \"Name:NTYPES[,...]\"]"
        );
        return Ok(());
    }
    let a = Args::parse(argv, &[])?;
    let n_items: usize = a.num("items", 0usize)?;
    if n_items == 0 {
        return Err(CfqError::Config("--items must be given and positive".into()));
    }
    let out = a.require("out")?;
    let mut rng = Pcg::new(a.num("seed", 7u64)?);
    let mut b = CatalogBuilder::new(n_items);

    let num_specs = a.get("num").unwrap_or("Price:uniform:0:1000");
    for spec in num_specs.split(',') {
        let parts: Vec<&str> = spec.split(':').collect();
        let [name, dist, p1, p2] = parts.as_slice() else {
            return Err(CfqError::Config(format!("bad numeric spec `{spec}`")));
        };
        let p1: f64 = p1.parse().map_err(|_| CfqError::Config(format!("bad number in `{spec}`")))?;
        let p2: f64 = p2.parse().map_err(|_| CfqError::Config(format!("bad number in `{spec}`")))?;
        let values: Vec<f64> = match *dist {
            "uniform" => (0..n_items).map(|_| p1 + rng.f64() * (p2 - p1)).collect(),
            "normal" => (0..n_items).map(|_| (p1 + rng.gauss() * p2).max(0.0)).collect(),
            other => return Err(CfqError::Config(format!("unknown distribution `{other}`"))),
        };
        b.num_attr(name, values)?;
    }
    if let Some(cat_specs) = a.get("cat") {
        for spec in cat_specs.split(',') {
            let parts: Vec<&str> = spec.split(':').collect();
            let [name, k] = parts.as_slice() else {
                return Err(CfqError::Config(format!("bad categorical spec `{spec}`")));
            };
            let k: usize = k
                .parse()
                .map_err(|_| CfqError::Config(format!("bad type count in `{spec}`")))?;
            if k == 0 {
                return Err(CfqError::Config("type count must be positive".into()));
            }
            let labels: Vec<String> =
                (0..n_items).map(|_| format!("{}{}", name, rng.below(k))).collect();
            b.cat_attr(name, &labels)?;
        }
    }
    let catalog = b.build();
    io::write_catalog(&catalog, std::fs::File::create(out)?)?;
    println!("wrote catalog with {} attribute(s) for {} items to {out}", catalog.n_attrs(), n_items);
    Ok(())
}

/// `cfq query` — run a CFQ.
pub fn query(argv: Vec<String>) -> Result<()> {
    if wants_help(&argv) {
        println!(
            "cfq query --data FILE --catalog FILE \"CONSTRAINTS\"\n\
             [--min-support FRAC|--abs-support N] [--strategy full|cap1|apriori+]\n\
             [--explain] [--audit] [--limit N] [--rules] [--min-confidence F]\n\
             [--out pairs.csv]\n{}",
            MiningArgs::HELP
        );
        return Ok(());
    }
    let a = Args::parse(argv, &["explain", "rules", "audit"])?;
    let (db, catalog) = load(&a)?;
    let text = a
        .positional
        .first()
        .ok_or_else(|| CfqError::Config("give the query as a positional argument".into()))?;
    let disjuncts = bind_dnf(&parse_dnf(text)?, &catalog)?;

    let min_support = match a.get("abs-support") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| CfqError::Config(format!("bad --abs-support `{v}`")))?,
        None => {
            let frac: f64 = a.num("min-support", 0.01f64)?;
            ((db.len() as f64) * frac).round().max(1.0) as u64
        }
    };
    let optimizer = parse_strategy(a.get("strategy"))?;

    // The --audit gate: statically verify the plan's rewrite obligations
    // before touching the data, and refuse to execute an unsound plan.
    if a.flag("audit") {
        render_audit(&Auditor::new(&catalog).with_optimizer(optimizer).audit_dnf(text)?, None)?;
    }

    // The CLI defaults to all cores (0); the library default stays 1 so
    // programmatic runs are deterministic in their work accounting.
    let mining = MiningArgs::from_args(&a, 0)?;
    let env = QueryEnv::new(&db, &catalog, min_support)
        .with_counting_threads(mining.threads)
        .with_trim(mining.trim)
        .with_backend(mining.backend)
        .with_shards(mining.shards);
    if a.flag("explain") {
        for (i, bound) in disjuncts.iter().enumerate() {
            if disjuncts.len() > 1 {
                println!("-- disjunct {} --", i + 1);
            }
            println!("{}", optimizer.build_plan(bound, &catalog).explain(&catalog));
        }
    }
    let start = std::time::Instant::now();
    let out = if disjuncts.len() == 1 {
        optimizer.evaluate(&disjuncts[0], &env)?
    } else {
        optimizer.run_dnf(&disjuncts, &env)?
    };
    let took = start.elapsed().as_secs_f64();

    println!(
        "{} valid pairs ({} S-sets x {} T-sets) | min_support={} | {:.3}s | {} sets counted | {} db scans",
        out.pair_result.count,
        out.s_sets.len(),
        out.t_sets.len(),
        min_support,
        took,
        out.s_stats.support_counted + out.t_stats.support_counted,
        out.db_scans,
    );
    println!(
        "scan volume: {} rows / {} items ({} KiB); trim dropped {} rows / {} items over {} passes",
        out.scan.rows_scanned,
        out.scan.items_scanned,
        out.scan.bytes_scanned() / 1024,
        out.scan.trim_rows_dropped,
        out.scan.trim_items_dropped,
        out.scan.trim_passes,
    );
    let limit: usize = a.num("limit", 20usize)?;
    for &(si, ti) in out.pair_result.pairs.iter().take(limit) {
        let (s, s_sup) = &out.s_sets[si as usize];
        let (t, t_sup) = &out.t_sets[ti as usize];
        println!("  {s} (sup {s_sup})  =>  {t} (sup {t_sup})");
    }
    if out.pair_result.count as usize > limit {
        println!("  … {} more (raise --limit)", out.pair_result.count as usize - limit);
    }

    if let Some(path) = a.get("out") {
        out.write_pairs_csv(std::fs::File::create(path)?)?;
        println!("wrote {} pairs to {path}", out.pair_result.pairs.len());
    }

    if a.flag("rules") {
        let cfg = RuleConfig {
            min_support: 1,
            min_confidence: a.num("min-confidence", 0.5f64)?,
        };
        let rules = form_rules(&out, &db, &cfg);
        println!("\n{} rules at confidence >= {}:", rules.len(), cfg.min_confidence);
        for r in rules.iter().take(limit) {
            println!(
                "  {} => {}  (sup {}, conf {:.2}, lift {:.2})",
                r.antecedent, r.consequent, r.support, r.confidence, r.lift
            );
        }
    }
    Ok(())
}

/// `cfq audit` — statically verify a query's optimizer plan against the
/// paper's soundness obligations (Figs. 1–4, §5.2). Needs the catalog (for
/// column envelopes and attribute binding) but never touches transaction
/// data; exits non-zero when the plan is unsound.
pub fn audit(argv: Vec<String>) -> Result<()> {
    if wants_help(&argv) {
        println!(
            "cfq audit --catalog FILE \"CONSTRAINTS\"\n\
             [--strategy full|cap1|apriori+] [--json report.json]"
        );
        return Ok(());
    }
    let a = Args::parse(argv, &[])?;
    let catalog = io::read_catalog(std::fs::File::open(a.require("catalog")?)?)?;
    let text = a
        .positional
        .first()
        .ok_or_else(|| CfqError::Config("give the query as a positional argument".into()))?;
    let optimizer = parse_strategy(a.get("strategy"))?;
    let reports = Auditor::new(&catalog).with_optimizer(optimizer).audit_dnf(text)?;
    render_audit(&reports, a.get("json"))
}

/// Prints audit reports (one per DNF disjunct), optionally writes the JSON
/// rendering, and fails when any disjunct's plan is unsound.
fn render_audit(reports: &[AuditReport], json_path: Option<&str>) -> Result<()> {
    for (i, r) in reports.iter().enumerate() {
        if reports.len() > 1 {
            println!("-- disjunct {} --", i + 1);
        }
        print!("{}", r.render());
    }
    if let Some(path) = json_path {
        let body: Vec<String> = reports.iter().map(AuditReport::to_json).collect();
        std::fs::write(path, format!("[{}]\n", body.join(", ")))?;
        println!("wrote audit report to {path}");
    }
    // Refuse on the first error-severity finding, surfacing it losslessly
    // as the typed audit error (all findings were already printed above).
    if let Some(first) = reports.iter().flat_map(|r| r.errors()).next() {
        return Err(CfqError::from(first.clone()));
    }
    Ok(())
}

/// `cfq mine` — plain frequent-set mining with a selectable backbone.
pub fn mine(argv: Vec<String>) -> Result<()> {
    if wants_help(&argv) {
        println!(
            "cfq mine --data FILE [--min-support FRAC|--abs-support N]\n\
             [--backbone apriori|fpgrowth|partition] [--limit N] [--maximal] [--closed]\n\
             [--audit]\n{}",
            MiningArgs::HELP
        );
        return Ok(());
    }
    let a = Args::parse(argv, &["maximal", "closed", "audit"])?;
    let db = io::load_transactions(a.require("data")?)?;
    if a.flag("audit") {
        // Release-build equivalent of the CSR store's debug invariants.
        db.validate()?;
        println!("audit: CSR store valid ({} rows, {} items)", db.len(), db.n_items());
    }
    let min_support = match a.get("abs-support") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| CfqError::Config(format!("bad --abs-support `{v}`")))?,
        None => {
            let frac: f64 = a.num("min-support", 0.01f64)?;
            ((db.len() as f64) * frac).round().max(1.0) as u64
        }
    };
    let backbone = a.get("backbone").unwrap_or("fpgrowth");
    let mining = MiningArgs::from_args(&a, 0)?;
    let mut stats = WorkStats::new();
    let start = std::time::Instant::now();
    let fs: FrequentSets = match backbone {
        "apriori" => {
            let cfg = mining.apply_to_apriori(AprioriConfig::new(min_support));
            apriori(&db, &cfg, &mut stats)
        }
        "fpgrowth" | "fp-growth" => {
            let cfg = FpGrowthConfig { backend: mining.backend, ..FpGrowthConfig::new(min_support) };
            fp_growth(&db, &cfg, &mut stats)
        }
        "partition" => {
            let cfg = PartitionConfig {
                min_support,
                n_partitions: 8,
                // `Auto` (the PartitionConfig default) resolves to bitmaps
                // in one place inside the partition module; an explicit
                // --backend overrides it.
                backend: if mining.backend_given {
                    mining.backend
                } else {
                    PartitionConfig::default().backend
                },
                ..PartitionConfig::default()
            };
            partition_mine(&db, &cfg, &mut stats)
        }
        other => return Err(CfqError::Config(format!("unknown backbone `{other}`"))),
    };
    let took = start.elapsed().as_secs_f64();
    println!(
        "{} frequent sets (max size {}) | min_support={} | {} db scans | {:.3}s [{backbone}]",
        fs.total(),
        fs.n_levels(),
        min_support,
        stats.db_scans,
        took
    );
    let limit: usize = a.num("limit", 20usize)?;
    if a.flag("maximal") {
        let max = fs.maximal();
        println!("{} maximal sets:", max.len());
        for s in max.iter().take(limit) {
            println!("  {s} (sup {})", fs.support(s).unwrap_or(0));
        }
    } else if a.flag("closed") {
        let closed = fs.closed();
        println!("{} closed sets:", closed.len());
        for (s, sup) in closed.iter().take(limit) {
            println!("  {s} (sup {sup})");
        }
    } else {
        let mut all: Vec<(&cfq_types::Itemset, u64)> = fs.iter().collect();
        all.sort_by_key(|&(_, sup)| std::cmp::Reverse(sup));
        for (s, sup) in all.into_iter().take(limit) {
            println!("  {s} (sup {sup})");
        }
    }
    Ok(())
}

/// `cfq stats` — database summary.
pub fn stats(argv: Vec<String>) -> Result<()> {
    if wants_help(&argv) {
        println!("cfq stats --data FILE");
        return Ok(());
    }
    let a = Args::parse(argv, &[])?;
    let db = io::load_transactions(a.require("data")?)?;
    let mut freq = vec![0u64; db.n_items()];
    let mut max_len = 0usize;
    for t in db.iter() {
        max_len = max_len.max(t.len());
        for &i in t {
            freq[i.index()] += 1;
        }
    }
    let active = freq.iter().filter(|&&f| f > 0).count();
    let top = freq.iter().copied().max().unwrap_or(0);
    println!(
        "transactions: {}\nitems: {} ({} active)\navg transaction length: {:.2}\nmax transaction length: {}\nmost frequent item occurs in: {} transactions ({:.2}%)",
        db.len(),
        db.n_items(),
        active,
        db.avg_transaction_len(),
        max_len,
        top,
        100.0 * top as f64 / db.len().max(1) as f64,
    );
    Ok(())
}

pub(crate) fn load(a: &Args) -> Result<(TransactionDb, Catalog)> {
    let db = io::load_transactions(a.require("data")?)?;
    let catalog = match a.get("catalog") {
        Some(path) => io::read_catalog(std::fs::File::open(path)?)?,
        None => Catalog::empty(db.n_items()),
    };
    if catalog.n_items() != db.n_items() {
        return Err(CfqError::Config(format!(
            "catalog covers {} items but database has {}",
            catalog.n_items(),
            db.n_items()
        )));
    }
    Ok((db, catalog))
}

pub(crate) fn wants_help(argv: &[String]) -> bool {
    argv.iter().any(|a| a == "--help" || a == "-h")
}

/// Parses a `--strategy` option value; absent means the full optimizer.
pub(crate) fn parse_strategy(value: Option<&str>) -> Result<Optimizer> {
    let name = value.unwrap_or("full");
    Optimizer::from_name(name)
        .ok_or_else(|| CfqError::Config(format!("unknown strategy `{name}`")))
}

/// A tiny self-contained PCG32 random generator so the CLI crate does not
/// need the `rand` dependency for its few catalog draws.
mod rand_lite {
    /// PCG-XSH-RR 64/32.
    pub struct Pcg {
        state: u64,
    }

    impl Pcg {
        /// Seeds the generator (one warm-up step mixes the seed in).
        pub fn new(seed: u64) -> Pcg {
            let mut p = Pcg { state: seed.wrapping_mul(0x853c_49e6_748f_ea9b) ^ 0x94d0_49bb_1331_11eb };
            p.next_u32();
            p
        }

        /// The next 32 uniform random bits.
        pub fn next_u32(&mut self) -> u32 {
            let old = self.state;
            self.state = old
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
            let rot = (old >> 59) as u32;
            xorshifted.rotate_right(rot)
        }

        /// Uniform in [0, 1).
        pub fn f64(&mut self) -> f64 {
            (self.next_u32() as f64) / (u32::MAX as f64 + 1.0)
        }

        /// Uniform integer below `n`.
        pub fn below(&mut self, n: usize) -> usize {
            (self.f64() * n as f64) as usize % n
        }

        /// Standard normal via Box–Muller.
        pub fn gauss(&mut self) -> f64 {
            let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
            let u2 = self.f64();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cfq_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn argv(v: &[String]) -> Vec<String> {
        v.to_vec()
    }

    #[test]
    fn gen_query_roundtrip() {
        let data = tmp("d.txt");
        let cat = tmp("c.txt");
        gen(argv(&[
            "--out".into(),
            data.clone(),
            "--items".into(),
            "40".into(),
            "--transactions".into(),
            "300".into(),
            "--patterns".into(),
            "20".into(),
        ]))
        .unwrap();
        gen_catalog(argv(&[
            "--items".into(),
            "40".into(),
            "--out".into(),
            cat.clone(),
            "--num".into(),
            "Price:uniform:0:100".into(),
            "--cat".into(),
            "Type:3".into(),
        ]))
        .unwrap();
        query(argv(&[
            "--data".into(),
            data.clone(),
            "--catalog".into(),
            cat.clone(),
            "--min-support".into(),
            "0.08".into(),
            "--explain".into(),
            "--rules".into(),
            "max(S.Price) <= min(T.Price)".into(),
        ]))
        .unwrap();
        stats(argv(&["--data".into(), data.clone()])).unwrap();
        for backbone in ["apriori", "fpgrowth", "partition"] {
            mine(argv(&[
                "--data".into(),
                data.clone(),
                "--backbone".into(),
                backbone.into(),
                "--min-support".into(),
                "0.05".into(),
            ]))
            .unwrap();
        }
        mine(argv(&["--data".into(), data.clone(), "--maximal".into()])).unwrap();
        mine(argv(&["--data".into(), data, "--closed".into()])).unwrap();
    }

    #[test]
    fn trim_and_thread_flags() {
        let data = tmp("d4.txt");
        gen(argv(&[
            "--out".into(),
            data.clone(),
            "--items".into(),
            "30".into(),
            "--transactions".into(),
            "200".into(),
            "--patterns".into(),
            "10".into(),
        ]))
        .unwrap();
        for trim in ["on", "off"] {
            query(argv(&[
                "--data".into(),
                data.clone(),
                "--min-support".into(),
                "0.05".into(),
                "--trim".into(),
                trim.into(),
                "--threads".into(),
                "2".into(),
                "S disjoint T".into(),
            ]))
            .unwrap();
            mine(argv(&[
                "--data".into(),
                data.clone(),
                "--backbone".into(),
                "apriori".into(),
                "--trim".into(),
                trim.into(),
            ]))
            .unwrap();
        }
        assert!(query(argv(&[
            "--data".into(),
            data,
            "--trim".into(),
            "sideways".into(),
            "S disjoint T".into(),
        ]))
        .is_err());
    }

    #[test]
    fn backend_flag_on_query_and_mine() {
        let data = tmp("d6.txt");
        gen(argv(&[
            "--out".into(),
            data.clone(),
            "--items".into(),
            "30".into(),
            "--transactions".into(),
            "200".into(),
            "--patterns".into(),
            "10".into(),
        ]))
        .unwrap();
        for backend in ["horizontal", "tidset", "bitmap", "auto"] {
            query(argv(&[
                "--data".into(),
                data.clone(),
                "--min-support".into(),
                "0.05".into(),
                "--backend".into(),
                backend.into(),
                "S disjoint T".into(),
            ]))
            .unwrap();
            for backbone in ["apriori", "fpgrowth", "partition"] {
                mine(argv(&[
                    "--data".into(),
                    data.clone(),
                    "--backbone".into(),
                    backbone.into(),
                    "--backend".into(),
                    backend.into(),
                ]))
                .unwrap();
            }
        }
        assert!(query(argv(&[
            "--data".into(),
            data,
            "--backend".into(),
            "diagonal".into(),
            "S disjoint T".into(),
        ]))
        .is_err());
    }

    #[test]
    fn audit_command_and_execution_gates() {
        let data = tmp("d5.txt");
        let cat = tmp("c5.txt");
        let json = tmp("audit5.json");
        gen(argv(&[
            "--out".into(),
            data.clone(),
            "--items".into(),
            "40".into(),
            "--transactions".into(),
            "200".into(),
            "--patterns".into(),
            "10".into(),
        ]))
        .unwrap();
        gen_catalog(argv(&[
            "--items".into(),
            "40".into(),
            "--out".into(),
            cat.clone(),
            "--num".into(),
            "Price:uniform:0:100".into(),
        ]))
        .unwrap();
        // Static audit: no --data needed; DNF audits per disjunct; JSON out.
        audit(argv(&[
            "--catalog".into(),
            cat.clone(),
            "--json".into(),
            json.clone(),
            "avg(S.Price) <= avg(T.Price) | max(S.Price) <= min(T.Price)".into(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(body.contains("\"sound\": true"), "{body}");
        // The gates on execution commands.
        query(argv(&[
            "--data".into(),
            data.clone(),
            "--catalog".into(),
            cat.clone(),
            "--audit".into(),
            "--min-support".into(),
            "0.08".into(),
            "sum(S.Price) <= sum(T.Price)".into(),
        ]))
        .unwrap();
        mine(argv(&["--data".into(), data, "--audit".into()])).unwrap();
        // Parse errors and bad strategies surface as errors.
        assert!(audit(argv(&["--catalog".into(), cat.clone(), "not a query".into()])).is_err());
        assert!(audit(argv(&[
            "--catalog".into(),
            cat,
            "--strategy".into(),
            "warp".into(),
            "freq(S)".into()
        ]))
        .is_err());
    }

    #[test]
    fn mine_rejects_unknown_backbone() {
        let data = tmp("d3.txt");
        gen(argv(&[
            "--out".into(),
            data.clone(),
            "--items".into(),
            "10".into(),
            "--transactions".into(),
            "40".into(),
            "--patterns".into(),
            "5".into(),
        ]))
        .unwrap();
        assert!(mine(argv(&["--data".into(), data, "--backbone".into(), "magic".into()])).is_err());
    }

    #[test]
    fn query_errors() {
        assert!(query(argv(&["--data".into(), "/nonexistent".into(), "freq(S)".into()])).is_err());
        let data = tmp("d2.txt");
        gen(argv(&[
            "--out".into(),
            data.clone(),
            "--items".into(),
            "10".into(),
            "--transactions".into(),
            "50".into(),
            "--patterns".into(),
            "5".into(),
        ]))
        .unwrap();
        // Missing query text.
        assert!(query(argv(&["--data".into(), data.clone()])).is_err());
        // Unknown strategy.
        assert!(query(argv(&[
            "--data".into(),
            data,
            "--strategy".into(),
            "warp".into(),
            "freq(S)".into()
        ]))
        .is_err());
    }

    #[test]
    fn gen_catalog_spec_errors() {
        let out = tmp("c2.txt");
        assert!(gen_catalog(argv(&["--out".into(), out.clone()])).is_err()); // no --items
        assert!(gen_catalog(argv(&[
            "--items".into(),
            "5".into(),
            "--out".into(),
            out.clone(),
            "--num".into(),
            "Price:banana:0:1".into()
        ]))
        .is_err());
        assert!(gen_catalog(argv(&[
            "--items".into(),
            "5".into(),
            "--out".into(),
            out,
            "--cat".into(),
            "Type:0".into()
        ]))
        .is_err());
    }

    #[test]
    fn pcg_is_sane() {
        let mut p = rand_lite::Pcg::new(42);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let x = p.f64();
            assert!((0.0..1.0).contains(&x));
            seen.insert((x * 1e9) as u64);
        }
        assert!(seen.len() > 900, "PCG output looks degenerate");
        for _ in 0..100 {
            assert!(p.below(7) < 7);
        }
    }
}

//! Minimal argument parsing (no external dependencies): `--key value`
//! options, `--flag` booleans, and positional arguments — plus
//! [`MiningArgs`], the shared `--threads/--trim/--backend/--shards`
//! surface every mining subcommand (`query`, `mine`, `serve`) parses
//! exactly once.

use cfq_engine::EngineConfigBuilder;
use cfq_mining::{AprioriConfig, CountingBackend};
use cfq_types::{CfqError, Result};
use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the program/subcommand names). Options take
    /// the next token as value unless listed in `flag_names`.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I, flag_names: &[&str]) -> Result<Args> {
        let mut out = Args::default();
        let mut it = argv.into_iter();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if flag_names.contains(&name) {
                    out.flags.push(name.to_string());
                } else {
                    let value = it.next().ok_or_else(|| {
                        CfqError::Config(format!("option --{name} needs a value"))
                    })?;
                    out.options.insert(name.to_string(), value);
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(|s| s.as_str())
    }

    /// A required string option.
    pub fn require(&self, name: &str) -> Result<&str> {
        self.get(name)
            .ok_or_else(|| CfqError::Config(format!("missing required option --{name}")))
    }

    /// A parsed numeric option with default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                CfqError::Config(format!("option --{name}: cannot parse `{v}`"))
            }),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// The mining-knob flags shared by `cfq query`, `cfq mine`, and
/// `cfq serve`: `--threads N`, `--trim on|off`,
/// `--backend horizontal|tidset|bitmap|auto`, `--shards N`. One parse,
/// one validation, one application per target config — a new knob added
/// here threads through every subcommand at once.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MiningArgs {
    /// Support-counting threads (0 = all cores).
    pub threads: usize,
    /// Per-level database reduction between counting passes.
    pub trim: bool,
    /// Support-counting backend.
    pub backend: CountingBackend,
    /// Whether `--backend` was given explicitly (commands with their own
    /// backend default, like `mine --backbone partition`, key off this).
    pub backend_given: bool,
    /// Horizontal shard count for counting (1 = unsharded).
    pub shards: usize,
}

impl MiningArgs {
    /// The help lines for the shared flags, so every subcommand's usage
    /// text stays in sync.
    pub const HELP: &'static str = "\
[--threads N]           support-counting threads (0 = all cores)\n\
[--trim on|off]         per-level database reduction (default on)\n\
[--backend NAME]        counting backend (horizontal|tidset|bitmap|auto)\n\
[--shards N]            horizontal shard count for counting (default 1)";

    /// Parses the four shared flags out of `a`. `default_threads` differs
    /// per subcommand: the one-shot CLI commands default to 0 (all
    /// cores), `serve` to the engine default (1, for deterministic scan
    /// accounting across requests).
    pub fn from_args(a: &Args, default_threads: usize) -> Result<MiningArgs> {
        let backend_given = a.get("backend").is_some();
        let backend = match a.get("backend") {
            None => CountingBackend::Horizontal,
            Some(name) => CountingBackend::parse(name).ok_or_else(|| {
                CfqError::Config(format!(
                    "bad --backend `{name}` (use horizontal|tidset|bitmap|auto)"
                ))
            })?,
        };
        let trim = match a.get("trim") {
            None | Some("on") | Some("true") | Some("1") => true,
            Some("off") | Some("false") | Some("0") => false,
            Some(other) => {
                return Err(CfqError::Config(format!("bad --trim `{other}` (use on|off)")))
            }
        };
        let shards = a.num("shards", 1usize)?;
        if shards == 0 {
            return Err(CfqError::Config("--shards must be at least 1".into()));
        }
        Ok(MiningArgs {
            threads: a.num("threads", default_threads)?,
            trim,
            backend,
            backend_given,
            shards,
        })
    }

    /// Applies the knobs to an [`EngineConfigBuilder`] — the `serve`
    /// path, where they become the engine-wide defaults every request
    /// inherits unless its `QueryRequest` overrides them.
    pub fn apply_to(&self, b: EngineConfigBuilder) -> EngineConfigBuilder {
        b.counting_threads(self.threads).trim(self.trim).backend(self.backend).shards(self.shards)
    }

    /// Applies the knobs to an [`AprioriConfig`] — the `mine` path.
    pub fn apply_to_apriori(&self, cfg: AprioriConfig) -> AprioriConfig {
        cfg.with_counting_threads(self.threads)
            .with_trim(self.trim)
            .with_backend(self.backend)
            .with_shards(self.shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string()), &["explain", "rules"]).unwrap()
    }

    #[test]
    fn options_flags_positional() {
        let a = parse(&["query.txt", "--min-support", "0.01", "--explain", "extra"]);
        assert_eq!(a.positional, vec!["query.txt", "extra"]);
        assert_eq!(a.get("min-support"), Some("0.01"));
        assert!(a.flag("explain"));
        assert!(!a.flag("rules"));
    }

    #[test]
    fn numeric_parsing_and_defaults() {
        let a = parse(&["--n", "42"]);
        assert_eq!(a.num("n", 0u32).unwrap(), 42);
        assert_eq!(a.num("missing", 7u32).unwrap(), 7);
        assert!(a.num::<u32>("n", 0).is_ok());
        let b = parse(&["--n", "xyz"]);
        assert!(b.num::<u32>("n", 0).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        let r = Args::parse(vec!["--lonely".to_string()], &[]);
        assert!(r.is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&[]);
        assert!(a.require("data").is_err());
    }

    fn mining(v: &[&str], default_threads: usize) -> Result<MiningArgs> {
        MiningArgs::from_args(
            &Args::parse(v.iter().map(|s| s.to_string()), &[]).unwrap(),
            default_threads,
        )
    }

    #[test]
    fn mining_args_defaults_and_parsing() {
        let m = mining(&[], 0).unwrap();
        assert_eq!(
            m,
            MiningArgs {
                threads: 0,
                trim: true,
                backend: CountingBackend::Horizontal,
                backend_given: false,
                shards: 1,
            }
        );
        // The per-subcommand thread default threads through.
        assert_eq!(mining(&[], 1).unwrap().threads, 1);

        let m = mining(
            &["--threads", "4", "--trim", "off", "--backend", "bitmap", "--shards", "3"],
            0,
        )
        .unwrap();
        assert_eq!(m.threads, 4);
        assert!(!m.trim);
        assert_eq!(m.backend, CountingBackend::Bitmap);
        assert!(m.backend_given);
        assert_eq!(m.shards, 3);
    }

    #[test]
    fn mining_args_rejects_bad_values() {
        assert!(mining(&["--trim", "sideways"], 0).is_err());
        assert!(mining(&["--backend", "diagonal"], 0).is_err());
        assert!(mining(&["--shards", "0"], 0).is_err());
        assert!(mining(&["--threads", "many"], 0).is_err());
    }

    #[test]
    fn mining_args_apply_to_engine_builder_and_apriori() {
        let m = mining(&["--threads", "2", "--trim", "off", "--backend", "auto", "--shards", "2"], 0)
            .unwrap();
        let cfg = m.apply_to(cfq_engine::EngineConfig::builder()).build();
        assert_eq!(cfg.counting_threads, 2);
        assert!(!cfg.trim);
        assert_eq!(cfg.backend, CountingBackend::Auto);
        assert_eq!(cfg.shards, 2);

        let apriori = m.apply_to_apriori(AprioriConfig::new(5));
        assert_eq!(apriori.counting_threads, 2);
        assert!(!apriori.trim);
        assert_eq!(apriori.backend, CountingBackend::Auto);
        assert_eq!(apriori.shards, 2);
    }
}

//! Minimal argument parsing (no external dependencies): `--key value`
//! options, `--flag` booleans, and positional arguments.

use cfq_types::{CfqError, Result};
use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the program/subcommand names). Options take
    /// the next token as value unless listed in `flag_names`.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I, flag_names: &[&str]) -> Result<Args> {
        let mut out = Args::default();
        let mut it = argv.into_iter();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if flag_names.contains(&name) {
                    out.flags.push(name.to_string());
                } else {
                    let value = it.next().ok_or_else(|| {
                        CfqError::Config(format!("option --{name} needs a value"))
                    })?;
                    out.options.insert(name.to_string(), value);
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(|s| s.as_str())
    }

    /// A required string option.
    pub fn require(&self, name: &str) -> Result<&str> {
        self.get(name)
            .ok_or_else(|| CfqError::Config(format!("missing required option --{name}")))
    }

    /// A parsed numeric option with default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                CfqError::Config(format!("option --{name}: cannot parse `{v}`"))
            }),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string()), &["explain", "rules"]).unwrap()
    }

    #[test]
    fn options_flags_positional() {
        let a = parse(&["query.txt", "--min-support", "0.01", "--explain", "extra"]);
        assert_eq!(a.positional, vec!["query.txt", "extra"]);
        assert_eq!(a.get("min-support"), Some("0.01"));
        assert!(a.flag("explain"));
        assert!(!a.flag("rules"));
    }

    #[test]
    fn numeric_parsing_and_defaults() {
        let a = parse(&["--n", "42"]);
        assert_eq!(a.num("n", 0u32).unwrap(), 42);
        assert_eq!(a.num("missing", 7u32).unwrap(), 7);
        assert!(a.num::<u32>("n", 0).is_ok());
        let b = parse(&["--n", "xyz"]);
        assert!(b.num::<u32>("n", 0).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        let r = Args::parse(vec!["--lonely".to_string()], &[]);
        assert!(r.is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&[]);
        assert!(a.require("data").is_err());
    }
}

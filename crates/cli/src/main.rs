//! `cfq` — command-line front end for constrained frequent set queries.
//!
//! ```text
//! cfq gen --out data.txt [--items 1000] [--transactions 10000] [--seed 7]
//!         [--avg-trans-len 10] [--avg-pattern-len 4] [--patterns 2000]
//! cfq gen-catalog --items 1000 --out cat.txt
//!         [--num "Price:uniform:0:1000"]... [--cat "Type:8"]...
//! cfq query --data data.txt --catalog cat.txt --min-support 0.01 \
//!         "max(S.Price) <= min(T.Price)" [--strategy full|cap1|apriori+]
//!         [--explain] [--audit] [--limit 20] [--rules] [--min-confidence 0.6]
//! cfq audit --catalog cat.txt "max(S.Price) <= min(T.Price)"
//!         [--strategy full|cap1|apriori+] [--json report.json]
//! cfq stats --data data.txt
//! ```

mod args;
mod check;
mod commands;
mod loadgen;
mod serve;

use cfq_types::Result;

const USAGE: &str = "\
usage: cfq <command> [options]

commands:
  gen          generate a Quest synthetic transaction database
  gen-catalog  generate an itemInfo catalog (numeric/categorical attributes)
  query        run a CFQ against a database + catalog
  audit        statically verify a query's plan is sound (no data needed)
  mine         plain frequent-set mining (apriori | fpgrowth | partition)
  stats        summarize a transaction database
  repl         interactive session over a long-lived caching engine
  serve        line-protocol TCP server; all connections share one engine
  loadgen      replay seeded adversarial CFQ scenarios against a live serve
  model        exhaustively model-check the engine's concurrency protocols
  lint         token-level lint of the workspace sources (invariant pass)

run `cfq <command> --help` for command options";

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        println!("{USAGE}");
        return;
    }
    let command = argv.remove(0);
    let result: Result<()> = match command.as_str() {
        "gen" => commands::gen(argv),
        "gen-catalog" => commands::gen_catalog(argv),
        "query" => commands::query(argv),
        "audit" => commands::audit(argv),
        "mine" => commands::mine(argv),
        "stats" => commands::stats(argv),
        "repl" => serve::repl(argv),
        "serve" => serve::serve(argv),
        "loadgen" => loadgen::loadgen(argv),
        "model" => check::model(argv),
        "lint" => check::lint(argv),
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

//! `cfq loadgen` — replay seeded adversarial CFQ scenarios against a
//! live `cfq serve` over the v1 envelope, and report tail latency.
//!
//! ```text
//! cfq loadgen --addr HOST:PORT [--seed N] [--scenario all|NAME,...]
//!             [--append-file FILE] [--items N] [--out BENCH.json]
//!             [--timeout-secs N] [--print-metrics]
//! cfq loadgen --emit [--seed N] [--scenario ...]    # print the workload, no server
//! cfq loadgen --list                                # list scenarios
//! ```
//!
//! The server must run *without* `--legacy-protocol`: the loadgen is a
//! conformance client for the canonical envelope, and any prose reply
//! to an envelope line counts as a protocol error that fails the gates.

use crate::args::Args;
use crate::commands::wants_help;
use cfq_loadgen::{
    build_selection, check, driver, emit, render, ClientMetrics, DriverOptions, GenOptions,
    ScenarioReport, SCENARIOS,
};
use cfq_obs::metrics::Registry;
use cfq_types::{CfqError, Result};
use std::time::Duration;

/// `cfq loadgen`: build the selected scenarios, optionally `--emit`
/// them, otherwise replay them against `--addr` and print the
/// `BENCH_loadgen.json` report; exits non-zero on any gate violation.
pub fn loadgen(argv: Vec<String>) -> Result<()> {
    if wants_help(&argv) {
        println!(
            "usage: cfq loadgen --addr HOST:PORT [options]\n\
             \n\
             [--seed N]              workload seed (default 7); same seed = same bytes\n\
             [--scenario NAMES]      comma-separated scenario names, or `all` (default)\n\
             [--append-file FILE]    delta transactions for append_churn's :append\n\
             [--items N]             served item-universe size for universe windows\n\
             [--timeout-secs N]      per-reply read timeout (default 30)\n\
             [--out FILE]            also write the report JSON to FILE\n\
             [--print-metrics]       dump the cfq_loadgen_* client registry\n\
             [--emit]                print the generated workload and exit (no server)\n\
             [--list]                list scenarios and exit\n\
             \n\
             the target server must speak the v1 envelope only (no --legacy-protocol);\n\
             exit is non-zero when a gate fails (protocol errors, unexpected overloads,\n\
             missing batching)"
        );
        return Ok(());
    }
    let a = Args::parse(argv, &["emit", "list", "print-metrics"])?;
    if a.flag("list") {
        for s in SCENARIOS {
            println!(
                "{:<20} {} clients x {:>2} requests  {}",
                s.name, s.clients, s.requests_per_client, s.summary
            );
        }
        return Ok(());
    }

    let seed: u64 = a.num("seed", 7u64)?;
    let selection = a.get("scenario").unwrap_or("all");
    let opts = GenOptions {
        append_file: a.get("append-file").map(str::to_string),
        items: a.num("items", 0usize)?,
    };
    let workloads = build_selection(selection, seed, &opts)?;

    if a.flag("emit") {
        for w in &workloads {
            print!("{}", emit(w));
        }
        return Ok(());
    }

    let addr = a.require("addr")?;
    let driver_opts = DriverOptions {
        addr: addr.to_string(),
        timeout: Duration::from_secs(a.num("timeout-secs", 30u64)?),
    };
    let registry = Registry::new();
    let metrics = ClientMetrics::new(&registry);
    let mut reports: Vec<ScenarioReport> = Vec::new();
    for w in &workloads {
        if w.spec.needs_append_file && opts.append_file.is_none() {
            return Err(CfqError::Config(format!(
                "scenario `{}` needs --append-file (a delta transaction file)",
                w.spec.name
            )));
        }
        eprintln!(
            "loadgen: {} ({} clients x {} requests) against {addr}",
            w.spec.name, w.spec.clients, w.spec.requests_per_client
        );
        let outcome = driver::run_scenario(w, &driver_opts, &metrics)?;
        reports.push(ScenarioReport::from_outcome(&outcome));
    }

    let report = render(seed, &reports);
    println!("{report}");
    if let Some(path) = a.get("out") {
        std::fs::write(path, format!("{report}\n"))?;
    }
    if a.flag("print-metrics") {
        print!("{}", registry.render());
    }

    let violations = check(&reports);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("loadgen gate: {v}");
        }
        return Err(CfqError::Engine(format!(
            "loadgen: {} gate violation(s)",
            violations.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{serve_connections, ServeOptions};
    use cfq_engine::{Engine, EngineConfig};
    use cfq_loadgen::build;
    use cfq_types::{CatalogBuilder, TransactionDb};
    use std::net::TcpListener;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    /// An engine whose catalog carries every attribute the scenario
    /// palette mentions (Price, Type with labels Type0..Type5), with an
    /// admission gate small enough that `overload_burst`'s 10 clients
    /// overrun it while the ≤4-client scenarios never do.
    ///
    /// 64 transactions, not a handful: the scenarios' support ladder
    /// (overload opens at 0.03, multi_support below 0.07, steady mines
    /// at ≥ 0.1) only yields genuinely cold opening queries when those
    /// fractions resolve to *distinct* absolute supports (2 < 4..5 < 7
    /// here). On a tiny database they all collapse to 1 and the first
    /// scenario warms the cache for everything after it.
    fn engine() -> Arc<Engine> {
        let mut b = CatalogBuilder::new(6);
        b.num_attr("Price", vec![100.0, 250.0, 400.0, 550.0, 700.0, 850.0]).unwrap();
        b.cat_attr("Type", &["Type0", "Type1", "Type2", "Type3", "Type4", "Type5"]).unwrap();
        let rows: Vec<Vec<u32>> = (0..64u32)
            .map(|r| {
                let mut t = vec![r % 6, (r / 2) % 6, (r / 3 + 2) % 6];
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let slices: Vec<&[u32]> = rows.iter().map(Vec::as_slice).collect();
        let db = TransactionDb::from_u32(6, &slices);
        let cfg = EngineConfig::builder()
            .max_inflight_queries(2)
            .max_queued_queries(2)
            .batch_window_ms(40)
            .build();
        Engine::with_config(db, b.build(), cfg).unwrap()
    }

    /// The whole pipeline end-to-end: every scenario replayed over real
    /// TCP against a live envelope-only server, and every CI gate green.
    #[test]
    fn all_scenarios_pass_their_gates_against_a_live_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let opts = ServeOptions::default();
        let shutdown = Arc::clone(&opts.shutdown);
        let eng = engine();
        let server = std::thread::spawn(move || serve_connections(listener, eng, opts));

        let delta = std::env::temp_dir()
            .join(format!("cfq-loadgen-delta-{}.txt", std::process::id()));
        std::fs::write(&delta, "# cfq-transactions v1 n_items=6\n0 2 5\n1 4\n").unwrap();

        let gen_opts = GenOptions {
            append_file: Some(delta.to_string_lossy().into_owned()),
            items: 6,
        };
        let driver_opts = DriverOptions::new(addr.to_string());
        let registry = Registry::new();
        let metrics = ClientMetrics::new(&registry);
        let mut reports = Vec::new();
        for spec in SCENARIOS {
            let w = build(spec, 7, &gen_opts);
            let outcome = driver::run_scenario(&w, &driver_opts, &metrics).unwrap();
            reports.push(ScenarioReport::from_outcome(&outcome));
        }

        let violations = check(&reports);
        assert!(violations.is_empty(), "{violations:#?}");

        // The report renders as valid JSON with per-scenario tails.
        let text = render(7, &reports);
        let v = cfq_engine::json::parse(&text).unwrap();
        let scenarios = v.get("scenarios").unwrap().as_arr().unwrap();
        assert_eq!(scenarios.len(), SCENARIOS.len());
        for s in scenarios {
            let p99 = s.get("p99_us").and_then(cfq_engine::json::Json::as_u64).unwrap();
            let p50 = s.get("p50_us").and_then(cfq_engine::json::Json::as_u64).unwrap();
            assert!(p99 >= p50, "{text}");
        }

        // Client-side counters saw the same traffic the reports did.
        let total: u64 = reports.iter().map(|r| r.requests).sum();
        let scraped = registry.render();
        assert!(
            scraped.contains(&format!("cfq_loadgen_requests_total {total}")),
            "{scraped}"
        );
        assert!(scraped.contains("cfq_loadgen_protocol_errors_total 0"), "{scraped}");

        shutdown.store(true, Ordering::SeqCst);
        drop(std::net::TcpStream::connect(addr)); // nudge the accept loop
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&delta);
    }
}

//! `cfq model` and `cfq lint` — the workspace's static-analysis
//! subcommands.
//!
//! `cfq model` runs the exhaustive interleaving checker over the
//! engine's live concurrency protocols (epoch swap, single-flight
//! mining, cache eviction, counter merge) and writes the machine-
//! readable report `scripts/ci.sh` archives as `BENCH_model.json`. With
//! `--inject` it additionally re-runs every protocol with each seeded
//! bug enabled and fails unless the checker catches them all — proof the
//! models still have teeth.
//!
//! `cfq lint` scans the workspace sources with the token-level rules in
//! `cfq_model::lint` and exits nonzero on any finding.

use crate::args::Args;
use cfq_mining::counter::count_supports_with;
use cfq_model::lint::lint_workspace;
use cfq_model::models::cache_evict::{CacheBug, CacheEvictModel};
use cfq_model::models::epoch::{EpochBug, EpochSwapModel};
use cfq_mining::trim::{trim_db, LiveSet};
use cfq_model::models::merge::MergeModel;
use cfq_model::models::sharded_trim::ShardedTrimModel;
use cfq_model::models::single_flight::{SingleFlightBug, SingleFlightModel};
use cfq_model::report::{render, InjectionReport, ProtocolReport};
use cfq_model::{CheckConfig, Checker, Model, Outcome};
use cfq_types::{CfqError, Itemset, Result, TransactionDb};
use std::hash::Hash;
use std::path::Path;

const MODEL_USAGE: &str = "\
usage: cfq model [--inject] [--out FILE]

options:
  --inject     also re-run every protocol with each seeded bug enabled;
               fail unless the checker catches all of them
  --out FILE   write the JSON report to FILE (default: stdout)";

const LINT_USAGE: &str = "\
usage: cfq lint --workspace [--root DIR] [--json]

options:
  --workspace  scan every Rust source under the workspace root
  --root DIR   workspace root to scan (default: current directory)
  --json       print the machine-readable report instead of text";

/// The merge protocol grounded in the real sharded counter: partial
/// vectors come from `cfq_mining::counter::count_supports_with` over a
/// 3-chunk partition of a small database.
fn merge_model() -> MergeModel {
    let db = TransactionDb::from_u32(
        6,
        &[&[0, 1, 2, 3], &[1, 2, 3], &[0, 2, 4], &[1, 5], &[2, 3, 4, 5], &[5], &[0, 5]],
    );
    let mut cands: Vec<Itemset> = (0..6u32).map(|i| [i].into()).collect();
    for (a, b) in [(0u32, 1u32), (1, 2), (2, 3), (4, 5)] {
        cands.push([a, b].into());
    }
    cands.sort();
    cands.dedup();
    let expected = count_supports_with(&db, &[&cands], 1).remove(0);
    let bounds = [0usize, 3, 5, db.len()];
    let partials: Vec<Vec<u64>> = bounds
        .windows(2)
        .map(|w| {
            let rows: Vec<Vec<cfq_types::ItemId>> =
                (w[0]..w[1]).map(|i| db.transaction(i).to_vec()).collect();
            match TransactionDb::new(db.n_items(), rows) {
                Ok(sub) => count_supports_with(&sub, &[&cands], 1).remove(0),
                Err(_) => vec![0; cands.len()],
            }
        })
        .collect();
    MergeModel { partials, expected, granularity: 1 }
}

/// The sharded-trim protocol grounded in real mining data: each shard's
/// partial counts and trim drops come from `cfq_mining::trim::trim_db` +
/// `count_supports_with` over a 3-way row split, against the **global**
/// live set — exactly what `ShardedRun` does at a level barrier. The
/// expected values are the unsharded trim + count of the same level.
fn sharded_trim_model() -> ShardedTrimModel {
    let db = TransactionDb::from_u32(
        6,
        &[&[0, 1, 2, 3], &[1, 2, 3], &[0, 2, 4], &[1, 5], &[2, 3, 4, 5], &[5], &[0, 5]],
    );
    // A level-2 candidate batch; items 4 and 5 fall outside it, so the
    // trim genuinely drops rows (e.g. the singleton row [5]).
    let mut cands: Vec<Itemset> = Vec::new();
    for (a, b) in [(0u32, 1u32), (0, 2), (1, 2), (1, 3), (2, 3)] {
        cands.push([a, b].into());
    }
    cands.sort();
    cands.dedup();
    let live = LiveSet::from_items(db.n_items(), cands.iter().flat_map(|c| c.iter()));

    let global = trim_db(&db, &live, 2);
    let expected = count_supports_with(&global.db, &[&cands], 1).remove(0);
    let expected_drops = global.rows_dropped;

    let bounds = [0usize, 3, 5, db.len()];
    let mut shard_counts = Vec::new();
    let mut shard_drops = Vec::new();
    for w in bounds.windows(2) {
        let rows: Vec<Vec<cfq_types::ItemId>> =
            (w[0]..w[1]).map(|i| db.transaction(i).to_vec()).collect();
        match TransactionDb::new(db.n_items(), rows) {
            Ok(shard) => {
                let t = trim_db(&shard, &live, 2);
                shard_counts.push(count_supports_with(&t.db, &[&cands], 1).remove(0));
                shard_drops.push(t.rows_dropped);
            }
            Err(_) => {
                shard_counts.push(vec![0; cands.len()]);
                shard_drops.push(0);
            }
        }
    }
    ShardedTrimModel { shard_counts, shard_drops, expected, expected_drops, granularity: 1 }
}

fn run_protocol<M: Model>(checker: &Checker, name: &str, model: &M) -> ProtocolReport
where
    M::State: Clone + Hash + Eq,
{
    let outcome = checker.run(model);
    print_outcome(name, None, &outcome);
    ProtocolReport { protocol: name.to_string(), outcome }
}

fn run_injection<M: Model>(
    checker: &Checker,
    name: &str,
    bug: &str,
    model: &M,
) -> InjectionReport {
    let outcome = checker.run(model);
    print_outcome(name, Some(bug), &outcome);
    InjectionReport { protocol: name.to_string(), bug: bug.to_string(), outcome }
}

fn print_outcome(name: &str, bug: Option<&str>, o: &Outcome) {
    let label = match bug {
        Some(b) => format!("{name} +{b}"),
        None => name.to_string(),
    };
    let verdict = match (bug.is_some(), o.violations.is_empty()) {
        (false, true) => "clean".to_string(),
        (false, false) => format!("VIOLATED ({})", o.violations.len()),
        (true, true) => "UNCAUGHT".to_string(),
        (true, false) => format!("caught ({})", o.violations[0].kind.label()),
    };
    println!(
        "model {label:<34} {:>8} states {:>12} interleavings  {}",
        o.stats.states, o.stats.interleavings, verdict
    );
}

/// `cfq model`: explore every protocol, optionally prove the seeded bugs
/// are caught, and emit the JSON report.
pub fn model(argv: Vec<String>) -> Result<()> {
    let a = Args::parse(argv, &["inject", "help"])?;
    if a.flag("help") {
        println!("{MODEL_USAGE}");
        return Ok(());
    }
    let checker = Checker::new(CheckConfig::default());

    let protocols = vec![
        run_protocol(&checker, "epoch_swap", &EpochSwapModel { bug: None }),
        run_protocol(&checker, "single_flight", &SingleFlightModel { bug: None }),
        run_protocol(&checker, "cache_evict", &CacheEvictModel { bug: None }),
        run_protocol(&checker, "merge", &merge_model()),
        run_protocol(&checker, "sharded_trim", &sharded_trim_model()),
    ];

    let mut injections = Vec::new();
    if a.flag("inject") {
        for &(bug, name) in EpochBug::all() {
            injections.push(run_injection(
                &checker,
                "epoch_swap",
                name,
                &EpochSwapModel { bug: Some(bug) },
            ));
        }
        for &(bug, name) in SingleFlightBug::all() {
            injections.push(run_injection(
                &checker,
                "single_flight",
                name,
                &SingleFlightModel { bug: Some(bug) },
            ));
        }
        for &(bug, name) in CacheBug::all() {
            injections.push(run_injection(
                &checker,
                "cache_evict",
                name,
                &CacheEvictModel { bug: Some(bug) },
            ));
        }
        // Merge bug: a chunk merged twice (a missed worker join).
        let mut doubled = merge_model();
        for x in &mut doubled.partials[0] {
            *x *= 2;
        }
        injections.push(run_injection(&checker, "merge", "double_merge", &doubled));
        // Sharded-trim bug: shard 0's trim wrongly drops a row that still
        // holds a live candidate — its counts lose that row and its drop
        // accounting gains one.
        let mut over_trimmed = sharded_trim_model();
        for x in &mut over_trimmed.shard_counts[0] {
            *x = x.saturating_sub(1);
        }
        over_trimmed.shard_drops[0] += 1;
        injections.push(run_injection(
            &checker,
            "sharded_trim",
            "over_trim",
            &over_trimmed,
        ));
    }

    let json = render(&protocols, &injections);
    match a.get("out") {
        Some(path) => std::fs::write(path, format!("{json}\n"))
            .map_err(|e| CfqError::Io(format!("write {path}: {e}")))?,
        None => println!("{json}"),
    }

    let dirty: Vec<&str> = protocols
        .iter()
        .filter(|p| !p.outcome.ok())
        .map(|p| p.protocol.as_str())
        .collect();
    if !dirty.is_empty() {
        return Err(CfqError::Config(format!("protocol violations in: {}", dirty.join(", "))));
    }
    let uncaught: Vec<String> = injections
        .iter()
        .filter(|i| !i.caught())
        .map(|i| format!("{}+{}", i.protocol, i.bug))
        .collect();
    if !uncaught.is_empty() {
        return Err(CfqError::Config(format!(
            "seeded bugs NOT caught (checker lost its teeth): {}",
            uncaught.join(", ")
        )));
    }
    Ok(())
}

/// `cfq lint`: scan the workspace sources and fail on any finding.
pub fn lint(argv: Vec<String>) -> Result<()> {
    let a = Args::parse(argv, &["workspace", "json", "help"])?;
    if a.flag("help") {
        println!("{LINT_USAGE}");
        return Ok(());
    }
    if !a.flag("workspace") {
        return Err(CfqError::Config(format!(
            "cfq lint currently only supports whole-workspace scans\n{LINT_USAGE}"
        )));
    }
    let root = a.get("root").unwrap_or(".");
    if !Path::new(root).join("Cargo.toml").exists() {
        return Err(CfqError::Config(format!(
            "`{root}` is not a workspace root (no Cargo.toml); use --root"
        )));
    }
    let report = lint_workspace(Path::new(root));
    if a.flag("json") {
        println!("{}", report.render_json());
    } else {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        println!(
            "lint: {} files scanned, {} metric names, {} finding(s)",
            report.files,
            report.metrics,
            report.findings.len()
        );
    }
    if !report.clean() {
        return Err(CfqError::Config(format!("{} lint finding(s)", report.findings.len())));
    }
    Ok(())
}
